"""Arbitrary precision in practice: from 9 digits to 20,000.

The paper's introduction motivates arbitrary precision with workloads far
beyond financial data: orthogonal polynomials needing 4-5x double
precision, and gradient-domain processing needing up to 20,000 digits for
a Poisson equation.  This example walks the precision ladder and shows the
same API (and the same compact representation) handling all of it, ending
with a 10,000-digit multiplication through a JIT-compiled kernel.

Run:  python examples/extreme_precision.py
"""

from repro import Database, DecimalSpec
from repro.core.decimal.context import words_for_precision, bytes_for_precision
from repro.storage import Column, Relation


def main() -> None:
    print("precision ladder: storage footprint per value")
    print(f"{'digits':>8s} {'words (Lw)':>10s} {'compact bytes (Lb)':>20s}")
    for precision in (9, 19, 38, 307, 1000, 20_000):
        print(
            f"{precision:>8,d} {words_for_precision(precision):>10,d} "
            f"{bytes_for_precision(precision):>20,d}"
        )

    print("\n-- exact arithmetic at 1,000 digits --")
    spec = DecimalSpec(1000, 0)
    a = 10**999 - 123456789
    b = 10**998 + 987654321
    relation = Relation(
        "huge", [Column.decimal_from_unscaled("a", [a], spec),
                 Column.decimal_from_unscaled("b", [b], spec)]
    )
    db = Database()
    db.register(relation)
    result = db.execute("SELECT a + b FROM huge")
    value = result.rows[0][0]
    assert value.unscaled == a + b
    text = str(value)
    print(f"a + b = {text[:40]}...{text[-20:]}  ({len(text)} digits, exact)")

    print("\n-- 10,000-digit multiplication through a JIT kernel --")
    half = DecimalSpec(10_000, 0)
    x = 10**9_999 + 271828
    y = 10**9_999 - 314159
    relation = Relation(
        "poisson", [Column.decimal_from_unscaled("x", [x], half),
                    Column.decimal_from_unscaled("y", [y], half)]
    )
    db.register(relation)
    result = db.execute("SELECT x * y FROM poisson")
    product = result.rows[0][0]
    assert product.unscaled == x * y
    print(f"x * y has {len(str(product.unscaled))} digits -- exact")
    print(f"result container: DECIMAL({product.spec.precision}, {product.spec.scale}), "
          f"Lw = {product.spec.words} words")
    print(
        f"\nsimulated kernel time at 10M tuples would be "
        f"{db.execute('SELECT x * y FROM poisson', simulate_rows=10_000_000).report.kernel_seconds:.1f} s"
        " -- the practical limit is memory, exactly as the paper says."
    )


if __name__ == "__main__":
    main()
