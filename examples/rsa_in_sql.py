"""RSA encryption expressed as a SQL query (the paper's Query 4).

Encrypting a message X with public key (e=3, N) is X**3 mod N, written as

    SELECT c1 * c1 % N * c1 % N FROM R4;

which only needs DECIMAL multiplication and modulo -- arbitrary-precision
fixed-point arithmetic doing real cryptography inside the database.

Run:  python examples/rsa_in_sql.py
"""

from repro import Database
from repro.workloads import rsa


def main() -> None:
    # LEN=8: 35-digit messages, a 36-digit modulus (products span 8 words).
    workload = rsa.build_workload(length=8, rows=6, seed=4)
    print(f"modulus N  = {workload.modulus}")
    print(f"exponent e = {rsa.PUBLIC_EXPONENT}")
    print(f"query      = {workload.query}\n")

    db = Database(simulate_rows=10_000_000)
    db.register(workload.relation)
    result = db.execute(workload.query)

    messages = workload.relation.column("c1").unscaled()
    expected = workload.oracle()
    print(f"{'message':>36s}  {'ciphertext (X^3 mod N)':>38s}")
    for message, (ciphertext,) in zip(messages, result.rows):
        assert ciphertext.unscaled == pow(message, 3, workload.modulus)
        print(f"{message:>36d}  {ciphertext.unscaled:>38d}")
    assert [c.unscaled for (c,) in result.rows] == expected

    report = result.report
    print(
        f"\nsimulated time at 10M messages: {report.total_seconds * 1e3:.0f} ms "
        f"(paper: ~601 ms at this key size; PostgreSQL needs ~47x longer)"
    )


if __name__ == "__main__":
    main()
