"""TPC-H analytics end to end: Q1, Q6 and a Q3-style join.

Generates a small TPC-H slice (lineitem/orders/customer), then runs three
classic analytics queries through the full pipeline -- predicate pushdown,
hash joins, JIT-compiled DECIMAL kernels, grouped aggregation -- printing
results and the simulated 10M-tuple timing for each.

Run:  python examples/tpch_analytics.py
"""

from repro import Database
from repro.storage import tpch
from repro.workloads.tpch_queries import Q1_SQL, Q3_SQL, Q6_SQL


def main() -> None:
    order_count = 400
    db = Database(simulate_rows=10_000_000, aggregation_tpi=8)
    db.register(tpch.lineitem_with_orderkeys(rows=2500, seed=7, order_count=order_count))
    db.register(tpch.orders(rows=order_count, seed=17))
    db.register(tpch.customer(rows=60, seed=19))

    print("== TPC-H Q1: pricing summary report ==")
    print(db.explain(Q1_SQL).format())
    result = db.execute(Q1_SQL, include_scan=False)
    print(f"\n{'flag':>4s} {'status':>6s} {'sum_qty':>12s} {'sum_charge':>22s} {'count':>8s}")
    for row in result.rows:
        print(f"{row[0]:>4s} {row[1]:>6s} {str(row[2]):>12s} {str(row[5]):>22s} {str(row[9]):>8s}")
    print(f"simulated: {result.report.total_seconds * 1e3:.0f} ms "
          f"(compile {result.report.compile_seconds * 1e3:.0f} ms)")

    print("\n== TPC-H Q6: forecasting revenue change ==")
    result = db.execute(Q6_SQL, include_scan=False)
    print(f"revenue = {result.scalar}")
    print(f"simulated: {result.report.total_seconds * 1e3:.0f} ms")

    print("\n== Q3-style: shipping priority (two hash joins) ==")
    result = db.execute(Q3_SQL, include_scan=False)
    for orderkey, revenue in result.rows:
        print(f"  order {orderkey:>6d}  revenue {revenue}")
    print(f"simulated: {result.report.total_seconds * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
