"""Quickstart: exact arbitrary-precision DECIMAL queries on the simulated GPU.

Creates a small relation, runs a few queries through the full UltraPrecise
pipeline (SQL -> JIT-compiled kernels -> simulated GPU execution), and
prints the exact results plus the simulated timing breakdown.

Run:  python examples/quickstart.py
"""

from repro import Database, DecimalSpec
from repro.storage import Column, Relation


def main() -> None:
    # A ledger with two DECIMAL columns of different scales.  Values are
    # supplied as *unscaled* integers: 1234 at scale 2 means 12.34.
    prices = Column.decimal_from_unscaled(
        "price", [1234, 99999, 550, 100000000], DecimalSpec(12, 2)
    )
    rates = Column.decimal_from_unscaled(
        "rate", [71, 125, 333, 8], DecimalSpec(6, 4)  # 0.0071, 0.0125, ...
    )
    relation = Relation("ledger", [prices, rates])

    # simulate_rows makes the *timing model* price the paper's 10M-tuple
    # relations while the arithmetic runs exactly over the 4 real rows.
    db = Database(simulate_rows=10_000_000)
    db.register(relation)

    print("== projection: price * (1 + rate) ==")
    result = db.execute("SELECT price * (1 + rate) FROM ledger")
    for (value,) in result.rows:
        print(f"  {value}  ({value.spec})")

    print("\n== aggregation ==")
    result = db.execute("SELECT SUM(price), AVG(price), MIN(rate), MAX(rate) FROM ledger")
    for name, value in zip(result.column_names, result.rows[0]):
        print(f"  {name:12s} = {value}")

    print("\n== simulated timing breakdown (at 10M tuples) ==")
    report = result.report
    print(f"  scan      {report.scan_seconds * 1e3:8.2f} ms")
    print(f"  PCIe      {report.pcie_seconds * 1e3:8.2f} ms")
    print(f"  compile   {report.compile_seconds * 1e3:8.2f} ms (JIT, cached afterwards)")
    print(f"  kernels   {report.kernel_seconds * 1e3:8.2f} ms")
    print(f"  aggregate {report.aggregate_seconds * 1e3:8.2f} ms")
    print(f"  total     {report.total_seconds * 1e3:8.2f} ms")

    print("\n== the second run hits the kernel cache ==")
    again = db.execute("SELECT SUM(price), AVG(price), MIN(rate), MAX(rate) FROM ledger")
    print(f"  compile   {again.report.compile_seconds * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
