"""A tour of the JIT engine: representations, optimisations, profiles.

Walks through what UltraPrecise's compilation pipeline does to an
expression: precision inference, alignment scheduling, constant folding,
kernel code generation (the paper's Listing 1), and the Nsight-style
profile of the generated kernel.

Run:  python examples/jit_deep_dive.py
"""

from repro import DecimalSpec, JitOptions, compile_expression
from repro.core.multithread import plan_load, render_load_code
from repro.gpusim import kernel_time, profile_kernel


def main() -> None:
    print("=" * 70)
    print("1. Listing 1: DECIMAL(4,2) + DECIMAL(4,1)")
    print("=" * 70)
    schema = {"c1_4_2": DecimalSpec(4, 2), "c2_4_1": DecimalSpec(4, 1)}
    compiled = compile_expression("c1_4_2 + c2_4_1", schema)
    print(compiled.kernel.source)
    print(f"\nresult spec: {compiled.kernel.result_spec} "
          f"(Lw={compiled.kernel.result_spec.words}, "
          f"Lb={compiled.kernel.result_spec.compact_bytes})")

    print()
    print("=" * 70)
    print("2. Alignment scheduling (Figure 6): a + b*c + d - e")
    print("=" * 70)
    schema = {
        "a": DecimalSpec(12, 2),
        "b": DecimalSpec(12, 5),
        "c": DecimalSpec(12, 5),
        "d": DecimalSpec(12, 2),
        "e": DecimalSpec(12, 2),
    }
    compiled = compile_expression("a + b * c + d - e", schema)
    print(f"rewritten to: {compiled.tree.to_sql()}")
    print(f"alignments: {compiled.alignments_before} -> {compiled.alignments_after}")

    print()
    print("=" * 70)
    print("3. Constant folding (Figure 7): 1 + a + b*(5 + c - 5) + d + 1.23")
    print("=" * 70)
    schema = {
        "a": DecimalSpec(12, 1),
        "b": DecimalSpec(12, 3),
        "c": DecimalSpec(12, 3),
        "d": DecimalSpec(12, 2),
    }
    compiled = compile_expression("1 + a + b * (5 + c - 5) + d + 1.23", schema)
    print(f"optimised to: {compiled.tree.to_sql()}")
    print("(constants folded to 2.23, the 0+c shortcut applied,")
    print(" and 2.23 pre-aligned at compile time)")

    print()
    print("=" * 70)
    print("4. Multi-threaded loads (Listing 3): DECIMAL(64,32) at TPI=4")
    print("=" * 70)
    print(render_load_code(plan_load(DecimalSpec(64, 32), 4)))

    print()
    print("=" * 70)
    print("5. Kernel profiles and TPI scaling at LEN=32")
    print("=" * 70)
    wide = {"a": DecimalSpec(306, 2), "b": DecimalSpec(306, 2)}
    for tpi in (1, 4, 8, 16):
        compiled = compile_expression("a + b", wide, JitOptions(tpi=tpi))
        timing = kernel_time(compiled.kernel, 10_000_000)
        print(f"  TPI={tpi:>2d}: {timing.seconds * 1e3:6.2f} ms "
              f"(occupancy {timing.occupancy.percent:3.0f}%, "
              f"{'memory' if timing.memory_bound else 'compute'}-bound)")
    profile = profile_kernel(compile_expression("a + b", wide).kernel)
    print(f"\nNsight-style view: {profile}")


if __name__ == "__main__":
    main()
