"""High-precision trigonometry in SQL via Taylor series (Query 5).

Approximates sin(x) for DECIMAL(9,8) radians with polynomials of growing
length and reports the mean absolute error against an exact rational
oracle -- showing both the precision gains and the saturation the paper
analyses (the s1+4 division rule floors the error near x=0.01).

Run:  python examples/taylor_sine.py
"""

from fractions import Fraction

from repro import Database
from repro.workloads import trig


def main() -> None:
    workload = trig.build_workload(rows=100, seed=5)
    db = Database(simulate_rows=10_000_000)
    db.register(workload.relation)

    print("three-term query (the paper's Query 5):")
    print(f"  {workload.query('c1', 3)}\n")

    for column, label in (("c1", "x ~ 0.01"), ("c2", "x ~ pi/4")):
        truths = workload.oracle(column)
        print(f"-- {label} --")
        print(f"{'terms':>6s} {'MAE':>12s} {'sim time (ms)':>14s}")
        for terms in (2, 3, 5, 8, 11):
            result = db.execute(workload.query(column, terms), include_scan=False)
            values = [Fraction(*v.to_fraction_parts()) for (v,) in result.rows]
            mae = trig.mean_absolute_error(values, truths)
            print(f"{terms:>6d} {mae:>12.2e} {result.report.total_seconds * 1e3:>14.0f}")
        print()

    print(
        "Near pi/4 the error keeps falling with more terms; near 0.01 it\n"
        "saturates around 1e-28 -- the truncation floor of the DECIMAL\n"
        "division rule (section III-B3), exactly the paper's Figure 15\n"
        "observation.  (H2 dodges it by carrying 20 extra division digits.)"
    )


if __name__ == "__main__":
    main()
