"""Financial exactness: why DOUBLE is the wrong type for money.

Recreates the paper's Figure 1 motivation at example scale: summing
``c1 + c2`` over a table with DOUBLE loses cents *and* different engines
lose different cents, while DECIMAL stays exact at any precision.

Run:  python examples/financial_exactness.py
"""

from fractions import Fraction

from repro import Database
from repro.baselines import CockroachModel, PostgresModel
from repro.workloads import figure1


def main() -> None:
    relation = figure1.build_relation("low-p", rows=4000)
    total, scale = figure1.exact_sum(relation)
    exact = Fraction(total, 10**scale)
    print(f"exact SUM(c1+c2) = {float(exact):.6f}... (known exactly to all {scale} places)")

    print("\n-- DOUBLE columns: fast but wrong, and inconsistently wrong --")
    for engine in (PostgresModel(), CockroachModel()):
        result = engine.run_sum_double(relation, "c1 + c2", simulate_rows=10_000_000)
        error = Fraction(result.scalar) - exact
        print(
            f"  {engine.name:12s} -> {result.scalar!r}   error {float(error):+.6f}   "
            f"({result.seconds:.2f} s simulated)"
        )

    print("\n-- DECIMAL columns: exact, in every engine --")
    for engine in (PostgresModel(), CockroachModel()):
        result = engine.run_sum(relation, "c1 + c2", simulate_rows=10_000_000)
        value = Fraction(*result.scalar.to_fraction_parts())
        assert value == exact
        print(f"  {engine.name:12s} -> {result.scalar}   exact   ({result.seconds:.2f} s simulated)")

    db = Database(simulate_rows=10_000_000)
    db.register(relation)
    result = db.execute("SELECT SUM(c1 + c2) FROM R")
    assert Fraction(*result.scalar.to_fraction_parts()) == exact
    print(
        f"  UltraPrecise -> {result.scalar}   exact   "
        f"({result.report.total_seconds:.2f} s simulated, GPU)"
    )

    print(
        "\nThe paper's point: UltraPrecise gets DOUBLE-like speed with "
        "DECIMAL exactness (its low-p DECIMAL run is only ~1.04x a DOUBLE run)."
    )


if __name__ == "__main__":
    main()
