"""Multi-pass driver for the kernel IR static analyzer.

``analyze_kernel`` runs the passes in dependency order -- structure first
(the later passes index registers and assume spec-consistent instructions),
then ranges, lifetime and the IR schedule lint; the tree-level schedule
lint runs whenever the caller supplies the optimised expression tree.
Structural errors short-circuit the IR passes: analysing a kernel whose
registers are undefined would only produce noise.

``apply_fast_paths`` feeds the range pass's proven division facts back
into the IR: Div/Mod instructions whose single-word or 64-bit route is
statically guaranteed are re-emitted with ``fast_path`` set, which the
executor uses to skip the per-row size dispatch entirely.  The input
kernel is never modified -- a rewritten *copy* is returned -- because the
kernel may already be held by the (shared, cross-session) kernel cache,
where an in-place instruction-list mutation would be visible to every
other holder.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.lifetime import check_lifetime
from repro.analysis.ranges import analyze_ranges
from repro.analysis.schedule import check_schedule_ir, check_schedule_tree
from repro.analysis.structure import check_structure
from repro.core.jit import ir
from repro.core.jit.expr_ast import Expr


def analyze_kernel(kernel: ir.KernelIR, tree: Optional[Expr] = None) -> AnalysisReport:
    """Run every analysis pass over one kernel and collect the findings."""
    report = AnalysisReport(kernel=kernel.name)
    report.extend(check_structure(kernel))
    if not report.has_errors:
        range_findings, fast_paths = analyze_ranges(kernel)
        report.extend(range_findings)
        report.fast_paths = fast_paths
        report.extend(check_lifetime(kernel))
        report.extend(check_schedule_ir(kernel))
    if tree is not None:
        report.extend(check_schedule_tree(tree, kernel.name))
    return report


def apply_fast_paths(kernel: ir.KernelIR, fast_paths: Dict[int, str]) -> ir.KernelIR:
    """Annotate Div/Mod instructions with statically proven routes.

    Returns a rewritten *copy* of the kernel (fresh instruction list, the
    annotated sites replaced wholesale -- the instruction dataclasses are
    frozen), or the input kernel itself when nothing changed.  The input
    is never mutated: it may be shared through the kernel cache, and an
    in-place edit of ``kernel.instructions`` would silently rewrite every
    other holder's view of it.
    """
    instructions = list(kernel.instructions)
    rewritten = 0
    for position, path in fast_paths.items():
        instruction = instructions[position]
        if not isinstance(instruction, (ir.DivOp, ir.ModOp)):
            continue
        if instruction.fast_path == path:
            continue
        instructions[position] = dataclasses.replace(instruction, fast_path=path)
        rewritten += 1
    if not rewritten:
        return kernel
    return dataclasses.replace(kernel, instructions=instructions)
