"""Diagnostics framework for the kernel IR static analyzer.

Every analysis pass reports through :class:`Diagnostic`: a stable rule id
(``RANGE001``, ``LIFE004``, ...), a severity, the kernel name, and the
offending instruction index when one exists.  Passes *collect* everything
they find instead of bailing at the first violation; callers decide whether
errors are fatal (the JIT pipeline's strict mode, the CI sweep gate) or
informational (EXPLAIN output).

Rule id registry (the full table lives in DESIGN.md):

========  ========  ====================================================
prefix    pass      meaning
========  ========  ====================================================
STRUCT*   structure structural/spec consistency (the original verifier)
RANGE*    ranges    interval analysis: overflow proofs, width lints,
                    statically-proven division fast paths
LIFE*     lifetime  def-use/lifetime checks against the register pool
SCHED*    schedule  alignment-scheduling and constant-folding lints
========  ========  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the kernel is provably or potentially unsound (a
    register can overflow, a released register is read); strict mode and
    the CI gate fail on these.  ``WARNING`` flags wasted resources or
    missed optimisations; ``INFO`` records proven facts (e.g. a division
    fast path is statically guaranteed).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass."""

    rule: str
    severity: Severity
    message: str
    kernel: str = ""
    #: Index into ``KernelIR.instructions``; ``None`` for kernel-level
    #: findings (e.g. "no StoreResult") and tree-level schedule lints.
    instruction: Optional[int] = None

    def format(self) -> str:
        location = self.kernel or "<kernel>"
        if self.instruction is not None:
            location += f"[{self.instruction}]"
        return f"{self.severity.value}[{self.rule}] {location}: {self.message}"


@dataclass
class AnalysisReport:
    """All diagnostics the analyzer produced for one kernel."""

    kernel: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Instruction index -> statically proven Div/Mod route ("native64" or
    #: "short"), filled in by the range pass.
    fast_paths: Dict[int, str] = field(default_factory=dict)

    def add(
        self,
        rule: str,
        severity: Severity,
        message: str,
        instruction: Optional[int] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(rule, severity, message, kernel=self.kernel, instruction=instruction)
        )

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def rules(self) -> List[str]:
        """Distinct rule ids present, in first-appearance order."""
        seen: List[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.rule not in seen:
                seen.append(diagnostic.rule)
        return seen

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        """Render one line per diagnostic at or above ``min_severity``."""
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        cutoff = order[min_severity]
        lines = [
            d.format() for d in self.diagnostics if order[d.severity] <= cutoff
        ]
        return "\n".join(lines)
