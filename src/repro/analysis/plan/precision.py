"""Precision/scale dataflow pass over physical plans (``PREC*`` rules).

Propagates ``DECIMAL(p, s)`` specs through the plan exactly the way
execution does -- the scan's column specs flow through joins and
projections, every JIT expression is compiled against the schema its batch
would carry, and aggregates widen through the section III-B3 inference
rules -- then proves at the *plan* level that every expression result fits
the register width the JIT allocates.

The proof is deliberately redundant with the kernel range pass
(``repro.analysis.ranges``): this pass walks the optimised expression
*tree* with the same interval transfer functions the kernel pass applies
to the *IR*, and then cross-checks the two verdicts.  Agreement is
reported as a ``PREC004`` proof; disagreement is a ``PREC002`` error --
the two layers analysing the same expression must never tell different
stories, so a bug in either transfer function surfaces as a mismatch
instead of a silently wrong proof.

Rules:

* ``PREC001`` (error): a plan-level interval can exceed its node's
  allocated word container (the plan-level analogue of ``RANGE001``).
* ``PREC002`` (error): the plan-level overflow verdict disagrees with the
  kernel range pass on the same expression.
* ``PREC003`` (error): an expression cannot compile against the decimal
  schema its batch carries (e.g. pruning removed an input column).
* ``PREC004`` (info): proof -- the expression result fits its container
  and the plan-level and kernel-level analyses agree.
* ``PREC005`` (info/error): aggregate widening proof over the simulated
  tuple count (error when the widened spec cannot be constructed).

Expressions are compiled through a module-private analysis-only
:class:`~repro.core.jit.pipeline.KernelCache`: warming the session's
shared cache from the analyzer would flip execution's compiled-vs-cached
accounting, and strict analysis is forced off so an overflowing kernel is
*reported* here rather than raising mid-analysis.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.ranges import (
    POSSIBLE_OVERFLOW,
    _abs_interval,
    _container_limit,
    _div_interval,
    _magnitude,
    _mod_interval,
    _mul_interval,
    _rescale_interval,
)
from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.jit import expr_ast
from repro.core.jit.pipeline import JitOptions, KernelCache
from repro.engine.plan.physical import (
    AggregateOp,
    DropOp,
    GroupAggregateOp,
    HashJoinOp,
    NestedLoopJoinOp,
    ProjectOp,
    ScanOp,
)
from repro.errors import ReproError
from repro.storage.schema import DecimalType

PLAN_OVERFLOW = "PREC001"
PROOF_MISMATCH = "PREC002"
EXPR_UNTYPABLE = "PREC003"
EXPR_PROOF = "PREC004"
AGGREGATE_PROOF = "PREC005"

Interval = Tuple[int, int]

#: Analysis-only compilation cache, shared across all plan analyses in the
#: process.  Never the session's cache: pre-warming that would turn
#: execution's first compile into a hit and silently stop charging compile
#: time in reports.
_ANALYSIS_CACHE = KernelCache()


def check_precision_flow(
    plan_ops, stats, label: str = "", jit_options: Optional[JitOptions] = None
) -> List[Diagnostic]:
    """Run the precision-dataflow pass; returns its diagnostics.

    Declines (empty list) without statistics: column specs come from the
    catalog, and a plan analysed without them could prove nothing sound.
    """
    findings: List[Diagnostic] = []
    if stats is None:
        return findings
    options = replace(jit_options or JitOptions(), strict_analysis=False)

    def report(
        rule: str, severity: Severity, message: str, position: Optional[int] = None
    ) -> None:
        findings.append(
            Diagnostic(rule, severity, message, kernel=label, instruction=position)
        )

    # The decimal schema the executor would build from the batch at each
    # operator, plus the non-decimal columns flowing alongside (those pass
    # through projections bare but never enter a kernel).
    schema: Dict[str, DecimalSpec] = {}
    non_decimal: Set[str] = set()
    sim_n = max(int(stats.simulate_rows), 1)

    def spec_of(text: str, kernel_name: str, position: int) -> Optional[DecimalSpec]:
        bare = text.strip()
        if bare in schema:
            return schema[bare]
        if bare in non_decimal:
            return None
        return _check_expression(
            text, schema, kernel_name, options, report, position
        )

    for position, op in enumerate(plan_ops):
        if isinstance(op, ScanOp):
            schema, non_decimal = {}, set()
            for name in op.columns:
                column_type = stats.main.column_types.get(name)
                if isinstance(column_type, DecimalType):
                    schema[name] = column_type.spec
                else:
                    non_decimal.add(name)
        elif isinstance(op, (HashJoinOp, NestedLoopJoinOp)):
            right = stats.table(op.join.table)
            for name in op.right_columns:
                if name in schema or name in non_decimal:
                    continue  # left side wins on name collisions
                column_type = right.column_types.get(name) if right else None
                if isinstance(column_type, DecimalType):
                    schema[name] = column_type.spec
                else:
                    non_decimal.add(name)
        elif isinstance(op, ProjectOp):
            produced: Dict[str, DecimalSpec] = {}
            produced_other: Set[str] = set()
            for index, item in enumerate(op.items):
                text = item.expression
                assert isinstance(text, str)
                spec = spec_of(text, f"calc_expr_{index}", position)
                if spec is not None:
                    produced[item.name] = spec
                else:
                    produced_other.add(item.name)
            for name in op.carry:
                if name in schema:
                    produced.setdefault(name, schema[name])
                elif name in non_decimal:
                    produced_other.add(name)
            schema, non_decimal = produced, produced_other
        elif isinstance(op, (AggregateOp, GroupAggregateOp)):
            produced = {}
            produced_other = set()
            if isinstance(op, GroupAggregateOp):
                for name in op.group_by:
                    if name in schema:
                        produced[name] = schema[name]
                    else:
                        produced_other.add(name)
            for index, item in enumerate(op.items):
                call = item.expression
                if call.function == "COUNT":
                    produced[item.name] = inference.count_spec(sim_n)
                    continue
                arg_spec = spec_of(call.argument, f"agg_expr_{index}", position)
                if arg_spec is None:
                    produced_other.add(item.name)
                    continue
                result = _aggregate_spec(
                    call.function, arg_spec, sim_n, report, position, str(call)
                )
                if result is None:
                    produced_other.add(item.name)
                else:
                    produced[item.name] = result
            schema, non_decimal = produced, produced_other
        elif isinstance(op, DropOp):
            for name in op.columns:
                schema.pop(name, None)
                non_decimal.discard(name)
        # Filter/Sort/Limit leave the schema unchanged.
    return findings


def _aggregate_spec(
    function: str,
    arg_spec: DecimalSpec,
    sim_n: int,
    report,
    position: int,
    what: str,
) -> Optional[DecimalSpec]:
    """Widen an aggregate input spec and report the proof (``PREC005``)."""
    try:
        if function == "SUM":
            result = inference.sum_result(arg_spec, sim_n)
        elif function == "AVG":
            result = inference.avg_result(arg_spec, sim_n)
        else:  # MIN/MAX keep the input spec
            result = inference.minmax_result(arg_spec)
    except ReproError as error:
        report(
            AGGREGATE_PROOF,
            Severity.ERROR,
            f"{what}: no overflow-free spec over {sim_n} simulated rows: {error}",
            position,
        )
        return None
    report(
        AGGREGATE_PROOF,
        Severity.INFO,
        f"{what}: input {arg_spec} over <= {sim_n} simulated rows widens to "
        f"{result} ({result.words} word(s)) -- overflow-free by construction",
        position,
    )
    return result


def _check_expression(
    text: str,
    schema: Dict[str, DecimalSpec],
    kernel_name: str,
    options: JitOptions,
    report,
    position: int,
) -> Optional[DecimalSpec]:
    """Compile one expression and run the plan-level interval proof.

    Returns the result spec execution would see (the kernel's), or None
    when the expression cannot compile against this plan's schema.
    """
    try:
        compiled, _cached = _ANALYSIS_CACHE.compile(
            text, dict(schema), options, name=kernel_name
        )
    except ReproError as error:
        report(
            EXPR_UNTYPABLE,
            Severity.ERROR,
            f"{kernel_name} ({text!r}) cannot compile against the plan "
            f"schema: {error}",
            position,
        )
        return None

    overflows: List[Tuple[str, int, DecimalSpec]] = []
    _walk_intervals(compiled.tree, overflows)
    plan_overflow = bool(overflows)
    analysis = compiled.kernel.analysis
    kernel_overflow = analysis is not None and any(
        diagnostic.rule == POSSIBLE_OVERFLOW for diagnostic in analysis.errors
    )

    for node_sql, magnitude, spec in overflows:
        report(
            PLAN_OVERFLOW,
            Severity.ERROR,
            f"{kernel_name}: {node_sql} bound {magnitude} exceeds its "
            f"{spec.words}-word container ({spec})",
            position,
        )
    if plan_overflow != kernel_overflow:
        verdict = {True: "overflow possible", False: "overflow-free"}
        report(
            PROOF_MISMATCH,
            Severity.ERROR,
            f"{kernel_name}: plan-level interval proof says "
            f"{verdict[plan_overflow]} but the kernel range pass says "
            f"{verdict[kernel_overflow]} -- the two layers must agree",
            position,
        )
    elif not plan_overflow:
        result = compiled.kernel.result_spec
        report(
            EXPR_PROOF,
            Severity.INFO,
            f"{kernel_name}: result {result} fits {result.words} word(s); "
            "plan-level and kernel-level overflow proofs agree",
            position,
        )
    return compiled.kernel.result_spec


def _walk_intervals(tree: expr_ast.Expr, overflows: List) -> Interval:
    """Interval walk over the *optimised* expression tree.

    Uses the same transfer functions as the kernel range pass
    (``repro.analysis.ranges``) so the two layers' verdicts are directly
    comparable: column leaves start at their spec bounds, ``+``/``-``
    align operands to the result scale, division pre-scales the dividend
    by ``10**(s2 + 4)``, and every node's bound is checked against its
    inferred spec's word container (clamping on overflow, exactly as the
    IR pass clamps, so downstream bounds stay meaningful).
    """

    def check(node: expr_ast.Expr, interval: Interval) -> Interval:
        spec = node.spec
        if spec is None:
            return interval
        limit = _container_limit(spec)
        if _magnitude(interval) > limit:
            overflows.append((node.to_sql(), _magnitude(interval), spec))
            return (-limit, limit)
        return interval

    def walk(node: expr_ast.Expr) -> Interval:
        if isinstance(node, expr_ast.ColumnRef):
            bound = node.spec.max_unscaled
            return (-bound, bound)
        if isinstance(node, expr_ast.Literal):
            unscaled = int(node.value * 10**node.spec.scale)
            return check(node, (unscaled, unscaled))
        if isinstance(node, expr_ast.UnaryOp):
            lo, hi = walk(node.operand)
            interval = (-hi, -lo) if node.op == "-" else (lo, hi)
            return check(node, interval)
        if isinstance(node, expr_ast.BinaryOp):
            a = walk(node.left)
            b = walk(node.right)
            if node.op in ("+", "-"):
                a = _rescale_interval(a, node.left.spec.scale, node.spec.scale)
                b = _rescale_interval(b, node.right.spec.scale, node.spec.scale)
                if node.op == "+":
                    interval = (a[0] + b[0], a[1] + b[1])
                else:
                    interval = (a[0] - b[1], a[1] - b[0])
            elif node.op == "*":
                interval = _mul_interval(a, b)
            elif node.op == "/":
                factor = 10 ** inference.div_prescale(node.right.spec)
                interval = _div_interval(a, b, factor)
            else:  # "%"
                interval = _mod_interval(a, b)
            return check(node, interval)
        if isinstance(node, expr_ast.FuncCall):
            arg = walk(node.argument)
            if node.function == "ABS":
                interval = _abs_interval(arg)
            elif node.function == "SIGN":
                interval = (-1 if arg[0] < 0 else 0, 1 if arg[1] > 0 else 0)
            elif node.function == "POWER":
                # Normally expanded before codegen; cover it defensively.
                interval = arg
                for _ in range(max(node.scale_arg - 1, 0)):
                    interval = _mul_interval(interval, arg)
            else:  # ROUND/TRUNC/CEIL/FLOOR: floor/ceil bracket every mode
                interval = _rescale_interval(
                    arg, node.argument.spec.scale, node.spec.scale
                )
            return check(node, interval)
        if isinstance(node, expr_ast.NaryAdd):
            total: Interval = (0, 0)
            for term in node.terms:
                t = _rescale_interval(
                    walk(term), term.spec.scale, node.spec.scale
                )
                total = (total[0] + t[0], total[1] + t[1])
            return check(node, total)
        if isinstance(node, expr_ast.NaryMul):
            product: Interval = (1, 1)
            for factor in node.factors:
                product = _mul_interval(product, walk(factor))
            return check(node, product)
        # Unknown node kind: claim only what its spec already guarantees.
        if node.spec is not None:
            bound = node.spec.max_unscaled
            return (-bound, bound)
        return (0, 0)

    return walk(tree)
