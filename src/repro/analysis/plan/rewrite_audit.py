"""Rewrite-soundness differential pass (``RULE*`` rules).

Every rewrite-rule firing records structural before/after snapshots of the
logical node list (:func:`repro.engine.plan.rules.snapshot_nodes`).  This
pass replays each firing and verifies the *rule-specific* invariant that
makes the rewrite semantics-preserving -- a differential check, so a rule
bug (pushdown dropping a conjunct, reordering losing a join, pruning
removing a shipped column some node needs) becomes a static analyzer error
at plan time instead of a bit-diff at execution time.

Rules:

* ``RULE001`` (error): filter pushdown changed the global conjunct
  multiset or the non-filter plan structure.
* ``RULE002`` (error): a pushed conjunct landed where its columns are not
  readable (batch availability, or a build side's stored columns).
* ``RULE003`` (error): join reordering changed the join set, the
  predicates, or nodes outside the reordered section.
* ``RULE004`` (error): join reordering fired without the aggregate gate
  (order changes below a bare projection are observable).
* ``RULE005`` (error): projection pruning grew a ship set or changed
  anything besides shrinking ship sets.
* ``RULE006`` (error): predicate simplification increased a filter's
  conjunct count or changed the node structure.
* ``RULE007`` (error): sort-key retention left an ORDER BY key
  unavailable at the sort, or leaked a carried column past its drop.
* ``RULE000`` (info): a rule fired for which no audit is implemented.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity

PUSHDOWN_CONJUNCTS = "RULE001"
PUSHDOWN_PLACEMENT = "RULE002"
REORDER_JOINS = "RULE003"
REORDER_GATE = "RULE004"
PRUNING_GREW = "RULE005"
SIMPLIFY_GREW = "RULE006"
RETENTION_BROKEN = "RULE007"
UNAUDITED_RULE = "RULE000"

Snapshot = Tuple[Tuple[object, ...], ...]


def check_rewrites(events, stats=None, label: str = "") -> List[Diagnostic]:
    """Audit every rewrite event that carries snapshots."""
    findings: List[Diagnostic] = []

    def report(rule: str, severity: Severity, message: str) -> None:
        findings.append(Diagnostic(rule, severity, message, kernel=label))

    for index, event in enumerate(events):
        before = getattr(event, "before", None)
        after = getattr(event, "after", None)
        if before is None or after is None:
            continue
        what = f"rewrite[{index}] {event.rule}"
        if event.rule == "filter-pushdown":
            _audit_pushdown(before, after, stats, report, what)
        elif event.rule == "join-reorder":
            _audit_reorder(before, after, report, what)
        elif event.rule == "projection-pruning":
            _audit_pruning(before, after, report, what)
        elif event.rule == "predicate-simplify":
            _audit_simplify(before, after, report, what)
        elif event.rule == "sort-key-retention":
            _audit_retention(after, report, what)
        else:
            report(
                UNAUDITED_RULE,
                Severity.INFO,
                f"{what}: no soundness audit implemented for this rule",
            )
    return findings


# ------------------------------------------------------------ snapshot views


def _predicate_columns(predicate: Tuple) -> Set[str]:
    columns = {predicate[0]}
    if predicate[3] is not None:
        columns.add(predicate[3])
    return columns


def _conjunct_multiset(snapshot: Snapshot) -> Counter:
    """Every WHERE/HAVING/build-side conjunct in the plan, as a multiset."""
    conjuncts: Counter = Counter()
    for node in snapshot:
        if node[0] == "filter":
            conjuncts.update(node[1])
        elif node[0] == "having":
            conjuncts.update(node[1])
        elif node[0] == "join":
            conjuncts.update(node[5])
    return conjuncts


def _skeleton(snapshot: Snapshot) -> Tuple:
    """The plan with filters removed and join predicates stripped.

    Pushdown may only move conjuncts between filter slots and build sides;
    everything this view keeps must therefore be invariant under it.
    """
    parts = []
    for node in snapshot:
        if node[0] == "filter":
            continue
        if node[0] == "join":
            parts.append(node[:5])
        else:
            parts.append(node)
    return tuple(parts)


def _join_nodes(snapshot: Snapshot) -> Iterable[Tuple]:
    return (node for node in snapshot if node[0] == "join")


# ------------------------------------------------------------------- audits


def _audit_pushdown(
    before: Snapshot, after: Snapshot, stats, report, what: str
) -> None:
    if _conjunct_multiset(before) != _conjunct_multiset(after):
        lost = _conjunct_multiset(before) - _conjunct_multiset(after)
        gained = _conjunct_multiset(after) - _conjunct_multiset(before)
        report(
            PUSHDOWN_CONJUNCTS,
            Severity.ERROR,
            f"{what} changed the conjunct multiset "
            f"(dropped: {sorted(lost)}, invented: {sorted(gained)}) -- "
            "pushdown must only *move* conjuncts",
        )
    if _skeleton(before) != _skeleton(after):
        report(
            PUSHDOWN_CONJUNCTS,
            Severity.ERROR,
            f"{what} changed the plan beyond filter placement",
        )
    _check_placement(after, stats, report, what)


def _check_placement(after: Snapshot, stats, report, what: str) -> None:
    """Replay availability over the rewritten scan/join/filter section."""
    available: Set[str] = set()
    for node in after:
        if node[0] == "scan":
            available = set(node[2])
        elif node[0] == "join":
            table, _left, right_key, right_columns, predicates = node[1:6]
            right = stats.table(table) if stats is not None else None
            if right is not None:
                stored = set(right.column_types)
            else:
                # Without a catalog the provable build-readable set is the
                # ship set plus the join key (what the join itself reads).
                stored = set(right_columns) | {right_key}
            for predicate in predicates:
                missing = _predicate_columns(predicate) - stored
                if missing:
                    report(
                        PUSHDOWN_PLACEMENT,
                        Severity.ERROR,
                        f"{what} pushed {predicate[0]} {predicate[1]} ... into "
                        f"{table!r}'s build side but {sorted(missing)} are not "
                        "readable there",
                    )
            available |= set(right_columns)
        elif node[0] == "filter":
            for predicate in node[1]:
                missing = _predicate_columns(predicate) - available
                if missing:
                    report(
                        PUSHDOWN_PLACEMENT,
                        Severity.ERROR,
                        f"{what} placed conjunct on {predicate[0]!r} where "
                        f"{sorted(missing)} are not available",
                    )
        else:
            break  # past the rewritable section; aliases resolve elsewhere


def _audit_reorder(before: Snapshot, after: Snapshot, report, what: str) -> None:
    if Counter(_join_nodes(before)) != Counter(_join_nodes(after)):
        report(
            REORDER_JOINS,
            Severity.ERROR,
            f"{what} changed the join set (a reorder must permute the "
            "same joins, predicates and ship sets)",
        )
    if _conjunct_multiset(before) != _conjunct_multiset(after):
        report(
            REORDER_JOINS,
            Severity.ERROR,
            f"{what} changed the conjunct multiset while reordering",
        )
    if before and after and before[0] != after[0]:
        report(
            REORDER_JOINS,
            Severity.ERROR,
            f"{what} changed the leading scan",
        )

    def tail(snapshot: Snapshot) -> Tuple:
        index = 1
        while index < len(snapshot) and snapshot[index][0] in ("join", "filter"):
            index += 1
        return snapshot[index:]

    if tail(before) != tail(after):
        report(
            REORDER_JOINS,
            Severity.ERROR,
            f"{what} changed nodes above the reordered join run",
        )
    if not any(node[0] == "aggregate" for node in after):
        report(
            REORDER_GATE,
            Severity.ERROR,
            f"{what} fired without an aggregate above the join run -- "
            "row order below a bare projection is observable, so the "
            "aggregate gate is a bit-exactness precondition",
        )


def _audit_pruning(before: Snapshot, after: Snapshot, report, what: str) -> None:
    if len(before) != len(after):
        report(
            PRUNING_GREW,
            Severity.ERROR,
            f"{what} changed the node count ({len(before)} -> {len(after)})",
        )
        return
    for old, new in zip(before, after):
        if old[0] != new[0]:
            report(
                PRUNING_GREW,
                Severity.ERROR,
                f"{what} changed a node kind ({old[0]} -> {new[0]})",
            )
        elif old[0] == "scan":
            if new[1] != old[1] or not set(new[2]) <= set(old[2]):
                report(
                    PRUNING_GREW,
                    Severity.ERROR,
                    f"{what} must only shrink the scan ship set "
                    f"({old[2]} -> {new[2]})",
                )
        elif old[0] == "join":
            same_join = old[1:4] == new[1:4] and old[5] == new[5]
            if not same_join or not set(new[4]) <= set(old[4]):
                report(
                    PRUNING_GREW,
                    Severity.ERROR,
                    f"{what} must only shrink {old[1]!r}'s ship set "
                    f"({old[4]} -> {new[4]})",
                )
        elif old != new:
            report(
                PRUNING_GREW,
                Severity.ERROR,
                f"{what} changed a {old[0]} node (pruning only touches "
                "scan/join ship sets)",
            )


def _audit_simplify(before: Snapshot, after: Snapshot, report, what: str) -> None:
    if tuple(node[0] for node in before) != tuple(node[0] for node in after):
        report(
            SIMPLIFY_GREW,
            Severity.ERROR,
            f"{what} changed the plan structure (it must only rewrite "
            "conjunct lists in place)",
        )
        return
    for old, new in zip(before, after):
        if old[0] != "filter":
            if old != new:
                report(
                    SIMPLIFY_GREW,
                    Severity.ERROR,
                    f"{what} changed a {old[0]} node",
                )
            continue
        became_false = bool(new[2]) and not old[2]
        if len(new[1]) > len(old[1]) and not became_false:
            report(
                SIMPLIFY_GREW,
                Severity.ERROR,
                f"{what} grew a filter from {len(old[1])} to "
                f"{len(new[1])} conjunct(s)",
            )


def _audit_retention(after: Snapshot, report, what: str) -> None:
    project: Optional[Tuple] = None
    for node in after:
        if node[0] == "project" and project is None:
            project = node
        elif node[0] == "sort" and project is not None:
            outputs = set(project[1]) | set(project[3])
            missing = [key for key, _asc in node[1] if key not in outputs]
            if missing:
                report(
                    RETENTION_BROKEN,
                    Severity.ERROR,
                    f"{what} left ORDER BY key(s) {missing} neither selected "
                    "nor carried through the projection",
                )
    if project is not None:
        leaked = set(project[3]) - set(project[1])
        dropped: Set[str] = set()
        for node in after:
            if node[0] == "drop":
                dropped |= set(node[1])
        if leaked - dropped:
            report(
                RETENTION_BROKEN,
                Severity.ERROR,
                f"{what} carried {sorted(leaked - dropped)} past the sort "
                "without a matching drop (they would leak into the result)",
            )
