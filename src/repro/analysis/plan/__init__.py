"""Plan-level static analyzer.

Three passes over a planned query, mirroring the kernel analyzer's
structure-gates-the-rest design (:mod:`repro.analysis.analyzer`):

1. :mod:`schema_flow` -- ``PLAN*``: every column an operator consumes is
   produced upstream; sort keys survive to the Sort; zone pushdown is a
   sound subset of the adjacent filter.
2. :mod:`precision` -- ``PREC*``: DECIMAL(p, s) dataflow through joins,
   projections and aggregates; every expression's plan-level interval
   proof is cross-checked against the kernel range pass so the two proof
   layers can never silently disagree.
3. :mod:`rewrite_audit` -- ``RULE*``: a differential soundness audit of
   every optimizer rewrite, replayed from before/after snapshots.

Findings reuse :class:`repro.analysis.diagnostics.AnalysisReport`: the
``kernel`` field carries the plan label and ``instruction`` the operator
position, so ``Diagnostic.format`` output reads naturally for plans too.

The planner runs this automatically when ``OptimizerConfig.verify_plans``
is set (the default); ``strict_plan_analysis`` escalates errors to
:class:`repro.errors.PlanAnalysisError`.  ``python -m repro.analysis
--plans`` sweeps the workload queries through it in CI.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.plan.precision import check_precision_flow
from repro.analysis.plan.rewrite_audit import check_rewrites
from repro.analysis.plan.schema_flow import check_schema_flow

__all__ = [
    "analyze_plan",
    "check_schema_flow",
    "check_precision_flow",
    "check_rewrites",
]


def analyze_plan(
    plan,
    *,
    stats=None,
    jit_options=None,
    label: Optional[str] = None,
) -> AnalysisReport:
    """Run every plan-level pass over a physical plan.

    ``plan`` is a :class:`repro.engine.plan.planner.PhysicalPlan` (any
    iterable of operators with optional ``events`` works, which is what
    the seeded-bug unit tests exploit).  The precision pass runs only on
    a schema-clean plan: proving register widths for columns that do not
    exist would just duplicate every ``PLAN001`` as noise.  The rewrite
    audit is independent of both and always runs.
    """
    name = label or "plan"
    report = AnalysisReport(kernel=name)
    ops = list(plan)
    report.extend(check_schema_flow(ops, stats=stats, label=name))
    if not report.has_errors:
        report.extend(
            check_precision_flow(ops, stats, label=name, jit_options=jit_options)
        )
    report.extend(check_rewrites(getattr(plan, "events", []), stats=stats, label=name))
    return report
