"""Schema-dataflow pass over physical plans (``PLAN*`` rules).

Walks the operator chain with the set of columns available in the flowing
batch -- exactly the dictionary each operator's ``run`` would see -- and
proves that every column an operator consumes is produced upstream.  The
historical plan-shape bugs this pass turns into static findings: projection
pruning dropping a column a later Filter/Having/Sort needs, sort-key
retention failing to survive to the Sort node, and the planner pushing a
zone predicate the adjacent filter never owned.

Rules:

* ``PLAN001`` (error): an operator consumes a column that is not available
  at its position (missing from the batch, or -- with statistics -- not a
  stored column of the relation it reads).
* ``PLAN002`` (error): an ORDER BY key is missing at the Sort node (the
  sort-key-retention contract is broken).
* ``PLAN003`` (warning): a Drop names a column that is not present (a
  needed-column drop surfaces as ``PLAN001`` at the consumer instead).
* ``PLAN004`` (error): a zone predicate pushed to the scan is not a sound
  subset of the adjacent filter's literal conjuncts.
* ``PLAN005`` (error): malformed chain shape (no leading scan, or a second
  scan mid-chain).
"""

from __future__ import annotations

import re
from collections import Counter
from typing import List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.engine.plan.physical import (
    AggregateOp,
    DropOp,
    FilterOp,
    GroupAggregateOp,
    HashJoinOp,
    LimitOp,
    NestedLoopJoinOp,
    ProjectOp,
    ScanOp,
    SortOp,
)
from repro.errors import ReproError

MISSING_COLUMN = "PLAN001"
SORT_KEY_LOST = "PLAN002"
DROP_UNKNOWN = "PLAN003"
UNSOUND_ZONE_PUSHDOWN = "PLAN004"
MALFORMED_CHAIN = "PLAN005"

_JOIN_OPS = (HashJoinOp, NestedLoopJoinOp)

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _expression_columns(text: str, universe: Set[str]) -> List[str]:
    """Column names an expression consumes.

    Parses through the JIT front end (the authoritative reader); on a
    parse failure falls back to identifier tokens intersected with the
    known-column universe, so an unparseable expression still gets its
    obvious references checked instead of silently passing.
    """
    try:
        from repro.core.jit.expr_ast import column_names
        from repro.core.jit.parser import parse_expression

        return column_names(parse_expression(text))
    except ReproError:
        return sorted(set(_IDENTIFIER.findall(text)) & universe)


def check_schema_flow(plan_ops, stats=None, label: str = "") -> List[Diagnostic]:
    """Run the schema-dataflow pass; returns its diagnostics."""
    findings: List[Diagnostic] = []

    def report(
        rule: str, severity: Severity, message: str, position: Optional[int] = None
    ) -> None:
        findings.append(
            Diagnostic(rule, severity, message, kernel=label, instruction=position)
        )

    ops = list(plan_ops)
    if not ops:
        report(MALFORMED_CHAIN, Severity.ERROR, "plan has no operators")
        return findings
    if not isinstance(ops[0], ScanOp):
        report(
            MALFORMED_CHAIN,
            Severity.ERROR,
            f"plan does not start with a scan ({type(ops[0]).__name__})",
            0,
        )

    # Every column name any relation or ship set knows: the fallback
    # universe for token-based expression scanning.
    universe: Set[str] = set()
    if stats is not None:
        for table in [stats.main, *stats.joined.values()]:
            universe.update(table.column_types)
    for op in ops:
        if isinstance(op, ScanOp):
            universe.update(op.columns)
        elif isinstance(op, _JOIN_OPS):
            universe.update(op.right_columns)

    available: Set[str] = set()

    def require(column: str, what: str, position: int) -> None:
        if column not in available:
            report(
                MISSING_COLUMN,
                Severity.ERROR,
                f"{what} consumes column {column!r} which is not available "
                f"(have: {sorted(available)})",
                position,
            )

    for position, op in enumerate(ops):
        if isinstance(op, ScanOp):
            if position != 0:
                report(
                    MALFORMED_CHAIN,
                    Severity.ERROR,
                    "scan appears mid-chain (only position 0 reads storage)",
                    position,
                )
            available = set(op.columns)
            if stats is not None:
                for name in op.columns:
                    if name not in stats.main.column_types:
                        report(
                            MISSING_COLUMN,
                            Severity.ERROR,
                            f"scan reads column {name!r} which is not a stored "
                            "column of the scanned relation",
                            position,
                        )
            _check_zone_pushdown(op, ops, stats, report, position)
        elif isinstance(op, FilterOp):
            for predicate in op.predicates:
                require(predicate.column, "filter", position)
                if predicate.column_rhs is not None:
                    require(predicate.column_rhs, "filter", position)
        elif isinstance(op, _JOIN_OPS):
            require(op.join.left_column, f"join on {op.join.table}", position)
            right = stats.table(op.join.table) if stats is not None else None
            if right is not None:
                for name in (op.join.right_column, *op.right_columns):
                    if name not in right.column_types:
                        report(
                            MISSING_COLUMN,
                            Severity.ERROR,
                            f"join reads column {name!r} which is not a stored "
                            f"column of {op.join.table!r}",
                            position,
                        )
                for predicate in op.right_predicates:
                    for name in filter(None, (predicate.column, predicate.column_rhs)):
                        if name not in right.column_types:
                            report(
                                MISSING_COLUMN,
                                Severity.ERROR,
                                f"build-side predicate {predicate} reads column "
                                f"{name!r} which is not a stored column of "
                                f"{op.join.table!r}",
                                position,
                            )
            available |= set(op.right_columns)
        elif isinstance(op, ProjectOp):
            produced: Set[str] = set()
            for item in op.items:
                text = item.expression
                assert isinstance(text, str)
                for name in _expression_columns(text, universe):
                    require(name, f"projection {text!r}", position)
                produced.add(item.name)
            for name in op.carry:
                require(name, "projection carry", position)
            available = produced | (set(op.carry) & available)
        elif isinstance(op, AggregateOp):
            for item in op.items:
                call = item.expression
                if call.argument != "*":
                    for name in _expression_columns(call.argument, universe):
                        require(name, f"aggregate {call}", position)
            available = {item.name for item in op.items}
        elif isinstance(op, GroupAggregateOp):
            for name in op.group_by:
                require(name, "group by", position)
            for item in op.items:
                call = item.expression
                if call.argument != "*":
                    for name in _expression_columns(call.argument, universe):
                        require(name, f"aggregate {call}", position)
            available = (set(op.group_by) & available) | {
                item.name for item in op.items
            }
        elif isinstance(op, SortOp):
            for key in op.keys:
                if key.column not in available:
                    report(
                        SORT_KEY_LOST,
                        Severity.ERROR,
                        f"ORDER BY key {key.column!r} did not survive to the "
                        f"sort (have: {sorted(available)}); sort-key retention "
                        "is broken",
                        position,
                    )
        elif isinstance(op, DropOp):
            for name in op.columns:
                if name not in available:
                    report(
                        DROP_UNKNOWN,
                        Severity.WARNING,
                        f"drop names column {name!r} which is not present",
                        position,
                    )
            available -= set(op.columns)
        elif isinstance(op, LimitOp):
            pass
        else:
            report(
                MALFORMED_CHAIN,
                Severity.ERROR,
                f"unknown physical operator {type(op).__name__}",
                position,
            )
    return findings


def _check_zone_pushdown(scan: ScanOp, ops, stats, report, position: int) -> None:
    """``PLAN004``: zone predicates must be a sound subset of the filter.

    The contract of ``planner._push_zone_predicates``: the scan's pruning
    predicates are exactly a sub-multiset of the *literal* conjuncts of the
    immediately-following filter (which still computes the exact mask), and
    each names a stored column of the scanned relation -- the zone index is
    keyed by storage columns, not batch columns.
    """
    if not scan.predicates:
        return
    adjacent = ops[1] if len(ops) > 1 else None
    if not isinstance(adjacent, FilterOp) or adjacent.always_false:
        report(
            UNSOUND_ZONE_PUSHDOWN,
            Severity.ERROR,
            f"scan carries {len(scan.predicates)} zone predicate(s) but the "
            "next operator is not a live filter re-checking them",
            position,
        )
        return
    remaining = Counter(
        str(p) for p in adjacent.predicates if p.column_rhs is None
    )
    for predicate in scan.predicates:
        if predicate.column_rhs is not None:
            report(
                UNSOUND_ZONE_PUSHDOWN,
                Severity.ERROR,
                f"column-column predicate {predicate} pushed to zone maps "
                "(zone pruning is literal-only)",
                position,
            )
            continue
        if remaining[str(predicate)] <= 0:
            report(
                UNSOUND_ZONE_PUSHDOWN,
                Severity.ERROR,
                f"zone predicate {predicate} is not among the adjacent "
                "filter's literal conjuncts (pruning could drop rows the "
                "query keeps)",
                position,
            )
        else:
            remaining[str(predicate)] -= 1
        if stats is not None and predicate.column not in stats.main.column_types:
            report(
                UNSOUND_ZONE_PUSHDOWN,
                Severity.ERROR,
                f"zone predicate {predicate} names {predicate.column!r}, "
                "not a stored column of the scanned relation",
                position,
            )
