"""Interval/range analysis pass (``RANGE*`` rules).

Propagates exact ``[lo, hi]`` signed unscaled-value bounds through every
instruction, starting from column specs (a ``DECIMAL(p, s)`` column holds
values in ``[-(10**p - 1), 10**p - 1]``) and constants (a point interval).
The transfer functions below over-approximate the executor's semantics
(`repro.core.decimal.vectorized`), so every derived bound is sound: the
actual register value always lies inside the computed interval.

Three kinds of facts fall out:

* ``RANGE001`` (error): a register's interval can exceed its allocated
  ``2**(32*Lw) - 1`` word container -- the kernel can overflow, so the
  section III-B3 claim ("inference makes generated kernels overflow-free")
  would be violated.  The CI sweep proves this never fires on workload
  kernels.
* ``RANGE002`` (warning): an arithmetic result provably fits fewer 32-bit
  words than its spec allocates -- wasted register/shared-memory budget
  (cf. the occupancy model).
* ``RANGE003``/``RANGE004`` (info): a Div/Mod site where the single-word
  short-division or whole-column 64-bit fast path is statically guaranteed
  for *every* row.  These facts feed back into codegen
  (:func:`repro.analysis.analyzer.apply_fast_paths`) so the executor can
  skip the per-row size dispatch.
* ``RANGE005`` (proof object, not a diagnostic): a column whose interval
  provably fits a signed 32-bit container.  :func:`prove_narrow_container`
  exports the proof the storage layer's narrow codec demands -- the 32-bit
  "Neal trick" path is gated on it, never on a heuristic (see
  ``repro.storage.codecs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.decimal.context import WORD_BASE, WORD_BITS, DecimalSpec
from repro.core.jit import ir

POSSIBLE_OVERFLOW = "RANGE001"
OVER_ALLOCATED = "RANGE002"
SHORT_DIVISOR = "RANGE003"
NATIVE64 = "RANGE004"
NARROW_CONTAINER = "RANGE005"

#: Largest value the whole-column uint64 fast path can hold per lane.
_UINT64_MAX = (1 << 64) - 1

#: Largest magnitude a signed 32-bit narrow container can hold.
_INT32_MAX = (1 << 31) - 1

Interval = Tuple[int, int]


@dataclass(frozen=True)
class NarrowContainerProof:
    """A ``RANGE005`` fact: every value of a column fits a signed int32.

    ``source`` records what the interval came from: ``"spec"`` when the
    declared ``DECIMAL(p, s)`` bound already fits (``10**p - 1 < 2**31``),
    ``"observed"`` when the column's actual min/max interval was supplied
    (zone-map statistics).  Observed proofs are tied to the data they were
    derived from; the storage layer re-validates on every encode, so a
    later append that violates the interval raises instead of corrupting.
    """

    rule: str
    spec: DecimalSpec
    lo: int
    hi: int
    source: str


def fits_narrow_container(interval: Interval) -> bool:
    """Whether a signed interval fits the 32-bit narrow container."""
    return -_INT32_MAX - 1 <= interval[0] and interval[1] <= _INT32_MAX


def prove_narrow_container(
    spec: DecimalSpec, observed: Optional[Interval] = None
) -> Optional[NarrowContainerProof]:
    """Export a ``RANGE005`` proof for a column, or ``None``.

    The declared spec is tried first (a point the interval analysis above
    also starts from: a ``DECIMAL(p, s)`` column lies in
    ``[-(10**p - 1), 10**p - 1]``); failing that, an ``observed`` min/max
    interval -- the same facts zone maps record -- can carry the proof.
    """
    bound = spec.max_unscaled
    if fits_narrow_container((-bound, bound)):
        return NarrowContainerProof(NARROW_CONTAINER, spec, -bound, bound, "spec")
    if observed is not None and fits_narrow_container(observed):
        return NarrowContainerProof(
            NARROW_CONTAINER, spec, int(observed[0]), int(observed[1]), "observed"
        )
    return None


def _words_for(magnitude: int) -> int:
    """32-bit words needed to hold an unsigned magnitude."""
    if magnitude <= 0:
        return 1
    return (magnitude.bit_length() + WORD_BITS - 1) // WORD_BITS


def _container_limit(spec: DecimalSpec) -> int:
    """Largest magnitude the fixed ``Lw``-word register array can hold."""
    return (1 << (WORD_BITS * spec.words)) - 1


def _magnitude(interval: Interval) -> int:
    lo, hi = interval
    return max(abs(lo), abs(hi))


def _min_divisor_magnitude(interval: Interval) -> int:
    """Smallest *nonzero* magnitude a divisor interval can take.

    Zero divisors raise at runtime before any quotient is produced, so the
    quotient bound only has to cover nonzero divisors.  When the interval
    straddles zero the smallest nonzero magnitude is 1.
    """
    lo, hi = interval
    if lo > 0:
        return lo
    if hi < 0:
        return -hi
    return 1


def _mul_interval(a: Interval, b: Interval) -> Interval:
    products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    return (min(products), max(products))


def _div_interval(a: Interval, b: Interval, factor: int) -> Interval:
    """Bound of ``trunc((a * factor) / b)`` (magnitude divide, sign xor)."""
    bound = (_magnitude(a) * factor) // _min_divisor_magnitude(b)
    lo, hi = -bound, bound
    if a[0] >= 0 and b[0] >= 0:
        lo = 0
    elif a[1] <= 0 and b[0] >= 0:
        hi = 0
    elif a[0] >= 0 and b[1] <= 0:
        hi = 0
    elif a[1] <= 0 and b[1] <= 0:
        lo = 0
    return (lo, hi)


def _mod_interval(a: Interval, b: Interval) -> Interval:
    """Bound of C-style modulo: ``|r| < |b|`` and the sign follows ``a``."""
    divisor_max = max(_magnitude(b), 1)
    bound = min(_magnitude(a), divisor_max - 1)
    if a[0] >= 0:
        return (0, bound)
    if a[1] <= 0:
        return (-bound, 0)
    return (-bound, bound)


def _rescale_interval(interval: Interval, src_scale: int, dst_scale: int) -> Interval:
    """Bound of any rounding mode: ``floor(x) <= round*(x) <= ceil(x)``.

    All four modes (trunc/round/ceil/floor) are monotone and bracketed by
    floor/ceil of the exact rational, so ``[floor(lo/D), ceil(hi/D)]`` is a
    sound (if slightly loose) interval for every mode at once.
    """
    drop = src_scale - dst_scale
    if drop == 0:
        return interval
    if drop < 0:
        factor = 10**-drop
        return (interval[0] * factor, interval[1] * factor)
    divisor = 10**drop
    lo = interval[0] // divisor  # floor
    hi = -((-interval[1]) // divisor)  # ceil
    return (lo, hi)


def _abs_interval(interval: Interval) -> Interval:
    lo, hi = interval
    if lo >= 0:
        return (lo, hi)
    if hi <= 0:
        return (-hi, -lo)
    return (0, max(-lo, hi))


def analyze_ranges(
    kernel: ir.KernelIR,
) -> Tuple[List[Diagnostic], Dict[int, str]]:
    """Run the interval analysis over a structurally valid kernel.

    Returns ``(diagnostics, fast_paths)`` where ``fast_paths`` maps an
    instruction index of a Div/Mod site to the statically guaranteed route
    (``"native64"`` or ``"short"``).
    """
    findings: List[Diagnostic] = []
    fast_paths: Dict[int, str] = {}
    intervals: Dict[int, Interval] = {}
    scales: Dict[int, int] = {}

    def report(rule: str, severity: Severity, message: str, position: int) -> None:
        findings.append(
            Diagnostic(rule, severity, message, kernel=kernel.name, instruction=position)
        )

    for position, instruction in enumerate(kernel.instructions):
        interval: Optional[Interval] = None
        arithmetic = False

        if isinstance(instruction, ir.LoadColumn):
            bound = instruction.spec.max_unscaled
            interval = (-bound, bound)
        elif isinstance(instruction, ir.LoadConst):
            value = -instruction.unscaled if instruction.negative else instruction.unscaled
            interval = (value, value)
        elif isinstance(instruction, ir.Align):
            src = intervals[instruction.src]
            factor = 10**instruction.exponent
            interval = (src[0] * factor, src[1] * factor)
            arithmetic = True
        elif isinstance(instruction, ir.AddOp):
            a, b = intervals[instruction.a], intervals[instruction.b]
            interval = (a[0] + b[0], a[1] + b[1])
            arithmetic = True
        elif isinstance(instruction, ir.SubOp):
            a, b = intervals[instruction.a], intervals[instruction.b]
            interval = (a[0] - b[1], a[1] - b[0])
            arithmetic = True
        elif isinstance(instruction, ir.NegOp):
            src = intervals[instruction.src]
            interval = (-src[1], -src[0])
        elif isinstance(instruction, ir.MulOp):
            interval = _mul_interval(intervals[instruction.a], intervals[instruction.b])
            arithmetic = True
        elif isinstance(instruction, ir.DivOp):
            a, b = intervals[instruction.a], intervals[instruction.b]
            factor = 10**instruction.prescale
            interval = _div_interval(a, b, factor)
            arithmetic = True
            path = _division_fast_path(a, b, factor)
            if path is not None:
                fast_paths[position] = path
                _report_fast_path(report, path, b, position)
        elif isinstance(instruction, ir.ModOp):
            a, b = intervals[instruction.a], intervals[instruction.b]
            interval = _mod_interval(a, b)
            arithmetic = True
            path = _division_fast_path(a, b, 1)
            if path is not None:
                fast_paths[position] = path
                _report_fast_path(report, path, b, position)
        elif isinstance(instruction, ir.AbsOp):
            interval = _abs_interval(intervals[instruction.src])
        elif isinstance(instruction, ir.SignOp):
            src = intervals[instruction.src]
            interval = (-1 if src[0] < 0 else 0, 1 if src[1] > 0 else 0)
        elif isinstance(instruction, ir.RescaleOp):
            interval = _rescale_interval(
                intervals[instruction.src],
                scales[instruction.src],
                instruction.spec.scale,
            )
            arithmetic = True
        elif isinstance(instruction, ir.StoreResult):
            stored = intervals[instruction.src]
            limit = _container_limit(kernel.result_spec)
            if _magnitude(stored) > limit:
                report(
                    POSSIBLE_OVERFLOW,
                    Severity.ERROR,
                    f"stored result bound {_magnitude(stored)} exceeds the "
                    f"{kernel.result_spec.words}-word result container",
                    position,
                )
            continue
        else:  # pragma: no cover - structure pass rejects unknown instructions
            continue

        intervals[instruction.dst] = interval
        scales[instruction.dst] = instruction.spec.scale
        magnitude = _magnitude(interval)
        limit = _container_limit(instruction.spec)
        if magnitude > limit:
            report(
                POSSIBLE_OVERFLOW,
                Severity.ERROR,
                f"r{instruction.dst} bound {magnitude} exceeds its "
                f"{instruction.spec.words}-word container "
                f"({type(instruction).__name__}, {instruction.spec})",
                position,
            )
            # Clamp so downstream bounds stay meaningful: the executor wraps
            # (or raises) at the container, never exceeds it.
            intervals[instruction.dst] = (-limit, limit)
        elif arithmetic and _words_for(magnitude) < instruction.spec.words:
            report(
                OVER_ALLOCATED,
                Severity.WARNING,
                f"r{instruction.dst} provably fits {_words_for(magnitude)} "
                f"word(s) but {instruction.spec} allocates {instruction.spec.words}",
                position,
            )

    return findings, fast_paths


def _division_fast_path(a: Interval, b: Interval, factor: int) -> Optional[str]:
    """The statically guaranteed Div/Mod route, if any.

    Mirrors the dynamic dispatch in ``vectorized.div``/``mod``: the
    whole-column uint64 route needs the pre-scaled dividend *and* the
    divisor to fit uint64 in every row; the short route needs every divisor
    to fit a single 32-bit word.
    """
    dividend_max = _magnitude(a)
    divisor_max = _magnitude(b)
    if (
        factor <= _UINT64_MAX
        and dividend_max <= _UINT64_MAX // factor
        and divisor_max <= _UINT64_MAX
    ):
        return "native64"
    if divisor_max < WORD_BASE:
        return "short"
    return None


def _report_fast_path(report, path: str, b: Interval, position: int) -> None:
    if path == "native64":
        report(
            NATIVE64,
            Severity.INFO,
            "whole-column 64-bit divide statically guaranteed "
            "(pre-scaled dividend and divisor both fit uint64)",
            position,
        )
    else:
        report(
            SHORT_DIVISOR,
            Severity.INFO,
            f"single-word short division statically guaranteed "
            f"(divisor magnitude <= {_magnitude(b)} < 2**32)",
            position,
        )
