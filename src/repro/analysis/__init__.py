"""Static analysis of generated kernel IR.

Multi-pass analyzer proving the paper's section III-B3 soundness claim
(inferred specs make generated kernels overflow-free) and linting the
optimiser's output.  See DESIGN.md for the pass order, the rule id table
and the soundness argument; ``python -m repro.analysis`` sweeps every
workload kernel and is wired into CI as a gate.
"""

from repro.analysis.analyzer import analyze_kernel, apply_fast_paths
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.ranges import NarrowContainerProof, prove_narrow_container

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "NarrowContainerProof",
    "Severity",
    "analyze_kernel",
    "apply_fast_paths",
    "prove_narrow_container",
]
