"""Entry point: ``python -m repro.analysis`` runs the workload sweep."""

import sys

from repro.analysis.sweep import main

if __name__ == "__main__":
    sys.exit(main())
