"""Structural verification pass (``STRUCT*`` rules).

The original ``verify_kernel`` checks, reworked to *collect* every
violation through the diagnostics framework instead of raising on the
first one: registers defined before use, instruction specs consistent with
the operation semantics (alignment exponents match the scale change,
add/sub operands scale-aligned, division prescale/result scales follow the
section III-B3 rules), and exactly one result stored.

Later passes (ranges, lifetime) assume a structurally valid kernel, so the
analyzer driver skips them when this pass reports errors.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir

#: Rule ids, keyed by what went wrong (the DESIGN.md table mirrors this).
UNDEFINED_REGISTER = "STRUCT001"
UNREGISTERED_COLUMN = "STRUCT002"
BAD_CONSTANT = "STRUCT003"
BAD_ALIGN = "STRUCT004"
UNALIGNED_ADD = "STRUCT005"
BAD_MUL_SCALE = "STRUCT006"
BAD_DIV_SCALE = "STRUCT007"
BAD_MOD_SCALE = "STRUCT008"
BAD_FUNC_SPEC = "STRUCT009"
BAD_STORE = "STRUCT010"
UNKNOWN_INSTRUCTION = "STRUCT011"


def check_structure(kernel: ir.KernelIR) -> List[Diagnostic]:
    """Collect every structural violation in a kernel (empty = valid)."""
    findings: List[Diagnostic] = []
    defined: Dict[int, DecimalSpec] = {}
    stores = 0

    def report(rule: str, message: str, position: int) -> None:
        findings.append(
            Diagnostic(rule, Severity.ERROR, message, kernel=kernel.name, instruction=position)
        )

    def require(register: int, instruction: ir.Instruction, position: int) -> Optional[DecimalSpec]:
        if register not in defined:
            report(
                UNDEFINED_REGISTER,
                f"{type(instruction).__name__} reads undefined register r{register}",
                position,
            )
            return None
        return defined[register]

    for position, instruction in enumerate(kernel.instructions):
        if isinstance(instruction, ir.LoadColumn):
            if instruction.column not in kernel.input_columns:
                report(
                    UNREGISTERED_COLUMN,
                    f"LoadColumn references unregistered column {instruction.column!r}",
                    position,
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.LoadConst):
            if instruction.unscaled < 0:
                report(BAD_CONSTANT, "LoadConst magnitude must be non-negative", position)
            elif not instruction.spec.fits(instruction.unscaled):
                report(
                    BAD_CONSTANT,
                    f"constant {instruction.unscaled} does not fit {instruction.spec}",
                    position,
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.Align):
            source = require(instruction.src, instruction, position)
            if instruction.exponent <= 0:
                report(BAD_ALIGN, "Align exponent must be positive", position)
            elif source is not None and (
                source.scale + instruction.exponent != instruction.spec.scale
            ):
                report(
                    BAD_ALIGN,
                    f"Align scale mismatch: {source.scale} + {instruction.exponent} "
                    f"!= {instruction.spec.scale}",
                    position,
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, (ir.AddOp, ir.SubOp)):
            left = require(instruction.a, instruction, position)
            right = require(instruction.b, instruction, position)
            if (
                left is not None
                and right is not None
                and (left.scale != right.scale or left.scale != instruction.spec.scale)
            ):
                report(
                    UNALIGNED_ADD,
                    f"{type(instruction).__name__} operands not scale-aligned: "
                    f"{left.scale}/{right.scale} -> {instruction.spec.scale}",
                    position,
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.NegOp):
            require(instruction.src, instruction, position)
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.MulOp):
            left = require(instruction.a, instruction, position)
            right = require(instruction.b, instruction, position)
            if (
                left is not None
                and right is not None
                and left.scale + right.scale != instruction.spec.scale
            ):
                report(
                    BAD_MUL_SCALE,
                    f"MulOp scale mismatch: {left.scale} + {right.scale} "
                    f"!= {instruction.spec.scale}",
                    position,
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.DivOp):
            dividend = require(instruction.a, instruction, position)
            divisor = require(instruction.b, instruction, position)
            if divisor is not None and instruction.prescale != divisor.scale + 4:
                report(
                    BAD_DIV_SCALE,
                    f"DivOp prescale {instruction.prescale} != divisor scale "
                    f"{divisor.scale} + 4",
                    position,
                )
            if dividend is not None and instruction.spec.scale != dividend.scale + 4:
                report(
                    BAD_DIV_SCALE,
                    f"DivOp result scale {instruction.spec.scale} != dividend "
                    f"scale {dividend.scale} + 4",
                    position,
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.ModOp):
            left = require(instruction.a, instruction, position)
            right = require(instruction.b, instruction, position)
            if (
                left is not None
                and right is not None
                and (left.scale or right.scale or instruction.spec.scale)
            ):
                report(BAD_MOD_SCALE, "ModOp requires integer (scale-0) operands", position)
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.AbsOp):
            source = require(instruction.src, instruction, position)
            if source is not None and source != instruction.spec:
                report(BAD_FUNC_SPEC, "AbsOp must preserve its operand's spec", position)
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.SignOp):
            require(instruction.src, instruction, position)
            if instruction.spec != DecimalSpec(1, 0):
                report(BAD_FUNC_SPEC, "SignOp result must be DECIMAL(1, 0)", position)
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.RescaleOp):
            require(instruction.src, instruction, position)
            if instruction.mode not in ("trunc", "round", "ceil", "floor"):
                report(BAD_FUNC_SPEC, f"unknown rescale mode {instruction.mode!r}", position)
            elif instruction.mode in ("ceil", "floor") and instruction.spec.scale != 0:
                report(BAD_FUNC_SPEC, "CEIL/FLOOR results must have scale 0", position)
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.StoreResult):
            stored = require(instruction.src, instruction, position)
            if stored is not None and stored != kernel.result_spec:
                report(
                    BAD_STORE,
                    f"stored spec {stored} != kernel result spec {kernel.result_spec}",
                    position,
                )
            stores += 1
        else:
            report(
                UNKNOWN_INSTRUCTION,
                f"unknown instruction {type(instruction).__name__}",
                position,
            )

    if stores != 1:
        findings.append(
            Diagnostic(
                BAD_STORE,
                Severity.ERROR,
                f"kernel must store exactly one result, found {stores}",
                kernel=kernel.name,
            )
        )
    return findings
