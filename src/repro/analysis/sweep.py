"""Repo-wide analysis sweep: every workload kernel through the analyzer.

``python -m repro.analysis`` compiles every kernel the TPC-H, Figure 1,
RSA and trigonometry workloads generate (via the same planner/EXPLAIN path
real queries take, so aggregation-argument kernels are included) and
prints their diagnostics.  The process exits non-zero when any kernel has
an error-severity finding -- CI runs this as the overflow-freedom gate for
the paper's section III-B3 claim.

Relations are built tiny (the analyzer only reads specs, never data), so
the sweep is compile-bound and fast.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.analysis.diagnostics import AnalysisReport, Severity

#: Rows per generated relation: the analyzer is static, data size is moot.
_SWEEP_ROWS = 16


@dataclass
class SweptKernel:
    """One analyzed kernel of one workload."""

    workload: str
    kernel: str
    expression: str
    report: AnalysisReport


def _database(*relations) -> "Database":
    from repro.engine import Database

    db = Database(simulate_rows=10_000_000)
    for relation in relations:
        db.register(relation)
    return db


def _explain_kernels(workload: str, db, sql: str) -> Iterator[SweptKernel]:
    for plan in db.explain(sql).kernels:
        report = plan.diagnostics
        if report is None:  # pragma: no cover - pipeline always attaches one
            report = AnalysisReport(kernel=plan.name)
        yield SweptKernel(workload, plan.name, plan.expression.strip(), report)


def iter_workload_kernels(workloads: Optional[Sequence[str]] = None) -> Iterator[SweptKernel]:
    """Yield every workload kernel's analysis report.

    ``workloads`` filters by family name (``figure1``, ``tpch``, ``rsa``,
    ``trig``); ``None`` sweeps everything.
    """
    selected = set(workloads) if workloads else {"figure1", "tpch", "rsa", "trig"}

    if "figure1" in selected:
        from repro.workloads import figure1

        for config in figure1.CONFIGURATIONS:
            db = _database(figure1.build_relation(config, rows=_SWEEP_ROWS))
            yield from _explain_kernels(
                f"figure1/{config}", db, "SELECT SUM(c1 + c2) FROM R"
            )

    if "tpch" in selected:
        from repro.storage import tpch
        from repro.workloads import tpch_queries

        lineitem_db = _database(tpch.lineitem(rows=_SWEEP_ROWS, seed=11))
        yield from _explain_kernels("tpch/q1", lineitem_db, tpch_queries.Q1_SQL)
        yield from _explain_kernels("tpch/q6", lineitem_db, tpch_queries.Q6_SQL)
        q3_db = _database(
            tpch.lineitem_with_orderkeys(rows=_SWEEP_ROWS, seed=7, order_count=8),
            tpch.orders(rows=8, seed=17),
            tpch.customer(rows=4, seed=19),
        )
        yield from _explain_kernels("tpch/q3", q3_db, tpch_queries.Q3_SQL)

    if "rsa" in selected:
        from repro.workloads import rsa

        for length in sorted(rsa.MESSAGE_PRECISION):
            workload = rsa.build_workload(length, rows=_SWEEP_ROWS)
            db = _database(workload.relation)
            yield from _explain_kernels(f"rsa/len{length}", db, workload.query)

    if "trig" in selected:
        from repro.storage.datagen import relation_r5
        from repro.workloads import trig

        db = _database(relation_r5(rows=_SWEEP_ROWS))
        for column in trig.INPUT_COLUMNS.values():
            for terms in trig.TERM_RANGE:
                sql = f"SELECT {trig.sine_expression(column, terms)} FROM R5"
                yield from _explain_kernels(f"trig/{column}/terms{terms}", db, sql)


def run_sweep(
    workloads: Optional[Sequence[str]] = None,
    min_severity: Severity = Severity.WARNING,
    verbose: bool = False,
) -> int:
    """Sweep, print a summary, return the process exit code (0 = clean)."""
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    cutoff = order[min_severity]
    swept: List[SweptKernel] = list(iter_workload_kernels(workloads))
    errors = warnings = infos = 0

    for item in swept:
        report = item.report
        errors += len(report.errors)
        warnings += len(report.warnings)
        infos += len(report.infos)
        shown = [d for d in report.diagnostics if order[d.severity] <= cutoff]
        if verbose or shown:
            print(f"{item.workload} :: {item.kernel}: {item.expression}")
        for diagnostic in shown:
            print(f"  {diagnostic.format()}")

    print(
        f"analyzed {len(swept)} kernel(s): "
        f"{errors} error(s), {warnings} warning(s), {infos} info(s)"
    )
    if errors:
        print("FAIL: the range/lifetime analyzer found errors")
        return 1
    print("OK: every workload kernel is provably overflow-free")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically analyze every workload kernel (CI gate).",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=["figure1", "tpch", "rsa", "trig"],
        help="restrict to one workload family (repeatable; default: all)",
    )
    parser.add_argument(
        "--min-severity",
        choices=["error", "warning", "info"],
        default="warning",
        help="lowest severity to print per kernel (default: warning)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print every kernel, including clean ones",
    )
    arguments = parser.parse_args(argv)
    return run_sweep(
        workloads=arguments.workload,
        min_severity=Severity(arguments.min_severity),
        verbose=arguments.verbose,
    )
