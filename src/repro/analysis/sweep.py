"""Repo-wide analysis sweep: every workload kernel through the analyzer.

``python -m repro.analysis`` compiles every kernel the TPC-H, Figure 1,
RSA and trigonometry workloads generate (via the same planner/EXPLAIN path
real queries take, so aggregation-argument kernels are included) and
prints their diagnostics.  The process exits non-zero when any kernel has
an error-severity finding -- CI runs this as the overflow-freedom gate for
the paper's section III-B3 claim.

``python -m repro.analysis --plans`` sweeps *plans* instead of kernels:
every TPC-H workload query is planned under optimizer on/off and under
each storage-codec variant, and the plan-level analyzer's
``PLAN*``/``PREC*``/``RULE*`` findings are gated the same way -- the
schema/precision/rewrite-soundness counterpart of the kernel gate.

Relations are built tiny (the analyzer only reads specs, never data), so
both sweeps are compile-bound and fast.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from repro.analysis.diagnostics import AnalysisReport, Severity

#: Rows per generated relation: the analyzer is static, data size is moot.
_SWEEP_ROWS = 16

#: Storage-codec variants the plan sweep re-plans every query under:
#: the plain compact layout, the order-preserving D_inf codec (zone-map
#: friendly), and automatic per-column selection.
PLAN_CODEC_VARIANTS = ("plain", "dinf", "auto")


@dataclass
class SweptKernel:
    """One analyzed kernel of one workload."""

    workload: str
    kernel: str
    expression: str
    report: AnalysisReport


def _database(*relations) -> "Database":
    from repro.engine import Database

    db = Database(simulate_rows=10_000_000)
    for relation in relations:
        db.register(relation)
    return db


def _explain_kernels(workload: str, db, sql: str) -> Iterator[SweptKernel]:
    for plan in db.explain(sql).kernels:
        report = plan.diagnostics
        if report is None:  # pragma: no cover - pipeline always attaches one
            report = AnalysisReport(kernel=plan.name)
        yield SweptKernel(workload, plan.name, plan.expression.strip(), report)


def iter_workload_kernels(workloads: Optional[Sequence[str]] = None) -> Iterator[SweptKernel]:
    """Yield every workload kernel's analysis report.

    ``workloads`` filters by family name (``figure1``, ``tpch``, ``rsa``,
    ``trig``); ``None`` sweeps everything.
    """
    selected = set(workloads) if workloads else {"figure1", "tpch", "rsa", "trig"}

    if "figure1" in selected:
        from repro.workloads import figure1

        for config in figure1.CONFIGURATIONS:
            db = _database(figure1.build_relation(config, rows=_SWEEP_ROWS))
            yield from _explain_kernels(
                f"figure1/{config}", db, "SELECT SUM(c1 + c2) FROM R"
            )

    if "tpch" in selected:
        from repro.storage import tpch
        from repro.workloads import tpch_queries

        lineitem_db = _database(tpch.lineitem(rows=_SWEEP_ROWS, seed=11))
        yield from _explain_kernels("tpch/q1", lineitem_db, tpch_queries.Q1_SQL)
        yield from _explain_kernels("tpch/q6", lineitem_db, tpch_queries.Q6_SQL)
        q3_db = _database(
            tpch.lineitem_with_orderkeys(rows=_SWEEP_ROWS, seed=7, order_count=8),
            tpch.orders(rows=8, seed=17),
            tpch.customer(rows=4, seed=19),
        )
        yield from _explain_kernels("tpch/q3", q3_db, tpch_queries.Q3_SQL)

    if "rsa" in selected:
        from repro.workloads import rsa

        for length in sorted(rsa.MESSAGE_PRECISION):
            workload = rsa.build_workload(length, rows=_SWEEP_ROWS)
            db = _database(workload.relation)
            yield from _explain_kernels(f"rsa/len{length}", db, workload.query)

    if "trig" in selected:
        from repro.storage.datagen import relation_r5
        from repro.workloads import trig

        db = _database(relation_r5(rows=_SWEEP_ROWS))
        for column in trig.INPUT_COLUMNS.values():
            for terms in trig.TERM_RANGE:
                sql = f"SELECT {trig.sine_expression(column, terms)} FROM R5"
                yield from _explain_kernels(f"trig/{column}/terms{terms}", db, sql)


def run_sweep(
    workloads: Optional[Sequence[str]] = None,
    min_severity: Severity = Severity.WARNING,
    verbose: bool = False,
    max_warnings: Optional[int] = None,
) -> int:
    """Sweep, print a summary, return the process exit code (0 = clean).

    ``max_warnings`` turns warning creep into a failure too: the sweep
    exits non-zero when the total warning count exceeds the budget, so a
    change that silently doubles the advisory findings trips CI instead
    of scrolling past.
    """
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    cutoff = order[min_severity]
    swept: List[SweptKernel] = list(iter_workload_kernels(workloads))
    errors = warnings = infos = 0

    for item in swept:
        report = item.report
        errors += len(report.errors)
        warnings += len(report.warnings)
        infos += len(report.infos)
        shown = [d for d in report.diagnostics if order[d.severity] <= cutoff]
        if verbose or shown:
            print(f"{item.workload} :: {item.kernel}: {item.expression}")
        for diagnostic in shown:
            print(f"  {diagnostic.format()}")

    print(
        f"analyzed {len(swept)} kernel(s): "
        f"{errors} error(s), {warnings} warning(s), {infos} info(s)"
    )
    if errors:
        print("FAIL: the range/lifetime analyzer found errors")
        return 1
    if max_warnings is not None and warnings > max_warnings:
        print(f"FAIL: {warnings} warning(s) exceed the budget of {max_warnings}")
        return 1
    print("OK: every workload kernel is provably overflow-free")
    return 0


# --------------------------------------------------------------- plan sweep


@dataclass
class SweptPlan:
    """One analyzed (query, codec, optimizer) combination of the plan sweep."""

    workload: str
    codec: str
    optimizer: str
    operators: int
    kernels: int
    report: AnalysisReport


def _with_codec_variant(relation, variant: str):
    """Re-encode a relation's decimal columns under one codec variant."""
    from repro.storage.codecs import OrderPreservingCodec, choose_codec
    from repro.storage.schema import is_decimal

    if variant == "plain":
        return relation
    codecs = {}
    for column in relation.columns:
        if not is_decimal(column.column_type):
            continue
        if variant == "dinf":
            codecs[column.name] = OrderPreservingCodec()
        else:  # auto: smallest wire size the column qualifies for
            codecs[column.name] = choose_codec(
                column.column_type.spec, column.unscaled()
            )
    return relation.with_codecs(codecs)


def iter_plan_reports(
    codecs: Sequence[str] = PLAN_CODEC_VARIANTS,
) -> Iterator[SweptPlan]:
    """Plan-analyze every TPC-H workload query x optimizer x codec variant.

    Each query is planned with the optimizer on and off under every
    storage-codec variant; the planner attaches the plan analyzer's report
    (``OptimizerConfig.verify_plans`` is on in both configurations), which
    the caller gates on.
    """
    from repro.engine.plan.cost import OptimizerConfig
    from repro.storage import tpch
    from repro.workloads import tpch_queries

    modes = {"on": OptimizerConfig(), "off": OptimizerConfig.off()}
    for codec in codecs:

        def build(*relations):
            return _database(*(_with_codec_variant(r, codec) for r in relations))

        lineitem_db = build(tpch.lineitem(rows=_SWEEP_ROWS, seed=11))
        q3_db = build(
            tpch.lineitem_with_orderkeys(rows=_SWEEP_ROWS, seed=7, order_count=8),
            tpch.orders(rows=8, seed=17),
            tpch.customer(rows=4, seed=19),
        )
        multi_db = build(
            tpch.lineitem_with_orderkeys(rows=40, seed=7, order_count=8),
            tpch.orders(rows=8, seed=17),
            tpch.customer(rows=4, seed=19),
            tpch.nation(),
        )
        targets = [
            ("tpch/q1", lineitem_db, tpch_queries.Q1_SQL),
            ("tpch/q6", lineitem_db, tpch_queries.Q6_SQL),
            ("tpch/q3", q3_db, tpch_queries.Q3_SQL),
            ("tpch/q5", multi_db, tpch_queries.Q5_SQL),
            ("tpch/q10", multi_db, tpch_queries.Q10_SQL),
        ]
        for workload, db, sql in targets:
            for mode, config in modes.items():
                explained = db.explain(sql, optimizer=config)
                report = explained.plan_diagnostics
                if report is None:  # pragma: no cover - planner always attaches one
                    report = AnalysisReport(kernel=workload)
                yield SweptPlan(
                    workload,
                    codec,
                    mode,
                    len(explained.operators),
                    len(explained.kernels),
                    report,
                )


def _write_plan_artifact(path: Path, swept: Sequence[SweptPlan]) -> None:
    """Write the plan sweep as a harness-shaped bench artifact."""
    payload = {
        "id": path.stem,
        "title": "Plan-level static analysis sweep (TPC-H x optimizer x codec)",
        "headers": [
            "workload",
            "codec",
            "optimizer",
            "operators",
            "kernels",
            "errors",
            "warnings",
            "infos",
        ],
        "rows": [
            [
                item.workload,
                item.codec,
                item.optimizer,
                item.operators,
                item.kernels,
                len(item.report.errors),
                len(item.report.warnings),
                len(item.report.infos),
            ]
            for item in swept
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def run_plan_sweep(
    min_severity: Severity = Severity.WARNING,
    verbose: bool = False,
    max_warnings: Optional[int] = None,
    output: Optional[Path] = None,
) -> int:
    """Sweep every workload plan; returns the process exit code (0 = clean)."""
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    cutoff = order[min_severity]
    swept: List[SweptPlan] = list(iter_plan_reports())
    errors = warnings = infos = 0

    for item in swept:
        report = item.report
        errors += len(report.errors)
        warnings += len(report.warnings)
        infos += len(report.infos)
        shown = [d for d in report.diagnostics if order[d.severity] <= cutoff]
        if verbose or shown:
            print(
                f"{item.workload} [codec={item.codec}, optimizer={item.optimizer}]: "
                f"{item.operators} operator(s), {item.kernels} kernel(s)"
            )
        for diagnostic in shown:
            print(f"  {diagnostic.format()}")

    if output is not None:
        _write_plan_artifact(output, swept)
    print(
        f"analyzed {len(swept)} plan(s): "
        f"{errors} error(s), {warnings} warning(s), {infos} info(s)"
    )
    if errors:
        print("FAIL: the plan analyzer found errors")
        return 1
    if max_warnings is not None and warnings > max_warnings:
        print(f"FAIL: {warnings} warning(s) exceed the budget of {max_warnings}")
        return 1
    print("OK: every workload plan is schema-, precision- and rewrite-sound")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically analyze every workload kernel (CI gate).",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=["figure1", "tpch", "rsa", "trig"],
        help="restrict to one workload family (repeatable; default: all)",
    )
    parser.add_argument(
        "--min-severity",
        choices=["error", "warning", "info"],
        default="warning",
        help="lowest severity to print per kernel (default: warning)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print every kernel, including clean ones",
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="sweep plan-level analysis (PLAN*/PREC*/RULE*) instead of kernels",
    )
    parser.add_argument(
        "--max-warnings",
        type=int,
        default=None,
        metavar="N",
        help="fail when total warnings exceed N (default: warnings don't fail)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --plans: write a bench_results-style JSON artifact here",
    )
    arguments = parser.parse_args(argv)
    if arguments.plans:
        return run_plan_sweep(
            min_severity=Severity(arguments.min_severity),
            verbose=arguments.verbose,
            max_warnings=arguments.max_warnings,
            output=arguments.output,
        )
    return run_sweep(
        workloads=arguments.workload,
        min_severity=Severity(arguments.min_severity),
        verbose=arguments.verbose,
        max_warnings=arguments.max_warnings,
    )
