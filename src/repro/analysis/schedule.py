"""Schedule/folding lint pass (``SCHED*`` rules).

Two lints over the *optimised* artefacts:

* ``SCHED001`` -- an addition chain whose term order performs more runtime
  alignments than the ascending-effective-scale order the section III-D1
  scheduler produces.  Checked on the optimised expression tree (the chain
  structure is gone by IR time): the lint simulates the left-deep running
  scale for the actual order and for the sorted order and warns only when
  sorting is *strictly* cheaper, so equal-cost permutations stay quiet.
* ``SCHED002`` -- an IR instruction computed entirely from constants, i.e.
  a constant subtree that survived constant folding (section III-D2) and
  now burns per-tuple ALU work for a value known at compile time.

Both fire by design when the corresponding optimisation is switched off --
the Figure 10/11 ablation configurations are exactly the states these
lints describe.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.jit import ir
from repro.core.jit.expr_ast import BinaryOp, Expr, NaryAdd
from repro.errors import ExpressionError

MISORDERED_SUM = "SCHED001"
CONSTANT_SUBTREE = "SCHED002"


def _chain_alignments(scales: Sequence[int]) -> int:
    """Runtime alignments of a left-deep sum over terms with these scales."""
    total = 0
    running = scales[0]
    for scale in scales[1:]:
        if scale != running:
            total += 1
            running = max(running, scale)
    return total


def _sum_terms(node: Expr) -> List[Expr]:
    """Flatten a left-deep ``+`` chain into its terms, leftmost first."""
    if isinstance(node, BinaryOp) and node.op == "+":
        return _sum_terms(node.left) + [node.right]
    return [node]


def check_schedule_tree(tree: Expr, kernel_name: str) -> List[Diagnostic]:
    """Lint every maximal addition chain of an optimised expression tree."""
    findings: List[Diagnostic] = []

    def visit(node: Expr) -> None:
        if isinstance(node, NaryAdd) or (isinstance(node, BinaryOp) and node.op == "+"):
            # The left spine of a `+` chain is flattened here, so recursing
            # into the terms below never re-checks a sub-chain of this one;
            # a right-nested `+` term is a genuinely separate chain.
            terms = list(node.terms) if isinstance(node, NaryAdd) else _sum_terms(node)
            try:
                scales = [term.effective_scale for term in terms]
            except ExpressionError:
                scales = None  # un-annotated tree: nothing to lint
            if scales is not None and len(scales) > 2:
                actual = _chain_alignments(scales)
                best = _chain_alignments(sorted(scales))
                if actual > best:
                    findings.append(
                        Diagnostic(
                            MISORDERED_SUM,
                            Severity.WARNING,
                            f"sum term scales {scales} perform {actual} "
                            f"alignment(s); ascending order needs {best}",
                            kernel=kernel_name,
                        )
                    )
            for term in terms:
                visit(term)
            return
        for child in node.children():
            visit(child)

    visit(tree)
    return findings


def check_schedule_ir(kernel: ir.KernelIR) -> List[Diagnostic]:
    """Flag instructions whose operands derive only from constants."""
    findings: List[Diagnostic] = []
    constant_registers: set = set()

    for position, instruction in enumerate(kernel.instructions):
        if isinstance(instruction, ir.LoadConst):
            constant_registers.add(instruction.dst)
            continue
        if isinstance(instruction, (ir.LoadColumn, ir.StoreResult)):
            continue
        if isinstance(instruction, (ir.AddOp, ir.SubOp, ir.MulOp, ir.DivOp, ir.ModOp)):
            sources = (instruction.a, instruction.b)
        else:
            sources = (instruction.src,)
        if all(source in constant_registers for source in sources):
            constant_registers.add(instruction.dst)
            findings.append(
                Diagnostic(
                    CONSTANT_SUBTREE,
                    Severity.WARNING,
                    f"{type(instruction).__name__} computes a compile-time "
                    "constant every tuple (constant subtree survived folding)",
                    kernel=kernel.name,
                    instruction=position,
                )
            )
    return findings
