"""Def-use / register-lifetime analysis pass (``LIFE*`` rules).

The code generator's ``_Emitter`` hands out monotonically increasing
virtual register ids and tracks live words against a pool (temporaries are
released after their last consumer, CSE-pinned and column registers stay
live for the whole kernel).  This pass replays the kernel against that
model and checks:

* ``LIFE001`` dead store -- a computed value never read (warning: wasted
  per-tuple ALU work);
* ``LIFE002`` unused load -- a column/constant load never read (warning:
  wasted memory traffic);
* ``LIFE003`` double define -- a register id defined twice (error: the
  emitter's ids are single-assignment, a second def means a codegen bug);
* ``LIFE004`` use after release -- an instruction reads a register after
  codegen returned it to the pool (error: on real hardware the physical
  register may have been reassigned);
* ``LIFE005`` peak-words mismatch -- ``KernelIR.register_words`` disagrees
  with a replay of the def/release schedule (warning: the occupancy model
  would be fed a wrong register pressure).

``LIFE004``/``LIFE005`` need the release schedule the emitter recorded in
``KernelIR.released_after``; hand-built kernels without one skip those two
checks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.jit import ir

DEAD_STORE = "LIFE001"
UNUSED_LOAD = "LIFE002"
DOUBLE_DEFINE = "LIFE003"
USE_AFTER_RELEASE = "LIFE004"
PEAK_WORDS_MISMATCH = "LIFE005"


def _reads(instruction: ir.Instruction) -> List[int]:
    """Registers an instruction reads, in operand order."""
    if isinstance(instruction, (ir.AddOp, ir.SubOp, ir.MulOp, ir.DivOp, ir.ModOp)):
        return [instruction.a, instruction.b]
    if isinstance(
        instruction,
        (ir.Align, ir.NegOp, ir.AbsOp, ir.SignOp, ir.RescaleOp, ir.StoreResult),
    ):
        return [instruction.src]
    return []


def check_lifetime(kernel: ir.KernelIR) -> List[Diagnostic]:
    """Collect every lifetime violation in a structurally valid kernel."""
    findings: List[Diagnostic] = []
    defined_at: Dict[int, int] = {}
    define_spec: Dict[int, ir.Instruction] = {}
    used: set = set()
    released = kernel.released_after

    def report(rule: str, severity: Severity, message: str, position: int) -> None:
        findings.append(
            Diagnostic(rule, severity, message, kernel=kernel.name, instruction=position)
        )

    for position, instruction in enumerate(kernel.instructions):
        for register in _reads(instruction):
            used.add(register)
            if (
                released is not None
                and register in released
                and released[register] < position
            ):
                report(
                    USE_AFTER_RELEASE,
                    Severity.ERROR,
                    f"{type(instruction).__name__} reads r{register}, released "
                    f"after instruction {released[register]}",
                    position,
                )
        if isinstance(instruction, ir.StoreResult):
            continue  # stores reuse the result register, they define nothing
        if instruction.dst in defined_at:
            report(
                DOUBLE_DEFINE,
                Severity.ERROR,
                f"r{instruction.dst} already defined at instruction "
                f"{defined_at[instruction.dst]}",
                position,
            )
        defined_at[instruction.dst] = position
        define_spec[instruction.dst] = instruction

    for register, position in defined_at.items():
        if register in used:
            continue
        definition = define_spec[register]
        if isinstance(definition, (ir.LoadColumn, ir.LoadConst)):
            what = (
                f"column {definition.column!r}"
                if isinstance(definition, ir.LoadColumn)
                else "constant"
            )
            report(
                UNUSED_LOAD,
                Severity.WARNING,
                f"r{register} loads {what} but is never read",
                position,
            )
        else:
            report(
                DEAD_STORE,
                Severity.WARNING,
                f"r{register} ({type(definition).__name__}) is never read",
                position,
            )

    if released is not None:
        findings.extend(_check_peak_words(kernel, released))
    return findings


def _check_peak_words(
    kernel: ir.KernelIR, released: Dict[int, int]
) -> List[Diagnostic]:
    """Replay the def/release schedule and recompute peak live words."""
    releases_at: Dict[int, List[int]] = {}
    for register, position in released.items():
        releases_at.setdefault(position, []).append(register)

    words: Dict[int, int] = {}
    live = 0
    peak = 0
    for position, instruction in enumerate(kernel.instructions):
        if not isinstance(instruction, ir.StoreResult):
            words[instruction.dst] = instruction.spec.words
            live += instruction.spec.words
            peak = max(peak, live)
        for register in releases_at.get(position, ()):
            live -= words.get(register, 0)

    if peak != kernel.register_words:
        return [
            Diagnostic(
                PEAK_WORDS_MISMATCH,
                Severity.WARNING,
                f"register_words says {kernel.register_words} but the "
                f"def/release schedule peaks at {peak} words",
                kernel=kernel.name,
            )
        ]
    return []
