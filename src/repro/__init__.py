"""UltraPrecise reproduction: GPU-style arbitrary-precision DECIMAL for DBs.

A faithful Python reproduction of *UltraPrecise: A GPU-Based Framework for
Arbitrary-Precision Arithmetic in Database Systems* (ICDE 2024): the JIT
expression engine, the compact/word-aligned decimal representations, the
PTX-level operator optimisations, CGBN-style multi-threaded arithmetic,
and the full evaluation harness -- over a simulated GPU (see DESIGN.md).

Quickstart::

    from repro import Database, DecimalSpec
    from repro.storage import Column, Relation

    spec = DecimalSpec(35, 5)
    relation = Relation("r", [Column.decimal_from_unscaled("c1", [150_000_00000], spec)])
    db = Database()
    db.register(relation)
    print(db.execute("SELECT c1 * 2 FROM r").rows)
"""

import sys

# Python >= 3.11 caps int<->str conversion at 4300 digits as a DoS guard.
# An arbitrary-precision decimal library legitimately renders values far
# wider (the paper's intro cites 20,000-digit workloads), so raise the cap
# once at import.  Only ever raise it -- never lower a user's setting.
_MIN_STR_DIGITS = 1_000_000
if hasattr(sys, "set_int_max_str_digits"):
    if sys.get_int_max_str_digits() < _MIN_STR_DIGITS:
        sys.set_int_max_str_digits(_MIN_STR_DIGITS)

from repro.core.decimal import DecimalSpec, DecimalValue, DecimalVector, spec_for_len
from repro.core.jit import JitOptions, compile_expression
from repro.engine import Database, QueryResult
from repro.gpusim.streaming import StreamingConfig

__version__ = "1.0.0"

__all__ = [
    "Database",
    "DecimalSpec",
    "DecimalValue",
    "DecimalVector",
    "JitOptions",
    "QueryResult",
    "StreamingConfig",
    "compile_expression",
    "spec_for_len",
    "__version__",
]
