"""The UltraPrecise query engine: SQL -> plans -> simulated GPU execution."""

from repro.engine.session import Database, QueryResult

__all__ = ["Database", "QueryResult"]
