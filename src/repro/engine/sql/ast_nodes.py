"""SQL AST for the query subset the paper's evaluation exercises.

Queries are of the form::

    SELECT item [, item ...]
    FROM table
    [WHERE col <op> literal [AND ...]]
    [GROUP BY col [, col ...]]
    [ORDER BY col [ASC|DESC] [, ...]]

where an item is either an arithmetic expression over DECIMAL columns
(handed to the JIT engine) or an aggregate call SUM/AVG/MIN/MAX/COUNT over
such an expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

AGGREGATE_FUNCTIONS = ("SUM", "AVG", "MIN", "MAX", "COUNT")

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class AggregateCall:
    """``SUM(expr)`` etc.; ``argument`` is expression text, or "*" for COUNT."""

    function: str
    argument: str

    def __str__(self) -> str:
        return f"{self.function}({self.argument})"


@dataclass(frozen=True)
class SelectItem:
    """One output column: an expression or an aggregate, plus its alias."""

    expression: Union[str, AggregateCall]
    alias: Optional[str] = None

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.expression, AggregateCall)

    @property
    def name(self) -> str:
        if self.alias:
            return self.alias
        return str(self.expression)


@dataclass(frozen=True)
class Comparison:
    """A WHERE/HAVING conjunct: ``column <op> literal`` or ``column <op> column``.

    When ``column_rhs`` is set the comparison is between two columns and
    ``literal`` is ignored.
    """

    column: str
    op: str
    literal: Union[int, float, str, None] = None
    column_rhs: Optional[str] = None

    def __str__(self) -> str:
        if self.column_rhs is not None:
            return f"{self.column} {self.op} {self.column_rhs}"
        literal = f"'{self.literal}'" if isinstance(self.literal, str) else self.literal
        return f"{self.column} {self.op} {literal}"


@dataclass(frozen=True)
class Join:
    """An inner equi-join: ``JOIN <table> ON <left_col> = <right_col>``."""

    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class OrderKey:
    """One ORDER BY key."""

    column: str
    ascending: bool = True


@dataclass
class Query:
    """A parsed SELECT statement."""

    select_items: List[SelectItem]
    table: str
    joins: List[Join] = field(default_factory=list)
    where: List[Comparison] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    having: List[Comparison] = field(default_factory=list)
    order_by: List[OrderKey] = field(default_factory=list)
    limit: Optional[int] = None

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.select_items)

    @property
    def aggregates(self) -> List[SelectItem]:
        return [item for item in self.select_items if item.is_aggregate]

    @property
    def projections(self) -> List[SelectItem]:
        return [item for item in self.select_items if not item.is_aggregate]
