"""Parser for the SQL subset (see ``ast_nodes`` for the grammar)."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.engine.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    COMPARISON_OPS,
    AggregateCall,
    Comparison,
    Join,
    OrderKey,
    Query,
    SelectItem,
)
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'[^']*')"
    r"|(?P<number>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><>|<=|>=|[=<>])"
    r"|(?P<punct>[(),;*%+\-/])"
    r")"
)

_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "AND",
    "AS",
    "ASC",
    "DESC",
    "LIMIT",
    "JOIN",
    "ON",
    "HAVING",
}


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if not match or match.end() == position:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise ParseError(f"unexpected character in SQL: {remainder[0]!r}")
            for kind in ("string", "number", "ident", "op", "punct"):
                value = match.group(kind)
                if value is not None:
                    self.items.append((kind, value))
                    break
            position = match.end()
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.items[self.index] if self.index < len(self.items) else None

    def advance(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of SQL: {self.text!r}")
        self.index += 1
        return token

    def is_keyword(self, word: str) -> bool:
        token = self.peek()
        return bool(token and token[0] == "ident" and token[1].upper() == word)

    def expect_keyword(self, word: str) -> None:
        if not self.is_keyword(word):
            token = self.peek()
            raise ParseError(f"expected {word}, got {token[1] if token else 'end of input'!r}")
        self.advance()


def parse_query(sql: str) -> Query:
    """Parse a SELECT statement into a :class:`Query`."""
    tokens = _Tokens(sql.strip().rstrip(";"))
    tokens.expect_keyword("SELECT")
    select_items = _parse_select_list(tokens)
    tokens.expect_keyword("FROM")
    kind, table = tokens.advance()
    if kind != "ident":
        raise ParseError(f"expected table name, got {table!r}")

    joins: List[Join] = []
    where: List[Comparison] = []
    group_by: List[str] = []
    having: List[Comparison] = []
    order_by: List[OrderKey] = []
    limit = None
    # Clause-order state machine: each clause carries a rank, and a clause
    # at or below the rank already consumed is rejected -- so a duplicate
    # (`WHERE .. WHERE ..`) or out-of-order (`GROUP BY .. WHERE ..`) clause
    # raises instead of silently overwriting the earlier parse.  JOIN
    # repeats freely at rank 0; everything above appears at most once.
    clause_rank = {"JOIN": 0, "WHERE": 1, "GROUP BY": 2, "HAVING": 3, "ORDER BY": 4, "LIMIT": 5}
    seen_rank = -1
    seen_clauses: List[str] = []

    def enter_clause(clause: str) -> None:
        nonlocal seen_rank
        rank = clause_rank[clause]
        if clause != "JOIN" and clause in seen_clauses:
            raise ParseError(f"duplicate {clause} clause")
        if rank < seen_rank:
            blocker = next(c for c in reversed(seen_clauses) if clause_rank[c] > rank)
            raise ParseError(f"{clause} clause must come before {blocker}")
        seen_rank = rank
        seen_clauses.append(clause)

    while tokens.peek() is not None:
        if tokens.is_keyword("JOIN"):
            enter_clause("JOIN")
            tokens.advance()
            joins.append(_parse_join(tokens))
        elif tokens.is_keyword("WHERE"):
            enter_clause("WHERE")
            tokens.advance()
            where = _parse_where(tokens)
        elif tokens.is_keyword("GROUP"):
            enter_clause("GROUP BY")
            tokens.advance()
            tokens.expect_keyword("BY")
            group_by = _parse_column_list(tokens)
        elif tokens.is_keyword("HAVING"):
            enter_clause("HAVING")
            tokens.advance()
            having = _parse_where(tokens)
        elif tokens.is_keyword("ORDER"):
            enter_clause("ORDER BY")
            tokens.advance()
            tokens.expect_keyword("BY")
            order_by = _parse_order_list(tokens)
        elif tokens.is_keyword("LIMIT"):
            enter_clause("LIMIT")
            tokens.advance()
            kind, count = tokens.advance()
            if kind != "number" or "." in count:
                raise ParseError(f"LIMIT needs an integer, got {count!r}")
            limit = int(count)
        else:
            token = tokens.peek()
            raise ParseError(f"unexpected token {token[1]!r} after FROM clause")
    return Query(
        select_items=select_items,
        table=table,
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
    )


def _parse_select_list(tokens: _Tokens) -> List[SelectItem]:
    items = [_parse_select_item(tokens)]
    while tokens.peek() == ("punct", ","):
        tokens.advance()
        items.append(_parse_select_item(tokens))
    return items


def _parse_select_item(tokens: _Tokens) -> SelectItem:
    token = tokens.peek()
    if token and token[0] == "ident" and token[1].upper() in AGGREGATE_FUNCTIONS:
        following = tokens.items[tokens.index + 1 : tokens.index + 2]
        if following == [("punct", "(")]:
            function = tokens.advance()[1].upper()
            tokens.advance()  # (
            argument = _capture_until_close_paren(tokens)
            alias = _parse_alias(tokens)
            return SelectItem(AggregateCall(function, argument), alias)
    expression = _capture_expression(tokens)
    alias = _parse_alias(tokens)
    return SelectItem(expression, alias)


def _parse_alias(tokens: _Tokens) -> Optional[str]:
    if tokens.is_keyword("AS"):
        tokens.advance()
        kind, alias = tokens.advance()
        if kind != "ident":
            raise ParseError(f"expected alias name, got {alias!r}")
        return alias
    return None


def _capture_until_close_paren(tokens: _Tokens) -> str:
    """Capture raw text until the matching ')' (aggregate arguments)."""
    parts: List[str] = []
    depth = 1
    while True:
        kind, text = tokens.advance()
        if text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
            if depth == 0:
                break
        parts.append(text)
    argument = " ".join(parts).strip()
    if not argument:
        raise ParseError("empty aggregate argument")
    return argument


_EXPRESSION_TOKENS = {"+", "-", "*", "/", "%", "(", ")"}


def _capture_expression(tokens: _Tokens) -> str:
    """Capture a bare (non-aggregate) expression up to ',' / FROM / end."""
    parts: List[str] = []
    depth = 0
    while True:
        token = tokens.peek()
        if token is None:
            break
        kind, text = token
        if depth == 0 and (
            (kind == "punct" and text == ",")
            or (kind == "ident" and text.upper() in _KEYWORDS)
        ):
            break
        if text == "(":
            depth += 1
        elif text == ")":
            if depth == 0:
                break
            depth -= 1
        tokens.advance()
        parts.append(text)
    expression = " ".join(parts).strip()
    if not expression:
        raise ParseError("empty select expression")
    return expression


def _parse_join(tokens: _Tokens) -> Join:
    kind, table = tokens.advance()
    if kind != "ident":
        raise ParseError(f"expected table name after JOIN, got {table!r}")
    tokens.expect_keyword("ON")
    kind, left = tokens.advance()
    if kind != "ident":
        raise ParseError(f"expected column name in ON, got {left!r}")
    kind, op = tokens.advance()
    if op != "=":
        raise ParseError(f"only equi-joins are supported, got {op!r}")
    kind, right = tokens.advance()
    if kind != "ident":
        raise ParseError(f"expected column name in ON, got {right!r}")
    return Join(table=table, left_column=left, right_column=right)


def _parse_where(tokens: _Tokens) -> List[Comparison]:
    conjuncts = [_parse_comparison(tokens)]
    while tokens.is_keyword("AND"):
        tokens.advance()
        conjuncts.append(_parse_comparison(tokens))
    return conjuncts


def _parse_comparison(tokens: _Tokens) -> Comparison:
    kind, column = tokens.advance()
    if kind != "ident":
        raise ParseError(f"expected column name in WHERE, got {column!r}")
    kind, op = tokens.advance()
    if op not in COMPARISON_OPS:
        raise ParseError(f"expected comparison operator, got {op!r}")
    kind, literal = tokens.advance()
    if kind == "string":
        return Comparison(column, op, literal[1:-1])
    if kind == "number":
        value: Union[int, float] = float(literal) if "." in literal else int(literal)
        return Comparison(column, op, value)
    if kind == "ident":
        return Comparison(column, op, None, column_rhs=literal)
    raise ParseError(f"expected literal or column in comparison, got {literal!r}")


def _parse_column_list(tokens: _Tokens) -> List[str]:
    columns = []
    while True:
        kind, name = tokens.advance()
        if kind != "ident":
            raise ParseError(f"expected column name, got {name!r}")
        columns.append(name)
        if tokens.peek() == ("punct", ","):
            tokens.advance()
            continue
        return columns


def _parse_order_list(tokens: _Tokens) -> List[OrderKey]:
    keys = []
    while True:
        kind, name = tokens.advance()
        if kind != "ident":
            raise ParseError(f"expected column name, got {name!r}")
        ascending = True
        if tokens.is_keyword("ASC"):
            tokens.advance()
        elif tokens.is_keyword("DESC"):
            tokens.advance()
            ascending = False
        keys.append(OrderKey(name, ascending))
        if tokens.peek() == ("punct", ","):
            tokens.advance()
            continue
        return keys
