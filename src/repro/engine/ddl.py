"""Convenience DDL: build relations from Python literals.

``Database.create_table`` accepts a schema of type strings and rows of
host literals, handling the literal -> unscaled conversion so users never
touch limb arrays:

    db.create_table(
        "accounts",
        {"balance": "DECIMAL(20, 4)", "owner": "CHAR(8)", "opened": "INT"},
        rows=[("1234.5678", "alice", 1), (99, "bob", 2)],
    )
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Union

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.convert import literal_to_unscaled
from repro.errors import SchemaError
from repro.storage.column import Column
from repro.storage.relation import Relation
from repro.storage.schema import (
    CharType,
    ColumnType,
    DateType,
    DecimalType,
    DoubleType,
    IntType,
)

_DECIMAL_RE = re.compile(r"^DECIMAL\s*\(\s*(\d+)\s*,\s*(\d+)\s*\)$", re.IGNORECASE)
_CHAR_RE = re.compile(r"^CHAR\s*\(\s*(\d+)\s*\)$", re.IGNORECASE)

TypeSpec = Union[str, ColumnType, DecimalSpec]


def parse_type(spec: TypeSpec) -> ColumnType:
    """Turn a type string (or a ready-made type object) into a ColumnType."""
    if isinstance(spec, DecimalSpec):
        return DecimalType(spec)
    if isinstance(spec, (DecimalType, DoubleType, IntType, DateType, CharType)):
        return spec
    if not isinstance(spec, str):
        raise SchemaError(f"unsupported type spec {spec!r}")
    text = spec.strip()
    match = _DECIMAL_RE.match(text)
    if match:
        return DecimalType(DecimalSpec(int(match.group(1)), int(match.group(2))))
    match = _CHAR_RE.match(text)
    if match:
        return CharType(int(match.group(1)))
    upper = text.upper()
    if upper in ("DOUBLE", "FLOAT8"):
        return DoubleType()
    if upper in ("INT", "BIGINT", "INTEGER"):
        return IntType()
    if upper == "DATE":
        return DateType()
    raise SchemaError(f"unsupported column type {spec!r}")


def build_relation(
    name: str,
    schema: Dict[str, TypeSpec],
    rows: Sequence[Sequence] = (),
) -> Relation:
    """Build a relation from a schema and rows of host literals."""
    types = {column: parse_type(spec) for column, spec in schema.items()}
    columns: List[Column] = []
    transposed = list(zip(*rows)) if rows else [[] for _ in types]
    if rows and len(transposed) != len(types):
        raise SchemaError(
            f"rows have {len(transposed)} values but the schema has {len(types)} columns"
        )
    for (column_name, column_type), values in zip(types.items(), transposed):
        values = list(values)
        if isinstance(column_type, DecimalType):
            spec = column_type.spec
            unscaled = []
            for value in values:
                negative, magnitude = literal_to_unscaled(value, spec)
                unscaled.append(-magnitude if negative else magnitude)
            columns.append(Column.decimal_from_unscaled(column_name, unscaled, spec))
        elif isinstance(column_type, CharType):
            columns.append(Column.chars(column_name, [str(v) for v in values], column_type.width))
        elif isinstance(column_type, DoubleType):
            columns.append(Column.doubles(column_name, [float(v) for v in values]))
        elif isinstance(column_type, DateType):
            columns.append(Column.dates(column_name, [int(v) for v in values]))
        else:
            columns.append(Column.integers(column_name, [int(v) for v in values]))
    return Relation(name, columns)
