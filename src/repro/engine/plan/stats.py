"""Per-column statistics: NDV, equi-depth histograms, null counts.

The cost model's selectivities and join cardinalities were System-R
constants until PR 8's zone maps refined scans with measured min/max
ranges.  This module extends that from ranges to distributions:

* **NDV** -- the number of distinct values, counted exactly below
  :data:`NDV_EXACT_CAP` rows and estimated with a KMV (k-minimum-values)
  distinct sketch above it, so collection stays one bounded pass even on
  relations far larger than the planner should materialise;
* **equi-depth histograms** over the *unscaled* integer values of DECIMAL
  columns (the same domain the zone maps and the encoded-byte filters
  compare in), giving literal predicates data-aware selectivities;
* **null counts**, kept for format fidelity (the engine stores no NULLs).

Statistics are collected lazily, per column *version*, and cached on the
:class:`~repro.storage.column.Column` itself through the same hook the
register-expansion and encoding caches use -- so ``Database.append``
(which builds fresh Column objects) naturally invalidates, and snapshot
readers keep the statistics of the rows they started with.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.storage.column import Column
from repro.storage.schema import DecimalType

#: Row cap for exact distinct counting; larger columns fall back to the
#: KMV sketch.  Exact counting is a sort/set pass -- fine at catalog
#: build sizes, wasteful past a few hundred thousand rows.
NDV_EXACT_CAP = 262_144

#: Sketch size: the estimate keeps the K smallest 64-bit value hashes.
KMV_K = 256

#: Maximum equi-depth histogram buckets per column.
HISTOGRAM_BUCKETS = 64

_HASH_SPACE = float(1 << 64)


@dataclass(frozen=True)
class HistogramBucket:
    """One equi-depth bucket: value range, row count, distinct count."""

    lo: int
    hi: int
    rows: int
    ndv: int

    def equal_rows(self, target: int) -> float:
        """Estimated rows equal to ``target`` (per-bucket uniformity)."""
        if target < self.lo or target > self.hi:
            return 0.0
        return self.rows / max(self.ndv, 1)

    def rows_below(self, target: int, inclusive: bool) -> float:
        """Estimated rows with value < target (or <= with ``inclusive``)."""
        if target < self.lo:
            return 0.0
        if target > self.hi or (inclusive and target == self.hi):
            return float(self.rows)
        span = self.hi - self.lo
        if span == 0:
            # Single-valued bucket: all rows equal ``lo``.
            matches = target > self.lo or (inclusive and target == self.lo)
            return float(self.rows) if matches else 0.0
        # Linear interpolation over the integer domain [lo, hi].
        position = (target - self.lo + (1 if inclusive else 0)) / (span + 1)
        return self.rows * min(max(position, 0.0), 1.0)


@dataclass(frozen=True)
class ColumnHistogram:
    """Equi-depth histogram over a column's unscaled decimal values."""

    buckets: Tuple[HistogramBucket, ...]
    total_rows: int

    def fraction(self, op: str, target: int) -> Optional[float]:
        """Estimated fraction of rows satisfying ``value <op> target``."""
        if self.total_rows <= 0 or not self.buckets:
            return None
        if op == "=":
            matching = sum(bucket.equal_rows(target) for bucket in self.buckets)
        elif op == "<>":
            matching = self.total_rows - sum(
                bucket.equal_rows(target) for bucket in self.buckets
            )
        elif op == "<":
            matching = sum(bucket.rows_below(target, False) for bucket in self.buckets)
        elif op == "<=":
            matching = sum(bucket.rows_below(target, True) for bucket in self.buckets)
        elif op == ">":
            matching = self.total_rows - sum(
                bucket.rows_below(target, True) for bucket in self.buckets
            )
        elif op == ">=":
            matching = self.total_rows - sum(
                bucket.rows_below(target, False) for bucket in self.buckets
            )
        else:
            return None
        return min(max(matching / self.total_rows, 0.0), 1.0)


@dataclass(frozen=True)
class ColumnStats:
    """Planner-visible statistics of one column (one column version)."""

    rows: int
    ndv: int
    #: False when :attr:`ndv` came from the KMV sketch rather than an
    #: exact count (so consumers can widen error bars if they care).
    exact_ndv: bool
    null_count: int = 0
    #: Present only for DECIMAL columns (the domain the zone maps share).
    histogram: Optional[ColumnHistogram] = None


def _hash64(value: object) -> int:
    """Deterministic 64-bit hash (stable across processes and runs)."""
    digest = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def sketch_ndv(values: Sequence, k: int = KMV_K) -> int:
    """KMV distinct-count estimate: keep the K smallest value hashes.

    With H the k-th smallest of the distinct 64-bit hashes, the distinct
    count is ~ (k - 1) / (H / 2^64).  Exact when fewer than K distinct
    hashes exist (the sketch simply saw every one).
    """
    hashes = sorted({_hash64(value) for value in values})
    if len(hashes) < k:
        return len(hashes)
    kth = hashes[k - 1]
    if kth == 0:
        return len(hashes)
    return max(int(round((k - 1) * _HASH_SPACE / kth)), k)


def build_histogram(
    unscaled: Sequence[int], buckets: int = HISTOGRAM_BUCKETS
) -> Optional[ColumnHistogram]:
    """Equi-depth histogram over unscaled decimal values."""
    total = len(unscaled)
    if total == 0:
        return None
    ordered = sorted(unscaled)
    count = min(buckets, total)
    built: List[HistogramBucket] = []
    for index in range(count):
        start = (index * total) // count
        stop = ((index + 1) * total) // count
        if stop <= start:
            continue
        chunk = ordered[start:stop]
        distinct = 1 + sum(
            1 for i in range(1, len(chunk)) if chunk[i] != chunk[i - 1]
        )
        built.append(
            HistogramBucket(lo=chunk[0], hi=chunk[-1], rows=len(chunk), ndv=distinct)
        )
    return ColumnHistogram(buckets=tuple(built), total_rows=total)


def collect_column_stats(
    column: Column,
    exact_cap: int = NDV_EXACT_CAP,
    histogram_buckets: int = HISTOGRAM_BUCKETS,
) -> ColumnStats:
    """Compute statistics for one column (no caching -- see :func:`column_stats`)."""
    if isinstance(column.column_type, DecimalType):
        values: Sequence = column.unscaled()
        histogram = build_histogram(values, histogram_buckets)
    else:
        values = column.data.tolist()
        histogram = None
    rows = len(values)
    if rows <= exact_cap:
        ndv = len(set(values))
        exact = True
    else:
        ndv = min(sketch_ndv(values), rows)
        exact = False
    return ColumnStats(
        rows=rows, ndv=ndv, exact_ndv=exact, null_count=0, histogram=histogram
    )


def column_stats(column: Column) -> ColumnStats:
    """Statistics for a column, cached against its version.

    The cache lives on the Column (see
    :meth:`~repro.storage.column.Column.cached_stats`), so every query --
    and every concurrent session sharing the catalog -- pays collection
    once per column version, and ``Database.append`` swapping in fresh
    Columns invalidates for new readers without touching old snapshots.
    """
    cached = column.cached_stats()
    if isinstance(cached, ColumnStats):
        return cached
    stats = collect_column_stats(column)
    column.store_stats(stats)
    return stats
