"""Logical plan nodes (paper Figure 3: SQL -> logical plan -> physical plan).

The logical plan is deliberately small: a linear chain of relational
operators whose expressions are still raw text (the JIT engine takes over
at physical planning time).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import FrozenSet, List, Optional

from repro.engine.sql.ast_nodes import Comparison, Join, OrderKey, Query, SelectItem


@dataclass
class LogicalNode:
    """Base logical operator."""

    child: Optional["LogicalNode"] = field(default=None, init=False)


@dataclass
class LogicalScan(LogicalNode):
    table: str
    columns: List[str]  # the columns the query actually touches


@dataclass
class LogicalJoin(LogicalNode):
    join: Join
    right_columns: List[str]  # the joined table's columns shipped to the device
    #: WHERE conjuncts pushed into the build side: evaluated while the
    #: joined table is scanned, so only surviving rows cross PCIe.
    right_predicates: List[Comparison] = field(default_factory=list)


@dataclass
class LogicalFilter(LogicalNode):
    predicates: List[Comparison]
    #: Set when predicate merging proved the conjuncts unsatisfiable: the
    #: filter yields zero rows without evaluating anything.
    always_false: bool = False


@dataclass
class LogicalProject(LogicalNode):
    items: List[SelectItem]
    #: Columns carried through the projection unselected (ORDER BY keys not
    #: in the SELECT list); a LogicalDrop above the sort removes them.
    carry: List[str] = field(default_factory=list)


@dataclass
class LogicalDrop(LogicalNode):
    """Remove carried columns once their consumer (the sort) has run."""

    columns: List[str]


@dataclass
class LogicalAggregate(LogicalNode):
    aggregates: List[SelectItem]
    group_by: List[str] = field(default_factory=list)


@dataclass
class LogicalHaving(LogicalNode):
    """HAVING: a filter over the aggregated batch (aliases resolve there)."""

    predicates: List[Comparison]


@dataclass
class LogicalSort(LogicalNode):
    keys: List[OrderKey]


@dataclass
class LogicalLimit(LogicalNode):
    count: int


def build_logical_plan(
    query: Query,
    available_columns: List[str],
    joined_columns: "Optional[dict]" = None,
) -> LogicalNode:
    """Turn a parsed query into a logical operator chain (root last).

    ``joined_columns`` maps each JOINed table name to its column list so
    column references resolve across every relation in the query.
    """
    joined_columns = joined_columns or {}
    # Columns named in any ON clause must survive from whichever relation
    # owns them (a later join's left key may come from an earlier join).
    on_columns = [c for join in query.joins for c in (join.left_column, join.right_column)]
    referenced = _referenced_columns(query, available_columns)
    for column in on_columns:
        if column in available_columns and column not in referenced:
            referenced.append(column)
    node: LogicalNode = LogicalScan(query.table, referenced)
    for join in query.joins:
        right_available = joined_columns.get(join.table, [])
        right_needed = _referenced_columns(query, right_available)
        for column in on_columns:
            if column in right_available and column not in right_needed:
                right_needed.append(column)
        join_node = LogicalJoin(join, right_needed)
        join_node.child = node
        node = join_node
    if query.where:
        filter_node = LogicalFilter(query.where)
        filter_node.child = node
        node = filter_node
    if query.has_aggregates:
        aggregate_node = LogicalAggregate(query.select_items, query.group_by)
        aggregate_node.child = node
        node = aggregate_node
        if query.having:
            having_node = LogicalHaving(query.having)
            having_node.child = node
            node = having_node
    else:
        project_node = LogicalProject(query.select_items)
        project_node.child = node
        node = project_node
    if query.order_by:
        sort_node = LogicalSort(query.order_by)
        sort_node.child = node
        node = sort_node
    if query.limit is not None:
        limit_node = LogicalLimit(query.limit)
        limit_node.child = node
        node = limit_node
    return node


def chain_to_list(root: LogicalNode) -> List[LogicalNode]:
    """Flatten a logical chain into bottom-up (scan-first) order."""
    nodes: List[LogicalNode] = []
    node: Optional[LogicalNode] = root
    while node is not None:
        nodes.append(node)
        node = node.child
    nodes.reverse()
    return nodes


def list_to_chain(nodes: List[LogicalNode]) -> LogicalNode:
    """Re-link a bottom-up node list into a chain; returns the root."""
    previous: Optional[LogicalNode] = None
    for node in nodes:
        node.child = previous
        previous = node
    assert previous is not None
    return previous


def _referenced_columns(query: Query, available: List[str]) -> List[str]:
    """Columns the query touches, in catalog order (drives scan/PCIe cost)."""
    mentioned = set()
    for item in query.select_items:
        text = item.expression.argument if item.is_aggregate else item.expression
        for name in available:
            if _mentions(text, name):
                mentioned.add(name)
    for predicate in list(query.where) + list(query.having):
        mentioned.add(predicate.column)
        if predicate.column_rhs is not None:
            mentioned.add(predicate.column_rhs)
    mentioned.update(query.group_by)
    for key in query.order_by:
        if key.column in available:
            mentioned.add(key.column)
    return [name for name in available if name in mentioned]


_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@lru_cache(maxsize=1024)
def _identifiers(text: str) -> FrozenSet[str]:
    """Every identifier token in ``text`` (cached: expressions repeat)."""
    return frozenset(_IDENTIFIER.findall(text))


def _mentions(text: str, name: str) -> bool:
    """Whole-token column mention: ``o_orderkey`` never matches inside
    ``o_orderkey2`` (token membership, not substring or regex search)."""
    return name in _identifiers(text)
