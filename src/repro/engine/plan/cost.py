"""Cost model for the planner: per-node estimates and physical choices.

The model reuses the roofline terms of :mod:`repro.gpusim.timing` -- disk
scan, PCIe transfer, DRAM passes, kernel-launch overhead -- to put a
``(startup, total, rows)`` estimate on every plan node, ISGBD-style, and
to choose between physical alternatives:

* hash join vs nested-loop join (the build/probe random-access passes vs
  the O(left x right) streaming scan -- a tiny build side wins the loop);
* streamed vs serial kernel execution and the stream chunk size (the
  pipelined estimate of :func:`repro.gpusim.streaming.stream_timing`
  across a candidate set, with "one chunk" being the serial plan).

Estimates drive *choice and EXPLAIN output only*; execution keeps charging
its own (actual-selectivity) costs, so the report never depends on the
estimator being right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.decimal.value import DecimalValue
from repro.core.jit import ir
from repro.engine.sql.ast_nodes import Comparison
from repro.gpusim import timing as gpu_timing
from repro.gpusim.device import DEFAULT_DEVICE, DEFAULT_HOST, GpuDevice, HostSystem
from repro.gpusim.streaming import DEFAULT_CHUNK_ROWS, StreamingConfig, stream_timing
from repro.storage.codecs import ZoneMap
from repro.storage.relation import Relation
from repro.storage.schema import DecimalType


@dataclass(frozen=True)
class OptimizerConfig:
    """Which optimizer stages run for a query.

    The default is everything on; ``OptimizerConfig.off()`` reproduces the
    historical fixed-shape planner (modulo always-on correctness passes
    such as sort-key retention).
    """

    enabled: bool = True
    #: Run the logical rewrite rules (pushdown, merge, pruning).
    rewrite: bool = True
    #: Statistics-driven multi-join reordering (requires ``rewrite``: the
    #: reorder pass runs inside the rewrite-rule engine).
    reorder_joins: bool = True
    #: Cost-based hash vs nested-loop join choice.
    choose_join: bool = True
    #: Cost-based stream chunk sizing / serial fallback per kernel.
    choose_streaming: bool = True
    #: Run the plan-level static analyzer (``repro.analysis.plan``) over
    #: every planned query: schema dataflow, precision dataflow and
    #: rewrite-soundness checks.  Deliberately *not* tied to ``enabled``:
    #: un-optimized plans are analyzed too, so an analyzer finding always
    #: isolates to the plan itself or to a rewrite, never to "analysis was
    #: off on one side of the comparison".
    verify_plans: bool = True
    #: Raise :class:`repro.errors.PlanAnalysisError` when the plan
    #: analyzer reports errors (default: attach diagnostics to the plan
    #: and EXPLAIN output without failing the query).
    strict_plan_analysis: bool = False

    @classmethod
    def off(cls) -> "OptimizerConfig":
        return cls(
            enabled=False,
            rewrite=False,
            reorder_joins=False,
            choose_join=False,
            choose_streaming=False,
        )

    def __post_init__(self) -> None:
        if not self.enabled:
            object.__setattr__(self, "rewrite", False)
            object.__setattr__(self, "reorder_joins", False)
            object.__setattr__(self, "choose_join", False)
            object.__setattr__(self, "choose_streaming", False)


@dataclass
class TableStats:
    """Planner-visible statistics of one relation."""

    rows: int
    #: *Wire* bytes per row, per column: the encoded size under the
    #: column's storage codec, falling back to stored bytes without one --
    #: so codec choice feeds every scan/PCIe estimate downstream.
    column_bytes: Dict[str, float]
    #: Column name -> storage type (drives exact literal canonicalisation
    #: in the predicate-merge rule).
    column_types: Dict[str, object]
    #: Zone-map index per codec-carrying DECIMAL column, for data-aware
    #: selectivity estimates (see :meth:`zone_fraction`).
    zones: Dict[str, List[ZoneMap]] = field(default_factory=dict)
    #: The relation's Column objects, for lazy per-column statistics
    #: (NDV / histograms -- see :meth:`column_stats`).  Optional so
    #: hand-built TableStats (tests, profiles) keep working; without it
    #: every statistics lookup declines and the System-R defaults apply.
    columns: Dict[str, "object"] = field(default_factory=dict)

    @classmethod
    def from_relation(cls, relation: Relation) -> "TableStats":
        rows = max(relation.rows, 1)
        zones: Dict[str, List[ZoneMap]] = {}
        for column in relation.columns:
            if column.codec is not None and isinstance(column.column_type, DecimalType):
                zones[column.name] = column.encoding().zones
        return cls(
            rows=relation.rows,
            column_bytes={
                column.name: column.wire_bytes / rows for column in relation.columns
            },
            column_types={column.name: column.column_type for column in relation.columns},
            zones=zones,
            columns={column.name: column for column in relation.columns},
        )

    def bytes_for(self, names) -> float:
        return sum(self.column_bytes.get(name, 0.0) for name in names)

    def column_stats(self, name: str):
        """Lazy, column-version-cached statistics (NDV, histogram) or None."""
        column = self.columns.get(name)
        if column is None:
            return None
        from repro.engine.plan.stats import column_stats

        return column_stats(column)

    def ndv(self, name: str) -> Optional[int]:
        """Distinct-value count of a column, or None without statistics."""
        stats = self.column_stats(name)
        return None if stats is None else stats.ndv

    def histogram_fraction(self, predicate: Comparison) -> Optional[float]:
        """Histogram estimate of a literal predicate's selectivity.

        Applies to literal comparisons over DECIMAL columns whose
        statistics carry an equi-depth histogram; the literal
        canonicalises through the column's spec exactly as
        :meth:`zone_fraction` does.  Returns None when out of scope.
        """
        if predicate.column_rhs is not None:
            return None
        column_type = self.column_types.get(predicate.column)
        if not isinstance(column_type, DecimalType):
            return None
        stats = self.column_stats(predicate.column)
        if stats is None or stats.histogram is None:
            return None
        try:
            target = DecimalValue.from_literal(
                str(predicate.literal), column_type.spec
            ).unscaled
        except Exception:
            return None
        return stats.histogram.fraction(predicate.op, target)

    def zone_fraction(self, predicate: Comparison) -> Optional[float]:
        """Zone-map upper bound on a literal predicate's selectivity.

        Chunks whose verdict is ``False`` contribute nothing, ``True``
        chunks contribute all their rows, undecided chunks contribute the
        operator's textbook default -- so the result is a data-aware
        refinement of :data:`DEFAULT_SELECTIVITY`, not a guess.  Returns
        None when the column has no zone index or the literal is not a
        decimal literal.
        """
        zone_list = self.zones.get(predicate.column)
        if not zone_list or predicate.column_rhs is not None:
            return None
        column_type = self.column_types.get(predicate.column)
        if not isinstance(column_type, DecimalType):
            return None
        try:
            target = DecimalValue.from_literal(
                str(predicate.literal), column_type.spec
            ).unscaled
        except Exception:
            return None
        default = DEFAULT_SELECTIVITY.get(predicate.op, 0.5)
        matching = 0.0
        total = 0
        for zone in zone_list:
            total += zone.rows
            verdict = zone.evaluate(predicate.op, target)
            if verdict is True:
                matching += zone.rows
            elif verdict is None:
                matching += zone.rows * default
        if total == 0:
            return None
        return matching / total


@dataclass
class PlanStats:
    """Statistics for every relation a query touches."""

    main: TableStats
    joined: Dict[str, TableStats] = field(default_factory=dict)
    simulate_rows: int = 0

    def table(self, name: Optional[str]) -> Optional[TableStats]:
        if name is None:
            return self.main
        return self.joined.get(name)

    def column_type(self, column: str) -> Optional[object]:
        for stats in [self.main, *self.joined.values()]:
            if column in stats.column_types:
                return stats.column_types[column]
        return None

    def column_ndv(self, column: str) -> Optional[int]:
        """NDV of a column from whichever relation owns it, or None."""
        for stats in [self.main, *self.joined.values()]:
            if column in stats.column_types:
                return stats.ndv(column)
        return None


#: Textbook default selectivities per comparison operator (System R):
#: used only for node-cost *estimates*; execution charges actual counts.
DEFAULT_SELECTIVITY = {"=": 0.1, "<>": 0.9, "<": 1 / 3, "<=": 1 / 3, ">": 1 / 3, ">=": 1 / 3}


def predicate_selectivity(
    predicates: List[Comparison], table: Optional[TableStats] = None
) -> float:
    """Estimated surviving fraction of a conjunct list.

    With ``table`` statistics, literal conjuncts over DECIMAL columns read
    their selectivity from the column's equi-depth histogram; the zone-map
    fraction (an upper bound, since undecided chunks count at the textbook
    default) then caps the estimate.  Conjuncts without statistics keep
    the System R defaults.
    """
    fraction = 1.0
    for predicate in predicates:
        estimate = DEFAULT_SELECTIVITY.get(predicate.op, 0.5)
        if table is not None:
            histogram = table.histogram_fraction(predicate)
            if histogram is not None:
                estimate = histogram
            zone = table.zone_fraction(predicate)
            if zone is not None:
                estimate = min(estimate, zone)
        fraction *= estimate
    return fraction


def join_output_rows(
    left_rows: float,
    right_rows: float,
    left_ndv: Optional[float],
    right_ndv: Optional[float],
) -> float:
    """Textbook equi-join cardinality: ``|L| * |R| / max(ndv_L, ndv_R)``.

    Falls back to ``left_rows`` (the historical assumption: every left row
    matches exactly once, as in a foreign-key join) when either side's key
    NDV is unknown.
    """
    if not left_ndv or not right_ndv:
        return left_rows
    return left_rows * right_rows / max(left_ndv, right_ndv, 1)


@dataclass
class CostEstimate:
    """ISGBD-style per-node estimate: startup..total seconds + row count.

    ``startup`` is the cost before the first output row can exist (e.g. a
    hash join's build pass, a sort's full pass); ``total`` includes the
    node's complete work, excluding its children.
    """

    startup_seconds: float
    total_seconds: float
    rows: float

    def format(self) -> str:
        return (
            f"(cost={self.startup_seconds:.4f}..{self.total_seconds:.4f} "
            f"rows={int(self.rows):,})"
        )


class CostModel:
    """Per-node cost estimation over the simulated device/host."""

    def __init__(
        self,
        device: GpuDevice = DEFAULT_DEVICE,
        host: HostSystem = DEFAULT_HOST,
        include_scan: bool = True,
        include_transfer: bool = True,
    ):
        self.device = device
        self.host = host
        self.include_scan = include_scan
        self.include_transfer = include_transfer

    # ------------------------------------------------------------- per node

    def scan(self, bytes_moved: float, rows: float) -> CostEstimate:
        seconds = 0.0
        if self.include_scan:
            seconds += gpu_timing.disk_scan_time(int(bytes_moved), self.host)
        if self.include_transfer:
            seconds += gpu_timing.pcie_time(int(bytes_moved), self.device)
        return CostEstimate(0.0, seconds, rows)

    def filter(
        self,
        predicates: List[Comparison],
        bytes_per_row: float,
        rows: float,
        table: Optional[TableStats] = None,
    ) -> CostEstimate:
        traffic = bytes_per_row * rows
        seconds = (
            gpu_timing.dram_pass_time(traffic, self.device)
            + self.device.kernel_launch_overhead
        )
        return CostEstimate(0.0, seconds, rows * predicate_selectivity(predicates, table))

    def hash_join(
        self,
        left_rows: float,
        right_rows: float,
        right_bytes: float,
        out_rows: float,
    ) -> CostEstimate:
        """Build on the right side (startup), probe the left (total)."""
        startup = self.scan(right_bytes, right_rows).total_seconds
        startup += gpu_timing.dram_pass_time(
            right_rows * gpu_timing.JOIN_KEY_BYTES, self.device, random_access=True
        )
        probe = (
            gpu_timing.dram_pass_time(
                left_rows * gpu_timing.JOIN_KEY_BYTES, self.device, random_access=True
            )
            + self.device.kernel_launch_overhead
        )
        return CostEstimate(startup, startup + probe, out_rows)

    def nested_loop_join(
        self,
        left_rows: float,
        right_rows: float,
        right_bytes: float,
        out_rows: float,
    ) -> CostEstimate:
        startup = self.scan(right_bytes, right_rows).total_seconds
        probe = gpu_timing.nested_loop_join_time(left_rows, right_rows, self.device)
        return CostEstimate(startup, startup + probe, out_rows)

    def project(self, result_bytes_per_row: float, rows: float) -> CostEstimate:
        seconds = 0.0
        if self.include_transfer:
            seconds += gpu_timing.pcie_time(int(result_bytes_per_row * rows), self.device)
        return CostEstimate(0.0, seconds, rows)

    def sort(self, key_bytes_per_row: float, rows: float) -> CostEstimate:
        passes = max(1, int(math.log2(max(rows, 2)) / 8))
        seconds = (
            gpu_timing.dram_pass_time(passes * key_bytes_per_row * rows, self.device)
            + self.device.kernel_launch_overhead
        )
        # A sort emits nothing until the whole input is consumed.
        return CostEstimate(seconds, seconds, rows)

    def group_aggregate(
        self, key_bytes_per_row: float, value_bytes_per_row: float, rows: float, groups: float
    ) -> CostEstimate:
        key_sort = self.sort(key_bytes_per_row, rows).total_seconds
        gather = value_bytes_per_row * rows / 4.0e9  # GROUP_GATHER_BANDWIDTH
        reduce_pass = gpu_timing.dram_pass_time(value_bytes_per_row * rows, self.device)
        total = key_sort + gather + reduce_pass
        return CostEstimate(total, total, groups)

    def aggregate(self, value_bytes_per_row: float, rows: float) -> CostEstimate:
        seconds = (
            gpu_timing.dram_pass_time(value_bytes_per_row * rows, self.device)
            + self.device.kernel_launch_overhead
        )
        return CostEstimate(seconds, seconds, 1.0)

    def limit(self, count: int, rows: float) -> CostEstimate:
        return CostEstimate(0.0, 0.0, min(float(count), rows))

    # ------------------------------------------------------ physical choice

    def choose_join(
        self,
        left_rows: float,
        right_rows: float,
        right_bytes: float,
        out_rows: float,
    ) -> Tuple[str, CostEstimate, Dict[str, CostEstimate]]:
        """Pick the cheaper join strategy; returns (name, winner, all)."""
        candidates = {
            "hash": self.hash_join(left_rows, right_rows, right_bytes, out_rows),
            "nested-loop": self.nested_loop_join(left_rows, right_rows, right_bytes, out_rows),
        }
        name = min(candidates, key=lambda key: candidates[key].total_seconds)
        return name, candidates[name], candidates

    def choose_chunk_rows(
        self,
        kernel: ir.KernelIR,
        simulate_rows: int,
        streaming: StreamingConfig,
        transfer_bytes: float,
    ) -> int:
        """Pick the stream chunk size minimising the pipelined estimate.

        The candidate set spans the configured size, the memory-budget
        auto size, the default, and coarser powers up to a single chunk --
        which *is* the serial plan, so "streamed vs serial" falls out of
        the same comparison.
        """
        if simulate_rows <= 0:
            # Explicit ``is None`` check, not truthiness: StreamingConfig
            # validates chunk_rows >= 1 at construction, and a falsy-or here
            # would silently re-default an (invalid) zero.
            if streaming.chunk_rows is not None:
                return streaming.chunk_rows
            return DEFAULT_CHUNK_ROWS
        candidates = {simulate_rows}  # one chunk == serial execution
        if streaming.chunk_rows is not None:
            candidates.add(streaming.chunk_rows)
        auto = StreamingConfig(
            enabled=True, chunk_rows=None, memory_fraction=streaming.memory_fraction
        ).resolve_chunk_rows(kernel, self.device, simulate_rows)
        candidates.add(auto)
        candidates.add(DEFAULT_CHUNK_ROWS)
        candidates.update(
            max(1, simulate_rows // depth) for depth in (4, 16, 64) if simulate_rows >= depth
        )

        def pipelined(chunk_rows: int) -> float:
            return stream_timing(
                kernel,
                simulate_rows,
                chunk_rows,
                self.device,
                transfer_bytes=int(transfer_bytes),
            ).pipelined_seconds

        # Deterministic tie-break: prefer the larger chunk (fewer launches).
        return min(sorted(candidates, reverse=True), key=pipelined)
