"""Logical -> physical planning: rewrite rules, costing, physical choice.

``plan_query`` builds the logical chain, drives the rewrite-rule engine
(:mod:`repro.engine.plan.rules`) to a fixpoint, lowers each logical node
to a physical operator -- choosing between physical alternatives (hash vs
nested-loop join) with the :class:`~repro.engine.plan.cost.CostModel` --
and annotates every operator with an ISGBD-style per-node
:class:`~repro.engine.plan.cost.CostEstimate` for EXPLAIN.

The returned :class:`PhysicalPlan` behaves like the plain operator list
older call sites expect, and additionally carries the rewrite trace and
the cost-based choices.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional

from repro.engine.plan.cost import (
    CostEstimate,
    CostModel,
    OptimizerConfig,
    PlanStats,
    join_output_rows,
    predicate_selectivity,
)
from repro.engine.plan.logical import (
    LogicalAggregate,
    LogicalDrop,
    LogicalFilter,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    build_logical_plan,
    chain_to_list,
)
from repro.engine.plan.physical import (
    AggregateOp,
    DropOp,
    FilterOp,
    GroupAggregateOp,
    HashJoinOp,
    LimitOp,
    NestedLoopJoinOp,
    PhysicalOp,
    ProjectOp,
    ScanOp,
    SortOp,
)
from repro.engine.plan.rules import RewriteEvent, apply_rules, default_rules
from repro.engine.sql.ast_nodes import Query
from repro.errors import PlanningError

#: Estimated stored bytes per row of a computed (JIT) result column when
#: the catalog has no entry for it: a 4-word DECIMAL payload plus sign.
ESTIMATED_RESULT_BYTES = 17.0


class PhysicalPlan:
    """The physical operator chain plus its planning trace.

    Iterates/indexes like the plain ``List[PhysicalOp]`` the executor and
    EXPLAIN historically consumed; ``events`` records the rewrite-rule
    firings and ``choices`` the cost-based physical decisions.
    """

    def __init__(
        self,
        ops: List[PhysicalOp],
        events: Optional[List[RewriteEvent]] = None,
        choices: Optional[List[str]] = None,
    ):
        self.ops = list(ops)
        self.events = list(events or [])
        self.choices = list(choices or [])
        #: :class:`repro.analysis.AnalysisReport` from the plan-level
        #: static analyzer, when ``OptimizerConfig.verify_plans`` ran it.
        self.analysis = None

    def __iter__(self) -> Iterator[PhysicalOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, index):
        return self.ops[index]


def plan_query(
    query: Query,
    available_columns: List[str],
    joined_columns=None,
    *,
    stats: Optional[PlanStats] = None,
    optimizer: Optional[OptimizerConfig] = None,
    cost_model: Optional[CostModel] = None,
    jit_options=None,
    label: Optional[str] = None,
) -> PhysicalPlan:
    """Build the physical operator plan for a parsed query.

    Without ``stats``/``optimizer``/``cost_model`` this reproduces the
    historical fixed-shape translation (plus the always-on sort-key
    retention pass) and annotates no costs.  ``jit_options``/``label``
    parameterize the plan-level static analyzer, which runs whenever
    ``optimizer.verify_plans`` is set (the default, including for
    ``OptimizerConfig.off()``).
    """
    optimizer = optimizer if optimizer is not None else OptimizerConfig.off()
    logical = build_logical_plan(query, available_columns, joined_columns)
    nodes = chain_to_list(logical)
    nodes, events = apply_rules(
        nodes,
        default_rules(optimize=optimizer.rewrite, reorder_joins=optimizer.reorder_joins),
        stats,
    )

    choices: List[str] = []
    ops: List[PhysicalOp] = []
    costed = stats is not None and cost_model is not None
    rows = float(stats.simulate_rows) if stats is not None else 0.0

    for node in nodes:
        estimate: Optional[CostEstimate] = None
        if isinstance(node, LogicalScan):
            op: PhysicalOp = ScanOp(node.columns)
            if costed:
                estimate = cost_model.scan(stats.main.bytes_for(node.columns) * rows, rows)
        elif isinstance(node, LogicalJoin):
            op, estimate, rows = _plan_join(
                node, rows, stats, optimizer, cost_model, choices
            )
        elif isinstance(node, LogicalFilter):
            op = FilterOp(node.predicates, always_false=node.always_false)
            if costed:
                if node.always_false:
                    estimate = CostEstimate(0.0, 0.0, 0.0)
                else:
                    estimate = cost_model.filter(
                        node.predicates,
                        _predicate_bytes(node.predicates, stats),
                        rows,
                        table=stats.main,
                    )
            if node.always_false:
                rows = 0.0
            else:
                rows *= predicate_selectivity(
                    node.predicates, stats.main if stats is not None else None
                )
        elif isinstance(node, LogicalAggregate):
            if node.group_by:
                aggregates = [item for item in node.aggregates if item.is_aggregate]
                op = GroupAggregateOp(node.group_by, aggregates)
                groups = _estimate_groups(node.group_by, rows, stats)
                if costed:
                    key_bytes = sum(_column_bytes(stats, name) for name in node.group_by)
                    estimate = cost_model.group_aggregate(
                        key_bytes, ESTIMATED_RESULT_BYTES * len(aggregates), rows, groups
                    )
                rows = groups
            else:
                if not all(item.is_aggregate for item in node.aggregates):
                    raise PlanningError(
                        "mixing aggregates and bare expressions requires GROUP BY"
                    )
                op = AggregateOp(node.aggregates)
                if costed:
                    estimate = cost_model.aggregate(
                        ESTIMATED_RESULT_BYTES * len(node.aggregates), rows
                    )
                rows = 1.0
        elif isinstance(node, LogicalProject):
            op = ProjectOp(node.items, carry=node.carry)
            if costed:
                result_bytes = sum(
                    _column_bytes(stats, str(item.expression).strip())
                    for item in node.items
                )
                estimate = cost_model.project(result_bytes, rows)
        elif isinstance(node, LogicalHaving):
            op = FilterOp(node.predicates)
            if costed:
                estimate = cost_model.filter(
                    node.predicates,
                    _predicate_bytes(node.predicates, stats),
                    rows,
                    table=stats.main,
                )
            rows *= predicate_selectivity(
                node.predicates, stats.main if stats is not None else None
            )
        elif isinstance(node, LogicalSort):
            op = SortOp(node.keys)
            if costed:
                key_bytes = sum(_column_bytes(stats, key.column) for key in node.keys)
                estimate = cost_model.sort(key_bytes, rows)
        elif isinstance(node, LogicalDrop):
            op = DropOp(node.columns)
            if costed:
                estimate = CostEstimate(0.0, 0.0, rows)
        elif isinstance(node, LogicalLimit):
            op = LimitOp(node.count)
            if costed:
                estimate = cost_model.limit(node.count, rows)
            rows = min(float(node.count), rows)
        else:
            raise PlanningError(f"unknown logical node {type(node).__name__}")
        op.estimated = estimate
        ops.append(op)
    _push_zone_predicates(ops)
    plan = PhysicalPlan(ops, events, choices)
    if optimizer.verify_plans:
        # Imported lazily: repro.analysis.plan pulls in the JIT pipeline,
        # which this module must not depend on at import time.
        from repro.analysis import Severity
        from repro.analysis.plan import analyze_plan
        from repro.errors import PlanAnalysisError

        plan.analysis = analyze_plan(
            plan,
            stats=stats,
            jit_options=jit_options,
            label=label or query.table,
        )
        if optimizer.strict_plan_analysis and plan.analysis.has_errors:
            raise PlanAnalysisError(
                "plan analysis failed:\n" + plan.analysis.format(Severity.ERROR),
                report=plan.analysis,
            )
    return plan


def _push_zone_predicates(ops: List[PhysicalOp]) -> None:
    """Attach the adjacent filter's literal conjuncts to the leading scan.

    The scan uses them only for zone-map chunk pruning (byte accounting);
    the filter still computes the exact mask, so this is always sound.
    Conservatively limited to the scan-then-filter prefix -- a join or
    project in between could change the row space the predicates see.
    """
    if len(ops) < 2 or not isinstance(ops[0], ScanOp):
        return
    filter_op = ops[1]
    if not isinstance(filter_op, FilterOp) or filter_op.always_false:
        return
    ops[0].predicates = [
        predicate
        for predicate in filter_op.predicates
        if predicate.column_rhs is None
    ]


def _plan_join(
    node: LogicalJoin,
    rows: float,
    stats: Optional[PlanStats],
    optimizer: OptimizerConfig,
    cost_model: Optional[CostModel],
    choices: List[str],
):
    """Lower one join, cost-choosing the algorithm when enabled.

    The estimates keep the catalog's *relative* cardinalities (the right
    side scales by ``simulate_rows / main.rows``) rather than the
    execution model's uniform inflation of every relation to
    ``simulate_rows``: inflation multiplies both algorithms' linear terms
    alike but squares the nested-loop term, so estimating on inflated
    counts would never classify any build side as small.
    """
    right = stats.table(node.join.table) if stats is not None else None
    if right is None or cost_model is None:
        return (
            HashJoinOp(node.join, node.right_columns, node.right_predicates),
            None,
            rows,
        )
    scale = stats.simulate_rows / max(stats.main.rows, 1)
    survival = predicate_selectivity(node.right_predicates, right)
    right_rows = right.rows * scale * survival
    right_bytes = right.bytes_for(node.right_columns) * right_rows
    # |L| * |R| / max(ndv(L.key), ndv(R.key)).  NDVs are catalog-scale, so
    # inflate them by the same simulate factor as the row counts: a key
    # column's distinct count grows with the relation it indexes.
    left_ndv = stats.column_ndv(node.join.left_column)
    right_ndv = right.ndv(node.join.right_column)
    out_rows = join_output_rows(
        rows,
        right_rows,
        left_ndv * scale if left_ndv else 0.0,
        right_ndv * scale if right_ndv else 0.0,
    )
    if not optimizer.choose_join:
        estimate = cost_model.hash_join(rows, right_rows, right_bytes, out_rows)
        return (
            HashJoinOp(node.join, node.right_columns, node.right_predicates),
            estimate,
            out_rows,
        )
    name, estimate, candidates = cost_model.choose_join(
        rows, right_rows, right_bytes, out_rows
    )
    loser = next(key for key in candidates if key != name)
    choices.append(
        f"join {node.join.table}: {name} "
        f"({estimate.total_seconds:.4f}s vs {loser} "
        f"{candidates[loser].total_seconds:.4f}s, est {out_rows:,.0f} rows out)"
    )
    op_type = HashJoinOp if name == "hash" else NestedLoopJoinOp
    return op_type(node.join, node.right_columns, node.right_predicates), estimate, out_rows


def _estimate_groups(
    group_by: List[str], rows: float, stats: Optional[PlanStats]
) -> float:
    """Distinct-group estimate: product of the group keys' NDVs.

    Capped by the input rows (a grouping cannot produce more groups than
    rows) and falling back to the square-root rule of thumb when any key
    has no statistics (computed columns, missing catalog entries).
    """
    fallback = max(1.0, math.sqrt(max(rows, 1.0)))
    if stats is None:
        return fallback
    product = 1.0
    for name in group_by:
        ndv = stats.column_ndv(name)
        if ndv is None:
            return fallback
        product *= max(ndv, 1)
    return max(1.0, min(product, max(rows, 1.0)))


def _column_bytes(stats: Optional[PlanStats], name: str) -> float:
    """Catalog bytes/row of a column; computed columns get the default."""
    if stats is not None:
        for table in [stats.main, *stats.joined.values()]:
            if name in table.column_bytes:
                return table.column_bytes[name]
    return ESTIMATED_RESULT_BYTES


def _predicate_bytes(predicates, stats: Optional[PlanStats]) -> float:
    """Bytes/row a filter pass reads: each distinct column once."""
    columns = {p.column for p in predicates}
    columns.update(p.column_rhs for p in predicates if p.column_rhs)
    return sum(_column_bytes(stats, name) for name in columns)
