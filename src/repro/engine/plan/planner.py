"""Logical -> physical plan conversion."""

from __future__ import annotations

from typing import List

from repro.engine.plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    build_logical_plan,
)
from repro.engine.plan.physical import (
    AggregateOp,
    FilterOp,
    GroupAggregateOp,
    HashJoinOp,
    LimitOp,
    PhysicalOp,
    ProjectOp,
    ScanOp,
    SortOp,
)
from repro.engine.sql.ast_nodes import Query
from repro.errors import PlanningError


def plan_query(
    query: Query,
    available_columns: List[str],
    joined_columns=None,
) -> List[PhysicalOp]:
    """Build the physical operator chain for a parsed query."""
    logical = build_logical_plan(query, available_columns, joined_columns)
    chain: List[PhysicalOp] = []
    node = logical
    stack = []
    while node is not None:
        stack.append(node)
        node = node.child
    for logical_node in reversed(stack):
        if isinstance(logical_node, LogicalScan):
            chain.append(ScanOp(logical_node.columns))
        elif isinstance(logical_node, LogicalJoin):
            chain.append(HashJoinOp(logical_node.join, logical_node.right_columns))
        elif isinstance(logical_node, LogicalFilter):
            chain.append(FilterOp(logical_node.predicates))
        elif isinstance(logical_node, LogicalAggregate):
            if logical_node.group_by:
                aggregates = [item for item in logical_node.aggregates if item.is_aggregate]
                chain.append(GroupAggregateOp(logical_node.group_by, aggregates))
            else:
                if not all(item.is_aggregate for item in logical_node.aggregates):
                    raise PlanningError(
                        "mixing aggregates and bare expressions requires GROUP BY"
                    )
                chain.append(AggregateOp(logical_node.aggregates))
        elif isinstance(logical_node, LogicalProject):
            chain.append(ProjectOp(logical_node.items))
        elif isinstance(logical_node, LogicalHaving):
            chain.append(FilterOp(logical_node.predicates))
        elif isinstance(logical_node, LogicalSort):
            chain.append(SortOp(logical_node.keys))
        elif isinstance(logical_node, LogicalLimit):
            chain.append(LimitOp(logical_node.count))
        else:
            raise PlanningError(f"unknown logical node {type(logical_node).__name__}")
    return chain
