"""Physical operators: executable, costed plan nodes.

Each operator both *computes* (bit-exactly, over the real rows registered
with the engine) and *charges* the simulated cost model (scaled to the
engine's ``simulate_rows``, since every model is linear in N).  The
executor threads a :class:`Batch` through the chain.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.value import DecimalValue
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit.pipeline import JitOptions, KernelCache
from repro.core.multithread import aggregation as mt_aggregation
from repro.engine.plan.cost import CostEstimate, CostModel, OptimizerConfig
from repro.engine.sql.ast_nodes import AggregateCall, Comparison, OrderKey, SelectItem
from repro.errors import ExecutionError, PlanningError, StorageError
from repro.gpusim import executor as gpu_executor
from repro.gpusim import occupancy as gpu_occupancy
from repro.gpusim import timing as gpu_timing
from repro.gpusim.residency import DeviceResidency
from repro.gpusim.device import DEFAULT_DEVICE, DEFAULT_HOST, GpuDevice, HostSystem
from repro.gpusim.streaming import StreamingConfig, execute_streamed
from repro.storage.column import Column
from repro.storage.relation import Relation
from repro.storage.schema import CharType, DateType, DecimalType, DoubleType


@dataclass
class KernelExecution:
    """Per-kernel launch record: chunking and pipelined-vs-serial timing.

    On the serial path ``chunks=1`` and the two times coincide; on the
    streamed path ``pipelined_seconds`` is what the report charges while
    ``serial_seconds`` is what the unchunked path would have cost, so
    ``overlap_speedup`` is the per-kernel win from transfer/compute overlap.
    """

    name: str
    expression: str
    chunks: int
    streamed: bool
    transfer_seconds_per_chunk: float
    kernel_seconds_per_chunk: float
    serial_seconds: float
    pipelined_seconds: float
    #: Measured wall-clock of the kernel's *data plane* (the numpy limb
    #: arithmetic actually run in this process), as opposed to the simulated
    #: GPU seconds above which come from instruction counts.
    data_plane_seconds: float = 0.0
    #: SM occupancy fraction of this launch (from the register-pressure
    #: model).  The device scheduler uses it as the kernel's SM demand:
    #: launches from concurrent queries are co-resident while their
    #: occupancies sum to <= 1.
    occupancy: float = 1.0

    @property
    def overlap_speedup(self) -> float:
        if self.pipelined_seconds == 0:
            return 1.0
        return self.serial_seconds / self.pipelined_seconds


@dataclass
class ExecutionReport:
    """Simulated time breakdown of one query."""

    scan_seconds: float = 0.0
    pcie_seconds: float = 0.0
    #: Simulated bytes behind the scan/PCIe charges above -- the volume the
    #: rewrite rules (build-side pushdown, projection pruning) reduce.
    scan_bytes: float = 0.0
    pcie_bytes: float = 0.0
    compile_seconds: float = 0.0
    kernel_seconds: float = 0.0
    filter_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    sort_seconds: float = 0.0
    #: Operator pipeline overhead: intermediate materialisation, operator
    #: setup, result collection -- the host-side engine cost around the
    #: kernels (RateupDB heritage; calibrated on Figure 14(b)).
    pipeline_seconds: float = 0.0
    kernels_compiled: int = 0
    kernels_cached: int = 0
    simulated_rows: int = 0
    #: Zone-map chunk pruning on the scanned codec columns: chunks whose
    #: zone map proved the pushed-down filter unsatisfiable (never read or
    #: shipped) vs total chunks scanned.
    zone_chunks_skipped: int = 0
    zone_chunks_total: int = 0
    #: Measured wall-clock spent in the data plane (register expansion,
    #: numpy limb kernels, oracle conversions for aggregation).  *Not* part
    #: of :attr:`total_seconds` -- the simulated times come from the timing
    #: model; this is the real cost of producing the bit-exact results.
    data_plane_seconds: float = 0.0
    #: One record per JIT-kernel launch, in execution order.  Streamed
    #: entries carry the chunk count and the pipelined-vs-serial split.
    kernel_executions: List[KernelExecution] = field(default_factory=list)

    @property
    def streamed_kernels(self) -> List[KernelExecution]:
        return [entry for entry in self.kernel_executions if entry.streamed]

    @property
    def overlap_speedup(self) -> float:
        """Aggregate serial/pipelined ratio across the streamed kernels."""
        streamed = self.streamed_kernels
        pipelined = sum(entry.pipelined_seconds for entry in streamed)
        if pipelined == 0:
            return 1.0
        return sum(entry.serial_seconds for entry in streamed) / pipelined

    @property
    def total_seconds(self) -> float:
        return (
            self.scan_seconds
            + self.pcie_seconds
            + self.compile_seconds
            + self.kernel_seconds
            + self.filter_seconds
            + self.aggregate_seconds
            + self.sort_seconds
            + self.pipeline_seconds
        )

    @property
    def execution_seconds(self) -> float:
        """Everything except JIT compilation (the Figure 14(b) split)."""
        return self.total_seconds - self.compile_seconds


@dataclass
class Batch:
    """Columns flowing between operators, plus the simulated row count."""

    columns: Dict[str, Column]
    rows: int
    simulated_rows: float

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"column {name!r} not in batch") from None


@dataclass
class QueryContext:
    """Everything operators need: device models, caches, options."""

    relation: Relation
    simulate_rows: int
    #: Relations brought in by JOIN clauses, keyed by table name.
    joined: Dict[str, Relation] = field(default_factory=dict)
    device: GpuDevice = DEFAULT_DEVICE
    host: HostSystem = DEFAULT_HOST
    kernel_cache: KernelCache = field(default_factory=KernelCache)
    jit_options: JitOptions = field(default_factory=JitOptions)
    include_scan: bool = True
    include_transfer: bool = True
    include_compile: bool = True
    tpi: int = 8  # thread-group width for aggregation
    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    #: Simulated bytes of scanned columns not yet shipped to the device.
    #: With streaming enabled, ScanOp defers its PCIe charge here; the
    #: first kernel consuming a column pipelines its transfer against
    #: compute, and :func:`repro.engine.executor.run_plan` flushes whatever
    #: no kernel consumed as a plain serial transfer.
    pending_transfer: Dict[str, float] = field(default_factory=dict)
    #: Cost model for runtime physical choices (stream chunk sizing); None
    #: reproduces the un-costed behaviour.
    cost_model: Optional["CostModel"] = None
    #: Which optimizer stages are active for this query.
    optimizer: "OptimizerConfig" = field(default_factory=lambda: OptimizerConfig.off())
    #: Cross-query device residency of columns (shared by the serving
    #: layer's sessions).  ``None`` keeps the single-query behaviour:
    #: every scan ships its columns over PCIe.
    residency: Optional["DeviceResidency"] = None
    #: Cooperative cancellation flag, polled between operators by
    #: :func:`repro.engine.executor.run_plan`.  Returning True raises
    #: :class:`repro.errors.QueryCancelledError` at the next operator
    #: boundary -- never mid-kernel, so shared caches stay consistent.
    cancel_check: Optional[Callable[[], bool]] = None
    report: ExecutionReport = field(default_factory=ExecutionReport)


OutputValue = Union[DecimalValue, int, float, str]


class PhysicalOp:
    """Base class: transforms a batch and charges the report."""

    #: Planner-attached :class:`~repro.engine.plan.cost.CostEstimate` for
    #: EXPLAIN display; ``None`` when the query planned without costing.
    estimated: Optional["CostEstimate"] = None

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        raise NotImplementedError


class ScanOp(PhysicalOp):
    """Read the needed columns from storage, then ship them over PCIe.

    Columns with a storage codec are charged at their *encoded* wire size,
    and pushed-down literal predicates (attached by the planner from an
    adjacent filter) prune whole chunks through the zone-map index before
    any byte is read or shipped.  Pruning affects only the simulated byte
    accounting -- the batch always carries the full rows, and the filter
    operator computes the exact mask, so results stay bit-exact.
    """

    def __init__(
        self, columns: List[str], predicates: Optional[List[Comparison]] = None
    ):
        self.columns = columns
        #: Literal conjuncts from the immediately-following filter; used
        #: only for zone-map chunk pruning, never for row elimination.
        self.predicates = list(predicates or [])

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        relation = context.relation
        scale = context.simulate_rows / max(relation.rows, 1)
        skip = _zone_skip_mask(relation, self.predicates) if self.predicates else None
        kept_fraction = 1.0
        if skip is not None:
            kept_fraction = float(np.count_nonzero(~skip)) / max(relation.rows, 1)

        # Per-column bytes this scan actually reads and ships: encoded wire
        # size for codec columns (minus zone-skipped chunks), stored bytes
        # (scaled by the surviving-row fraction) otherwise.
        wire: Dict[str, float] = {}
        for name in self.columns:
            column = relation.column(name)
            if column.codec is not None and isinstance(column.column_type, DecimalType):
                encoding = column.encoding()
                context.report.zone_chunks_total += len(encoding.chunks)
                if skip is None:
                    wire[name] = float(encoding.wire_bytes)
                else:
                    kept = 0
                    for chunk in encoding.chunks:
                        if skip[chunk.zone.row_start : chunk.zone.row_stop].all():
                            context.report.zone_chunks_skipped += 1
                        else:
                            kept += chunk.wire_bytes
                    wire[name] = float(kept)
            else:
                wire[name] = column.bytes_stored * kept_fraction

        simulated_bytes = int(sum(wire.values()) * scale)
        if context.include_scan:
            context.report.scan_seconds += gpu_timing.disk_scan_time(simulated_bytes, context.host)
            context.report.scan_bytes += simulated_bytes
        if context.include_transfer:
            ship = self.columns
            if context.residency is not None:
                # Shared device: columns another query already shipped are
                # resident (keyed by version, so appends re-ship), and this
                # scan pays PCIe only for the cold ones.
                ship = [
                    name
                    for name in self.columns
                    if context.residency.admit(
                        (relation.name, name, relation.column(name).version),
                        wire[name] * scale,
                    )
                ]
            if context.streaming.enabled:
                # Defer the H2D copy: the first kernel touching each column
                # streams its transfer chunk-wise, overlapped with compute.
                for name in ship:
                    context.pending_transfer[name] = (
                        context.pending_transfer.get(name, 0.0) + wire[name] * scale
                    )
            else:
                ship_bytes = int(sum(wire[name] for name in ship) * scale) if ship else 0
                context.report.pcie_seconds += gpu_timing.pcie_time(
                    ship_bytes, context.device
                )
                context.report.pcie_bytes += ship_bytes
        columns = {name: relation.column(name) for name in self.columns}
        context.report.simulated_rows = context.simulate_rows
        return Batch(columns=columns, rows=relation.rows, simulated_rows=float(context.simulate_rows))


class FilterOp(PhysicalOp):
    """Apply WHERE conjuncts; selectivity scales the simulated row count."""

    def __init__(self, predicates: List[Comparison], always_false: bool = False):
        self.predicates = predicates
        #: Plan-time proof that the conjuncts are unsatisfiable (set by the
        #: predicate-simplify rule): no kernel runs, the batch just empties.
        self.always_false = always_false

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        if self.always_false:
            empty = np.empty(0, dtype=np.int64)
            return Batch(
                columns={name: column.take(empty) for name, column in batch.columns.items()},
                rows=0,
                simulated_rows=0.0,
            )
        mask = np.ones(batch.rows, dtype=bool)
        for predicate in self.predicates:
            if predicate.column_rhs is not None:
                mask &= _evaluate_column_predicate(
                    batch.column(predicate.column),
                    predicate.op,
                    batch.column(predicate.column_rhs),
                )
            else:
                column = batch.column(predicate.column)
                encoded = _evaluate_predicate_encoded(column, predicate)
                mask &= (
                    encoded
                    if encoded is not None
                    else _evaluate_predicate(column, predicate)
                )
        indices = np.nonzero(mask)[0]
        selectivity = len(indices) / max(batch.rows, 1)
        # Filter kernel: one pass over each *distinct* predicate column --
        # a column named by several conjuncts is still read only once.
        predicate_columns = {p.column for p in self.predicates}
        predicate_columns.update(p.column_rhs for p in self.predicates if p.column_rhs)
        predicate_bytes = sum(
            batch.column(name).bytes_stored / max(batch.rows, 1)
            for name in predicate_columns
        )
        traffic = predicate_bytes * batch.simulated_rows
        context.report.filter_seconds += traffic / (
            context.device.dram_bandwidth * context.device.dram_efficiency
        ) + context.device.kernel_launch_overhead
        return Batch(
            columns={name: column.take(indices) for name, column in batch.columns.items()},
            rows=len(indices),
            simulated_rows=batch.simulated_rows * selectivity,
        )


class _JoinOp(PhysicalOp):
    """Shared right-side handling for the inner equi-join algorithms.

    The joined relation is scanned and shipped over PCIe like any other
    input.  Build-side predicates (sunk here by the filter-pushdown rule)
    are evaluated *during* that scan -- the evaluation rides the far
    slower disk read, so it charges no extra kernel time -- and only the
    surviving rows' ship columns cross PCIe.  Filtering the build side
    before the join is equivalent to joining then filtering for an inner
    join, and the output keeps the same left-major, right-scan order, so
    results stay bit-exact.
    """

    def __init__(
        self,
        join,
        right_columns: List[str],
        right_predicates: Optional[List[Comparison]] = None,
    ):
        self.join = join
        self.right_columns = right_columns
        self.right_predicates = list(right_predicates or [])

    def _prepare_right(self, context: QueryContext):
        """Scan/filter/ship the right side; returns (relation, keep, sim_rows)."""
        try:
            right_relation = context.joined[self.join.table]
        except KeyError:
            raise ExecutionError(f"joined relation {self.join.table!r} missing") from None
        right_scale = context.simulate_rows / max(right_relation.rows, 1)

        keep: Optional[np.ndarray] = None
        survival = 1.0
        if self.right_predicates:
            mask = np.ones(right_relation.rows, dtype=bool)
            for predicate in self.right_predicates:
                if predicate.column_rhs is not None:
                    mask &= _evaluate_column_predicate(
                        right_relation.column(predicate.column),
                        predicate.op,
                        right_relation.column(predicate.column_rhs),
                    )
                else:
                    mask &= _evaluate_predicate(
                        right_relation.column(predicate.column), predicate
                    )
            keep = np.nonzero(mask)[0]
            survival = len(keep) / max(right_relation.rows, 1)

        # The scan reads ship + predicate columns; PCIe carries only the
        # ship columns of rows that survived the build-side predicates.
        scan_columns = list(self.right_columns)
        for predicate in self.right_predicates:
            for name in (predicate.column, predicate.column_rhs):
                if name is not None and name not in scan_columns:
                    scan_columns.append(name)
        scanned_bytes = int(right_relation.wire_bytes_for(scan_columns) * right_scale)
        ship_bytes = int(
            right_relation.wire_bytes_for(self.right_columns) * right_scale * survival
        )
        if context.include_scan:
            context.report.scan_seconds += gpu_timing.disk_scan_time(
                scanned_bytes, context.host
            )
            context.report.scan_bytes += scanned_bytes
        if context.include_transfer:
            context.report.pcie_seconds += gpu_timing.pcie_time(ship_bytes, context.device)
            context.report.pcie_bytes += ship_bytes

        sim_right = right_relation.rows * right_scale * survival
        return right_relation, keep, sim_right

    def _right_keys(self, right_relation: Relation, keep: Optional[np.ndarray]) -> List:
        column = right_relation.column(self.join.right_column)
        if keep is not None:
            column = column.take(keep)
        return _grouping_key(column)

    def _emit(
        self,
        batch: Batch,
        right_relation: Relation,
        keep: Optional[np.ndarray],
        left_indices: List[int],
        right_indices: List[int],
    ) -> Batch:
        match_ratio = len(left_indices) / max(batch.rows, 1)
        left_take = np.asarray(left_indices, dtype=np.int64)
        right_take = np.asarray(right_indices, dtype=np.int64)
        columns = {
            name: column.take(left_take) for name, column in batch.columns.items()
        }
        for name in self.right_columns:
            if name in columns:
                continue  # left side wins on (unexpected) name collisions
            column = right_relation.column(name)
            if keep is not None:
                column = column.take(keep)
            columns[name] = column.take(right_take)
        return Batch(
            columns=columns,
            rows=len(left_indices),
            simulated_rows=batch.simulated_rows * match_ratio,
        )


class HashJoinOp(_JoinOp):
    """Inner equi-join: hash-build on the joined table, probe the batch.

    The simulated cost covers the right-side scan/transfer, one build pass
    over the right side, and one probe pass over the left batch, both at
    hash-table (random access) bandwidth.
    """

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        right_relation, keep, sim_right = self._prepare_right(context)

        left_keys = _grouping_key(batch.column(self.join.left_column))
        right_keys = self._right_keys(right_relation, keep)

        build: Dict = {}
        for row, key in enumerate(right_keys):
            build.setdefault(key, []).append(row)

        left_indices: List[int] = []
        right_indices: List[int] = []
        for row, key in enumerate(left_keys):
            for match in build.get(key, ()):
                left_indices.append(row)
                right_indices.append(match)

        context.report.filter_seconds += gpu_timing.hash_join_time(
            batch.simulated_rows, sim_right, context.device
        )
        return self._emit(batch, right_relation, keep, left_indices, right_indices)


class NestedLoopJoinOp(_JoinOp):
    """Inner equi-join by exhaustive comparison.

    The cost model picks this over the hash join only when the build side
    is tiny: it saves the build pass and a kernel launch at the price of
    O(left x right) streamed key comparisons.  Matches are emitted in the
    same left-major, right-scan order as the hash join, so the two
    algorithms are interchangeable bit-exactly.
    """

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        right_relation, keep, sim_right = self._prepare_right(context)

        left_keys = _grouping_key(batch.column(self.join.left_column))
        right_keys = self._right_keys(right_relation, keep)

        left_indices: List[int] = []
        right_indices: List[int] = []
        for row, key in enumerate(left_keys):
            for match, right_key in enumerate(right_keys):
                if key == right_key:
                    left_indices.append(row)
                    right_indices.append(match)

        context.report.filter_seconds += gpu_timing.nested_loop_join_time(
            batch.simulated_rows, sim_right, context.device
        )
        return self._emit(batch, right_relation, keep, left_indices, right_indices)


class ProjectOp(PhysicalOp):
    """Evaluate non-aggregate expressions through the JIT engine."""

    def __init__(self, items: List[SelectItem], carry: Optional[List[str]] = None):
        self.items = items
        #: Columns retained alongside the select items (ORDER BY keys that
        #: are not select items; the sort-key-retention rule fills this).
        #: They stay device-resident for the sort, so they are excluded
        #: from the result-transfer charge.
        self.carry = list(carry or [])

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        out: Dict[str, Column] = {}
        for index, item in enumerate(self.items):
            text = item.expression
            assert isinstance(text, str)
            bare = text.strip()
            if bare in batch.columns:
                # Bare column projections (any type) pass straight through.
                column = batch.columns[bare]
                out[item.name] = Column(item.name, column.column_type, column.data)
                continue
            vector = _evaluate_expression(text, batch, context, kernel_name=f"calc_expr_{index}")
            out[item.name] = Column(item.name, DecimalType(vector.spec), vector.to_compact())
        if context.include_transfer:
            result_bytes = sum(
                column.bytes_stored / max(batch.rows, 1) for column in out.values()
            ) * batch.simulated_rows
            context.report.pcie_seconds += gpu_timing.pcie_time(int(result_bytes), context.device)
            context.report.pcie_bytes += result_bytes
        for name in self.carry:
            if name not in out:
                out[name] = batch.column(name)
        return Batch(columns=out, rows=batch.rows, simulated_rows=batch.simulated_rows)


class AggregateOp(PhysicalOp):
    """Ungrouped aggregation via the multi-threaded multi-pass reducer."""

    def __init__(self, items: List[SelectItem]):
        self.items = items

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        out: Dict[str, Column] = {}
        sim_n = max(int(round(batch.simulated_rows)), 1)
        for index, item in enumerate(self.items):
            call = item.expression
            assert isinstance(call, AggregateCall)
            if call.function == "COUNT":
                spec = inference.count_spec(sim_n)
                out[item.name] = Column.decimal_from_unscaled(item.name, [batch.rows], spec)
                continue
            vector = _evaluate_expression(
                call.argument, batch, context, kernel_name=f"agg_expr_{index}"
            )
            started = time.perf_counter()
            unscaled = vector.to_unscaled()
            context.report.data_plane_seconds += time.perf_counter() - started
            run = mt_aggregation.aggregate(
                unscaled,
                vector.spec,
                op=call.function.lower(),
                tpi=context.tpi,
                device=context.device,
                simulate_tuples=sim_n,
            )
            context.report.aggregate_seconds += run.seconds
            out[item.name] = Column.decimal_from_unscaled(item.name, [run.value], run.spec)
        return Batch(columns=out, rows=1, simulated_rows=1.0)


#: Effective bandwidth of the grouped-aggregation data reorganisation:
#: segment gather/scatter of wide decimal payloads after the key sort is
#: far from streaming speed.  Calibrated on Figure 14(b)'s Q1 LEN sweep.
GROUP_GATHER_BANDWIDTH = 4.0e9


class GroupAggregateOp(PhysicalOp):
    """GROUP BY + aggregates.

    Tuples are grouped by sorting on the key columns (DECIMAL keys compare
    via the comparison operators of section III-A); each group reduces with
    the multi-pass aggregation.  The simulated cost adds the key sort, a
    per-aggregate payload gather (every value moves into its group's
    segment), and the multi-pass reduction itself.
    """

    def __init__(self, group_by: List[str], items: List[SelectItem]):
        self.group_by = group_by
        self.items = items

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        keys = [_grouping_key(batch.column(name)) for name in self.group_by]
        rows = batch.rows
        composite = list(zip(*keys)) if keys else [()] * rows
        group_order: Dict[Tuple, List[int]] = {}
        for row, key in enumerate(composite):
            group_order.setdefault(key, []).append(row)
        groups = sorted(group_order)

        sim_n = max(int(round(batch.simulated_rows)), 1)
        # Sort cost over the key bytes + aggregation passes over all rows.
        key_bytes = sum(
            batch.column(name).bytes_stored / max(rows, 1) for name in self.group_by
        )
        sort_passes = max(1, int(math.log2(max(sim_n, 2)) / 8))
        context.report.sort_seconds += (
            sort_passes * key_bytes * batch.simulated_rows
        ) / (context.device.dram_bandwidth * context.device.dram_efficiency)

        out: Dict[str, List] = {name: [] for name in self.group_by}
        aggregate_columns: Dict[str, Tuple[List[int], DecimalSpec]] = {}

        # Evaluate each aggregate's input expression once over all rows.
        vectors: Dict[int, Tuple[List[int], DecimalSpec]] = {}
        for index, item in enumerate(self.items):
            call = item.expression
            assert isinstance(call, AggregateCall)
            if call.function != "COUNT":
                vector = _evaluate_expression(
                    call.argument, batch, context, kernel_name=f"agg_expr_{index}"
                )
                started = time.perf_counter()
                vectors[index] = (vector.to_unscaled(), vector.spec)
                context.report.data_plane_seconds += time.perf_counter() - started
                # Payload gather: every (4*Lw+1)-byte value moves into its
                # group segment before the blockwise reduction.
                value_bytes = 4 * vector.spec.words + 1
                context.report.aggregate_seconds += (
                    batch.simulated_rows * value_bytes / GROUP_GATHER_BANDWIDTH
                )

        group_sim = sim_n / max(len(groups), 1)
        for key in groups:
            indices = group_order[key]
            for position, name in enumerate(self.group_by):
                out[name].append(key[position])
            for index, item in enumerate(self.items):
                call = item.expression
                assert isinstance(call, AggregateCall)
                if call.function == "COUNT":
                    values, spec = aggregate_columns.setdefault(
                        item.name, ([], inference.count_spec(sim_n))
                    )
                    values.append(len(indices))
                    continue
                unscaled, spec = vectors[index]
                subset = [unscaled[i] for i in indices]
                run = mt_aggregation.aggregate(
                    subset,
                    spec,
                    op=call.function.lower(),
                    tpi=context.tpi,
                    device=context.device,
                    simulate_tuples=max(int(group_sim), 1),
                )
                context.report.aggregate_seconds += run.seconds
                values, _spec = aggregate_columns.setdefault(item.name, ([], run.spec))
                values.append(run.value)

        # Zero-group inputs (everything filtered away) still need typed,
        # empty output columns.
        for index, item in enumerate(self.items):
            if item.name in aggregate_columns:
                continue
            call = item.expression
            if call.function == "COUNT":
                aggregate_columns[item.name] = ([], inference.count_spec(sim_n))
            else:
                _values, spec = vectors[index]
                aggregate_columns[item.name] = ([], inference.sum_result(spec, sim_n))

        columns: Dict[str, Column] = {}
        for name in self.group_by:
            columns[name] = _column_from_keys(name, out[name], batch.column(name))
        for item in self.items:
            values, spec = aggregate_columns[item.name]
            columns[item.name] = Column.decimal_from_unscaled(item.name, values, spec)
        return Batch(columns=columns, rows=len(groups), simulated_rows=float(len(groups)))


class LimitOp(PhysicalOp):
    """LIMIT n over the (already ordered) result batch."""

    def __init__(self, count: int):
        if count < 0:
            raise PlanningError(f"LIMIT must be non-negative, got {count}")
        self.count = count

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        keep = min(self.count, batch.rows)
        return Batch(
            columns={name: column.head(keep) for name, column in batch.columns.items()},
            rows=keep,
            simulated_rows=float(keep),
        )


class SortOp(PhysicalOp):
    """ORDER BY over the (small) result batch."""

    def __init__(self, keys: List[OrderKey]):
        self.keys = keys

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        assert batch is not None
        order = np.arange(batch.rows)
        for key in reversed(self.keys):
            column = batch.column(key.column)
            values = _sort_values(column)
            data = np.asarray(values)[order]
            ranks = np.argsort(data, kind="stable")
            if not key.ascending:
                # Reversing the ascending permutation would also reverse the
                # relative order of equal keys, breaking the multi-key
                # stability this loop depends on.  Instead, invert the sort
                # key itself: densely rank the values (ties share a rank,
                # which also works for non-negatable dtypes like CHAR bytes)
                # and stable-sort on the negated ranks.
                ranked = np.empty(len(ranks), dtype=np.int64)
                if len(ranks):
                    ordered = data[ranks]
                    distinct = np.ones(len(ranks), dtype=bool)
                    distinct[1:] = ordered[1:] != ordered[:-1]
                    ranked[ranks] = np.cumsum(distinct) - 1
                ranks = np.argsort(-ranked, kind="stable")
            order = order[ranks]
        context.report.sort_seconds += context.device.kernel_launch_overhead
        return Batch(
            columns={name: column.take(order) for name, column in batch.columns.items()},
            rows=batch.rows,
            simulated_rows=batch.simulated_rows,
        )


class DropOp(PhysicalOp):
    """Remove carried helper columns once their consumer (the sort) ran."""

    def __init__(self, columns: List[str]):
        self.columns = columns

    def run(self, batch: Optional[Batch], context: QueryContext) -> Batch:
        dropped = set(self.columns)
        assert batch is not None
        return Batch(
            columns={
                name: column
                for name, column in batch.columns.items()
                if name not in dropped
            },
            rows=batch.rows,
            simulated_rows=batch.simulated_rows,
        )


# ------------------------------------------------------------------ helpers


def _evaluate_expression(
    text: str, batch: Batch, context: QueryContext, kernel_name: str
) -> DecimalVector:
    """JIT-compile and run one expression kernel over the batch.

    A bare column reference needs no kernel at all: the aggregation
    operators (section III-E2) consume the compact column directly, so no
    JIT compilation is charged.
    """
    bare = text.strip()
    if bare in batch.columns and isinstance(
        batch.columns[bare].column_type, DecimalType
    ):
        # No kernel to overlap with: a deferred transfer ships serially.
        _flush_pending_transfer(context, [bare])
        started = time.perf_counter()
        vector = batch.columns[bare].decimal_vector()
        context.report.data_plane_seconds += time.perf_counter() - started
        return vector
    schema = {
        name: column.column_type.spec
        for name, column in batch.columns.items()
        if isinstance(column.column_type, DecimalType)
    }
    compiled, cached = context.kernel_cache.compile(
        text, schema, context.jit_options, name=kernel_name
    )
    if cached:
        context.report.kernels_cached += 1
    else:
        if context.include_compile:
            # The NVRTC startup base is charged once per query, on the
            # first kernel compiled.
            include_base = context.report.kernels_compiled == 0
            context.report.compile_seconds += gpu_timing.compile_time(
                [compiled.kernel], include_base=include_base
            )
        context.report.kernels_compiled += 1
    inputs = {
        name: batch.column(name).data for name in compiled.kernel.input_columns
    }
    sim = max(int(round(batch.simulated_rows)), 1)
    if context.streaming.enabled:
        return _execute_streamed_kernel(compiled.kernel, inputs, batch, sim, context)
    started = time.perf_counter()
    run = gpu_executor.execute(
        compiled.kernel, inputs, batch.rows, device=context.device, simulate_tuples=sim
    )
    elapsed = time.perf_counter() - started
    context.report.kernel_seconds += run.timing.seconds
    context.report.data_plane_seconds += elapsed
    context.report.kernel_executions.append(
        KernelExecution(
            name=compiled.kernel.name,
            expression=compiled.kernel.expression_sql,
            chunks=1,
            streamed=False,
            transfer_seconds_per_chunk=0.0,
            kernel_seconds_per_chunk=run.timing.seconds,
            serial_seconds=run.timing.seconds,
            pipelined_seconds=run.timing.seconds,
            data_plane_seconds=elapsed,
            occupancy=run.timing.occupancy.occupancy,
        )
    )
    return run.result


def _execute_streamed_kernel(
    kernel, inputs: Dict[str, np.ndarray], batch: Batch, sim: int, context: QueryContext
) -> DecimalVector:
    """Run one kernel through the chunked streaming path.

    Only columns not yet resident on the device (their scan-time transfer
    is still pending) contribute to the overlapped H2D copy; the report
    splits the pipelined total into pure compute (``kernel_seconds``) and
    the exposed, non-overlapped transfer remainder (``pcie_seconds``), so
    ``report.total_seconds`` reflects the pipelined time.
    """
    transfer_bytes = 0.0
    if context.include_transfer:
        for column in kernel.input_columns:
            transfer_bytes += context.pending_transfer.pop(column, 0.0)
        context.report.pcie_bytes += transfer_bytes
    if context.cost_model is not None and context.optimizer.choose_streaming:
        chunk_rows = context.cost_model.choose_chunk_rows(
            kernel, sim, context.streaming, transfer_bytes
        )
    else:
        chunk_rows = context.streaming.resolve_chunk_rows(kernel, context.device, sim)
    started = time.perf_counter()
    run = execute_streamed(
        kernel,
        inputs,
        batch.rows,
        simulate_tuples=sim,
        chunk_rows=chunk_rows,
        device=context.device,
        transfer_bytes=int(transfer_bytes),
    )
    elapsed = time.perf_counter() - started
    compute_total = run.kernel_seconds_per_chunk * run.chunks
    context.report.kernel_seconds += compute_total
    context.report.pcie_seconds += max(run.pipelined_seconds - compute_total, 0.0)
    context.report.data_plane_seconds += elapsed
    context.report.kernel_executions.append(
        KernelExecution(
            name=kernel.name,
            expression=kernel.expression_sql,
            chunks=run.chunks,
            streamed=True,
            transfer_seconds_per_chunk=run.transfer_seconds_per_chunk,
            kernel_seconds_per_chunk=run.kernel_seconds_per_chunk,
            serial_seconds=run.serial_seconds,
            pipelined_seconds=run.pipelined_seconds,
            data_plane_seconds=elapsed,
            occupancy=gpu_occupancy.compute(kernel, context.device).occupancy,
        )
    )
    return run.result


def _flush_pending_transfer(context: QueryContext, columns) -> None:
    """Serially charge deferred transfers for columns used outside a kernel."""
    if not context.include_transfer:
        return
    pending = sum(context.pending_transfer.pop(name, 0.0) for name in columns)
    if pending:
        context.report.pcie_seconds += gpu_timing.pcie_time(int(pending), context.device)
        context.report.pcie_bytes += pending


def _zone_skip_mask(
    relation: Relation, predicates: List[Comparison]
) -> Optional[np.ndarray]:
    """Rows living in chunks some zone map proves empty, or None.

    Only literal conjuncts over codec-carrying DECIMAL columns contribute;
    a chunk is skippable when any conjunct's zone verdict is ``False``
    (no row in the chunk can satisfy it, hence none can satisfy the
    conjunction).
    """
    skip: Optional[np.ndarray] = None
    for predicate in predicates:
        if predicate.column_rhs is not None or predicate.column not in relation:
            continue
        column = relation.column(predicate.column)
        if column.codec is None or not isinstance(column.column_type, DecimalType):
            continue
        spec = column.column_type.spec
        target = DecimalValue.from_literal(str(predicate.literal), spec).unscaled
        for zone in column.encoding().zones:
            if zone.evaluate(predicate.op, target) is False:
                if skip is None:
                    skip = np.zeros(relation.rows, dtype=bool)
                skip[zone.row_start : zone.row_stop] = True
    return skip


def _order_to_mask(order: np.ndarray, op: str) -> np.ndarray:
    if op == "=":
        return order == 0
    if op == "<>":
        return order != 0
    if op == "<":
        return order < 0
    if op == "<=":
        return order <= 0
    if op == ">":
        return order > 0
    return order >= 0


def _evaluate_predicate_encoded(
    column: Column, predicate: Comparison
) -> Optional[np.ndarray]:
    """Evaluate ``column <op> literal`` on encoded bytes, before expansion.

    Applies only when the column carries an order-preserving codec and the
    scan already materialised its encoding (never pay an encode just to
    filter).  Chunks whose zone map decides the predicate outright skip
    per-row work; mixed chunks compare encoded bytes against the encoded
    literal, which by the order-preserving property equals the numeric
    comparison -- so the mask is bit-identical to the expanded path's.
    Returns None when the encoded path does not apply.
    """
    if not isinstance(column.column_type, DecimalType):
        return None
    codec = column.codec
    if codec is None or not codec.order_preserving:
        return None
    encoding = column.cached_encoding()
    if encoding is None:
        return None
    op = predicate.op
    if op not in ("=", "<>", "<", "<=", ">", ">="):
        return None
    spec = column.column_type.spec
    target = DecimalValue.from_literal(str(predicate.literal), spec).unscaled
    try:
        literal = codec.encode_literal(target, spec)
    except StorageError:
        return None
    mask = np.zeros(column.rows, dtype=bool)
    for chunk in encoding.chunks:
        verdict = chunk.zone.evaluate(op, target)
        rows = slice(chunk.zone.row_start, chunk.zone.row_stop)
        if verdict is True:
            mask[rows] = True
        elif verdict is None:
            mask[rows] = _order_to_mask(codec.compare_chunk(chunk, literal), op)
    return mask


def _evaluate_predicate(column: Column, predicate: Comparison) -> np.ndarray:
    """Evaluate ``column <op> literal`` to a boolean mask."""
    op = predicate.op
    literal = predicate.literal
    column_type = column.column_type
    if isinstance(column_type, DecimalType):
        spec = column_type.spec
        target = DecimalValue.from_literal(str(literal), spec).unscaled
        values = np.array(column.unscaled(), dtype=object)
        lhs = values
        rhs = target
    elif isinstance(column_type, DateType):
        rhs = _parse_date(literal) if isinstance(literal, str) else int(literal)
        lhs = column.data
    elif isinstance(column_type, CharType):
        # Stored CHAR values are space-padded to the declared width.
        rhs = str(literal).ljust(column_type.width).encode()
        lhs = column.data
    else:
        rhs = literal
        lhs = column.data
    if op == "=":
        return lhs == rhs
    if op == "<>":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ExecutionError(f"unsupported comparison {op!r}")


def _evaluate_column_predicate(left: Column, op: str, right: Column) -> np.ndarray:
    """Evaluate ``left <op> right`` between two columns.

    DECIMAL columns compare exactly with scale alignment (the comparison
    operators of section III-A); other types compare on their raw values.
    """
    if isinstance(left.column_type, DecimalType) and isinstance(
        right.column_type, DecimalType
    ):
        from repro.core.decimal import vectorized as _vz

        order = _vz.compare(left.decimal_vector(), right.decimal_vector())
        comparisons = {
            "=": order == 0,
            "<>": order != 0,
            "<": order < 0,
            "<=": order <= 0,
            ">": order > 0,
            ">=": order >= 0,
        }
        try:
            return comparisons[op]
        except KeyError:
            raise ExecutionError(f"unsupported comparison {op!r}") from None
    lhs, rhs = left.data, right.data
    if op == "=":
        return lhs == rhs
    if op == "<>":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ExecutionError(f"unsupported comparison {op!r}")


def _parse_date(text: str) -> int:
    """'YYYY-MM-DD' -> days since 1992-01-01 (the TPC-H epoch here)."""
    import datetime

    parsed = datetime.date.fromisoformat(text)
    return (parsed - datetime.date(1992, 1, 1)).days


def _grouping_key(column: Column) -> List:
    if isinstance(column.column_type, DecimalType):
        return column.unscaled()
    if isinstance(column.column_type, CharType):
        return [value.decode().rstrip() for value in column.data.tolist()]
    return column.data.tolist()


def _column_from_keys(name: str, values: List, template: Column) -> Column:
    if isinstance(template.column_type, DecimalType):
        return Column.decimal_from_unscaled(name, values, template.column_type.spec)
    if isinstance(template.column_type, CharType):
        return Column.chars(name, [str(v) for v in values], template.column_type.width)
    if isinstance(template.column_type, DateType):
        return Column.dates(name, values)
    if isinstance(template.column_type, DoubleType):
        return Column.doubles(name, values)
    return Column.integers(name, values)


def _sort_values(column: Column) -> List:
    if isinstance(column.column_type, DecimalType):
        return column.unscaled()
    return column.data.tolist()
