"""Projection-side rules: sort-key retention and column pruning.

``SortKeyRetentionRule`` is a *correctness* pass and always runs: a
``SELECT a FROM r ORDER BY k`` plan must carry ``k`` through the
projection (it is not a select item) and drop it again once the sort has
consumed it.  ``ProjectionPruningRule`` is the optimisation counterpart:
any column no operator above references is removed from the scan and from
join ship sets, which directly shrinks the simulated scan/PCIe volume the
streaming residency model charges.
"""

from __future__ import annotations

from typing import List, Set

from repro.engine.plan.logical import (
    LogicalAggregate,
    LogicalDrop,
    LogicalFilter,
    LogicalHaving,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    _mentions,
)
from repro.engine.plan.rules import RewriteRule


def _node_references(node: LogicalNode, candidates: Set[str]) -> Set[str]:
    """Columns of ``candidates`` that ``node`` itself consumes."""
    used: Set[str] = set()
    if isinstance(node, (LogicalFilter, LogicalHaving)):
        for predicate in node.predicates:
            used.add(predicate.column)
            if predicate.column_rhs is not None:
                used.add(predicate.column_rhs)
    elif isinstance(node, LogicalJoin):
        used.add(node.join.left_column)
        used.add(node.join.right_column)
    elif isinstance(node, LogicalProject):
        for item in node.items:
            text = str(item.expression)
            used.update(name for name in candidates if _mentions(text, name))
        used.update(node.carry)
    elif isinstance(node, LogicalAggregate):
        for item in node.aggregates:
            text = item.expression.argument if item.is_aggregate else str(item.expression)
            used.update(name for name in candidates if _mentions(text, name))
        used.update(node.group_by)
    elif isinstance(node, LogicalSort):
        used.update(key.column for key in node.keys)
    return used & candidates if candidates else used


class SortKeyRetentionRule(RewriteRule):
    """Carry ORDER BY keys through the projection, drop them after the sort."""

    name = "sort-key-retention"

    def apply(self, nodes: List[LogicalNode], stats=None):
        project_index = next(
            (i for i, node in enumerate(nodes) if isinstance(node, LogicalProject)), None
        )
        sort_index = next(
            (i for i, node in enumerate(nodes) if isinstance(node, LogicalSort)), None
        )
        if project_index is None or sort_index is None or sort_index < project_index:
            return None
        project = nodes[project_index]
        sort = nodes[sort_index]
        outputs = {item.name for item in project.items}
        below: Set[str] = set()
        for node in nodes[:project_index]:
            if isinstance(node, LogicalScan):
                below.update(node.columns)
            elif isinstance(node, LogicalJoin):
                below.update(node.right_columns)
        missing = [
            key.column
            for key in sort.keys
            if key.column not in outputs
            and key.column not in project.carry
            and key.column in below
        ]
        if not missing:
            return None
        project.carry = list(project.carry) + missing
        drop_index = sort_index + 1
        if drop_index < len(nodes) and isinstance(nodes[drop_index], LogicalDrop):
            drop = nodes[drop_index]
            drop.columns = list(drop.columns) + missing
        else:
            nodes = nodes[:drop_index] + [LogicalDrop(list(missing))] + nodes[drop_index:]
        return nodes, f"carried sort key(s) {', '.join(missing)} through the projection"


class ProjectionPruningRule(RewriteRule):
    """Remove columns nothing above references from scan / join ship sets."""

    name = "projection-pruning"

    def apply(self, nodes: List[LogicalNode], stats=None):
        pruned: List[str] = []
        for index, node in enumerate(nodes):
            if isinstance(node, LogicalScan):
                keep = self._needed_above(nodes, index, set(node.columns))
                dropped = [c for c in node.columns if c not in keep]
                if dropped:
                    node.columns = [c for c in node.columns if c in keep]
                    pruned.extend(f"{c} (scan)" for c in dropped)
            elif isinstance(node, LogicalJoin):
                candidates = set(node.right_columns)
                keep = self._needed_above(nodes, index, candidates)
                # The build key must reach the device for the probe itself.
                keep.add(node.join.right_column)
                dropped = [c for c in node.right_columns if c not in keep]
                if dropped:
                    node.right_columns = [c for c in node.right_columns if c in keep]
                    pruned.extend(f"{c} ({node.join.table} ship set)" for c in dropped)
        if not pruned:
            return None
        return nodes, "pruned " + ", ".join(pruned)

    @staticmethod
    def _needed_above(nodes: List[LogicalNode], index: int, candidates: Set[str]) -> Set[str]:
        needed: Set[str] = set()
        for node in nodes[index + 1 :]:
            needed |= _node_references(node, candidates)
        # The node's own join keys count too (the scan feeds the probe key).
        node = nodes[index]
        if isinstance(node, LogicalJoin):
            needed.add(node.join.right_column)
        return needed
