"""Filter pushdown: move WHERE conjuncts below joins, and into build sides.

For the inner equi-joins this engine supports, a conjunct commutes with
every join above the relation that owns its columns, so each predicate
sinks to the lowest slot where its columns exist:

* columns from the scanned (left) table -> a filter directly above the
  scan, so fewer rows enter every join;
* columns from one joined table -> the join's *build side*: the predicate
  is evaluated while that table is scanned, and only surviving rows are
  shipped over PCIe -- the transfer-volume lever the streaming model
  (DESIGN.md section 5) is bound by;
* mixed-table conjuncts -> the lowest join under which both sides exist.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.plan.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalScan,
)
from repro.engine.plan.rules import RewriteRule
from repro.engine.sql.ast_nodes import Comparison


def _predicate_columns(predicate: Comparison) -> List[str]:
    columns = [predicate.column]
    if predicate.column_rhs is not None:
        columns.append(predicate.column_rhs)
    return columns


class FilterPushdownRule(RewriteRule):
    """Sink WHERE conjuncts to their lowest legal plan position."""

    name = "filter-pushdown"

    def apply(self, nodes: List[LogicalNode], stats=None):
        if not nodes or not isinstance(nodes[0], LogicalScan):
            return None
        scan = nodes[0]
        # The rewritable section: the leading run of joins and filters.
        section_end = 1
        while section_end < len(nodes) and isinstance(
            nodes[section_end], (LogicalJoin, LogicalFilter)
        ):
            section_end += 1
        section = nodes[1:section_end]
        joins = [node for node in section if isinstance(node, LogicalJoin)]
        filters = [node for node in section if isinstance(node, LogicalFilter)]
        if not filters or not joins:
            return None
        if any(f.always_false for f in filters):
            return None  # the plan is already empty below this point

        def build_columns(join: LogicalJoin) -> set:
            """Columns readable on the join's build (right) side."""
            columns = set(join.right_columns)
            columns.add(join.join.right_column)
            for predicate in join.right_predicates:
                columns.update(_predicate_columns(predicate))
            return columns

        # Columns available in the flowing batch after the scan / each join.
        available = [set(scan.columns)]
        for join in joins:
            available.append(available[-1] | set(join.right_columns))

        # Slot every predicate (slot k = directly above join k; 0 = above scan).
        slots: List[List[Comparison]] = [[] for _ in range(len(joins) + 1)]
        build: List[List[Comparison]] = [[] for _ in joins]
        for node in filters:
            for predicate in node.predicates:
                columns = set(_predicate_columns(predicate))
                placed = False
                for index, join in enumerate(joins):
                    if columns <= build_columns(join):
                        build[index].append(predicate)
                        placed = True
                        break
                if placed:
                    continue
                for slot, have in enumerate(available):
                    if columns <= have:
                        slots[slot].append(predicate)
                        placed = True
                        break
                if not placed:
                    # Unresolvable columns: keep the conjunct at the top slot
                    # so execution reports the missing column, not the planner.
                    slots[-1].append(predicate)

        old_signature = self._signature([scan, *section])
        rebuilt_signature = self._rebuilt_signature(scan, joins, slots, build)
        if rebuilt_signature == old_signature:
            return None

        # Rebuild the section: scan, [filter], join1(+build preds), [filter], ...
        rebuilt: List[LogicalNode] = [scan]
        if slots[0]:
            rebuilt.append(LogicalFilter(slots[0]))
        for index, join in enumerate(joins):
            if build[index]:
                join.right_predicates = list(join.right_predicates) + build[index]
            rebuilt.append(join)
            if slots[index + 1]:
                rebuilt.append(LogicalFilter(slots[index + 1]))
        new_nodes = rebuilt + nodes[section_end:]

        details = []
        pushed_build = sum(len(group) for group in build)
        if pushed_build:
            details.append(f"{pushed_build} conjunct(s) into join build side(s)")
        below = sum(len(slot) for slot in slots[:-1])
        if below:
            details.append(f"{below} conjunct(s) below join(s)")
        detail = "pushed " + ", ".join(details) if details else "merged filter placement"
        return new_nodes, detail

    @staticmethod
    def _signature(nodes: List[LogicalNode]) -> Tuple:
        parts: List[Tuple] = []
        for node in nodes:
            if isinstance(node, LogicalScan):
                parts.append(("scan",))
            elif isinstance(node, LogicalFilter):
                parts.append(("filter", tuple(id(p) for p in node.predicates)))
            elif isinstance(node, LogicalJoin):
                parts.append(
                    ("join", node.join.table, tuple(id(p) for p in node.right_predicates))
                )
        return tuple(parts)

    @staticmethod
    def _rebuilt_signature(scan, joins, slots, build) -> Tuple:
        parts: List[Tuple] = [("scan",)]
        if slots[0]:
            parts.append(("filter", tuple(id(p) for p in slots[0])))
        for index, join in enumerate(joins):
            predicates = tuple(id(p) for p in list(join.right_predicates) + build[index])
            parts.append(("join", join.join.table, predicates))
            if slots[index + 1]:
                parts.append(("filter", tuple(id(p) for p in slots[index + 1])))
        return tuple(parts)
