"""Rewrite-rule engine over the logical plan (DBSim ``planners/rules`` style).

A :class:`RewriteRule` inspects the bottom-up logical node list and either
returns a rewritten list plus a human-readable detail, or ``None`` when it
has nothing to do.  :func:`apply_rules` drives the rule set to a fixpoint
and records a :class:`RewriteEvent` per firing -- the trace EXPLAIN prints
under ``rewrites:``.  Each event also carries structural before/after
snapshots of the node list (:func:`snapshot_nodes`) so the plan analyzer's
rewrite-soundness pass (``repro.analysis.plan.rewrite_audit``) can verify
rule-specific invariants after the fact; the snapshots are plain tuples
because the rules mutate nodes in place.

The stock rule set:

* :class:`~repro.engine.plan.rules.predicates.PredicateSimplifyRule` --
  dedupe / range-tighten / contradiction-prove WHERE conjuncts;
* :class:`~repro.engine.plan.rules.join_order.JoinReorderRule` -- reorder
  multi-join runs by estimated intermediate cardinality (statistics-fed,
  aggregate-gated for bit-exactness);
* :class:`~repro.engine.plan.rules.pushdown.FilterPushdownRule` -- move
  conjuncts below joins, and into a join's build side where possible;
* :class:`~repro.engine.plan.rules.projection.SortKeyRetentionRule` --
  carry ORDER BY keys through the projection (always on: correctness);
* :class:`~repro.engine.plan.rules.projection.ProjectionPruningRule` --
  drop unreferenced columns from scan and join ship sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.plan.logical import (
    LogicalAggregate,
    LogicalDrop,
    LogicalFilter,
    LogicalHaving,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)

#: A structural snapshot of one logical node: a plain tuple whose first
#: element names the node kind.  Predicates appear as
#: ``(column, op, str(literal), column_rhs)`` 4-tuples so the audit pass
#: can reason about conjunct multisets and column placement without
#: holding references to the (mutable) live nodes.
NodeSnapshot = Tuple[object, ...]


def _predicate_snapshot(predicate) -> Tuple[str, str, str, Optional[str]]:
    return (
        predicate.column,
        predicate.op,
        str(predicate.literal),
        predicate.column_rhs,
    )


def snapshot_nodes(nodes: List[LogicalNode]) -> Tuple[NodeSnapshot, ...]:
    """Deep-copy the *structure* of a bottom-up node list into tuples.

    Taken eagerly before/after each rule firing because every stock rule
    mutates nodes in place (pushdown sets ``join.right_predicates``,
    pruning shrinks ``scan.columns`` ...), so a list of node references
    would silently reflect later rewrites.
    """
    snapshots: List[NodeSnapshot] = []
    for node in nodes:
        if isinstance(node, LogicalScan):
            snapshots.append(("scan", node.table, tuple(node.columns)))
        elif isinstance(node, LogicalJoin):
            snapshots.append(
                (
                    "join",
                    node.join.table,
                    node.join.left_column,
                    node.join.right_column,
                    tuple(node.right_columns),
                    tuple(_predicate_snapshot(p) for p in node.right_predicates),
                )
            )
        elif isinstance(node, LogicalFilter):
            snapshots.append(
                (
                    "filter",
                    tuple(_predicate_snapshot(p) for p in node.predicates),
                    node.always_false,
                )
            )
        elif isinstance(node, LogicalHaving):
            snapshots.append(
                ("having", tuple(_predicate_snapshot(p) for p in node.predicates))
            )
        elif isinstance(node, LogicalProject):
            snapshots.append(
                (
                    "project",
                    tuple(item.name for item in node.items),
                    tuple(str(item.expression) for item in node.items),
                    tuple(node.carry),
                )
            )
        elif isinstance(node, LogicalDrop):
            snapshots.append(("drop", tuple(node.columns)))
        elif isinstance(node, LogicalAggregate):
            snapshots.append(
                (
                    "aggregate",
                    tuple(item.name for item in node.aggregates),
                    tuple(str(item.expression) for item in node.aggregates),
                    tuple(node.group_by),
                )
            )
        elif isinstance(node, LogicalSort):
            snapshots.append(
                ("sort", tuple((key.column, key.ascending) for key in node.keys))
            )
        elif isinstance(node, LogicalLimit):
            snapshots.append(("limit", node.count))
        else:  # pragma: no cover - future node kinds degrade gracefully
            snapshots.append(("node", type(node).__name__))
    return tuple(snapshots)


@dataclass
class RewriteEvent:
    """One rule firing: which rule, what it changed, and plan snapshots
    bracketing the change (consumed by the rewrite-soundness audit)."""

    rule: str
    detail: str
    before: Optional[Tuple[NodeSnapshot, ...]] = None
    after: Optional[Tuple[NodeSnapshot, ...]] = None

    def format(self) -> str:
        return f"{self.rule}: {self.detail}"


class RewriteRule:
    """Base class: transform the bottom-up node list or decline."""

    name = "rewrite"

    def apply(
        self, nodes: List[LogicalNode], stats=None
    ) -> Optional[Tuple[List[LogicalNode], str]]:
        raise NotImplementedError


#: Safety bound on fixpoint iteration; every stock rule is idempotent so
#: two passes normally suffice.
MAX_PASSES = 8


def apply_rules(
    nodes: List[LogicalNode],
    rules: List[RewriteRule],
    stats=None,
) -> Tuple[List[LogicalNode], List[RewriteEvent]]:
    """Run ``rules`` to a fixpoint over the node list."""
    events: List[RewriteEvent] = []
    before = snapshot_nodes(nodes)
    for _ in range(MAX_PASSES):
        fired = False
        for rule in rules:
            result = rule.apply(nodes, stats)
            if result is not None:
                nodes, detail = result
                after = snapshot_nodes(nodes)
                events.append(RewriteEvent(rule.name, detail, before, after))
                before = after
                fired = True
        if not fired:
            break
    return nodes, events


def default_rules(
    optimize: bool = True, reorder_joins: bool = True
) -> List[RewriteRule]:
    """The stock rule set; with ``optimize=False`` only the always-on
    correctness passes (sort-key retention) remain."""
    from repro.engine.plan.rules.join_order import JoinReorderRule
    from repro.engine.plan.rules.predicates import PredicateSimplifyRule
    from repro.engine.plan.rules.projection import (
        ProjectionPruningRule,
        SortKeyRetentionRule,
    )
    from repro.engine.plan.rules.pushdown import FilterPushdownRule

    if not optimize:
        return [SortKeyRetentionRule()]
    rules: List[RewriteRule] = [PredicateSimplifyRule()]
    if reorder_joins:
        # Before pushdown: the reorder hoists interleaved loose filters
        # above the joins, and pushdown re-sinks them on the same pass.
        rules.append(JoinReorderRule())
    rules.extend(
        [
            FilterPushdownRule(),
            SortKeyRetentionRule(),
            ProjectionPruningRule(),
        ]
    )
    return rules
