"""Rewrite-rule engine over the logical plan (DBSim ``planners/rules`` style).

A :class:`RewriteRule` inspects the bottom-up logical node list and either
returns a rewritten list plus a human-readable detail, or ``None`` when it
has nothing to do.  :func:`apply_rules` drives the rule set to a fixpoint
and records a :class:`RewriteEvent` per firing -- the trace EXPLAIN prints
under ``rewrites:``.

The stock rule set:

* :class:`~repro.engine.plan.rules.predicates.PredicateSimplifyRule` --
  dedupe / range-tighten / contradiction-prove WHERE conjuncts;
* :class:`~repro.engine.plan.rules.join_order.JoinReorderRule` -- reorder
  multi-join runs by estimated intermediate cardinality (statistics-fed,
  aggregate-gated for bit-exactness);
* :class:`~repro.engine.plan.rules.pushdown.FilterPushdownRule` -- move
  conjuncts below joins, and into a join's build side where possible;
* :class:`~repro.engine.plan.rules.projection.SortKeyRetentionRule` --
  carry ORDER BY keys through the projection (always on: correctness);
* :class:`~repro.engine.plan.rules.projection.ProjectionPruningRule` --
  drop unreferenced columns from scan and join ship sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.plan.logical import LogicalNode


@dataclass
class RewriteEvent:
    """One rule firing: which rule, and what it changed."""

    rule: str
    detail: str

    def format(self) -> str:
        return f"{self.rule}: {self.detail}"


class RewriteRule:
    """Base class: transform the bottom-up node list or decline."""

    name = "rewrite"

    def apply(
        self, nodes: List[LogicalNode], stats=None
    ) -> Optional[Tuple[List[LogicalNode], str]]:
        raise NotImplementedError


#: Safety bound on fixpoint iteration; every stock rule is idempotent so
#: two passes normally suffice.
MAX_PASSES = 8


def apply_rules(
    nodes: List[LogicalNode],
    rules: List[RewriteRule],
    stats=None,
) -> Tuple[List[LogicalNode], List[RewriteEvent]]:
    """Run ``rules`` to a fixpoint over the node list."""
    events: List[RewriteEvent] = []
    for _ in range(MAX_PASSES):
        fired = False
        for rule in rules:
            result = rule.apply(nodes, stats)
            if result is not None:
                nodes, detail = result
                events.append(RewriteEvent(rule.name, detail))
                fired = True
        if not fired:
            break
    return nodes, events


def default_rules(
    optimize: bool = True, reorder_joins: bool = True
) -> List[RewriteRule]:
    """The stock rule set; with ``optimize=False`` only the always-on
    correctness passes (sort-key retention) remain."""
    from repro.engine.plan.rules.join_order import JoinReorderRule
    from repro.engine.plan.rules.predicates import PredicateSimplifyRule
    from repro.engine.plan.rules.projection import (
        ProjectionPruningRule,
        SortKeyRetentionRule,
    )
    from repro.engine.plan.rules.pushdown import FilterPushdownRule

    if not optimize:
        return [SortKeyRetentionRule()]
    rules: List[RewriteRule] = [PredicateSimplifyRule()]
    if reorder_joins:
        # Before pushdown: the reorder hoists interleaved loose filters
        # above the joins, and pushdown re-sinks them on the same pass.
        rules.append(JoinReorderRule())
    rules.extend(
        [
            FilterPushdownRule(),
            SortKeyRetentionRule(),
            ProjectionPruningRule(),
        ]
    )
    return rules
