"""Multi-join reordering on real column statistics.

The rewrite engine historically rewrote *within* the parse-order join
sequence; this rule searches over the sequence itself.  Every join in the
engine is an inner equi-join executed left-deep (batch |><| R1 |><| R2
...), so any permutation in which each join's probe-side key column is
already available produces the same output *multiset* -- and under an
aggregation (grouped output is emitted in sorted key order, and exact
decimal aggregation is order-independent) the same output *rows*, bit
for bit.  The rule therefore fires only below a ``LogicalAggregate``.

The search minimises the summed intermediate cardinalities, estimated
with the statistics subsystem (:mod:`repro.engine.plan.stats`): each
join's output is ``|L| * |R| / max(ndv(L.key), ndv(R.key))`` with the
build side pre-shrunk by its pushed-down predicates' selectivity.  With
<= :data:`DP_JOIN_LIMIT` joins every valid permutation is enumerated
(bounded DP); beyond that a greedy smallest-intermediate-first pass
keeps planning linear.

Loose ``LogicalFilter`` nodes interleaved between joins (placed there by
an earlier pushdown firing) are hoisted into a single filter above the
reordered joins -- legal for inner joins, which only add columns -- and
the pushdown rule re-sinks them to their new lowest slots on the same
rewrite pass.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from repro.engine.plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalScan,
)
from repro.engine.plan.rules import RewriteRule

#: Exhaustive permutation search up to this many joins; greedy beyond.
DP_JOIN_LIMIT = 4


class JoinReorderRule(RewriteRule):
    """Reorder the leading join run to minimise intermediate rows."""

    name = "join-reorder"

    def apply(self, nodes: List[LogicalNode], stats=None):
        if stats is None or not nodes or not isinstance(nodes[0], LogicalScan):
            return None
        scan = nodes[0]
        section_end = 1
        while section_end < len(nodes) and isinstance(
            nodes[section_end], (LogicalJoin, LogicalFilter)
        ):
            section_end += 1
        section = nodes[1:section_end]
        joins = [node for node in section if isinstance(node, LogicalJoin)]
        filters = [node for node in section if isinstance(node, LogicalFilter)]
        if len(joins) < 2 or any(f.always_false for f in filters):
            return None
        # Bit-exactness gate: reordering permutes intermediate row order,
        # which only an aggregation above provably absorbs (sorted group
        # emission + exact, order-independent decimal reduction).
        if not any(isinstance(node, LogicalAggregate) for node in nodes[section_end:]):
            return None
        if any(stats.table(join.join.table) is None for join in joins):
            return None

        chosen = self._choose_order(scan, joins, stats)
        if chosen is None or chosen == list(range(len(joins))):
            return None

        reordered = [joins[index] for index in chosen]
        rebuilt: List[LogicalNode] = [scan, *reordered]
        loose = [p for node in filters for p in node.predicates]
        if loose:
            # One merged filter above the joins; pushdown re-sinks it.
            rebuilt.append(LogicalFilter(loose))
        new_nodes = rebuilt + nodes[section_end:]

        current_cost = self._order_cost(scan, joins, list(range(len(joins))), stats)
        chosen_cost = self._order_cost(scan, joins, chosen, stats)
        detail = (
            "joins reordered to "
            + " -> ".join(join.join.table for join in reordered)
            + f" (est intermediate rows {current_cost:,.0f} -> {chosen_cost:,.0f},"
            " NDV-based)"
        )
        return new_nodes, detail

    # ----------------------------------------------------------- estimation

    @staticmethod
    def _estimate_join(left_rows: float, join: LogicalJoin, stats) -> float:
        """Estimated output rows of one join step (catalog-row scale)."""
        from repro.engine.plan.cost import join_output_rows, predicate_selectivity

        right = stats.table(join.join.table)
        assert right is not None  # checked before the search starts
        survival = predicate_selectivity(join.right_predicates, right)
        right_rows = right.rows * survival
        left_ndv = stats.column_ndv(join.join.left_column)
        right_ndv = right.ndv(join.join.right_column)
        return join_output_rows(left_rows, right_rows, left_ndv, right_ndv)

    def _order_cost(
        self,
        scan: LogicalScan,
        joins: Sequence[LogicalJoin],
        order: Sequence[int],
        stats,
    ) -> float:
        """Summed intermediate cardinalities of one join order."""
        rows = float(stats.main.rows)
        cost = 0.0
        for index in order:
            rows = self._estimate_join(rows, joins[index], stats)
            cost += rows
        return cost

    # --------------------------------------------------------------- search

    @staticmethod
    def _available_after(
        scan: LogicalScan, joins: Sequence[LogicalJoin], order: Sequence[int]
    ) -> set:
        available = set(scan.columns)
        for index in order:
            join = joins[index]
            available |= set(join.right_columns)
            available.add(join.join.right_column)
        return available

    def _is_valid(
        self, scan: LogicalScan, joins: Sequence[LogicalJoin], order: Sequence[int]
    ) -> bool:
        """Every join's probe key must exist when the join runs."""
        available = set(scan.columns)
        for index in order:
            join = joins[index]
            if join.join.left_column not in available:
                return False
            available |= set(join.right_columns)
            available.add(join.join.right_column)
        return True

    def _choose_order(
        self, scan: LogicalScan, joins: Sequence[LogicalJoin], stats
    ) -> Optional[List[int]]:
        count = len(joins)
        if count <= DP_JOIN_LIMIT:
            best: Optional[Tuple[float, Tuple[int, ...]]] = None
            for order in permutations(range(count)):
                if not self._is_valid(scan, joins, order):
                    continue
                cost = self._order_cost(scan, joins, order, stats)
                # Strict < with lexicographic enumeration: ties keep the
                # earliest (parse-closest) order, so the rule is stable.
                if best is None or cost < best[0]:
                    best = (cost, order)
            return None if best is None else list(best[1])

        # Greedy smallest-intermediate-first for long join chains.
        remaining = list(range(count))
        order: List[int] = []
        rows = float(stats.main.rows)
        while remaining:
            available = self._available_after(scan, joins, order)
            candidates = [
                index
                for index in remaining
                if joins[index].join.left_column in available
            ]
            if not candidates:
                return None  # no valid completion from here
            chosen = min(
                candidates,
                key=lambda index: (self._estimate_join(rows, joins[index], stats), index),
            )
            rows = self._estimate_join(rows, joins[chosen], stats)
            order.append(chosen)
            remaining.remove(chosen)
        return order
