"""Predicate merge / simplification over WHERE conjunct lists.

Conjuncts on the same column are tightened exactly the way execution
would compare them: each literal is canonicalised through the *column's*
storage type (DECIMAL literals to unscaled integers at the column scale,
dates to epoch days, CHARs to width-padded bytes), so ``a >= 5 AND a >= 3``
keeps only ``a >= 5``, ``a >= 5 AND a <= 5`` becomes ``a = 5``, and a
provably empty range marks the filter ``always_false`` -- the constant
folder's compile-time-evaluation discipline (section III-D2) applied to
predicates instead of expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.plan.logical import LogicalFilter, LogicalNode
from repro.engine.plan.rules import RewriteRule
from repro.engine.sql.ast_nodes import Comparison
from repro.errors import ReproError
from repro.storage.schema import CharType, DateType, DecimalType


def _canonical(literal, column_type) -> Optional[Tuple[str, object]]:
    """Map a literal to the comparable value execution would use.

    Returns ``(kind, value)`` or ``None`` when the literal cannot be
    canonicalised (unknown column type, conversion failure) -- in which
    case the predicate is left alone.
    """
    if column_type is None:
        return None
    try:
        if isinstance(column_type, DecimalType):
            from repro.core.decimal.value import DecimalValue

            return ("decimal", DecimalValue.from_literal(str(literal), column_type.spec).unscaled)
        if isinstance(column_type, DateType):
            from repro.engine.plan.physical import _parse_date

            return ("date", _parse_date(literal) if isinstance(literal, str) else int(literal))
        if isinstance(column_type, CharType):
            return ("char", str(literal).ljust(column_type.width).encode())
        if isinstance(literal, (int, float)) and not isinstance(literal, bool):
            return ("number", literal)
    except (ReproError, ValueError):
        return None
    return None


@dataclass
class _Bound:
    value: object
    inclusive: bool
    predicate: Comparison


class PredicateSimplifyRule(RewriteRule):
    """Dedupe, range-tighten and contradiction-prove filter conjuncts."""

    name = "predicate-simplify"

    def apply(self, nodes: List[LogicalNode], stats=None):
        changed_details: List[str] = []
        for node in nodes:
            if not isinstance(node, LogicalFilter) or node.always_false:
                continue
            simplified = self._simplify(node.predicates, stats)
            if simplified is None:
                continue
            predicates, always_false = simplified
            before = len(node.predicates)
            node.predicates = predicates
            node.always_false = always_false
            if always_false:
                changed_details.append("proved a conjunct set unsatisfiable")
            else:
                changed_details.append(f"{before} conjuncts -> {len(predicates)}")
        if not changed_details:
            return None
        return nodes, "; ".join(changed_details)

    # ----------------------------------------------------------- internals

    def _simplify(self, predicates: List[Comparison], stats):
        deduped: List[Comparison] = []
        seen = set()
        for predicate in predicates:
            key = (predicate.column, predicate.op, predicate.literal, predicate.column_rhs)
            if key in seen:
                continue
            seen.add(key)
            deduped.append(predicate)

        # Group canonicalisable single-column literal predicates by column.
        values = {}
        groups = {}
        for predicate in deduped:
            if predicate.column_rhs is not None:
                continue
            column_type = stats.column_type(predicate.column) if stats else None
            canonical = _canonical(predicate.literal, column_type)
            if canonical is None:
                continue
            values[id(predicate)] = canonical[1]
            groups.setdefault(predicate.column, []).append(predicate)

        kept = {}  # id(predicate) -> Comparison to emit in its place (or None to drop)
        for column, members in groups.items():
            if len(members) < 2:
                continue
            merged = self._merge(column, members, values)
            if merged is None:
                continue
            if merged == "contradiction":
                return [], True
            kept.update(merged)

        if not kept and len(deduped) == len(predicates):
            return None
        result = []
        for predicate in deduped:
            if id(predicate) in kept:
                replacement = kept[id(predicate)]
                if replacement is not None:
                    result.append(replacement)
            else:
                result.append(predicate)
        if len(result) == len(predicates) and not kept:
            return None
        return result, False

    def _merge(self, column: str, members: List[Comparison], values):
        """Merge one column's conjuncts; returns a per-predicate replacement
        map, ``"contradiction"``, or ``None`` (nothing to do)."""
        lower: Optional[_Bound] = None
        upper: Optional[_Bound] = None
        eq: Optional[_Bound] = None
        neqs: List[_Bound] = []
        for predicate in members:
            value = values[id(predicate)]
            if predicate.op == "=":
                if eq is not None and eq.value != value:
                    return "contradiction"
                if eq is None:
                    eq = _Bound(value, True, predicate)
            elif predicate.op == "<>":
                neqs.append(_Bound(value, False, predicate))
            elif predicate.op in (">", ">="):
                inclusive = predicate.op == ">="
                if (
                    lower is None
                    or value > lower.value
                    or (value == lower.value and not inclusive and lower.inclusive)
                ):
                    lower = _Bound(value, inclusive, predicate)
            elif predicate.op in ("<", "<="):
                inclusive = predicate.op == "<="
                if (
                    upper is None
                    or value < upper.value
                    or (value == upper.value and not inclusive and upper.inclusive)
                ):
                    upper = _Bound(value, inclusive, predicate)

        survivors = {}
        if eq is not None:
            if lower is not None and (
                eq.value < lower.value or (eq.value == lower.value and not lower.inclusive)
            ):
                return "contradiction"
            if upper is not None and (
                eq.value > upper.value or (eq.value == upper.value and not upper.inclusive)
            ):
                return "contradiction"
            if any(neq.value == eq.value for neq in neqs):
                return "contradiction"
            survivors[id(eq.predicate)] = eq.predicate
        else:
            if lower is not None and upper is not None:
                if lower.value > upper.value:
                    return "contradiction"
                if lower.value == upper.value:
                    if not (lower.inclusive and upper.inclusive):
                        return "contradiction"
                    if any(neq.value == lower.value for neq in neqs):
                        return "contradiction"
                    # a >= v AND a <= v  ->  a = v (other conjuncts implied)
                    survivors[id(lower.predicate)] = Comparison(
                        column, "=", lower.predicate.literal
                    )
                    lower = upper = None
                    neqs = []
            if lower is not None:
                survivors[id(lower.predicate)] = lower.predicate
            if upper is not None:
                survivors[id(upper.predicate)] = upper.predicate
            for neq in neqs:
                redundant = (
                    lower is not None
                    and (
                        neq.value < lower.value
                        or (neq.value == lower.value and not lower.inclusive)
                    )
                ) or (
                    upper is not None
                    and (
                        neq.value > upper.value
                        or (neq.value == upper.value and not upper.inclusive)
                    )
                )
                if not redundant and id(neq.predicate) not in survivors:
                    survivors[id(neq.predicate)] = neq.predicate

        replacements = {}
        for predicate in members:
            replacement = survivors.get(id(predicate))
            if replacement is not predicate:
                replacements[id(predicate)] = replacement
        return replacements or None
