"""Concurrent serving layer: async sessions over one simulated device."""

from repro.engine.serving.server import (
    ServerConfig,
    ServerStats,
    ServingResult,
    Session,
    SessionServer,
)

__all__ = [
    "ServerConfig",
    "ServerStats",
    "ServingResult",
    "Session",
    "SessionServer",
]
