"""Asyncio session server: many sessions, one shared simulated device.

:class:`SessionServer` fronts one shared :class:`~repro.engine.Database`
with per-session handles and three serving-layer guarantees the embedded
facade does not give:

* **Admission control** -- at most ``max_in_flight`` queries execute
  concurrently; up to ``max_queue_depth`` more wait their turn; anything
  beyond that is rejected immediately with
  :class:`~repro.errors.AdmissionError` (fail fast beats unbounded queues
  under overload).
* **Timeouts with clean cancellation** -- a query that exceeds its
  deadline raises :class:`~repro.errors.QueryTimeoutError`; the worker
  observes the cancellation flag at its next operator boundary and stops
  without leaving partial entries in the shared kernel cache or device
  residency.
* **Explicit cross-session sharing** -- all sessions share the database's
  :class:`~repro.core.jit.pipeline.KernelCache` (one session compiles, the
  rest hit) and a :class:`~repro.gpusim.residency.DeviceResidency` tracker
  (a column version crosses PCIe once, not once per session), and readers
  run under snapshot isolation against ``append`` writers (see
  :meth:`repro.engine.Database.append`).

Each completed query's :class:`ExecutionReport` is decomposed into
resource segments and submitted to a shared
:class:`~repro.gpusim.scheduler.DeviceScheduler`, which interleaves
runnable kernels from concurrent queries onto the simulated SMs -- the
simulated serving timeline (queries/sec, p50/p99 latency) comes from
:meth:`SessionServer.simulate_schedule`, not from summing per-query times.

The data plane runs on a thread pool: queries execute bit-exactly exactly
as they would on the embedded facade, and results are independent of how
the event loop interleaves them.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.engine.session import Database, QueryResult
from repro.errors import (
    AdmissionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServingError,
)
from repro.gpusim.residency import DeviceResidency
from repro.gpusim.scheduler import DeviceScheduler, ScheduleResult

#: Sentinel distinguishing "no timeout argument" from "timeout=None".
_UNSET = object()


@dataclass(frozen=True)
class ServerConfig:
    """Admission and execution limits of one server."""

    #: Queries executing concurrently on the worker pool.
    max_in_flight: int = 8
    #: Additional queries allowed to wait for a worker before the server
    #: starts rejecting submissions outright.
    max_queue_depth: int = 32
    #: Wall-clock deadline applied when a query passes no explicit timeout;
    #: ``None`` means no deadline.
    default_timeout: Optional[float] = None
    #: Worker threads; defaults to ``max_in_flight``.
    worker_threads: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ValueError("default_timeout must be positive")

    @property
    def admission_limit(self) -> int:
        """Accepted-but-unfinished queries the server tolerates."""
        return self.max_in_flight + self.max_queue_depth


@dataclass
class ServerStats:
    """Serving counters (wall-clock side, not simulated time)."""

    completed: int = 0
    rejected: int = 0
    timed_out: int = 0
    cancelled: int = 0
    failed: int = 0


@dataclass
class ServingResult:
    """One served query: rows/report plus serving-side wall timings."""

    session: str
    sql: str
    result: QueryResult
    #: Wall seconds spent waiting for admission (queue time).
    queued_seconds: float
    #: Wall seconds from submission to completion.
    wall_seconds: float

    @property
    def rows(self):
        return self.result.rows

    @property
    def report(self):
        return self.result.report


class Session:
    """Per-session handle: an ordered stream of queries over the server.

    A session executes one query at a time (the classic connection model);
    concurrency comes from many sessions.  The per-session lock is also
    what makes the scheduler's closed-loop assumption -- query N+1 of a
    session arrives when query N finishes -- true by construction.
    """

    def __init__(self, server: "SessionServer", name: str) -> None:
        self._server = server
        self.name = name
        # Created lazily inside the running loop: on Python 3.9 asyncio
        # primitives bind their event loop at construction time.
        self._lock: Optional[asyncio.Lock] = None

    def _serialized(self) -> asyncio.Lock:
        lock = self._lock
        if lock is None:
            lock = self._lock = asyncio.Lock()
        return lock

    async def execute(self, sql: str, timeout=_UNSET) -> ServingResult:
        async with self._serialized():
            return await self._server._execute(self.name, sql, timeout)

    async def append(self, table: str, rows: Sequence[Sequence]):
        """Append rows through this session (serialized like its queries)."""
        async with self._serialized():
            return await self._server.append(table, rows)


class SessionServer:
    """Serve concurrent sessions over one shared database/simulated device."""

    def __init__(
        self,
        database: Database,
        config: Optional[ServerConfig] = None,
        scheduler: Optional[DeviceScheduler] = None,
    ) -> None:
        self.database = database
        self.config = config if config is not None else ServerConfig()
        self.scheduler = scheduler if scheduler is not None else DeviceScheduler()
        self.stats = ServerStats()
        if database.residency is None:
            # Sharing is explicit: serving turns residency tracking on so
            # sessions stop re-paying PCIe for columns already on device.
            database.residency = DeviceResidency(database.device)
        workers = self.config.worker_threads or self.config.max_in_flight
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serving"
        )
        # Lazy for the same 3.9 loop-binding reason as Session._lock.
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._admitted = 0
        self._sessions: Dict[str, Session] = {}
        self._closed = False

    # -------------------------------------------------------------- sessions

    def session(self, name: str) -> Session:
        """Open (or fetch) the named session."""
        if self._closed:
            raise ServingError("server is closed")
        if name not in self._sessions:
            self._sessions[name] = Session(self, name)
        return self._sessions[name]

    # --------------------------------------------------------------- queries

    async def _execute(self, session: str, sql: str, timeout=_UNSET) -> ServingResult:
        if self._closed:
            raise ServingError("server is closed")
        if timeout is _UNSET:
            timeout = self.config.default_timeout
        if self._admitted >= self.config.admission_limit:
            self.stats.rejected += 1
            raise AdmissionError(
                f"server at capacity: {self._admitted} queries admitted "
                f"(limit {self.config.admission_limit}); rejecting {sql!r}"
            )
        semaphore = self._semaphore
        if semaphore is None:
            semaphore = self._semaphore = asyncio.Semaphore(self.config.max_in_flight)
        submitted = time.perf_counter()
        self._admitted += 1
        try:
            async with semaphore:
                started = time.perf_counter()
                result = await self._run_query(sql, timeout)
        finally:
            self._admitted -= 1
        finished = time.perf_counter()
        self.stats.completed += 1
        # Per-session submission order is the session's own execution
        # order (the Session lock serializes it), which is all the
        # closed-loop schedule simulation depends on.
        self.scheduler.submit_report(session, result.report)
        return ServingResult(
            session=session,
            sql=sql,
            result=result,
            queued_seconds=started - submitted,
            wall_seconds=finished - submitted,
        )

    async def _run_query(self, sql: str, timeout: Optional[float]) -> QueryResult:
        """Run one query on the worker pool, cancelling it on timeout."""
        cancel = threading.Event()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor,
            lambda: self.database.execute(sql, cancel_check=cancel.is_set),
        )
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            cancel.set()
            # The worker observes the flag at its next operator boundary;
            # wait for it so no stale thread keeps running, and swallow
            # whichever way the race resolved (QueryCancelledError, or the
            # query finished just as the deadline hit -- the result is
            # dropped either way).
            try:
                await future
            except QueryCancelledError:
                self.stats.cancelled += 1
            except Exception:
                pass
            self.stats.timed_out += 1
            raise QueryTimeoutError(
                f"query exceeded {timeout}s and was cancelled: {sql!r}"
            ) from None
        except Exception:
            self.stats.failed += 1
            raise

    async def append(self, table: str, rows: Sequence[Sequence]):
        """Append rows to a shared table (snapshot-isolated vs readers)."""
        if self._closed:
            raise ServingError("server is closed")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, lambda: self.database.append(table, rows)
        )

    # ------------------------------------------------------------- reporting

    def simulate_schedule(self) -> ScheduleResult:
        """Interleave every served query on the simulated device."""
        return self.scheduler.simulate()

    @property
    def in_flight(self) -> int:
        """Queries admitted and not yet finished (executing + queued)."""
        return self._admitted

    async def close(self) -> None:
        """Reject new work and release the worker pool."""
        self._closed = True
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "SessionServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
