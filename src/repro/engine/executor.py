"""Query executor: runs a physical operator chain bottom-up (Figure 3)."""

from __future__ import annotations

from typing import List, Optional

from repro.engine.plan.physical import Batch, PhysicalOp, QueryContext
from repro.errors import QueryCancelledError
from repro.gpusim import timing as gpu_timing


#: Per-operator pipeline overhead at 10M tuples (materialisation, setup).
OPERATOR_OVERHEAD_SECONDS = 0.050


def run_plan(chain: List[PhysicalOp], context: QueryContext) -> Batch:
    """Execute the operator chain and return the final batch.

    ``context.cancel_check`` is polled at every operator boundary: a
    timed-out or abandoned query stops before its next operator, leaving
    the shared kernel cache and residency state consistent (entries are
    only ever inserted whole, between the poll points).
    """
    batch: Optional[Batch] = None
    for op in chain:
        if context.cancel_check is not None and context.cancel_check():
            raise QueryCancelledError(
                f"query cancelled before {type(op).__name__}"
            )
        batch = op.run(batch, context)
    # Streaming defers scan-time H2D copies so kernels can overlap them;
    # columns no kernel consumed (filter/join/group keys, unused scans)
    # still have to reach the device -- charge them serially here so the
    # streamed report never undercounts relative to the serial path.
    if context.include_transfer and context.pending_transfer:
        leftover = sum(context.pending_transfer.values())
        context.pending_transfer.clear()
        if leftover:
            context.report.pcie_seconds += gpu_timing.pcie_time(
                int(leftover), context.device
            )
            context.report.pcie_bytes += leftover
    context.report.pipeline_seconds += (
        len(chain) * OPERATOR_OVERHEAD_SECONDS * (context.simulate_rows / 10_000_000)
    )
    assert batch is not None
    return batch
