"""Query executor: runs a physical operator chain bottom-up (Figure 3)."""

from __future__ import annotations

from typing import List, Optional

from repro.engine.plan.physical import Batch, PhysicalOp, QueryContext


#: Per-operator pipeline overhead at 10M tuples (materialisation, setup).
OPERATOR_OVERHEAD_SECONDS = 0.050


def run_plan(chain: List[PhysicalOp], context: QueryContext) -> Batch:
    """Execute the operator chain and return the final batch."""
    batch: Optional[Batch] = None
    for op in chain:
        batch = op.run(batch, context)
    context.report.pipeline_seconds += (
        len(chain) * OPERATOR_OVERHEAD_SECONDS * (context.simulate_rows / 10_000_000)
    )
    assert batch is not None
    return batch
