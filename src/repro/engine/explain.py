"""EXPLAIN support: inspect plans, kernels and cost estimates without
executing a query's data plane at full size.

``Database.explain(sql)`` plans the query, JIT-compiles its expressions,
and returns an :class:`ExplainResult` carrying the operator chain, every
generated kernel (with its CUDA-like source and per-kernel timing
estimate), and the end-to-end simulated cost estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis import AnalysisReport
from repro.core.jit.pipeline import JitOptions
from repro.engine.plan.cost import CostModel, OptimizerConfig
from repro.engine.plan.physical import (
    AggregateOp,
    DropOp,
    FilterOp,
    GroupAggregateOp,
    HashJoinOp,
    LimitOp,
    NestedLoopJoinOp,
    PhysicalOp,
    ProjectOp,
    ScanOp,
    SortOp,
)
from repro.engine.sql.ast_nodes import AggregateCall, Query
from repro.gpusim import profiler as gpu_profiler
from repro.gpusim import timing as gpu_timing
from repro.gpusim.device import GpuDevice
from repro.gpusim.streaming import StreamingConfig, stream_timing
from repro.storage.relation import Relation


@dataclass
class KernelPlan:
    """One JIT-compiled kernel in the plan."""

    name: str
    expression: str
    optimised_expression: str
    result_spec: str
    alignments_before: int
    alignments_after: int
    estimated_ms: float
    source: str
    #: Chunked-streaming estimate (set when the plan streams): chunk count
    #: and the serial-vs-pipelined millisecond split for this kernel.
    chunks: int = 1
    serial_ms: Optional[float] = None
    pipelined_ms: Optional[float] = None
    #: Measured data-plane wall clock (set by ``explain(...,
    #: measure_data_plane=True)``): the real numpy cost of one run over the
    #: stored rows, as opposed to ``estimated_ms`` which is simulated.
    data_plane_ms: Optional[float] = None
    data_plane_rows_per_s: Optional[float] = None
    #: Static-analyzer findings for this kernel (an
    #: ``repro.analysis.AnalysisReport``), attached by the JIT pipeline.
    diagnostics: Optional["AnalysisReport"] = None

    @property
    def overlap_speedup(self) -> Optional[float]:
        if self.serial_ms is None or not self.pipelined_ms:
            return None
        return self.serial_ms / self.pipelined_ms


@dataclass
class ExplainResult:
    """A query's plan, kernels and cost estimate."""

    sql: str
    operators: List[str]
    kernels: List[KernelPlan]
    estimated_compile_ms: float
    estimated_total_ms: float
    simulate_rows: int
    #: Rewrite-rule trace (one formatted line per firing) and the
    #: cost-based physical choices the planner made.
    rewrites: List[str] = field(default_factory=list)
    choices: List[str] = field(default_factory=list)
    #: Plan-level static analyzer findings (``PLAN*``/``PREC*``/``RULE*``),
    #: attached by the planner when ``OptimizerConfig.verify_plans`` is set.
    plan_diagnostics: Optional["AnalysisReport"] = None

    def format(self, with_source: bool = False) -> str:
        lines = [f"EXPLAIN (simulated at {self.simulate_rows:,} tuples)"]
        for index, operator in enumerate(self.operators):
            lines.append(f"  {'-> ' * min(index, 1)}{operator}")
        if self.rewrites:
            lines.append("  rewrites:")
            for rewrite in self.rewrites:
                lines.append(f"    {rewrite}")
        if self.choices:
            lines.append("  choices:")
            for choice in self.choices:
                lines.append(f"    {choice}")
        if self.plan_diagnostics is not None and self.plan_diagnostics.diagnostics:
            lines.append("  plan diagnostics:")
            for diagnostic in self.plan_diagnostics.diagnostics:
                lines.append(f"    {diagnostic.format()}")
        if self.kernels:
            lines.append("  kernels:")
            for kernel in self.kernels:
                lines.append(
                    f"    {kernel.name}: {kernel.expression} -> "
                    f"{kernel.optimised_expression} [{kernel.result_spec}] "
                    f"~{kernel.estimated_ms:.2f} ms "
                    f"(alignments {kernel.alignments_before}->{kernel.alignments_after})"
                )
                if kernel.pipelined_ms is not None:
                    speedup = kernel.overlap_speedup or 1.0
                    lines.append(
                        f"      streamed: {kernel.chunks} chunks, "
                        f"serial {kernel.serial_ms:.2f} ms -> "
                        f"pipelined {kernel.pipelined_ms:.2f} ms "
                        f"({speedup:.2f}x overlap)"
                    )
                if kernel.data_plane_ms is not None:
                    lines.append(
                        f"      data plane (measured): {kernel.data_plane_ms:.2f} ms "
                        f"({kernel.data_plane_rows_per_s:,.0f} rows/s)"
                    )
                if kernel.diagnostics is not None and kernel.diagnostics.diagnostics:
                    for diagnostic in kernel.diagnostics.diagnostics:
                        lines.append(f"      {diagnostic.format()}")
                if with_source:
                    lines.append("      " + kernel.source.replace("\n", "\n      "))
        lines.append(f"  estimated compile: {self.estimated_compile_ms:.0f} ms")
        lines.append(f"  estimated total:   {self.estimated_total_ms:.0f} ms")
        return "\n".join(lines)


def explain_query(
    query: Query,
    chain: List[PhysicalOp],
    relation: Relation,
    simulate_rows: int,
    jit_options: JitOptions,
    device: GpuDevice,
    joined=None,
    streaming: Optional[StreamingConfig] = None,
    measure_data_plane: bool = False,
    cost_model: Optional[CostModel] = None,
    optimizer: Optional[OptimizerConfig] = None,
) -> ExplainResult:
    """Build an ExplainResult from a planned query.

    With ``measure_data_plane`` each compiled kernel is additionally run
    once over the relation's real stored columns and its wall-clock
    (``KernelPlan.data_plane_ms``) recorded -- the measured counterpart of
    the simulated ``estimated_ms``.
    """
    from repro.core.jit.pipeline import compile_expression

    schema = relation.decimal_schema()
    for joined_relation in (joined or {}).values():
        schema.update(joined_relation.decimal_schema())
    # Bare references to *any* stored column (not just DECIMALs) pass
    # through the executor without a kernel; EXPLAIN must not try to
    # JIT-compile them.
    stored_columns = set(relation.column_names)
    for joined_relation in (joined or {}).values():
        stored_columns.update(joined_relation.column_names)
    operators: List[str] = []
    kernels: List[KernelPlan] = []
    # Mirrors the executor's residency tracking: only a column's first
    # kernel use pays (and overlaps) its host-to-device transfer.
    resident: set = set()

    def add_kernel(text: str, name: str) -> None:
        bare = text.strip()
        if bare in schema or bare in stored_columns or bare == "*":
            return  # bare columns need no kernel
        compiled = compile_expression(text, schema, jit_options, name=name)
        estimate = gpu_timing.kernel_time(compiled.kernel, simulate_rows, device)
        plan = KernelPlan(
            name=name,
            expression=text,
            optimised_expression=compiled.tree.to_sql(),
            result_spec=str(compiled.kernel.result_spec),
            alignments_before=compiled.alignments_before,
            alignments_after=compiled.alignments_after,
            estimated_ms=estimate.seconds * 1e3,
            source=compiled.kernel.source,
            diagnostics=compiled.kernel.analysis,
        )
        if streaming is not None and streaming.enabled:
            fresh = [
                column
                for column in compiled.kernel.input_columns
                if column not in resident
            ]
            resident.update(compiled.kernel.input_columns)
            transfer_bytes = simulate_rows * sum(
                compiled.kernel.input_columns[column].compact_bytes for column in fresh
            )
            if cost_model is not None and optimizer is not None and optimizer.choose_streaming:
                # Mirror the executor's cost-based chunk choice.
                chunk_rows = cost_model.choose_chunk_rows(
                    compiled.kernel, simulate_rows, streaming, transfer_bytes
                )
            else:
                chunk_rows = streaming.resolve_chunk_rows(
                    compiled.kernel, device, simulate_rows
                )
            timing = stream_timing(
                compiled.kernel,
                simulate_rows,
                chunk_rows,
                device,
                transfer_bytes=transfer_bytes,
            )
            plan.chunks = timing.chunks
            plan.serial_ms = timing.serial_seconds * 1e3
            plan.pipelined_ms = timing.pipelined_seconds * 1e3
        if measure_data_plane:
            inputs = {}
            for column in compiled.kernel.input_columns:
                source = relation
                for joined_relation in (joined or {}).values():
                    if column in joined_relation.column_names:
                        source = joined_relation
                        break
                inputs[column] = source.column(column).data
            lengths = {data.shape[0] for data in inputs.values()}
            if len(lengths) <= 1:  # join-mixed inputs can't run standalone
                measured = gpu_profiler.measure_data_plane(
                    compiled.kernel,
                    inputs,
                    lengths.pop() if lengths else relation.rows,
                    device=device,
                )
                plan.data_plane_ms = measured.seconds * 1e3
                plan.data_plane_rows_per_s = measured.rows_per_second
        kernels.append(plan)

    for op in chain:
        line: Optional[str] = None
        if isinstance(op, ScanOp):
            line = f"Scan {relation.name} [{', '.join(op.columns)}]"
        elif isinstance(op, FilterOp):
            if op.always_false:
                line = "Filter [FALSE]"
            else:
                predicates = " AND ".join(str(p) for p in op.predicates)
                line = f"Filter [{predicates}]"
        elif isinstance(op, ProjectOp):
            line = "Project (JIT) [" + ", ".join(str(i.expression) for i in op.items) + "]"
            if op.carry:
                line += f" carry [{', '.join(op.carry)}]"
            for index, item in enumerate(op.items):
                add_kernel(item.expression, f"calc_expr_{index}")
        elif isinstance(op, AggregateOp):
            line = "Aggregate [" + ", ".join(str(i.expression) for i in op.items) + "]"
            for index, item in enumerate(op.items):
                call = item.expression
                if isinstance(call, AggregateCall) and call.function != "COUNT":
                    add_kernel(call.argument, f"agg_expr_{index}")
        elif isinstance(op, GroupAggregateOp):
            line = (
                f"GroupAggregate keys=[{', '.join(op.group_by)}] "
                "[" + ", ".join(str(i.expression) for i in op.items) + "]"
            )
            for index, item in enumerate(op.items):
                call = item.expression
                if isinstance(call, AggregateCall) and call.function != "COUNT":
                    add_kernel(call.argument, f"agg_expr_{index}")
        elif isinstance(op, SortOp):
            line = "Sort [" + ", ".join(
                f"{k.column} {'ASC' if k.ascending else 'DESC'}" for k in op.keys
            ) + "]"
        elif isinstance(op, (HashJoinOp, NestedLoopJoinOp)):
            algorithm = "HashJoin" if isinstance(op, HashJoinOp) else "NestedLoopJoin"
            line = (
                f"{algorithm} {op.join.table} "
                f"[{op.join.left_column} = {op.join.right_column}]"
            )
            if op.right_predicates:
                built = " AND ".join(str(p) for p in op.right_predicates)
                line += f" build-filter [{built}]"
        elif isinstance(op, DropOp):
            line = f"Drop [{', '.join(op.columns)}]"
        elif isinstance(op, LimitOp):
            line = f"Limit [{op.count}]"
        if line is not None:
            if op.estimated is not None:
                line += f" {op.estimated.format()}"
            operators.append(line)

    # Reuse the compile-time model on the actual kernel set.
    compile_seconds = 0.0
    if kernels:
        compiled_irs = [
            compile_expression(kernel.expression, schema, jit_options, name=kernel.name).kernel
            for kernel in kernels
        ]
        compile_seconds = gpu_timing.compile_time(compiled_irs)

    # Streamed kernels are estimated at their pipelined time (which folds
    # in the overlapped H2D transfer); serial kernels at their launch time.
    total_ms = compile_seconds * 1e3 + sum(
        k.pipelined_ms if k.pipelined_ms is not None else k.estimated_ms
        for k in kernels
    )
    return ExplainResult(
        sql="",
        operators=operators,
        kernels=kernels,
        estimated_compile_ms=compile_seconds * 1e3,
        estimated_total_ms=total_ms,
        simulate_rows=simulate_rows,
        rewrites=[event.format() for event in getattr(chain, "events", [])],
        choices=list(getattr(chain, "choices", [])),
        plan_diagnostics=getattr(chain, "analysis", None),
    )
