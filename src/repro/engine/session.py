"""The UltraPrecise database facade.

:class:`Database` is the library's main entry point: register relations,
execute SQL, get exact DECIMAL results plus a simulated-time report.

    >>> from repro import Database
    >>> db = Database(simulate_rows=10_000_000)
    >>> db.register(relation)
    >>> result = db.execute("SELECT c1 + c2 FROM R")
    >>> result.report.total_seconds

``simulate_rows`` decouples correctness from cost: the arithmetic runs over
every registered row (bit-exactly), while the timing model charges the
paper's 10-million-tuple relations.  Pass ``simulate_rows=None`` to charge
the actual row count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.decimal.value import DecimalValue
from repro.core.jit.pipeline import JitOptions, KernelCache
from repro.engine.executor import run_plan
from repro.engine.plan.cost import CostModel, OptimizerConfig, PlanStats, TableStats
from repro.engine.plan.physical import Batch, ExecutionReport, QueryContext
from repro.engine.plan.planner import plan_query
from repro.engine.sql.ast_nodes import Query
from repro.engine.sql.parser import parse_query
from repro.gpusim.device import DEFAULT_DEVICE, DEFAULT_HOST, GpuDevice, HostSystem
from repro.gpusim.residency import DeviceResidency
from repro.gpusim.streaming import StreamingConfig
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.relation import Relation
from repro.storage.schema import CharType, DecimalType

OutputValue = Union[DecimalValue, int, float, str]


@dataclass
class QueryResult:
    """Rows + timing of one executed query."""

    column_names: List[str]
    rows: List[Tuple[OutputValue, ...]]
    report: ExecutionReport
    query: Query

    @property
    def scalar(self) -> OutputValue:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError("result is not scalar")
        return self.rows[0][0]


class Database:
    """An embedded UltraPrecise instance over the simulated GPU."""

    def __init__(
        self,
        simulate_rows: Optional[int] = None,
        device: GpuDevice = DEFAULT_DEVICE,
        host: HostSystem = DEFAULT_HOST,
        jit_options: Optional[JitOptions] = None,
        aggregation_tpi: int = 8,
        streaming: Optional[StreamingConfig] = None,
        optimizer: Optional[OptimizerConfig] = None,
        residency: Optional[DeviceResidency] = None,
    ):
        self.catalog = Catalog()
        self.device = device
        self.host = host
        self.simulate_rows = simulate_rows
        self.jit_options = jit_options if jit_options is not None else JitOptions()
        self.aggregation_tpi = aggregation_tpi
        self.streaming = streaming if streaming is not None else StreamingConfig()
        self.optimizer = optimizer if optimizer is not None else OptimizerConfig()
        self.kernel_cache = KernelCache()
        #: Cross-query device residency of scanned columns.  ``None`` (the
        #: default) keeps single-query semantics -- every query ships its
        #: columns; the serving layer installs a shared tracker so
        #: concurrent sessions pay each transfer once per column version.
        self.residency = residency
        #: Serializes writers (``append``/``register``) against each other.
        #: Readers never take it: a query captures its relation snapshot in
        #: one catalog lookup and appends swap in *new* Relation/Column
        #: objects instead of mutating, so an in-flight reader keeps a
        #: consistent version throughout.
        self._write_lock = threading.Lock()

    # ----------------------------------------------------------------- DDL

    def register(self, relation: Relation, replace: bool = False) -> None:
        """Register a relation for querying."""
        self.catalog.register(relation, replace=replace)

    def drop(self, name: str) -> None:
        self.catalog.drop(name)

    def create_table(self, name: str, schema, rows=(), replace: bool = False):
        """Create and register a relation from host literals.

        ``schema`` maps column names to type strings (``"DECIMAL(20, 4)"``,
        ``"CHAR(8)"``, ``"INT"``, ``"DOUBLE"``, ``"DATE"``) or type
        objects; ``rows`` are tuples of Python literals.
        """
        from repro.engine.ddl import build_relation

        relation = build_relation(name, schema, rows)
        self.register(relation, replace=replace)
        return relation

    def append(self, name: str, rows: Sequence[Sequence]) -> Relation:
        """Append host-literal rows to a registered relation (INSERT).

        Snapshot isolation by construction: the merged table is built from
        *new* :class:`~repro.storage.column.Column` objects (fresh version
        counters) and swapped into the catalog atomically, so a reader that
        captured the old relation keeps seeing exactly the rows it started
        with, while later queries -- and the device-residency and
        register-expansion caches, which key on column versions -- pick up
        the new data.  Writers serialize on the database write lock.
        """
        from repro.engine.ddl import build_relation

        with self._write_lock:
            current = self.catalog.get(name)
            schema = {column.name: column.column_type for column in current.columns}
            addition = build_relation(name, schema, rows)
            merged = Relation(
                name,
                [
                    Column(
                        old.name,
                        old.column_type,
                        np.concatenate([old.data, new.data], axis=0),
                        codec=old.codec,
                        encoding_chunk_rows=old.encoding_chunk_rows,
                    )
                    for old, new in zip(current.columns, addition.columns)
                ],
            )
            self.catalog.register(merged, replace=True)
        return merged

    # ----------------------------------------------------------------- DML

    def execute(
        self,
        sql: str,
        include_scan: bool = True,
        include_transfer: bool = True,
        include_compile: bool = True,
        simulate_rows: Optional[int] = None,
        streaming: Optional[StreamingConfig] = None,
        optimizer: Optional[OptimizerConfig] = None,
        cancel_check: Optional[Callable[[], bool]] = None,
    ) -> QueryResult:
        """Parse, plan, and execute a SELECT statement.

        ``simulate_rows`` overrides the database-level setting for this
        query; an explicit ``0`` is honoured (charge nothing), only ``None``
        falls back.  ``streaming`` and ``optimizer`` likewise override the
        database-level configs per query.  ``cancel_check`` is polled at
        operator boundaries; when it returns True the query raises
        :class:`repro.errors.QueryCancelledError` (the serving layer's
        timeout path).
        """
        query = parse_query(sql)
        relation = self.catalog.get(query.table)
        joined = {join.table: self.catalog.get(join.table) for join in query.joins}
        sim = self._resolve_simulate_rows(simulate_rows, relation)
        optimizer = optimizer if optimizer is not None else self.optimizer
        cost_model = CostModel(
            self.device, self.host, include_scan=include_scan, include_transfer=include_transfer
        )
        context = QueryContext(
            relation=relation,
            joined=joined,
            simulate_rows=sim,
            device=self.device,
            host=self.host,
            kernel_cache=self.kernel_cache,
            jit_options=self.jit_options,
            include_scan=include_scan,
            include_transfer=include_transfer,
            include_compile=include_compile,
            tpi=self.aggregation_tpi,
            streaming=streaming if streaming is not None else self.streaming,
            cost_model=cost_model,
            optimizer=optimizer,
            residency=self.residency,
            cancel_check=cancel_check,
        )
        chain = plan_query(
            query,
            relation.column_names,
            {name: rel.column_names for name, rel in joined.items()},
            stats=self._plan_stats(relation, joined, sim),
            optimizer=optimizer,
            cost_model=cost_model,
            jit_options=self.jit_options,
            label=query.table,
        )
        batch = run_plan(chain, context)
        return QueryResult(
            column_names=self._output_names(query, batch),
            rows=self._materialise(query, batch),
            report=context.report,
            query=query,
        )

    def explain(
        self,
        sql: str,
        simulate_rows: Optional[int] = None,
        streaming: Optional[StreamingConfig] = None,
        measure_data_plane: bool = False,
        optimizer: Optional[OptimizerConfig] = None,
    ):
        """Plan (but do not fully execute) a query; returns an ExplainResult.

        Shows the rewritten operator chain with per-node cost estimates,
        the rewrite-rule trace, every kernel the JIT would generate (with
        its optimised expression and the Listing-1-style source), the
        simulated cost estimates, and -- with streaming enabled -- each
        kernel's chunk count and pipelined-vs-serial estimate.  With
        ``measure_data_plane`` each kernel is also run once over the stored
        rows and its measured wall clock reported alongside the estimates.
        """
        from repro.engine.explain import explain_query

        query = parse_query(sql)
        relation = self.catalog.get(query.table)
        joined = {join.table: self.catalog.get(join.table) for join in query.joins}
        sim = self._resolve_simulate_rows(simulate_rows, relation)
        optimizer = optimizer if optimizer is not None else self.optimizer
        cost_model = CostModel(self.device, self.host)
        chain = plan_query(
            query,
            relation.column_names,
            {name: rel.column_names for name, rel in joined.items()},
            stats=self._plan_stats(relation, joined, sim),
            optimizer=optimizer,
            cost_model=cost_model,
            jit_options=self.jit_options,
            label=query.table,
        )
        result = explain_query(
            query,
            chain,
            relation,
            sim,
            self.jit_options,
            self.device,
            joined=joined,
            streaming=streaming if streaming is not None else self.streaming,
            measure_data_plane=measure_data_plane,
            cost_model=cost_model,
            optimizer=optimizer,
        )
        result.sql = sql.strip()
        return result

    # ------------------------------------------------------------ plumbing

    def _plan_stats(self, relation: Relation, joined, simulate_rows: int) -> PlanStats:
        """Catalog statistics the planner's rules and cost model consume."""
        return PlanStats(
            main=TableStats.from_relation(relation),
            joined={name: TableStats.from_relation(rel) for name, rel in joined.items()},
            simulate_rows=simulate_rows,
        )

    def _resolve_simulate_rows(self, simulate_rows: Optional[int], relation) -> int:
        """Per-call override > database default > actual row count.

        Explicit ``is None`` checks, not truthiness: ``simulate_rows=0``
        must charge zero rows rather than silently fall through the chain.
        """
        if simulate_rows is not None:
            return simulate_rows
        if self.simulate_rows is not None:
            return self.simulate_rows
        return relation.rows

    def _output_names(self, query: Query, batch: Batch) -> List[str]:
        names = []
        for item in query.select_items:
            name = item.name
            if name in batch.columns:
                names.append(name)
            elif not item.is_aggregate and item.expression in batch.columns:
                names.append(item.expression)
        return names or list(batch.columns)

    def _materialise(self, query: Query, batch: Batch) -> List[Tuple[OutputValue, ...]]:
        names = self._output_names(query, batch)
        columns = []
        for name in names:
            column = batch.columns[name]
            if isinstance(column.column_type, DecimalType):
                spec = column.column_type.spec
                columns.append(
                    [DecimalValue.from_unscaled_container(u, spec) for u in column.unscaled()]
                )
            elif isinstance(column.column_type, CharType):
                columns.append([value.decode().rstrip() for value in column.data.tolist()])
            else:
                columns.append(column.data.tolist())
        return list(zip(*columns)) if columns else []
