"""Result precision/scale inference rules (paper section III-B3).

The JIT engine infers the spec of every intermediate node bottom-up so that
register arrays can be sized at compile time and never overflow:

* addition/subtraction (``s1 >= s2``): ``(max(p1, p2 + s1 - s2) + 1, s1)``
* multiplication: ``(p1 + p2, s1 + s2)``
* division: dividend is pre-multiplied by ``10**(s2 + 4)``; the quotient is
  ``(p1 - p2 + s2 + 5, s1 + 4)``
* modulo: ``(p2, 0)`` (integer modulo only)
* aggregates: MIN/MAX keep the input spec; SUM widens the precision by the
  digit length of the tuple count; AVG follows SUM then the division rule
  with the divisor ``DECIMAL(floor(log10 N) + 1, 0)``.
"""

from __future__ import annotations

import math

from repro.core.decimal.context import DecimalSpec
from repro.errors import TypeInferenceError


def add_result(left: DecimalSpec, right: DecimalSpec) -> DecimalSpec:
    """Spec of ``left + right`` (also ``left - right``)."""
    if left.scale < right.scale:
        left, right = right, left
    precision = max(left.precision, right.precision + left.scale - right.scale) + 1
    return DecimalSpec(precision, left.scale)


def mul_result(left: DecimalSpec, right: DecimalSpec) -> DecimalSpec:
    """Spec of ``left * right``."""
    return DecimalSpec(left.precision + right.precision, left.scale + right.scale)


#: Extra fractional digits every division result carries (section III-B3:
#: "the result is guaranteed to have the scale of s1 + 4").
DIVISION_EXTRA_SCALE = 4


def div_result(dividend: DecimalSpec, divisor: DecimalSpec) -> DecimalSpec:
    """Spec of ``dividend / divisor``.

    The integer part of the quotient has at most
    ``(p1 - s1) - (p2 - s2) + 1`` digits, so
    ``DECIMAL(p1 - p2 + s2 + 5, s1 + 4)`` is overflow-free.  When the
    formula's precision is smaller than its scale (tiny dividends), we widen
    the precision to keep the spec valid; this is the "only 4 digits can
    hardly protect the division from underflow" regime of Figure 15.
    """
    scale = dividend.scale + DIVISION_EXTRA_SCALE
    precision = dividend.precision - divisor.precision + divisor.scale + DIVISION_EXTRA_SCALE + 1
    return DecimalSpec(max(precision, scale + 1), scale)


def div_prescale(divisor: DecimalSpec) -> int:
    """Power of ten the dividend is multiplied by before dividing."""
    return divisor.scale + DIVISION_EXTRA_SCALE


def mod_result(dividend: DecimalSpec, divisor: DecimalSpec) -> DecimalSpec:
    """Spec of ``dividend % divisor`` -- integer modulo only."""
    if dividend.scale or divisor.scale:
        raise TypeInferenceError(
            "modulo supports only integer operands (scale 0); got "
            f"{dividend} % {divisor}"
        )
    return DecimalSpec(divisor.precision, 0)


def sum_result(input_spec: DecimalSpec, tuple_count: int) -> DecimalSpec:
    """Spec of ``SUM(expr)`` over ``tuple_count`` tuples."""
    if tuple_count < 1:
        raise TypeInferenceError("SUM needs a positive tuple count")
    extra = math.ceil(math.log10(tuple_count)) if tuple_count > 1 else 1
    return DecimalSpec(input_spec.precision + max(extra, 1), input_spec.scale)


def avg_result(input_spec: DecimalSpec, tuple_count: int) -> DecimalSpec:
    """Spec of ``AVG(expr)``: SUM's spec divided by ``DECIMAL(len(N), 0)``."""
    summed = sum_result(input_spec, tuple_count)
    divisor = count_spec(tuple_count)
    return div_result(summed, divisor)


def count_spec(tuple_count: int) -> DecimalSpec:
    """The divisor spec AVG uses: ``DECIMAL(floor(log10 N) + 1, 0)``."""
    if tuple_count < 1:
        raise TypeInferenceError("tuple count must be positive")
    return DecimalSpec(int(math.log10(tuple_count)) + 1, 0)


def minmax_result(input_spec: DecimalSpec) -> DecimalSpec:
    """Spec of ``MIN``/``MAX``: unchanged."""
    return input_spec


def function_result(function: str, argument: DecimalSpec, scale_arg: int = 0) -> DecimalSpec:
    """Result spec of a scalar function (ABS/SIGN/ROUND/TRUNC/CEIL/FLOOR)."""
    if function == "ABS":
        return argument
    if function == "SIGN":
        return DecimalSpec(1, 0)
    if function in ("CEIL", "FLOOR"):
        # May add one integer digit (CEIL(9.5) = 10).
        return DecimalSpec(max(argument.integer_digits + 1, 1), 0)
    if function == "POWER":
        if scale_arg < 1:
            raise TypeInferenceError("POWER's exponent must be >= 1")
        return DecimalSpec(argument.precision * scale_arg, argument.scale * scale_arg)
    if function in ("ROUND", "TRUNC"):
        if scale_arg < 0:
            raise TypeInferenceError(f"{function} scale must be non-negative")
        delta = scale_arg - argument.scale
        precision = argument.precision + delta
        if function == "ROUND":
            precision += 1  # rounding can carry into a new digit
        return DecimalSpec(max(precision, scale_arg + 1, 1), scale_arg)
    raise TypeInferenceError(f"unknown scalar function {function!r}")
