"""Compact byte-aligned decimal representation (paper section III-B, Fig. 4).

In memory and on disk a ``DECIMAL(p, s)`` value occupies ``Lb`` bytes, where
``Lb = ceil((1 + p*log2(10)) / 8)``: the magnitude in little-endian bytes
with the sign packed into the most significant bit of the last byte.  Values
expand to the word-aligned register form only for computation, which is the
paper's key memory-bandwidth optimisation ("reading data from the memory
dominates the execution time of additions and subtractions").

Two layers are provided:

* scalar :func:`pack` / :func:`unpack` for single values;
* vectorised :func:`pack_column` / :func:`unpack_column` operating on whole
  numpy columns at once -- this is what the simulated kernels' load/store
  phases use (expand on read, compact on write-back).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.decimal import words as w
from repro.core.decimal.context import DecimalSpec
from repro.errors import ConversionError

#: Mask of the sign bit inside the most significant compact byte.
SIGN_BIT = 0x80


def pack(negative: bool, words: Tuple[int, ...], spec: DecimalSpec) -> bytes:
    """Pack a magnitude + sign into the ``Lb``-byte compact form."""
    lb = spec.compact_bytes
    magnitude = w.to_int(words)
    raw = bytearray(magnitude.to_bytes(lb, "little"))
    if raw[-1] & SIGN_BIT:
        raise ConversionError(f"magnitude overlaps the sign bit for {spec}")
    if negative and magnitude:
        raw[-1] |= SIGN_BIT
    return bytes(raw)


def unpack(data: bytes, spec: DecimalSpec) -> Tuple[bool, Tuple[int, ...]]:
    """Expand ``Lb`` compact bytes to ``(negative, words)`` register form."""
    lb = spec.compact_bytes
    if len(data) != lb:
        raise ConversionError(f"expected {lb} compact bytes, got {len(data)}")
    raw = bytearray(data)
    negative = bool(raw[-1] & SIGN_BIT)
    raw[-1] &= ~SIGN_BIT & 0xFF
    magnitude = int.from_bytes(bytes(raw), "little")
    return negative, tuple(w.from_int(magnitude, spec.words))


def pack_column(
    negative: np.ndarray, word_matrix: np.ndarray, spec: DecimalSpec
) -> np.ndarray:
    """Pack an ``(N, Lw)`` uint32 word matrix into an ``(N, Lb)`` uint8 matrix.

    The word matrix is viewed as little-endian bytes and truncated to ``Lb``;
    the sign bit lands in the high bit of the final byte.  Any magnitude bits
    beyond the compact width would be silently lost, so they are checked.
    """
    rows = word_matrix.shape[0]
    lb = spec.compact_bytes
    as_bytes = np.ascontiguousarray(word_matrix.astype("<u4")).view(np.uint8)
    as_bytes = as_bytes.reshape(rows, 4 * spec.words)
    if as_bytes.shape[1] > lb and np.any(as_bytes[:, lb:]):
        raise ConversionError("magnitude does not fit the compact representation")
    if lb > as_bytes.shape[1]:
        # Rare case (e.g. p=19): the sign bit needs a byte beyond the word
        # array, so Lb exceeds 4*Lw by one padding byte.
        padded = np.zeros((rows, lb), dtype=np.uint8)
        padded[:, : as_bytes.shape[1]] = as_bytes
        as_bytes = padded
    compact = as_bytes[:, :lb].copy()
    if np.any(compact[:, -1] & SIGN_BIT):
        raise ConversionError(f"magnitude overlaps the sign bit for {spec}")
    nonzero = as_bytes[:, :lb].any(axis=1)
    compact[:, -1] |= np.where(np.asarray(negative, bool) & nonzero, SIGN_BIT, 0).astype(np.uint8)
    return compact


def unpack_column(
    compact: np.ndarray, spec: DecimalSpec
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand an ``(N, Lb)`` compact matrix to ``(negative, (N, Lw) words)``."""
    rows, lb = compact.shape
    if lb != spec.compact_bytes:
        raise ConversionError(f"expected width {spec.compact_bytes}, got {lb}")
    negative = (compact[:, -1] & SIGN_BIT) != 0
    padded = np.zeros((rows, max(4 * spec.words, lb)), dtype=np.uint8)
    padded[:, :lb] = compact
    padded[:, lb - 1] &= ~SIGN_BIT & 0xFF
    if padded.shape[1] > 4 * spec.words:
        if np.any(padded[:, 4 * spec.words :]):
            raise ConversionError("compact bytes exceed the register array")
        padded = padded[:, : 4 * spec.words]
    words = (
        np.ascontiguousarray(padded)
        .view("<u4")
        .reshape(rows, spec.words)
        .astype(np.uint32, copy=False)
    )
    return negative, words
