"""Multi-word division algorithms.

Section III-C2 of the paper uses a quotient-range + binary-search division in
single-threaded kernels, with two fast paths (a native ``div`` when both
operands fit in 64 bits, and word-by-word short division when the divisor is
one word).  The multi-threaded path follows CGBN and uses Newton-Raphson;
section II-B also sketches the Goldschmidt algorithm.  All four are
implemented here and return exact floor quotients.

Each routine also reports a :class:`DivisionStats` describing the work it
did (iterations, multiplications), which the GPU simulator's timing model
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.decimal import words as w
from repro.core.decimal.context import WORD_BASE, WORD_BITS, WORD_MASK
from repro.errors import DivisionByZeroError


@dataclass
class DivisionStats:
    """Work counters for one division, consumed by the timing model."""

    algorithm: str = "binary_search"
    iterations: int = 0
    multiplications: int = 0
    comparisons: int = 0
    used_fast_path: bool = False


def quotient_bit_range(dividend: Sequence[int], divisor: Sequence[int]) -> Tuple[int, int]:
    """Inclusive bounds on the quotient from the operands' ``bfind`` results.

    If the dividend's most significant set bit is ``la`` and the divisor's is
    ``lb``, the quotient lies in ``[2**(d-1), 2**(d+1) - 1]`` where
    ``d = la - lb`` (paper's ``1xxxxx / 1xxx`` example).  Returns ``(0, 0)``
    when the dividend is smaller than the divisor.
    """
    la = w.bfind(dividend)
    lb = w.bfind(divisor)
    if lb < 0:
        raise DivisionByZeroError("division by zero")
    if la < lb:
        return 0, 1
    delta = la - lb
    low = 1 << (delta - 1) if delta > 0 else 0
    high = (1 << (delta + 1)) - 1
    return low, high


def binary_search_divmod(
    dividend: Sequence[int], divisor: Sequence[int]
) -> Tuple[List[int], List[int], DivisionStats]:
    """The paper's single-threaded division: quotient range + binary search.

    Searches the range from :func:`quotient_bit_range` for the ``q`` with
    ``q * divisor <= dividend < (q+1) * divisor``.  Each probe is one
    multi-word multiplication and one comparison.
    """
    stats = DivisionStats(algorithm="binary_search")
    width = len(dividend)
    lo, hi = quotient_bit_range(dividend, divisor)
    q_width = max(1, width)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        stats.iterations += 1
        stats.multiplications += 1
        stats.comparisons += 1
        probe = w.mul(w.from_int(mid, q_width), list(divisor))
        if w.compare(probe, dividend) <= 0:
            lo = mid
        else:
            hi = mid - 1
    quotient = w.from_int(lo, q_width)
    product = w.mul(quotient, list(divisor))
    remainder, borrow = w.sub(dividend, product, width)
    if borrow:
        raise AssertionError("binary search produced an over-large quotient")
    stats.multiplications += 1
    return quotient, remainder, stats


def short_divmod(
    dividend: Sequence[int], divisor_word: int
) -> Tuple[List[int], int, DivisionStats]:
    """Fast path: one-word divisor, divide from most to least significant word.

    Mirrors the paper's second fast path ("if the divisor is only a 32-bit
    word, we divide the dividend from the most significant word to the least
    with the ``div`` instruction").
    """
    if divisor_word == 0:
        raise DivisionByZeroError("division by zero")
    if not 0 < divisor_word < WORD_BASE:
        raise ValueError("short_divmod requires a single-word divisor")
    stats = DivisionStats(algorithm="short", used_fast_path=True)
    quotient = w.zero(len(dividend))
    remainder = 0
    for i in range(len(dividend) - 1, -1, -1):
        acc = (remainder << WORD_BITS) | (dividend[i] & WORD_MASK)
        quotient[i] = (acc // divisor_word) & WORD_MASK
        remainder = acc % divisor_word
        stats.iterations += 1
    return quotient, remainder, stats


def short_div_columns(
    words: np.ndarray, divisors: "np.ndarray | int"
) -> Tuple[np.ndarray, np.ndarray]:
    """Column-wise :func:`short_divmod`: the whole batch at once.

    ``words`` is an ``(N, Lw)`` uint32 magnitude matrix; ``divisors`` a
    scalar or ``(N,)`` array of single-word (``< 2**32``) divisors, none
    zero.  Each limb column is one numpy pass of the most-to-least
    significant ``div`` chain, so the Python cost is O(Lw) regardless of N
    -- the batch analogue of the paper's one-word-divisor fast path.

    Returns ``(quotient (N, Lw) uint32, remainder (N,) uint64)``.
    """
    rows, width = words.shape
    divisor = np.asarray(divisors, dtype=np.uint64)
    if divisor.ndim == 0:
        divisor = np.broadcast_to(divisor, (rows,))
    if rows and not divisor.all():
        row = int(np.argmin(divisor != 0))
        raise DivisionByZeroError(f"division by zero at row {row}")
    if np.any(divisor >> np.uint64(WORD_BITS)):
        raise ValueError("short_div_columns requires single-word divisors")
    quotient = np.zeros((rows, width), dtype=np.uint32)
    remainder = np.zeros(rows, dtype=np.uint64)
    shift = np.uint64(WORD_BITS)
    for limb in range(width - 1, -1, -1):
        # remainder < divisor < 2**32, so the accumulator fits uint64 and
        # the per-column quotient fits one word.
        acc = (remainder << shift) | words[:, limb].astype(np.uint64)
        quotient[:, limb] = (acc // divisor).astype(np.uint32)
        remainder = acc % divisor
    return quotient, remainder


def native64_divmod(
    dividend: Sequence[int], divisor: Sequence[int]
) -> Tuple[List[int], List[int], DivisionStats]:
    """Fast path: both operands fit in 64 bits -> a single ``div``.

    Raises ``ValueError`` when an operand exceeds 64 bits so callers fall
    back to the general algorithm, like the generated kernel's runtime test.
    """
    a = w.to_int(dividend)
    b = w.to_int(divisor)
    if a >= 1 << 64 or b >= 1 << 64:
        raise ValueError("operands exceed 64 bits")
    if b == 0:
        raise DivisionByZeroError("division by zero")
    stats = DivisionStats(algorithm="native64", iterations=1, used_fast_path=True)
    width = len(dividend)
    return w.from_int(a // b, width), w.from_int(a % b, width), stats


def newton_raphson_divmod(
    dividend: Sequence[int], divisor: Sequence[int]
) -> Tuple[List[int], List[int], DivisionStats]:
    """Newton-Raphson reciprocal division (the CGBN multi-threaded path).

    Approximates ``1/d`` in fixed point by iterating
    ``r[i+1] = r[i] * (2 - d * r[i])`` (section II-B), then corrects the
    candidate quotient by at most a couple of steps to reach the exact floor.
    """
    stats = DivisionStats(algorithm="newton_raphson")
    a = w.to_int(dividend)
    d = w.to_int(divisor)
    if d == 0:
        raise DivisionByZeroError("division by zero")
    width = len(dividend)
    if a == 0:
        return w.zero(width), w.zero(width), stats

    # Fixed-point fraction bits: enough for the full quotient.
    frac = max(a.bit_length(), d.bit_length()) + 2
    two = 2 << frac

    # Initial estimate from the leading bits of d: r0 = 2**-ceil(log2 d),
    # which lies in (0, 2/d) so the iteration converges quadratically.
    shift = d.bit_length()
    reciprocal = 1 << (frac - shift)

    # Quadratic convergence: iterations ~= log2(frac).
    for _ in range(frac.bit_length() + 2):
        prev = reciprocal
        reciprocal = (reciprocal * (two - ((d * reciprocal) >> frac))) >> frac
        stats.iterations += 1
        stats.multiplications += 2
        if reciprocal == prev:
            break

    quotient = (a * reciprocal) >> frac
    stats.multiplications += 1
    quotient, corrections = _correct_quotient(a, d, quotient)
    stats.comparisons += corrections + 1
    stats.multiplications += corrections
    return w.from_int(quotient, width), w.from_int(a - quotient * d, width), stats


def goldschmidt_divmod(
    dividend: Sequence[int], divisor: Sequence[int]
) -> Tuple[List[int], List[int], DivisionStats]:
    """Goldschmidt division: scale N and D by ``F = 2 - D`` until D -> 1.

    Section II-B: ``D/d * F1/F1 * F2/F2 * ...``; once the scaled divisor
    approximates 1, the scaled dividend approximates the quotient.
    """
    stats = DivisionStats(algorithm="goldschmidt")
    a = w.to_int(dividend)
    d = w.to_int(divisor)
    if d == 0:
        raise DivisionByZeroError("division by zero")
    width = len(dividend)
    if a == 0:
        return w.zero(width), w.zero(width), stats

    frac = max(a.bit_length(), d.bit_length()) + 4
    one = 1 << frac
    two = 2 << frac

    # Normalise divisor into [0.5, 1) in fixed point; scale dividend alike.
    shift = d.bit_length()
    n_fp = (a << frac) >> shift
    d_fp = (d << frac) >> shift

    for _ in range(frac.bit_length() + 3):
        factor = two - d_fp
        n_fp = (n_fp * factor) >> frac
        d_fp = (d_fp * factor) >> frac
        stats.iterations += 1
        stats.multiplications += 2
        if d_fp >= one - 1:
            break

    quotient = n_fp >> frac
    quotient, corrections = _correct_quotient(a, d, quotient)
    stats.comparisons += corrections + 1
    stats.multiplications += corrections
    return w.from_int(quotient, width), w.from_int(a - quotient * d, width), stats


def auto_divmod(
    dividend: Sequence[int], divisor: Sequence[int]
) -> Tuple[List[int], List[int], DivisionStats]:
    """Dispatch exactly as the generated kernel does (section III-C2).

    Try the 64-bit ``div`` fast path, then the one-word short division, and
    fall back to binary search.
    """
    try:
        return native64_divmod(dividend, divisor)
    except ValueError:
        pass
    divisor_int = w.to_int(divisor)
    if divisor_int < WORD_BASE:
        quotient, remainder, stats = short_divmod(dividend, divisor_int)
        return quotient, w.from_int(remainder, len(dividend)), stats
    return binary_search_divmod(dividend, divisor)


def _correct_quotient(a: int, d: int, q: int) -> Tuple[int, int]:
    """Nudge an approximate quotient to the exact floor; returns (q, steps).

    A converged Newton-Raphson/Goldschmidt estimate is within a few ulps of
    the true quotient; if the estimate is further off than that (it should
    never be), fall back to an exact division rather than walking.
    """
    steps = 0
    max_steps = 8
    q = max(q, 0)
    while q * d > a and steps < max_steps:
        q -= 1
        steps += 1
    while (q + 1) * d <= a and steps < max_steps:
        q += 1
        steps += 1
    if q * d > a or (q + 1) * d <= a:
        return a // d, steps
    return q, steps
