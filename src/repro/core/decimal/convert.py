"""Conversions between host literals and fixed-point decimals.

The JIT engine converts SQL literals (integers, decimal fractions, floats)
into ``DECIMAL`` constants *at compile time* (section III-D2): ``1.23``
becomes ``DECIMAL(3, 2)`` and ``10`` becomes ``DECIMAL(2, 0)``.  The parsing
here derives exactly that minimal spec, plus the unscaled integer payload.
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Tuple, Union

from repro.core.decimal.context import DecimalSpec
from repro.errors import ConversionError

Numeric = Union[int, float, str, Decimal]

_DECIMAL_RE = re.compile(r"^([+-]?)(\d*)(?:\.(\d*))?$")


def parse_literal(text: str) -> Tuple[bool, int, DecimalSpec]:
    """Parse a decimal literal into ``(negative, unscaled, minimal_spec)``.

    >>> parse_literal("1.23")
    (False, 123, DecimalSpec(precision=3, scale=2))
    >>> parse_literal("10")
    (False, 10, DecimalSpec(precision=2, scale=0))
    """
    match = _DECIMAL_RE.match(text.strip())
    if not match or (not match.group(2) and not match.group(3)):
        raise ConversionError(f"not a decimal literal: {text!r}")
    sign, int_part, frac_part = match.groups()
    frac_part = frac_part or ""
    digits = (int_part or "0") + frac_part
    unscaled = int(digits)
    negative = sign == "-" and unscaled != 0
    scale = len(frac_part)
    # Minimal precision: significant digits, at least scale, at least 1.
    precision = max(len(digits.lstrip("0")), scale, 1)
    return negative, unscaled, DecimalSpec(precision, scale)


def literal_to_unscaled(value: Numeric, spec: DecimalSpec) -> Tuple[bool, int]:
    """Convert any supported host literal to ``(negative, unscaled)`` at ``spec``.

    Floats are routed through ``repr`` so that e.g. ``0.1`` converts to the
    decimal ``0.1`` rather than its binary expansion -- this mirrors how a
    SQL literal written as ``0.1`` behaves, and is the exactness DOUBLE
    columns lose (Figure 1).
    """
    if isinstance(value, bool):
        raise ConversionError("booleans are not decimal literals")
    if isinstance(value, int):
        negative, unscaled, src = value < 0, abs(value), DecimalSpec(max(len(str(abs(value))), 1), 0)
    elif isinstance(value, float):
        negative, unscaled, src = parse_literal(repr(value))
    elif isinstance(value, Decimal):
        negative, unscaled, src = parse_literal(format(value, "f"))
    elif isinstance(value, str):
        negative, unscaled, src = parse_literal(value)
    else:
        raise ConversionError(f"unsupported literal type: {type(value).__name__}")
    return negative, rescale_unscaled(unscaled, src.scale, spec.scale, spec)


def rescale_unscaled(unscaled: int, from_scale: int, to_scale: int, spec: DecimalSpec) -> int:
    """Rescale an unscaled magnitude between scales, checking for overflow.

    Scaling up multiplies by ``10**k`` (the cheap direction the scheduler
    prefers); scaling down truncates toward zero.
    """
    if to_scale >= from_scale:
        rescaled = unscaled * 10 ** (to_scale - from_scale)
    else:
        rescaled = unscaled // 10 ** (from_scale - to_scale)
    if not spec.fits(rescaled):
        raise ConversionError(
            f"value with {len(str(unscaled))} digits does not fit {spec}"
        )
    return rescaled


def unscaled_to_string(negative: bool, unscaled: int, scale: int) -> str:
    """Render an unscaled magnitude as a decimal string, e.g. ``-1.23``."""
    digits = str(unscaled)
    if scale:
        digits = digits.rjust(scale + 1, "0")
        text = f"{digits[:-scale]}.{digits[-scale:]}"
    else:
        text = digits
    return f"-{text}" if negative and unscaled else text
