"""Scalar multi-word integer arithmetic on little-endian 32-bit limbs.

These functions are the software analogue of the PTX sequences the paper
embeds in its generated kernels (section III-C): the carry chains mirror
``add.cc.u32`` / ``addc.cc.u32`` / ``subc``, and :func:`bfind` mirrors the
``bfind`` instruction used to derive division quotient ranges.

A "word array" here is a list/tuple of Python ints, each in ``[0, 2**32)``,
least significant word first.  Fixed-width results are truncated/extended to
the requested word count exactly as a register array would be.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.decimal.context import WORD_BASE, WORD_BITS, WORD_MASK

Words = Sequence[int]


def zero(width: int) -> List[int]:
    """A zero value of ``width`` words."""
    return [0] * width


def from_int(value: int, width: int) -> List[int]:
    """Split a non-negative integer into ``width`` little-endian words.

    Raises ``OverflowError`` if the value does not fit, mirroring the fact
    that generated kernels size their register arrays to be overflow-free.
    """
    if value < 0:
        raise ValueError("from_int expects a non-negative magnitude")
    words = []
    for _ in range(width):
        words.append(value & WORD_MASK)
        value >>= WORD_BITS
    if value:
        raise OverflowError(f"value needs more than {width} words")
    return words


def to_int(words: Words) -> int:
    """Recombine little-endian words into a non-negative integer."""
    value = 0
    for word in reversed(words):
        value = (value << WORD_BITS) | (word & WORD_MASK)
    return value


def is_zero(words: Words) -> bool:
    """Whether every limb is zero."""
    return all(word == 0 for word in words)


def add(a: Words, b: Words, width: int) -> Tuple[List[int], int]:
    """Add two word arrays into ``width`` words; returns (words, carry_out).

    This is the ``add.cc.u32`` + ``addc.cc.u32`` chain of Listing 2: the
    carry flag threads through the limbs from least to most significant.
    """
    out = zero(width)
    carry = 0
    for i in range(width):
        total = _limb(a, i) + _limb(b, i) + carry
        out[i] = total & WORD_MASK
        carry = total >> WORD_BITS
    return out, carry


def sub(a: Words, b: Words, width: int) -> Tuple[List[int], int]:
    """Subtract ``b`` from ``a``; returns (words, borrow_out).

    Mirrors the ``sub.cc`` / ``subc`` chain.  When ``a >= b`` the borrow out
    is 0; callers compare operands first to pick minuend and subtrahend, as
    the paper describes for signed addition (section II-B).
    """
    out = zero(width)
    borrow = 0
    for i in range(width):
        total = _limb(a, i) - _limb(b, i) - borrow
        out[i] = total & WORD_MASK
        borrow = 1 if total < 0 else 0
    return out, borrow


def compare(a: Words, b: Words) -> int:
    """Three-way compare of magnitudes: -1, 0 or 1.

    Words are compared from the most significant down, returning as soon as
    two words differ (section II-B).
    """
    width = max(len(a), len(b))
    for i in range(width - 1, -1, -1):
        wa, wb = _limb(a, i), _limb(b, i)
        if wa != wb:
            return 1 if wa > wb else -1
    return 0


def mul(a: Words, b: Words) -> List[int]:
    """Schoolbook multiplication; the product has ``len(a)+len(b)`` words.

    The k-th output word accumulates all partial products ``a[i]*b[j]`` with
    ``i + j == k``, with the accumulation carry added to word ``k+1``
    (section II-B, "Multiplications").
    """
    out = zero(len(a) + len(b))
    for i, wa in enumerate(a):
        if wa == 0:
            continue
        carry = 0
        for j, wb in enumerate(b):
            total = out[i + j] + wa * wb + carry
            out[i + j] = total & WORD_MASK
            carry = total >> WORD_BITS
        k = i + len(b)
        while carry:
            total = out[k] + carry
            out[k] = total & WORD_MASK
            carry = total >> WORD_BITS
            k += 1
    return out


def mul_fixed(a: Words, b: Words, width: int) -> List[int]:
    """Schoolbook multiplication truncated to ``width`` words."""
    return mul(a, b)[:width] + zero(max(0, width - len(a) - len(b)))


def mul_small(a: Words, factor: int, width: int) -> Tuple[List[int], int]:
    """Multiply by a single non-negative word; returns (words, carry_out)."""
    if not 0 <= factor < WORD_BASE:
        raise ValueError("factor must fit in one word")
    out = zero(width)
    carry = 0
    for i in range(width):
        total = _limb(a, i) * factor + carry
        out[i] = total & WORD_MASK
        carry = total >> WORD_BITS
    return out, carry


def shift_words_left(a: Words, count: int, width: int) -> List[int]:
    """Shift left by whole words (multiply by ``2**(32*count)``)."""
    out = zero(width)
    for i in range(width):
        src = i - count
        out[i] = _limb(a, src) if src >= 0 else 0
    return out


def bfind(words: Words) -> int:
    """Bit index of the most significant set bit, or -1 when zero.

    Mirrors the PTX ``bfind.u32`` loop the paper uses to derive the quotient
    range before its binary-search division (section III-C2).
    """
    for i in range(len(words) - 1, -1, -1):
        word = words[i] & WORD_MASK
        if word:
            return i * WORD_BITS + word.bit_length() - 1
    return -1


def pow10_words_needed(exponent: int) -> int:
    """Words required to hold ``10**exponent``."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return max(1, -(-(10**exponent - 1).bit_length() // WORD_BITS)) if exponent else 1


def pow10_words(exponent: int, width: int) -> List[int]:
    """``10**exponent`` as a word array (the alignment multiplier)."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return from_int(10**exponent, width)


def mul_pow10(a: Words, exponent: int, width: int) -> List[int]:
    """Align a magnitude upward: ``a * 10**exponent`` in ``width`` words.

    This is the scale-alignment operation of section II-B.  Alignment by a
    few digits is a single-word multiply; larger alignments use the full
    schoolbook path, exactly as a generated kernel would.
    """
    if exponent == 0:
        return list(a[:width]) + zero(max(0, width - len(a)))
    factor = 10**exponent
    if factor < WORD_BASE:
        out, carry = mul_small(a, factor, width)
        if carry:
            raise OverflowError("alignment overflowed the register array")
        return out
    factor_words = from_int(factor, (factor.bit_length() + WORD_BITS - 1) // WORD_BITS)
    product = mul(list(a), factor_words)
    if any(product[width:]):
        raise OverflowError("alignment overflowed the register array")
    return product[:width] + zero(max(0, width - len(product)))


def div_pow10(a: Words, exponent: int, width: int) -> List[int]:
    """Scale a magnitude downward: ``a // 10**exponent`` (truncating).

    The paper notes aligning a *larger* scale down requires a division and
    loses precision, which is why scheduling prefers aligning upward; this
    helper exists for rescaling results (e.g. AVG) where it is unavoidable.
    """
    if exponent == 0:
        return list(a[:width]) + zero(max(0, width - len(a)))
    return from_int(to_int(a) // 10**exponent, width)


def _limb(words: Words, index: int) -> int:
    """Word at ``index`` treating the array as zero-extended."""
    return words[index] & WORD_MASK if index < len(words) else 0
