"""Rounding modes for DECIMAL rescaling and casts.

The paper's kernels truncate (round toward zero) wherever a scale shrinks
-- that is what the fixed-container division rule produces, and what this
library's arithmetic does by default.  SQL ``CAST``/``ROUND`` surfaces need
the other standard modes, so they live here as explicit operations rather
than hidden arithmetic behaviour.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.value import DecimalValue
from repro.errors import PrecisionOverflowError


class Rounding(Enum):
    """Supported rounding modes for scale reduction."""

    DOWN = "down"  # toward zero (the kernels' native truncation)
    HALF_UP = "half_up"  # ties away from zero (SQL ROUND)
    HALF_EVEN = "half_even"  # banker's rounding (IEEE 754 default)
    CEILING = "ceiling"  # toward +infinity
    FLOOR = "floor"  # toward -infinity


def round_unscaled(unscaled: int, drop_digits: int, mode: Rounding) -> int:
    """Drop ``drop_digits`` decimal digits from a signed unscaled integer."""
    if drop_digits < 0:
        raise ValueError("drop_digits must be non-negative")
    if drop_digits == 0:
        return unscaled
    base = 10**drop_digits
    quotient, remainder = divmod(abs(unscaled), base)
    negative = unscaled < 0

    if mode is Rounding.DOWN:
        bump = 0
    elif mode is Rounding.HALF_UP:
        bump = 1 if 2 * remainder >= base else 0
    elif mode is Rounding.HALF_EVEN:
        doubled = 2 * remainder
        if doubled > base:
            bump = 1
        elif doubled < base:
            bump = 0
        else:
            bump = quotient & 1  # tie: round to even
    elif mode is Rounding.CEILING:
        bump = 1 if remainder and not negative else 0
    elif mode is Rounding.FLOOR:
        bump = 1 if remainder and negative else 0
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown rounding mode {mode!r}")

    magnitude = quotient + bump
    return -magnitude if negative else magnitude


def round_bump_column(
    remainder: np.ndarray,
    base: int,
    negative: np.ndarray,
    quotient_odd: np.ndarray,
    mode: Rounding,
) -> np.ndarray:
    """Column-wise bump mask: which rows round their quotient up by one.

    The batch analogue of :func:`round_unscaled`'s per-value bump decision:
    ``remainder`` is the ``(N,)`` uint64 magnitude remainder of dividing by
    ``base = 10**drop`` (``base`` must fit uint64), ``negative`` the sign
    plane, ``quotient_odd`` the parity of the truncated quotient (only read
    for HALF_EVEN ties).  Returns an ``(N,)`` bool mask.
    """
    remainder = np.asarray(remainder, dtype=np.uint64)
    if mode is Rounding.DOWN:
        return np.zeros(remainder.shape, dtype=bool)
    if mode in (Rounding.HALF_UP, Rounding.HALF_EVEN):
        # 2*remainder can reach 2**33 for drop=9; widen before doubling.
        doubled = remainder.astype(object) * 2 if base > (1 << 63) else remainder * np.uint64(2)
        if mode is Rounding.HALF_UP:
            return np.asarray(doubled >= base, dtype=bool)
        return np.asarray(
            (doubled > base) | ((doubled == base) & np.asarray(quotient_odd, bool)),
            dtype=bool,
        )
    nonzero = remainder != 0
    if mode is Rounding.CEILING:
        return nonzero & ~np.asarray(negative, bool)
    if mode is Rounding.FLOOR:
        return nonzero & np.asarray(negative, bool)
    raise ValueError(f"unknown rounding mode {mode!r}")  # pragma: no cover


def rescale(
    value: DecimalValue, scale: int, mode: Rounding = Rounding.DOWN
) -> DecimalValue:
    """Rescale a value to ``scale`` with an explicit rounding mode."""
    current = value.spec.scale
    if scale >= current:
        return value.rescale(scale)
    unscaled = round_unscaled(value.unscaled, current - scale, mode)
    spec = DecimalSpec(max(value.spec.precision - (current - scale), scale, 1), scale)
    if not spec.fits(unscaled):
        # Rounding up can add a digit (9.99 -> 10.0): widen by one.
        spec = DecimalSpec(spec.precision + 1, scale)
    return DecimalValue.from_unscaled(unscaled, spec)


def cast(
    value: DecimalValue, spec: DecimalSpec, mode: Rounding = Rounding.HALF_UP
) -> DecimalValue:
    """SQL-style ``CAST(value AS DECIMAL(p, s))``: rescale then range-check."""
    rescaled = rescale(value, spec.scale, mode)
    if not spec.fits(rescaled.unscaled):
        raise PrecisionOverflowError(
            f"{value} does not fit {spec} after rescaling to scale {spec.scale}"
        )
    return DecimalValue.from_unscaled(rescaled.unscaled, spec)
