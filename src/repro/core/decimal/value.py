"""Signed fixed-point decimal values over 32-bit word arrays.

:class:`DecimalValue` is the scalar reference implementation of the
register-resident ``Decimal<N>`` objects the JIT engine generates (Listing 1
in the paper): a sign byte plus ``Lw`` little-endian 32-bit words, with the
``DECIMAL(p, s)`` spec held out-of-band (it is column metadata, not stored
per value).

All arithmetic follows the paper's semantics:

* operands are scale-aligned upward before addition/subtraction;
* signed addition turns into magnitude subtraction when signs differ, with a
  magnitude comparison choosing minuend and subtrahend (section II-B);
* result specs follow the section III-B3 inference rules;
* division pre-multiplies the dividend by ``10**(s2+4)`` and truncates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.core.decimal import convert, inference
from repro.core.decimal import words as w
from repro.core.decimal.context import DecimalSpec
from repro.errors import DivisionByZeroError, PrecisionOverflowError

Numeric = Union[int, float, str]


@dataclass(frozen=True)
class DecimalValue:
    """An immutable ``DECIMAL(p, s)`` value: sign + word array + spec."""

    spec: DecimalSpec
    negative: bool
    words: Tuple[int, ...]

    # ---------------------------------------------------------------- create

    @classmethod
    def from_unscaled(cls, unscaled: int, spec: DecimalSpec) -> "DecimalValue":
        """Build from a signed unscaled integer (``123`` for ``1.23`` at s=2)."""
        if not spec.fits(unscaled):
            raise PrecisionOverflowError(f"{unscaled} does not fit {spec}")
        magnitude = abs(unscaled)
        return cls(spec, unscaled < 0, tuple(w.from_int(magnitude, spec.words)))

    @classmethod
    def from_unscaled_container(cls, unscaled: int, spec: DecimalSpec) -> "DecimalValue":
        """Build from a signed unscaled integer, wrapping into the container.

        Mirrors ``DecimalVector.from_unscaled_container``: values that
        exceed the paper-rule spec wrap modulo the ``Lw``-word register
        array, as a generated kernel's fixed-size array would.
        """
        magnitude = abs(unscaled) % (1 << (32 * spec.words))
        return cls(spec, unscaled < 0 and magnitude != 0, tuple(w.from_int(magnitude, spec.words)))

    @classmethod
    def from_literal(cls, value: Numeric, spec: DecimalSpec = None) -> "DecimalValue":
        """Build from a host literal; infers the minimal spec when omitted.

        ``DecimalValue.from_literal("1.23")`` is ``DECIMAL(3, 2)`` -- the
        compile-time constant conversion of section III-D2.
        """
        if spec is None:
            if isinstance(value, int):
                negative, unscaled, spec = value < 0, abs(value), DecimalSpec(
                    max(len(str(abs(value))), 1), 0
                )
                return cls(spec, negative and unscaled != 0, tuple(w.from_int(unscaled, spec.words)))
            negative, unscaled, spec = convert.parse_literal(
                repr(value) if isinstance(value, float) else str(value)
            )
            return cls(spec, negative, tuple(w.from_int(unscaled, spec.words)))
        negative, unscaled = convert.literal_to_unscaled(value, spec)
        return cls(spec, negative, tuple(w.from_int(unscaled, spec.words)))

    @classmethod
    def zero(cls, spec: DecimalSpec) -> "DecimalValue":
        """The zero value of a spec."""
        return cls(spec, False, tuple(w.zero(spec.words)))

    # --------------------------------------------------------------- inspect

    @property
    def unscaled(self) -> int:
        """The signed unscaled integer this value stores."""
        magnitude = w.to_int(self.words)
        return -magnitude if self.negative else magnitude

    @property
    def is_zero(self) -> bool:
        """Whether the magnitude is zero."""
        return w.is_zero(self.words)

    def to_fraction_parts(self) -> Tuple[int, int]:
        """``(unscaled, 10**scale)`` -- the exact rational this represents."""
        return self.unscaled, 10**self.spec.scale

    def __str__(self) -> str:
        return convert.unscaled_to_string(self.negative, w.to_int(self.words), self.spec.scale)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DecimalValue({self}, {self.spec})"

    # --------------------------------------------------------------- rescale

    def rescale(self, scale: int, spec: DecimalSpec = None) -> "DecimalValue":
        """Align to another scale (x10^k upward, truncating downward)."""
        if spec is None:
            extra = max(scale - self.spec.scale, 0)
            spec = DecimalSpec(max(self.spec.precision + extra, scale, 1), scale)
        unscaled = convert.rescale_unscaled(
            w.to_int(self.words), self.spec.scale, scale, spec
        )
        return DecimalValue(spec, self.negative and unscaled != 0, tuple(w.from_int(unscaled, spec.words)))

    def with_spec(self, spec: DecimalSpec) -> "DecimalValue":
        """Re-declare this value at another spec (rescaling as needed)."""
        return self.rescale(spec.scale, spec)

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other: "DecimalValue") -> "DecimalValue":
        result_spec = inference.add_result(self.spec, other.spec)
        a, b = _align_pair(self, other, result_spec)
        return _signed_add(a, b, result_spec, negate_b=False)

    def __sub__(self, other: "DecimalValue") -> "DecimalValue":
        result_spec = inference.add_result(self.spec, other.spec)
        a, b = _align_pair(self, other, result_spec)
        return _signed_add(a, b, result_spec, negate_b=True)

    def __neg__(self) -> "DecimalValue":
        if self.is_zero:
            return self
        return DecimalValue(self.spec, not self.negative, self.words)

    def __mul__(self, other: "DecimalValue") -> "DecimalValue":
        result_spec = inference.mul_result(self.spec, other.spec)
        product = w.mul(list(self.words), list(other.words))
        magnitude = w.to_int(product)
        negative = (self.negative != other.negative) and magnitude != 0
        return DecimalValue(result_spec, negative, tuple(w.from_int(magnitude, result_spec.words)))

    def __truediv__(self, other: "DecimalValue") -> "DecimalValue":
        if other.is_zero:
            raise DivisionByZeroError("decimal division by zero")
        result_spec = inference.div_result(self.spec, other.spec)
        prescale = inference.div_prescale(other.spec)
        # Mathematically identical to the limb algorithms in
        # ``repro.core.decimal.division`` (tested there directly); the int
        # route keeps bulk scalar evaluation tractable.
        quotient = abs(self.unscaled) * 10**prescale // abs(other.unscaled)
        # The quotient container wraps like the generated kernel's fixed
        # Lw-word register array (see DecimalVector.from_unscaled_container).
        magnitude = quotient % (1 << (32 * result_spec.words))
        negative = (self.negative != other.negative) and magnitude != 0
        return DecimalValue(result_spec, negative, tuple(w.from_int(magnitude, result_spec.words)))

    def __mod__(self, other: "DecimalValue") -> "DecimalValue":
        result_spec = inference.mod_result(self.spec, other.spec)
        if other.is_zero:
            raise DivisionByZeroError("decimal modulo by zero")
        magnitude = abs(self.unscaled) % abs(other.unscaled)
        negative = self.negative and magnitude != 0
        return DecimalValue(result_spec, negative, tuple(w.from_int(magnitude, result_spec.words)))

    # ------------------------------------------------------------ comparison

    def compare(self, other: "DecimalValue") -> int:
        """Three-way signed compare, aligning scales first."""
        scale = max(self.spec.scale, other.spec.scale)
        a = self.unscaled * 10 ** (scale - self.spec.scale)
        b = other.unscaled * 10 ** (scale - other.spec.scale)
        return (a > b) - (a < b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecimalValue):
            return NotImplemented
        return self.compare(other) == 0

    def __hash__(self) -> int:
        unscaled, denom = self.to_fraction_parts()
        # Normalise so equal numerics hash equally across scales.
        from math import gcd

        g = gcd(abs(unscaled), denom) or 1
        return hash((unscaled // g, denom // g))

    def __lt__(self, other: "DecimalValue") -> bool:
        return self.compare(other) < 0

    def __le__(self, other: "DecimalValue") -> bool:
        return self.compare(other) <= 0

    def __gt__(self, other: "DecimalValue") -> bool:
        return self.compare(other) > 0

    def __ge__(self, other: "DecimalValue") -> bool:
        return self.compare(other) >= 0


def _align_pair(
    a: DecimalValue, b: DecimalValue, result_spec: DecimalSpec
) -> Tuple[DecimalValue, DecimalValue]:
    """Align both operands upward to the result scale (section II-B)."""
    scale = result_spec.scale
    wide = DecimalSpec(result_spec.precision, scale)
    return a.rescale(scale, wide), b.rescale(scale, wide)


def _signed_add(
    a: DecimalValue, b: DecimalValue, spec: DecimalSpec, negate_b: bool
) -> DecimalValue:
    """Add aligned magnitudes with sign handling.

    When effective signs match, magnitudes add; otherwise the larger
    magnitude is the minuend and the result takes its sign -- the compare
    runs most-significant-word first, as in section II-B.
    """
    b_negative = (not b.negative) if negate_b else b.negative
    width = spec.words
    if a.negative == b_negative:
        total, carry = w.add(a.words, b.words, width)
        if carry:
            raise PrecisionOverflowError("addition overflowed its inferred spec")
        negative = a.negative and not all(x == 0 for x in total)
        return DecimalValue(spec, negative, tuple(total))
    order = w.compare(a.words, b.words)
    if order == 0:
        return DecimalValue.zero(spec)
    if order > 0:
        magnitude, _ = w.sub(a.words, b.words, width)
        negative = a.negative
    else:
        magnitude, _ = w.sub(b.words, a.words, width)
        negative = b_negative
    return DecimalValue(spec, negative, tuple(magnitude))
