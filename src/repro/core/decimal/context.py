"""``DECIMAL(p, s)`` specifications and storage-length tables.

The paper (section III-B) represents a decimal as an integer held in an
array of 32-bit words plus a sign byte.  The word length of the array is

    Lw = ceil(p * log2(10) / 32)

and the compact (memory/disk) representation packs the value together with a
1-bit sign into a byte array of length

    Lb = ceil((1 + p * log2(10)) / 8)

Both lengths depend only on the precision ``p``, so the paper pre-computes
them in a key-value table; we memoise them the same way.  We avoid
floating-point ``log2`` and instead use the exact bit length of ``10**p - 1``,
which is what ``p * log2(10)`` rounds up to for every ``p >= 1``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.errors import SchemaError

#: Number of bits in one storage word of the non-compact representation.
WORD_BITS = 32

#: Modulus of one 32-bit storage word.
WORD_BASE = 1 << WORD_BITS

#: Mask selecting the low 32 bits of an integer.
WORD_MASK = WORD_BASE - 1


@functools.lru_cache(maxsize=None)
def value_bits(precision: int) -> int:
    """Exact number of bits needed to store any integer below ``10**p``."""
    if precision < 1:
        raise SchemaError(f"precision must be >= 1, got {precision}")
    return (10**precision - 1).bit_length()


@functools.lru_cache(maxsize=None)
def words_for_precision(precision: int) -> int:
    """``Lw``: 32-bit words needed for the non-compact representation."""
    return -(-value_bits(precision) // WORD_BITS)


@functools.lru_cache(maxsize=None)
def bytes_for_precision(precision: int) -> int:
    """``Lb``: bytes needed for the compact representation (1 sign bit)."""
    return -(-(1 + value_bits(precision)) // 8)


@functools.lru_cache(maxsize=None)
def precision_for_words(words: int) -> int:
    """Largest precision whose non-compact representation fits ``words``.

    The paper reports experiments by ``LEN`` (the word count of the result
    array); this is the inverse mapping used to pick column precisions, e.g.
    ``LEN=2 -> p=19`` and ``LEN=4 -> p=38``.
    """
    if words < 1:
        raise SchemaError(f"word count must be >= 1, got {words}")
    precision = 1
    while words_for_precision(precision + 1) <= words:
        precision += 1
    return precision


@dataclass(frozen=True)
class DecimalSpec:
    """A ``DECIMAL(p, s)`` column/expression type.

    ``precision`` is the total number of decimal digits and ``scale`` the
    number of digits after the decimal point.  Following the databases the
    paper surveys (Table II), we require ``0 <= s <= p`` and impose no upper
    bound on ``p`` beyond available memory.
    """

    precision: int
    scale: int

    def __post_init__(self) -> None:
        if self.precision < 1:
            raise SchemaError(f"precision must be >= 1, got {self.precision}")
        if not 0 <= self.scale <= self.precision:
            raise SchemaError(
                f"scale must satisfy 0 <= s <= p, got ({self.precision}, {self.scale})"
            )

    @property
    def words(self) -> int:
        """``Lw``: 32-bit words of the register (non-compact) form."""
        return words_for_precision(self.precision)

    @property
    def compact_bytes(self) -> int:
        """``Lb``: bytes of the compact (memory/disk) form."""
        return bytes_for_precision(self.precision)

    @property
    def integer_digits(self) -> int:
        """Digits to the left of the decimal point."""
        return self.precision - self.scale

    @property
    def max_unscaled(self) -> int:
        """Largest unscaled magnitude representable: ``10**p - 1``."""
        return 10**self.precision - 1

    def fits(self, unscaled: int) -> bool:
        """Whether an unscaled integer magnitude fits this spec."""
        return abs(unscaled) <= self.max_unscaled

    def __str__(self) -> str:
        return f"DECIMAL({self.precision}, {self.scale})"


#: Precisions used throughout the paper's evaluation, keyed by ``LEN``
#: ("If not specified, we fix the precision of evaluation results of
#: expressions to 18/38/76/153/307, which means 2/4/8/16/32 words are used").
PAPER_RESULT_PRECISIONS = {2: 18, 4: 38, 8: 76, 16: 153, 32: 307}

#: The LEN values the evaluation sweeps over.
PAPER_LENS = (2, 4, 8, 16, 32)


def spec_for_len(length: int, scale: int = 2) -> DecimalSpec:
    """The paper's result spec for a given word length ``LEN``."""
    try:
        precision = PAPER_RESULT_PRECISIONS[length]
    except KeyError:
        raise SchemaError(f"LEN must be one of {sorted(PAPER_RESULT_PRECISIONS)}, got {length}") from None
    return DecimalSpec(precision, scale)
