"""Sub-quadratic multiplication algorithms (paper section II-B).

The paper discusses the hierarchy of multi-word multiplication algorithms:
the elementary schoolbook O(N^2) (what the kernels use -- fastest for the
paper's operand sizes), Karatsuba O(N^1.585) (``karatsuba.py``), and the
Schonhage-Strassen algorithm whose asymptotic complexity is lower still
but "outperforms the latter only if N is sufficiently large".

This module completes that hierarchy:

* :func:`toom3` -- Toom-Cook 3-way splitting, O(N^1.465);
* :func:`ntt_multiply` -- a number-theoretic-transform convolution (the
  Schonhage-Strassen family), O(N log N) in the transform length.

Both return exact products and exist so the break-even behaviour the paper
describes is measurable (see ``benchmarks/bench_ext_multiplication.py``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.decimal import words as w
from repro.core.decimal.context import WORD_BITS

# ------------------------------------------------------------------ Toom-3

#: Width below which Toom-3 recursion falls back to schoolbook.
TOOM3_THRESHOLD = 12


def toom3(a: Sequence[int], b: Sequence[int], threshold: int = TOOM3_THRESHOLD) -> List[int]:
    """Multiply two little-endian word arrays via Toom-Cook 3.

    Splits each operand into three limbs-of-limbs and evaluates the product
    polynomial at the points {0, 1, -1, 2, inf}, then interpolates.  The
    implementation works on Python ints per part (the parts are themselves
    multi-word; recursion re-enters :func:`toom3` through the integer
    split), returning ``len(a) + len(b)`` words.
    """
    if threshold < 3:
        raise ValueError("threshold must be >= 3")
    out_width = len(a) + len(b)
    product = _toom3_int(w.to_int(a), w.to_int(b), max(len(a), len(b)), threshold)
    return w.from_int(product, out_width)


def _toom3_int(x: int, y: int, width_words: int, threshold: int) -> int:
    # Evaluation points produce negative intermediates; normalise signs
    # before splitting (Python's ``&`` on negatives is two's complement).
    if x < 0 or y < 0:
        sign = -1 if (x < 0) != (y < 0) else 1
        return sign * _toom3_int(abs(x), abs(y), width_words, threshold)
    if width_words <= threshold or x == 0 or y == 0:
        return x * y  # schoolbook regime (delegated to the host integer)
    # Split into three parts of `part` words each.
    part = -(-width_words // 3)
    shift = part * WORD_BITS
    mask = (1 << shift) - 1

    x0, x1, x2 = x & mask, (x >> shift) & mask, x >> (2 * shift)
    y0, y1, y2 = y & mask, (y >> shift) & mask, y >> (2 * shift)

    # Evaluate at 0, 1, -1, 2, infinity.
    p0 = _toom3_int(x0, y0, part, threshold)
    p1 = _toom3_int(x0 + x1 + x2, y0 + y1 + y2, part + 1, threshold)
    pm1 = _toom3_int(x0 - x1 + x2, y0 - y1 + y2, part + 1, threshold)
    p2 = _toom3_int(x0 + 2 * x1 + 4 * x2, y0 + 2 * y1 + 4 * y2, part + 1, threshold)
    pinf = _toom3_int(x2, y2, part, threshold)

    # Interpolate: p(t) = r0 + r1 t + r2 t^2 + r3 t^3 + r4 t^4 with
    # p(0)=p0, p(1)=p1, p(-1)=pm1, p(2)=p2, p(inf)=pinf.
    r0 = p0
    r4 = pinf
    even = (p1 + pm1) // 2  # r0 + r2 + r4
    odd = (p1 - pm1) // 2  # r1 + r3
    r2 = even - r0 - r4
    s3 = (p2 - r0 - 4 * r2 - 16 * r4) // 2  # r1 + 4*r3
    r3, remainder = divmod(s3 - odd, 3)
    assert remainder == 0
    r1 = odd - r3

    return (
        r0
        + (r1 << shift)
        + (r2 << (2 * shift))
        + (r3 << (3 * shift))
        + (r4 << (4 * shift))
    )


# -------------------------------------------------------------------- NTT

#: NTT prime: p = 2^64 - 2^32 + 1 (the "Goldilocks" prime) supports
#: power-of-two transforms up to length 2^32 with generator 7.
NTT_PRIME = (1 << 64) - (1 << 32) + 1
_NTT_GENERATOR = 7

#: Coefficients are 16-bit chunks so length*chunk^2 stays far below p.
_CHUNK_BITS = 16
_CHUNK_MASK = (1 << _CHUNK_BITS) - 1


def ntt_multiply(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Multiply word arrays via a number-theoretic transform convolution.

    The Schonhage-Strassen family: split into 16-bit chunks, convolve in
    GF(p) with a radix-2 NTT, carry-propagate.  Exact for any operand size
    this library produces (the transform length bound is astronomically
    far away).
    """
    out_width = len(a) + len(b)
    chunks_a = _to_chunks(a)
    chunks_b = _to_chunks(b)
    if not chunks_a or not chunks_b:
        return w.zero(out_width)
    size = 1
    while size < len(chunks_a) + len(chunks_b) - 1:
        size *= 2
    fa = chunks_a + [0] * (size - len(chunks_a))
    fb = chunks_b + [0] * (size - len(chunks_b))

    root = pow(_NTT_GENERATOR, (NTT_PRIME - 1) // size, NTT_PRIME)
    _ntt(fa, root)
    _ntt(fb, root)
    pointwise = [(x * y) % NTT_PRIME for x, y in zip(fa, fb)]
    inverse_root = pow(root, NTT_PRIME - 2, NTT_PRIME)
    _ntt(pointwise, inverse_root)
    inverse_size = pow(size, NTT_PRIME - 2, NTT_PRIME)
    coefficients = [(value * inverse_size) % NTT_PRIME for value in pointwise]

    # Carry-propagate 16-bit chunks into the product integer.
    product = 0
    for index in range(len(coefficients) - 1, -1, -1):
        product = (product << _CHUNK_BITS) + coefficients[index]
    return w.from_int(product, out_width)


def _to_chunks(words_: Sequence[int]) -> List[int]:
    value = w.to_int(words_)
    chunks: List[int] = []
    while value:
        chunks.append(value & _CHUNK_MASK)
        value >>= _CHUNK_BITS
    return chunks


def _ntt(values: List[int], root: int) -> None:
    """In-place iterative radix-2 Cooley-Tukey NTT over GF(NTT_PRIME)."""
    n = len(values)
    # Bit-reversal permutation.
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]
    length = 2
    while length <= n:
        w_len = pow(root, n // length, NTT_PRIME)
        for start in range(0, n, length):
            twiddle = 1
            for offset in range(length // 2):
                even = values[start + offset]
                odd = (values[start + offset + length // 2] * twiddle) % NTT_PRIME
                values[start + offset] = (even + odd) % NTT_PRIME
                values[start + offset + length // 2] = (even - odd) % NTT_PRIME
                twiddle = (twiddle * w_len) % NTT_PRIME
        length *= 2
