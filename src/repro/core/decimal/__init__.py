"""Arbitrary-precision fixed-point decimal substrate.

Public surface of the decimal core:

* :class:`~repro.core.decimal.context.DecimalSpec` -- the ``DECIMAL(p, s)``
  type with its ``Lw`` (word) and ``Lb`` (compact byte) storage lengths;
* :class:`~repro.core.decimal.value.DecimalValue` -- scalar signed values;
* :class:`~repro.core.decimal.vectorized.DecimalVector` -- whole-column
  arithmetic used by the simulated GPU kernels;
* the word-limb algorithms (``words``, ``karatsuba``, ``division``) and the
  precision-inference rules (``inference``) that the JIT engine applies.
"""

from repro.core.decimal.context import (
    PAPER_LENS,
    PAPER_RESULT_PRECISIONS,
    DecimalSpec,
    bytes_for_precision,
    precision_for_words,
    spec_for_len,
    words_for_precision,
)
from repro.core.decimal.value import DecimalValue
from repro.core.decimal.vectorized import DecimalVector

__all__ = [
    "DecimalSpec",
    "DecimalValue",
    "DecimalVector",
    "PAPER_LENS",
    "PAPER_RESULT_PRECISIONS",
    "bytes_for_precision",
    "precision_for_words",
    "spec_for_len",
    "words_for_precision",
]
