"""Row-at-a-time reference implementations of the decimal data plane.

These are the pre-vectorisation inner loops of
:mod:`repro.core.decimal.vectorized`, preserved verbatim (one Python
iteration per row/limb).  They serve two purposes:

* **bit-exactness oracle** -- the regression tests sweep the vectorized
  fast paths against these loops across signs, zeros, magnitude extremes
  and word widths (``Lw`` 1..32);
* **benchmark baseline** -- ``bench/experiments/ext_hotpath.py`` reports
  rows/sec of the batched kernels against these loops, which is exactly
  the before-vs-after of the data-plane vectorisation.

Nothing in the engine calls this module; it must stay row-at-a-time even
if that is slow, because that *is* the point of keeping it.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.decimal import inference
from repro.core.decimal.context import WORD_BITS, WORD_MASK, DecimalSpec
from repro.core.decimal.rounding import Rounding, round_unscaled
from repro.core.decimal.value import DecimalValue
from repro.core.decimal.vectorized import DecimalVector
from repro.errors import DivisionByZeroError, PrecisionOverflowError


def to_unscaled_rowloop(vector: DecimalVector) -> List[int]:
    """The original nested row/limb loop behind ``to_unscaled``."""
    magnitudes = [0] * vector.rows
    for limb in range(vector.spec.words - 1, -1, -1):
        column = vector.words[:, limb].tolist()
        for row in range(vector.rows):
            magnitudes[row] = (magnitudes[row] << WORD_BITS) | column[row]
    signs = vector.negative.tolist()
    return [-m if neg and m else m for m, neg in zip(magnitudes, signs)]


def from_unscaled_rowloop(values: Iterable[int], spec: DecimalSpec) -> DecimalVector:
    """The original per-row limb-split loop behind ``from_unscaled``."""
    values = list(values)
    rows = len(values)
    negative = np.zeros(rows, dtype=bool)
    words = np.zeros((rows, spec.words), dtype=np.uint32)
    for row, value in enumerate(values):
        if not spec.fits(value):
            raise PrecisionOverflowError(f"{value} does not fit {spec}")
        negative[row] = value < 0
        magnitude = abs(value)
        for limb in range(spec.words):
            words[row, limb] = magnitude & WORD_MASK
            magnitude >>= WORD_BITS
    return DecimalVector(spec, negative, words)


def from_unscaled_container_rowloop(
    values: Iterable[int], spec: DecimalSpec
) -> DecimalVector:
    """The original wrapping constructor (``from_unscaled_container``)."""
    values = list(values)
    container = 1 << (WORD_BITS * spec.words)
    wrapped = [abs(v) % container * (-1 if v < 0 else 1) for v in values]
    rows = len(wrapped)
    negative = np.zeros(rows, dtype=bool)
    words = np.zeros((rows, spec.words), dtype=np.uint32)
    for row, value in enumerate(wrapped):
        negative[row] = value < 0
        magnitude = abs(value)
        for limb in range(spec.words):
            words[row, limb] = magnitude & WORD_MASK
            magnitude >>= WORD_BITS
    return DecimalVector(spec, negative, words)


def div_rowloop(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """The original per-row big-integer division kernel."""
    spec = inference.div_result(a.spec, b.spec)
    prescale = inference.div_prescale(b.spec)
    factor = 10**prescale
    dividends = to_unscaled_rowloop(a)
    divisors = to_unscaled_rowloop(b)
    quotients = []
    for dividend, divisor in zip(dividends, divisors):
        if divisor == 0:
            raise DivisionByZeroError("decimal division by zero")
        scaled = abs(dividend) * factor
        quotient = scaled // abs(divisor)
        if (dividend < 0) != (divisor < 0):
            quotient = -quotient
        quotients.append(quotient)
    return from_unscaled_container_rowloop(quotients, spec)


def mod_rowloop(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """The original per-row modulo kernel (sign follows the dividend)."""
    spec = inference.mod_result(a.spec, b.spec)
    remainders = []
    for dividend, divisor in zip(to_unscaled_rowloop(a), to_unscaled_rowloop(b)):
        if divisor == 0:
            raise DivisionByZeroError("decimal modulo by zero")
        remainder = abs(dividend) % abs(divisor)
        remainders.append(-remainder if dividend < 0 else remainder)
    return from_unscaled_rowloop(remainders, spec)


def rescale_down_rowloop(vector: DecimalVector, scale: int) -> DecimalVector:
    """The original downward rescale (truncating divide per row)."""
    drop = vector.spec.scale - scale
    if drop <= 0:
        raise ValueError("rescale_down_rowloop requires a smaller target scale")
    spec = DecimalSpec(max(vector.spec.precision - drop, 1), scale)
    unscaled = [
        value // 10**drop if value >= 0 else -((-value) // 10**drop)
        for value in to_unscaled_rowloop(vector)
    ]
    return from_unscaled_rowloop(unscaled, spec)


def rescale_with_mode_rowloop(
    a: DecimalVector, spec: DecimalSpec, mode: str
) -> DecimalVector:
    """The original per-row ROUND/TRUNC/CEIL/FLOOR rescale."""
    modes = {
        "trunc": Rounding.DOWN,
        "round": Rounding.HALF_UP,
        "ceil": Rounding.CEILING,
        "floor": Rounding.FLOOR,
    }
    rounding = modes[mode]
    drop = a.spec.scale - spec.scale
    if drop < 0:
        return a.rescale(spec.scale).with_spec(spec)
    values = [round_unscaled(u, drop, rounding) for u in to_unscaled_rowloop(a)]
    return from_unscaled_container_rowloop(values, spec)


def add_rowloop(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Row-at-a-time signed addition through the scalar value type."""
    spec = inference.add_result(a.spec, b.spec)
    values = [
        (DecimalValue.from_unscaled(x, a.spec) + DecimalValue.from_unscaled(y, b.spec)).unscaled
        for x, y in zip(to_unscaled_rowloop(a), to_unscaled_rowloop(b))
    ]
    return from_unscaled_rowloop(values, spec)


def mul_rowloop(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Row-at-a-time signed multiplication through the scalar value type."""
    spec = inference.mul_result(a.spec, b.spec)
    values = [
        (DecimalValue.from_unscaled(x, a.spec) * DecimalValue.from_unscaled(y, b.spec)).unscaled
        for x, y in zip(to_unscaled_rowloop(a), to_unscaled_rowloop(b))
    ]
    return from_unscaled_rowloop(values, spec)
