"""decimalInfinite-style order-preserving byte encoding of unscaled values.

The storage codec layer (``repro.storage.codecs``) needs a variable-length
decimal encoding whose *byte order equals numeric order*: comparing two
encoded values with ``memcmp`` must agree with comparing the decoded
numbers.  That property lets filters run directly on encoded bytes before
any register expansion, and lets zone-map boundaries be taken straight from
encoded chunks.

The scheme here encodes one signed unscaled integer ``v`` as a prefix byte
plus the magnitude bytes:

* ``v == 0``: the single byte ``0x80``;
* ``v > 0``: ``0x80 + nbytes`` followed by the magnitude big-endian with
  no leading zero byte (``nbytes`` is the minimal byte length);
* ``v < 0``: ``0x80 - nbytes`` followed by the *complemented* magnitude
  bytes (``0xFF - b``), big-endian.

Ordering falls out by construction: every negative prefix (< 0x80) sorts
below zero (0x80) which sorts below every positive prefix (> 0x80); among
positives a longer magnitude has a larger prefix, and equal lengths compare
big-endian; among negatives a longer magnitude has a *smaller* prefix and
the complement reverses the big-endian order.  Because the first byte
determines the length, no encoding is a proper prefix of another: two
distinct encodings always differ within ``min(len)`` bytes, so chunks may
zero-pad rows to a common width without affecting comparisons.

The prefix byte caps the magnitude at :data:`MAX_MAGNITUDE_BYTES` bytes --
enough for every spec the paper's LEN sweep stores (precision 285 needs
119 bytes); wider specs fall back to the compact codec.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: The encoding of zero (and the pivot every prefix byte is offset from).
ZERO_PREFIX = 0x80

#: Largest magnitude byte length the prefix byte can express.
MAX_MAGNITUDE_BYTES = 0x7F


def max_encoded_bytes(max_unscaled: int) -> int:
    """Worst-case encoded length (prefix + magnitude) for a magnitude bound."""
    return 1 + _nbytes(max_unscaled)


def supports(max_unscaled: int) -> bool:
    """Whether every value with ``|v| <= max_unscaled`` is encodable."""
    return _nbytes(max_unscaled) <= MAX_MAGNITUDE_BYTES


def _nbytes(magnitude: int) -> int:
    return (magnitude.bit_length() + 7) // 8


def encode(values: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Encode signed ints into a zero-padded ``(N, width)`` uint8 matrix.

    Returns ``(data, lengths)`` where ``lengths[i]`` is row ``i``'s true
    encoded byte count (prefix included) and ``width = lengths.max()``.
    The wire size of the chunk is ``lengths.sum()``; the padding bytes are
    never shipped, only kept so the matrix is rectangular for vectorised
    comparisons (sound because no encoding prefixes another -- see module
    docstring).
    """
    n = len(values)
    magnitudes = [-v if v < 0 else v for v in values]
    nbytes = np.fromiter((_nbytes(m) for m in magnitudes), dtype=np.int64, count=n)
    if n and int(nbytes.max()) > MAX_MAGNITUDE_BYTES:
        row = int(np.argmax(nbytes))
        raise ValueError(
            f"magnitude at row {row} needs {int(nbytes[row])} bytes; the "
            f"order-preserving encoding caps at {MAX_MAGNITUDE_BYTES}"
        )
    lengths = (nbytes + 1).astype(np.int32)
    width = int(lengths.max()) if n else 1
    out = np.zeros((n, width), dtype=np.uint8)
    negative = np.fromiter((v < 0 for v in values), dtype=bool, count=n)
    out[:, 0] = np.where(
        negative, ZERO_PREFIX - nbytes, ZERO_PREFIX + nbytes
    ).astype(np.uint8)

    # Magnitudes that fit uint64 write their big-endian bytes in bulk, one
    # gather per distinct length; wider rows fall back to int.to_bytes.
    small = np.nonzero((nbytes >= 1) & (nbytes <= 8))[0]
    if small.size:
        folded = np.fromiter(
            (magnitudes[i] for i in small.tolist()), dtype=np.uint64, count=small.size
        )
        be = np.ascontiguousarray(folded.astype(">u8")).view(np.uint8)
        be = be.reshape(small.size, 8)
        small_nbytes = nbytes[small]
        for nb in np.unique(small_nbytes).tolist():
            pos = np.nonzero(small_nbytes == nb)[0]
            out[small[pos], 1 : 1 + nb] = be[pos, 8 - nb : 8]
    for i in np.nonzero(nbytes > 8)[0].tolist():
        nb = int(nbytes[i])
        out[i, 1 : 1 + nb] = np.frombuffer(
            magnitudes[i].to_bytes(nb, "big"), dtype=np.uint8
        )

    if negative.any():
        # Complement the magnitude bytes of negative rows (prefix excluded,
        # padding excluded) so bigger magnitudes sort lower.
        columns = np.arange(width)[None, :]
        payload = negative[:, None] & (columns >= 1) & (columns < lengths[:, None])
        out[payload] = 0xFF - out[payload]
    return out, lengths


def encode_one(value: int) -> np.ndarray:
    """Encode a single value (filter literals) to its exact byte string."""
    data, lengths = encode([value])
    return data[0, : int(lengths[0])].copy()


def decode(data: np.ndarray, lengths: np.ndarray) -> List[int]:
    """Decode a padded ``(N, width)`` matrix back to signed ints.

    Row-at-a-time on purpose: decoding is the round-trip oracle for tests
    and benchmarks, never the query hot path (results materialise from the
    compact layout; filters compare encoded bytes without decoding).
    """
    values: List[int] = []
    prefixes = data[:, 0].astype(np.int64)
    for i in range(data.shape[0]):
        prefix = int(prefixes[i])
        nb = abs(prefix - ZERO_PREFIX)
        if nb + 1 != int(lengths[i]):
            raise ValueError(f"row {i}: prefix length {nb + 1} != stored {lengths[i]}")
        if nb == 0:
            values.append(0)
            continue
        payload = data[i, 1 : 1 + nb]
        if prefix < ZERO_PREFIX:
            payload = 0xFF - payload
        magnitude = int.from_bytes(payload.astype(np.uint8).tobytes(), "big")
        values.append(-magnitude if prefix < ZERO_PREFIX else magnitude)
    return values


def compare(data: np.ndarray, literal: np.ndarray) -> np.ndarray:
    """Rowwise memcmp of encoded rows against one encoded literal.

    Returns int8 per row: -1 below, 0 equal, +1 above -- which, by the
    order-preserving property, is exactly the numeric comparison of the
    decoded values.  Rows narrower than the literal (or vice versa) behave
    as zero-padded, which is sound because distinct encodings always
    diverge within the shorter one's true length.
    """
    rows, width = data.shape
    literal_width = int(literal.shape[0])
    out = np.zeros(rows, dtype=np.int8)
    for j in range(max(width, literal_width)):
        unresolved = out == 0
        if not unresolved.any():
            break
        column = data[:, j] if j < width else np.zeros(rows, dtype=np.uint8)
        target = int(literal[j]) if j < literal_width else 0
        out[unresolved & (column > target)] = 1
        out[unresolved & (column < target)] = -1
    return out
