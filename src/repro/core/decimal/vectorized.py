"""Vectorised decimal arithmetic over whole columns (the SIMT data plane).

On the real GPU every tuple is handled by a thread (or a TPI thread group)
executing the same generated kernel.  In this reproduction the data plane of
a kernel is a set of numpy operations applied to ``(N, Lw)`` uint32 word
matrices -- each numpy lane corresponds to one GPU thread, and the limb
loops below are exactly the per-thread carry chains of Listing 2, executed
for all tuples at once.

The cost/time of a kernel is *not* measured here; the GPU simulator derives
it from instruction counts (see ``repro.gpusim``).  This module only
guarantees bit-exact results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.decimal import compact, inference
from repro.core.decimal import words as w
from repro.core.decimal.context import WORD_BITS, WORD_MASK, DecimalSpec
from repro.errors import DivisionByZeroError, PrecisionOverflowError

_MASK64 = np.uint64(WORD_MASK)
_SHIFT64 = np.uint64(WORD_BITS)


@dataclass
class DecimalVector:
    """A column of ``DECIMAL(p, s)`` values in register (expanded) form."""

    spec: DecimalSpec
    negative: np.ndarray  # (N,) bool
    words: np.ndarray  # (N, Lw) uint32

    # ---------------------------------------------------------------- create

    @classmethod
    def from_unscaled(cls, values: Iterable[int], spec: DecimalSpec) -> "DecimalVector":
        """Build from signed unscaled Python ints."""
        values = list(values)
        rows = len(values)
        negative = np.zeros(rows, dtype=bool)
        words = np.zeros((rows, spec.words), dtype=np.uint32)
        for row, value in enumerate(values):
            if not spec.fits(value):
                raise PrecisionOverflowError(f"{value} does not fit {spec}")
            negative[row] = value < 0
            magnitude = abs(value)
            for limb in range(spec.words):
                words[row, limb] = magnitude & WORD_MASK
                magnitude >>= WORD_BITS
        return cls(spec, negative, words)

    @classmethod
    def from_unscaled_container(cls, values: Iterable[int], spec: DecimalSpec) -> "DecimalVector":
        """Build from signed unscaled ints, wrapping into the register array.

        The section III-B3 division rule sizes the quotient container
        assuming divisors use all their integer digits; when data violates
        that assumption a real generated kernel's fixed ``Lw``-word array
        silently truncates (mod ``2**(32*Lw)``).  This constructor mirrors
        that hardware behaviour.
        """
        values = list(values)
        container = 1 << (WORD_BITS * spec.words)
        wrapped = [abs(v) % container * (-1 if v < 0 else 1) for v in values]
        rows = len(wrapped)
        negative = np.zeros(rows, dtype=bool)
        words = np.zeros((rows, spec.words), dtype=np.uint32)
        for row, value in enumerate(wrapped):
            negative[row] = value < 0
            magnitude = abs(value)
            for limb in range(spec.words):
                words[row, limb] = magnitude & WORD_MASK
                magnitude >>= WORD_BITS
        return cls(spec, negative, words)

    @classmethod
    def from_compact(cls, data: np.ndarray, spec: DecimalSpec) -> "DecimalVector":
        """Expand a compact ``(N, Lb)`` uint8 column (the kernel load phase)."""
        negative, words = compact.unpack_column(data, spec)
        return cls(spec, negative, words)

    @classmethod
    def zeros(cls, rows: int, spec: DecimalSpec) -> "DecimalVector":
        """A column of zeros."""
        return cls(spec, np.zeros(rows, bool), np.zeros((rows, spec.words), np.uint32))

    @classmethod
    def broadcast(cls, negative: bool, limbs: Sequence[int], spec: DecimalSpec, rows: int) -> "DecimalVector":
        """Replicate one register value across a column (JIT constants)."""
        words = np.tile(np.asarray(limbs, dtype=np.uint32), (rows, 1))
        return cls(spec, np.full(rows, bool(negative)), words)

    # --------------------------------------------------------------- inspect

    @property
    def rows(self) -> int:
        """Number of tuples in the column."""
        return self.words.shape[0]

    def to_unscaled(self) -> List[int]:
        """Signed unscaled Python ints (the verification oracle interface)."""
        magnitudes = [0] * self.rows
        for limb in range(self.spec.words - 1, -1, -1):
            column = self.words[:, limb].tolist()
            for row in range(self.rows):
                magnitudes[row] = (magnitudes[row] << WORD_BITS) | column[row]
        signs = self.negative.tolist()
        return [-m if neg and m else m for m, neg in zip(magnitudes, signs)]

    def to_compact(self) -> np.ndarray:
        """Pack to the compact ``(N, Lb)`` form (the kernel store phase)."""
        return compact.pack_column(self.negative, self.words, self.spec)

    def copy(self) -> "DecimalVector":
        """Deep copy."""
        return DecimalVector(self.spec, self.negative.copy(), self.words.copy())

    # --------------------------------------------------------------- rescale

    def rescale(self, scale: int) -> "DecimalVector":
        """Align every value to ``scale`` (x10^k upward, truncate downward)."""
        if scale == self.spec.scale:
            return self
        if scale > self.spec.scale:
            extra = scale - self.spec.scale
            spec = DecimalSpec(self.spec.precision + extra, scale)
            words = _mul_pow10(self.words, extra, spec.words)
            return DecimalVector(spec, self.negative.copy(), words)
        # Downward alignment divides by a power of ten (rare: AVG results).
        drop = self.spec.scale - scale
        spec = DecimalSpec(max(self.spec.precision - drop, 1), scale)
        unscaled = [value // 10**drop if value >= 0 else -((-value) // 10**drop) for value in self.to_unscaled()]
        return DecimalVector.from_unscaled(unscaled, spec)

    def with_spec(self, spec: DecimalSpec) -> "DecimalVector":
        """Re-declare at ``spec`` (pads/truncates the word matrix)."""
        rescaled = self.rescale(spec.scale)
        words = np.zeros((self.rows, spec.words), dtype=np.uint32)
        shared = min(spec.words, rescaled.words.shape[1])
        if np.any(rescaled.words[:, shared:]):
            raise PrecisionOverflowError(f"values do not fit {spec}")
        words[:, :shared] = rescaled.words[:, :shared]
        return DecimalVector(spec, rescaled.negative.copy(), words)


# ------------------------------------------------------------------ kernels


def add(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise signed addition with scale alignment."""
    return _signed_add(a, b, negate_b=False)


def sub(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise signed subtraction."""
    return _signed_add(a, b, negate_b=True)


def neg(a: DecimalVector) -> DecimalVector:
    """Columnwise negation."""
    nonzero = a.words.any(axis=1)
    return DecimalVector(a.spec, np.where(nonzero, ~a.negative, False), a.words.copy())


def mul(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise signed multiplication (schoolbook limb products)."""
    spec = inference.mul_result(a.spec, b.spec)
    product = _mul_magnitudes(a.words, b.words, spec.words)
    nonzero = product.any(axis=1)
    negative = (a.negative != b.negative) & nonzero
    return DecimalVector(spec, negative, product)


def div(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise signed division following the section III-B3 rules.

    The per-row quotients are computed exactly (dividend pre-scaled by
    ``10**(s2+4)``, truncating divide).  The scalar division *algorithms*
    (binary search / Newton-Raphson / Goldschmidt) live in
    ``repro.core.decimal.division`` and are what the timing model charges
    for; the data plane here uses the mathematically identical big-integer
    route so that wide columns stay tractable in pure Python.
    """
    spec = inference.div_result(a.spec, b.spec)
    prescale = inference.div_prescale(b.spec)
    factor = 10**prescale
    dividends = a.to_unscaled()
    divisors = b.to_unscaled()
    quotients = []
    for dividend, divisor in zip(dividends, divisors):
        if divisor == 0:
            raise DivisionByZeroError("decimal division by zero")
        scaled = abs(dividend) * factor
        quotient = scaled // abs(divisor)
        if (dividend < 0) != (divisor < 0):
            quotient = -quotient
        quotients.append(quotient)
    return DecimalVector.from_unscaled_container(quotients, spec)


def mod(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise integer modulo (sign follows the dividend, as in C)."""
    spec = inference.mod_result(a.spec, b.spec)
    remainders = []
    for dividend, divisor in zip(a.to_unscaled(), b.to_unscaled()):
        if divisor == 0:
            raise DivisionByZeroError("decimal modulo by zero")
        remainder = abs(dividend) % abs(divisor)
        remainders.append(-remainder if dividend < 0 else remainder)
    return DecimalVector.from_unscaled(remainders, spec)


def absolute(a: DecimalVector) -> DecimalVector:
    """Columnwise absolute value (clears the sign plane)."""
    return DecimalVector(a.spec, np.zeros(a.rows, dtype=bool), a.words.copy())


def sign(a: DecimalVector) -> DecimalVector:
    """Columnwise three-way sign as DECIMAL(1, 0)."""
    nonzero = a.words.any(axis=1)
    values = np.where(nonzero, np.where(a.negative, -1, 1), 0)
    return DecimalVector.from_unscaled([int(v) for v in values], DecimalSpec(1, 0))


def rescale_with_mode(a: DecimalVector, spec: DecimalSpec, mode: str) -> DecimalVector:
    """Columnwise ROUND/TRUNC/CEIL/FLOOR to ``spec.scale``.

    Rounding modes follow ``repro.core.decimal.rounding``: ``round`` is
    half-up (SQL ROUND), ``trunc`` toward zero, ``ceil``/``floor`` toward
    +/- infinity.
    """
    from repro.core.decimal.rounding import Rounding, round_unscaled

    modes = {
        "trunc": Rounding.DOWN,
        "round": Rounding.HALF_UP,
        "ceil": Rounding.CEILING,
        "floor": Rounding.FLOOR,
    }
    try:
        rounding = modes[mode]
    except KeyError:
        raise ValueError(f"unknown rescale mode {mode!r}") from None
    drop = a.spec.scale - spec.scale
    if drop < 0:
        return a.rescale(spec.scale).with_spec(spec)
    values = [round_unscaled(u, drop, rounding) for u in a.to_unscaled()]
    return DecimalVector.from_unscaled_container(values, spec)


def compare(a: DecimalVector, b: DecimalVector) -> np.ndarray:
    """Signed three-way compare per row: int8 array of -1/0/1."""
    scale = max(a.spec.scale, b.spec.scale)
    a_aligned, b_aligned = a.rescale(scale), b.rescale(scale)
    width = max(a_aligned.words.shape[1], b_aligned.words.shape[1])
    mag = _compare_magnitudes(_pad(a_aligned.words, width), _pad(b_aligned.words, width))
    sign_a = np.where(a_aligned.negative, -1, 1).astype(np.int8)
    sign_b = np.where(b_aligned.negative, -1, 1).astype(np.int8)
    a_zero = ~a_aligned.words.any(axis=1)
    b_zero = ~b_aligned.words.any(axis=1)
    sign_a[a_zero] = 0
    sign_b[b_zero] = 0
    out = np.sign(sign_a - sign_b).astype(np.int8)
    same_sign = (sign_a == sign_b) & (sign_a != 0)
    flip = np.where(sign_a < 0, -1, 1).astype(np.int8)
    out[same_sign] = (mag[same_sign] * flip[same_sign]).astype(np.int8)
    return out


# -------------------------------------------------------------- limb planes


def _pad(words: np.ndarray, width: int) -> np.ndarray:
    if words.shape[1] >= width:
        return words
    padded = np.zeros((words.shape[0], width), dtype=np.uint32)
    padded[:, : words.shape[1]] = words
    return padded


def _add_magnitudes(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """The vector analogue of the ``add.cc``/``addc`` chain."""
    a = _pad(a, width)
    b = _pad(b, width)
    out = np.zeros((a.shape[0], width), dtype=np.uint32)
    carry = np.zeros(a.shape[0], dtype=np.uint64)
    for limb in range(width):
        total = a[:, limb].astype(np.uint64) + b[:, limb].astype(np.uint64) + carry
        out[:, limb] = (total & _MASK64).astype(np.uint32)
        carry = total >> _SHIFT64
    if carry.any():
        raise PrecisionOverflowError("vector addition overflowed the register array")
    return out

def _sub_magnitudes(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """``sub.cc``/``subc`` chain; assumes ``a >= b`` rowwise."""
    a = _pad(a, width)
    b = _pad(b, width)
    out = np.zeros((a.shape[0], width), dtype=np.uint32)
    borrow = np.zeros(a.shape[0], dtype=np.int64)
    for limb in range(width):
        total = a[:, limb].astype(np.int64) - b[:, limb].astype(np.int64) - borrow
        out[:, limb] = (total & np.int64(WORD_MASK)).astype(np.uint32)
        borrow = (total < 0).astype(np.int64)
    if borrow.any():
        raise AssertionError("subtraction underflow: operands were not ordered")
    return out


def _compare_magnitudes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rowwise magnitude compare, most significant limb first."""
    rows = a.shape[0]
    out = np.zeros(rows, dtype=np.int8)
    for limb in range(a.shape[1] - 1, -1, -1):
        unresolved = out == 0
        if not unresolved.any():
            break
        wa = a[:, limb]
        wb = b[:, limb]
        out[unresolved & (wa > wb)] = 1
        out[unresolved & (wa < wb)] = -1
    return out


def _mul_magnitudes(a: np.ndarray, b: np.ndarray, out_width: int) -> np.ndarray:
    """Schoolbook limb products with split lo/hi accumulation.

    Partial products ``a[:,i] * b[:,j]`` land in output column ``i+j``; the
    64-bit products are split into 32-bit halves so a uint64 accumulator can
    absorb up to 2**32 terms without overflow (we have at most 32).
    """
    rows = a.shape[0]
    wa, wb = a.shape[1], b.shape[1]
    acc = np.zeros((rows, max(wa + wb + 1, out_width)), dtype=np.uint64)
    for i in range(wa):
        ai = a[:, i].astype(np.uint64)
        if not ai.any():
            continue
        for j in range(wb):
            product = ai * b[:, j].astype(np.uint64)
            acc[:, i + j] += product & _MASK64
            acc[:, i + j + 1] += product >> _SHIFT64
    # Carry propagation pass.
    for limb in range(acc.shape[1] - 1):
        acc[:, limb + 1] += acc[:, limb] >> _SHIFT64
        acc[:, limb] &= _MASK64
    if np.any(acc[:, out_width:]):
        raise PrecisionOverflowError("vector multiplication overflowed the register array")
    return acc[:, :out_width].astype(np.uint32)


def _mul_pow10(words: np.ndarray, exponent: int, out_width: int) -> np.ndarray:
    """Alignment multiply: ``words * 10**exponent`` into ``out_width`` limbs."""
    if exponent == 0:
        return _pad(words, out_width).copy()
    factor = 10**exponent
    factor_words = np.asarray(
        w.from_int(factor, w.pow10_words_needed(exponent)), dtype=np.uint32
    )
    broadcast = np.tile(factor_words, (words.shape[0], 1))
    return _mul_magnitudes(words, broadcast, out_width)


def _signed_add(a: DecimalVector, b: DecimalVector, negate_b: bool) -> DecimalVector:
    """Signed add/sub with alignment, the full section II-B procedure."""
    spec = inference.add_result(a.spec, b.spec)
    a_aligned = a.rescale(spec.scale)
    b_aligned = b.rescale(spec.scale)
    width = spec.words
    wa = _pad(a_aligned.words, width)
    wb = _pad(b_aligned.words, width)
    sign_a = a_aligned.negative
    sign_b = ~b_aligned.negative if negate_b else b_aligned.negative

    same = sign_a == sign_b
    out = np.zeros((a.rows, width), dtype=np.uint32)
    negative = np.zeros(a.rows, dtype=bool)

    if same.any():
        summed = _add_magnitudes(wa[same], wb[same], width)
        out[same] = summed
        negative[same] = sign_a[same]
    diff = ~same
    if diff.any():
        order = _compare_magnitudes(wa[diff], wb[diff])
        big_is_a = order >= 0
        big = np.where(big_is_a[:, None], wa[diff], wb[diff])
        small = np.where(big_is_a[:, None], wb[diff], wa[diff])
        out[diff] = _sub_magnitudes(big, small, width)
        negative[diff] = np.where(big_is_a, sign_a[diff], sign_b[diff])

    nonzero = out.any(axis=1)
    negative &= nonzero
    return DecimalVector(spec, negative, out)
