"""Vectorised decimal arithmetic over whole columns (the SIMT data plane).

On the real GPU every tuple is handled by a thread (or a TPI thread group)
executing the same generated kernel.  In this reproduction the data plane of
a kernel is a set of numpy operations applied to ``(N, Lw)`` uint32 word
matrices -- each numpy lane corresponds to one GPU thread, and the limb
loops below are exactly the per-thread carry chains of Listing 2, executed
for all tuples at once.

Every kernel here is batch-level: the Python cost is O(Lw) column
operations, never O(N) row loops.  Division, modulo and downward rescaling
mirror the size-specialised fast paths of ``repro.core.decimal.division``
column-wise (whole-column uint64 ``div`` when both operands fit two words,
vectorised short division for single-word divisors) and only the residual
wide rows fall back to per-row big integers.  The preserved row-at-a-time
loops live in ``repro.core.decimal.reference`` as the bit-exactness oracle.

The cost/time of a kernel is *not* measured here; the GPU simulator derives
it from instruction counts (see ``repro.gpusim``).  This module only
guarantees bit-exact results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decimal import compact, division, inference
from repro.core.decimal import words as w
from repro.core.decimal.context import WORD_BASE, WORD_BITS, WORD_MASK, DecimalSpec
from repro.errors import DivisionByZeroError, PrecisionOverflowError

_MASK64 = np.uint64(WORD_MASK)
_SHIFT64 = np.uint64(WORD_BITS)

#: Largest value a uint64 lane can hold (both operands of the whole-column
#: native ``div`` fast path must stay below this).
_UINT64_MAX = (1 << 64) - 1


@dataclass
class DecimalVector:
    """A column of ``DECIMAL(p, s)`` values in register (expanded) form.

    **Aliasing contract:** the ``negative``/``words`` planes are treated as
    immutable once a vector is constructed.  Kernels that do not change a
    plane are free to *share* it with their result (``neg``/``absolute``
    share ``words``; ``rescale`` to the same scale returns ``self``), and
    :meth:`repro.storage.column.Column.decimal_vector` hands out one cached
    expansion to every caller.  Never write into a vector's planes in
    place -- build new arrays (or :meth:`copy` first).
    """

    spec: DecimalSpec
    negative: np.ndarray  # (N,) bool
    words: np.ndarray  # (N, Lw) uint32

    # ---------------------------------------------------------------- create

    @classmethod
    def from_unscaled(cls, values: Iterable[int], spec: DecimalSpec) -> "DecimalVector":
        """Build from signed unscaled Python ints (batched limb split)."""
        negative, words = _ints_to_planes(values, spec, wrap=False)
        return cls(spec, negative, words)

    @classmethod
    def from_unscaled_container(cls, values: Iterable[int], spec: DecimalSpec) -> "DecimalVector":
        """Build from signed unscaled ints, wrapping into the register array.

        The section III-B3 division rule sizes the quotient container
        assuming divisors use all their integer digits; when data violates
        that assumption a real generated kernel's fixed ``Lw``-word array
        silently truncates (mod ``2**(32*Lw)``).  This constructor mirrors
        that hardware behaviour.
        """
        negative, words = _ints_to_planes(values, spec, wrap=True)
        return cls(spec, negative, words)

    @classmethod
    def from_compact(cls, data: np.ndarray, spec: DecimalSpec) -> "DecimalVector":
        """Expand a compact ``(N, Lb)`` uint8 column (the kernel load phase)."""
        negative, words = compact.unpack_column(data, spec)
        return cls(spec, negative, words)

    @classmethod
    def zeros(cls, rows: int, spec: DecimalSpec) -> "DecimalVector":
        """A column of zeros."""
        return cls(spec, np.zeros(rows, bool), np.zeros((rows, spec.words), np.uint32))

    @classmethod
    def broadcast(cls, negative: bool, limbs: Sequence[int], spec: DecimalSpec, rows: int) -> "DecimalVector":
        """Replicate one register value across a column (JIT constants)."""
        words = np.tile(np.asarray(limbs, dtype=np.uint32), (rows, 1))
        return cls(spec, np.full(rows, bool(negative)), words)

    # --------------------------------------------------------------- inspect

    @property
    def rows(self) -> int:
        """Number of tuples in the column."""
        return self.words.shape[0]

    def to_unscaled(self) -> List[int]:
        """Signed unscaled Python ints (the verification oracle interface).

        Batched: the ``(N, Lw)`` word matrix folds to Python ints in O(Lw)
        column operations rather than a nested per-row limb loop.  Values
        that fit int64 (always for ``Lw <= 2`` unless bit 63 is in use)
        never touch Python-level arithmetic at all: fold, negate and
        ``tolist`` all run in C.
        """
        rows, width = self.words.shape
        if rows == 0:
            return []
        if width <= 2 and not (width == 2 and (self.words[:, 1] >> 31).any()):
            acc = self.words[:, 0].astype(np.uint64)
            if width == 2:
                acc |= self.words[:, 1].astype(np.uint64) << _SHIFT64
            signed = acc.astype(np.int64)
            np.negative(signed, where=self.negative, out=signed)
            return signed.tolist()
        values = _planes_to_magnitudes(self.words)
        for row in np.nonzero(self.negative)[0].tolist():
            values[row] = -values[row]
        return values

    def to_compact(self) -> np.ndarray:
        """Pack to the compact ``(N, Lb)`` form (the kernel store phase)."""
        return compact.pack_column(self.negative, self.words, self.spec)

    def copy(self) -> "DecimalVector":
        """Deep copy (the one way to get privately writable planes)."""
        return DecimalVector(self.spec, self.negative.copy(), self.words.copy())

    # --------------------------------------------------------------- rescale

    def rescale(self, scale: int) -> "DecimalVector":
        """Align every value to ``scale`` (x10^k upward, truncate downward)."""
        if scale == self.spec.scale:
            return self
        if scale > self.spec.scale:
            extra = scale - self.spec.scale
            spec = DecimalSpec(self.spec.precision + extra, scale)
            words = _mul_pow10(self.words, extra, spec.words)
            return DecimalVector(spec, self.negative.copy(), words)
        # Downward alignment divides by a power of ten (rare: AVG results),
        # vectorised as staged single-word short division over the limb
        # columns; the truncated quotient always fits the narrower spec.
        drop = self.spec.scale - scale
        spec = DecimalSpec(max(self.spec.precision - drop, 1), scale)
        quotient = _div_pow10_columns(self.words, drop)
        out = np.ascontiguousarray(quotient[:, : spec.words])
        return DecimalVector(spec, self.negative & out.any(axis=1), out)

    def with_spec(self, spec: DecimalSpec) -> "DecimalVector":
        """Re-declare at ``spec`` (pads/truncates the word matrix)."""
        rescaled = self.rescale(spec.scale)
        words = np.zeros((self.rows, spec.words), dtype=np.uint32)
        shared = min(spec.words, rescaled.words.shape[1])
        if np.any(rescaled.words[:, shared:]):
            raise PrecisionOverflowError(f"values do not fit {spec}")
        words[:, :shared] = rescaled.words[:, :shared]
        return DecimalVector(spec, rescaled.negative.copy(), words)


# ------------------------------------------------------------------ kernels


def add(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise signed addition with scale alignment."""
    return _signed_add(a, b, negate_b=False)


def sub(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise signed subtraction."""
    return _signed_add(a, b, negate_b=True)


def neg(a: DecimalVector) -> DecimalVector:
    """Columnwise negation.

    The magnitude plane is unchanged, so the result *shares* ``a.words``
    (see the :class:`DecimalVector` aliasing contract) -- only the sign
    plane is rebuilt.
    """
    nonzero = a.words.any(axis=1)
    return DecimalVector(a.spec, np.where(nonzero, ~a.negative, False), a.words)


def mul(a: DecimalVector, b: DecimalVector) -> DecimalVector:
    """Columnwise signed multiplication (schoolbook limb products)."""
    spec = inference.mul_result(a.spec, b.spec)
    product = _mul_magnitudes(a.words, b.words, spec.words)
    nonzero = product.any(axis=1)
    negative = (a.negative != b.negative) & nonzero
    return DecimalVector(spec, negative, product)


def div(
    a: DecimalVector, b: DecimalVector, fast_path: Optional[str] = None
) -> DecimalVector:
    """Columnwise signed division following the section III-B3 rules.

    The per-row quotients are exact (dividend pre-scaled by ``10**(s2+4)``,
    truncating divide) and the column is carved into the same size classes
    the scalar dispatch of ``repro.core.decimal.division`` uses, largest
    batch first:

    * **native64**: rows where the pre-scaled dividend and the divisor both
      fit uint64 divide in one whole-column numpy ``//``;
    * **short**: rows whose divisor fits a single word run the vectorised
      most-to-least-significant short division over the limb columns of the
      pre-scaled dividend;
    * **bigint**: the residual wide rows fall back to per-row Python
      integers (the mathematically identical route the old row loop took
      for every row).

    ``fast_path`` is the static analyzer's proven size class for *every*
    row (``"native64"`` or ``"short"``): the per-row dispatch (uint64
    folds, threshold masks, index partitioning) is skipped entirely and
    the whole column takes the one proven route.  Zero divisors are
    rejected up front by a vectorised pre-check that names the first
    offending row.
    """
    spec = inference.div_result(a.spec, b.spec)
    prescale = inference.div_prescale(b.spec)
    factor = 10**prescale
    _require_nonzero_divisors(b.words, "division")
    rows = a.rows
    out = np.zeros((rows, spec.words), dtype=np.uint32)

    if fast_path == "native64":
        quotient = (_fold_low64(a.words) * np.uint64(factor)) // _fold_low64(b.words)
        _store_uint64(out, quotient)
        negative = (a.negative != b.negative) & out.any(axis=1)
        return DecimalVector(spec, negative, out)
    if fast_path == "short":
        scaled = _prescale_magnitudes(a.words, prescale, rows)
        quotient_planes, _ = division.short_div_columns(scaled, _fold_low64(b.words))
        shared = min(quotient_planes.shape[1], spec.words)
        out[:, :shared] = quotient_planes[:, :shared]
        negative = (a.negative != b.negative) & out.any(axis=1)
        return DecimalVector(spec, negative, out)
    if fast_path is not None:
        raise ValueError(f"unknown division fast path {fast_path!r}")

    a_fits, a64 = _fold_uint64(a.words)
    b_fits, b64 = _fold_uint64(b.words)

    # Fast path 1: whole-column uint64 divide (a * factor stays in uint64).
    native = a_fits & b_fits
    threshold = _UINT64_MAX // factor
    if threshold:
        native &= a64 <= np.uint64(threshold)
    else:  # the prescale factor alone exceeds uint64
        native = np.zeros(rows, dtype=bool)
    if native.any():
        quotient = (a64[native] * np.uint64(factor)) // b64[native]
        _scatter_uint64(out, native, quotient)

    remaining = ~native
    # Fast path 2: single-word divisors -> vectorised short division over
    # the limb columns of the wide pre-scaled dividend.
    short = remaining & b_fits & (b64 < np.uint64(WORD_BASE))
    if short.any():
        index = np.nonzero(short)[0]
        scaled = _prescale_magnitudes(a.words[index], prescale, index.size)
        quotient_planes, _ = division.short_div_columns(scaled, b64[index])
        shared = min(scaled.shape[1], spec.words)
        out[index, :shared] = quotient_planes[:, :shared]

    # Residual wide rows: exact big-integer route (wraps into the container
    # exactly as ``from_unscaled_container`` would).
    bigint = remaining & ~short
    if bigint.any():
        index = np.nonzero(bigint)[0]
        dividends = _planes_to_magnitudes(a.words[index])
        divisors = _planes_to_magnitudes(b.words[index])
        container_mask = (1 << (WORD_BITS * spec.words)) - 1
        quotients = [
            (dividend * factor // divisor) & container_mask
            for dividend, divisor in zip(dividends, divisors)
        ]
        out[index] = _magnitudes_to_planes(quotients, spec.words)

    negative = (a.negative != b.negative) & out.any(axis=1)
    return DecimalVector(spec, negative, out)


def mod(
    a: DecimalVector, b: DecimalVector, fast_path: Optional[str] = None
) -> DecimalVector:
    """Columnwise integer modulo (sign follows the dividend, as in C).

    Size-classed like :func:`div`: uint64 rows take a whole-column numpy
    ``%``, single-word divisors take the vectorised short division's
    remainder, and only residual wide rows loop in Python.  ``fast_path``
    (statically proven by the range analyzer) sends the whole column down
    one route with no per-row dispatch.  The vectorised zero-divisor
    pre-check names the first offending row.
    """
    spec = inference.mod_result(a.spec, b.spec)
    _require_nonzero_divisors(b.words, "modulo")
    rows = a.rows
    out = np.zeros((rows, spec.words), dtype=np.uint32)

    if fast_path == "native64":
        _store_uint64(out, _fold_low64(a.words) % _fold_low64(b.words))
        negative = a.negative & out.any(axis=1)
        return DecimalVector(spec, negative, out)
    if fast_path == "short":
        _, remainder = division.short_div_columns(a.words, _fold_low64(b.words))
        _store_uint64(out, remainder)
        negative = a.negative & out.any(axis=1)
        return DecimalVector(spec, negative, out)
    if fast_path is not None:
        raise ValueError(f"unknown modulo fast path {fast_path!r}")

    a_fits, a64 = _fold_uint64(a.words)
    b_fits, b64 = _fold_uint64(b.words)

    native = a_fits & b_fits
    if native.any():
        _scatter_uint64(out, native, a64[native] % b64[native])

    remaining = ~native
    short = remaining & b_fits & (b64 < np.uint64(WORD_BASE))
    if short.any():
        index = np.nonzero(short)[0]
        _, remainder = division.short_div_columns(a.words[index], b64[index])
        _scatter_uint64(out, short, remainder)

    bigint = remaining & ~short
    if bigint.any():
        index = np.nonzero(bigint)[0]
        remainders = [
            dividend % divisor
            for dividend, divisor in zip(
                _planes_to_magnitudes(a.words[index]),
                _planes_to_magnitudes(b.words[index]),
            )
        ]
        out[index] = _magnitudes_to_planes(remainders, spec.words)

    negative = a.negative & out.any(axis=1)
    return DecimalVector(spec, negative, out)


def absolute(a: DecimalVector) -> DecimalVector:
    """Columnwise absolute value (clears the sign plane).

    Shares ``a.words`` read-only (see the aliasing contract); only the
    sign plane is replaced.
    """
    return DecimalVector(a.spec, np.zeros(a.rows, dtype=bool), a.words)


def sign(a: DecimalVector) -> DecimalVector:
    """Columnwise three-way sign as DECIMAL(1, 0)."""
    spec = DecimalSpec(1, 0)
    nonzero = a.words.any(axis=1)
    words = np.zeros((a.rows, spec.words), dtype=np.uint32)
    words[:, 0] = nonzero.astype(np.uint32)
    return DecimalVector(spec, a.negative & nonzero, words)


def rescale_with_mode(a: DecimalVector, spec: DecimalSpec, mode: str) -> DecimalVector:
    """Columnwise ROUND/TRUNC/CEIL/FLOOR to ``spec.scale``.

    Rounding modes follow ``repro.core.decimal.rounding``: ``round`` is
    half-up (SQL ROUND), ``trunc`` toward zero, ``ceil``/``floor`` toward
    +/- infinity.  Dropping up to nine digits (every SQL-surface case)
    runs fully vectorised: one short division over the limb columns, a
    column-wise bump mask, and a carry-propagated increment.
    """
    from repro.core.decimal.rounding import Rounding, round_bump_column, round_unscaled

    modes = {
        "trunc": Rounding.DOWN,
        "round": Rounding.HALF_UP,
        "ceil": Rounding.CEILING,
        "floor": Rounding.FLOOR,
    }
    try:
        rounding = modes[mode]
    except KeyError:
        raise ValueError(f"unknown rescale mode {mode!r}") from None
    drop = a.spec.scale - spec.scale
    if drop < 0:
        return a.rescale(spec.scale).with_spec(spec)
    if drop == 0:
        negative, words = _wrap_planes(a.negative, a.words, spec.words)
        return DecimalVector(spec, negative, words)
    if drop <= 9:  # 10**drop fits one word: fully vectorised
        base = 10**drop
        quotient, remainder = division.short_div_columns(a.words, base)
        bump = round_bump_column(
            remainder, base, a.negative, (quotient[:, 0] & 1).astype(bool), rounding
        )
        if bump.any():
            _increment_where(quotient, bump)
        negative, words = _wrap_planes(a.negative, quotient, spec.words)
        return DecimalVector(spec, negative, words)
    # Very large scale drops (>9 digits at once) stay on the batched
    # big-integer route.
    values = [round_unscaled(u, drop, rounding) for u in a.to_unscaled()]
    negative, words = _ints_to_planes(values, spec, wrap=True)
    return DecimalVector(spec, negative, words)


def compare(a: DecimalVector, b: DecimalVector) -> np.ndarray:
    """Signed three-way compare per row: int8 array of -1/0/1."""
    scale = max(a.spec.scale, b.spec.scale)
    a_aligned, b_aligned = a.rescale(scale), b.rescale(scale)
    width = max(a_aligned.words.shape[1], b_aligned.words.shape[1])
    mag = _compare_magnitudes(_pad(a_aligned.words, width), _pad(b_aligned.words, width))
    sign_a = np.where(a_aligned.negative, -1, 1).astype(np.int8)
    sign_b = np.where(b_aligned.negative, -1, 1).astype(np.int8)
    a_zero = ~a_aligned.words.any(axis=1)
    b_zero = ~b_aligned.words.any(axis=1)
    sign_a[a_zero] = 0
    sign_b[b_zero] = 0
    out = np.sign(sign_a - sign_b).astype(np.int8)
    same_sign = (sign_a == sign_b) & (sign_a != 0)
    flip = np.where(sign_a < 0, -1, 1).astype(np.int8)
    out[same_sign] = (mag[same_sign] * flip[same_sign]).astype(np.int8)
    return out


# ---------------------------------------------------------- int round-trips


def _planes_to_magnitudes(words: np.ndarray) -> List[int]:
    """Fold an ``(N, Lw)`` word matrix into unsigned Python ints.

    Three size-specialised routes, all O(Lw) Python statements:

    * ``Lw <= 2``: pure numpy uint64 fold + ``tolist``;
    * ``Lw <= 16``: object-dtype accumulator over the uint64 limb *pairs*
      (each column step is one C-driven pass of big-int multiply-add);
    * wider: one contiguous little-endian byte view, one C-implemented
      ``int.from_bytes`` per row -- cheaper than ``Lw/2`` accumulator
      passes once rows are this wide.
    """
    rows, width = words.shape
    if rows == 0:
        return []
    if width <= 2:
        acc = words[:, 0].astype(np.uint64)
        if width == 2:
            acc |= words[:, 1].astype(np.uint64) << _SHIFT64
        return acc.tolist()
    if width <= 16:
        if width % 2:
            words = _pad(words, width + 1)
        pairs = np.ascontiguousarray(words.astype("<u4", copy=False)).view("<u8")
        acc = pairs[:, -1].astype(object)
        base = 1 << 64
        for column in range(pairs.shape[1] - 2, -1, -1):
            acc = acc * base + pairs[:, column].astype(object)
        return acc.tolist()
    data = np.ascontiguousarray(words.astype("<u4", copy=False)).tobytes()
    stride = 4 * width
    return [
        int.from_bytes(data[offset : offset + stride], "little")
        for offset in range(0, rows * stride, stride)
    ]


def _magnitudes_to_planes(magnitudes: Sequence[int], width: int) -> np.ndarray:
    """Split unsigned ints (< ``2**(32*width)``) into an ``(N, width)`` matrix."""
    rows = len(magnitudes)
    if rows == 0:
        return np.zeros((0, width), dtype=np.uint32)
    if width <= 2:
        acc = np.array([int(m) for m in magnitudes], dtype=np.uint64)
        words = np.zeros((rows, width), dtype=np.uint32)
        words[:, 0] = (acc & _MASK64).astype(np.uint32)
        if width == 2:
            words[:, 1] = (acc >> _SHIFT64).astype(np.uint32)
        return words
    stride = 4 * width
    buffer = b"".join(int(m).to_bytes(stride, "little") for m in magnitudes)
    return np.frombuffer(buffer, dtype="<u4").reshape(rows, width).astype(np.uint32)


def _ints_to_planes(
    values: Iterable[int], spec: DecimalSpec, wrap: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Signed unscaled ints -> ``(negative, words)`` planes, batched.

    With ``wrap`` the magnitudes truncate mod ``2**(32*Lw)`` (container
    semantics); otherwise the first value that does not fit ``spec``
    raises, exactly like the old per-row constructor.
    """
    values = list(values)
    rows = len(values)
    negative = np.fromiter((v < 0 for v in values), dtype=bool, count=rows)
    magnitudes = [-v if v < 0 else v for v in values]
    if wrap:
        container_mask = (1 << (WORD_BITS * spec.words)) - 1
        magnitudes = [int(m) & container_mask for m in magnitudes]
    elif rows and max(magnitudes) > spec.max_unscaled:
        limit = spec.max_unscaled
        row = next(i for i, m in enumerate(magnitudes) if m > limit)
        raise PrecisionOverflowError(f"{values[row]} does not fit {spec}")
    words = _magnitudes_to_planes(magnitudes, spec.words)
    if wrap:
        negative &= words.any(axis=1)
    return negative, words


def _fold_uint64(words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row uint64 view of the low two limbs + a mask of rows that fit."""
    rows, width = words.shape
    if width == 1:
        return np.ones(rows, dtype=bool), words[:, 0].astype(np.uint64)
    fits = ~words[:, 2:].any(axis=1) if width > 2 else np.ones(rows, dtype=bool)
    values = words[:, 0].astype(np.uint64) | (words[:, 1].astype(np.uint64) << _SHIFT64)
    return fits, values


def _fold_low64(words: np.ndarray) -> np.ndarray:
    """Fold the low (up to) two limbs into uint64, no fits mask.

    Only sound when a static range proof guarantees the upper limbs are
    zero -- the fast-path callers' contract.
    """
    values = words[:, 0].astype(np.uint64)
    if words.shape[1] > 1:
        values |= words[:, 1].astype(np.uint64) << _SHIFT64
    return values


def _store_uint64(out: np.ndarray, values: np.ndarray) -> None:
    """Write uint64 results into the first <=2 limbs of every row."""
    out[:, 0] = (values & _MASK64).astype(np.uint32)
    if out.shape[1] >= 2:
        out[:, 1] = (values >> _SHIFT64).astype(np.uint32)


def _prescale_magnitudes(words: np.ndarray, prescale: int, rows: int) -> np.ndarray:
    """Widen and multiply dividend magnitudes by ``10**prescale``."""
    factor = 10**prescale
    factor_words = np.asarray(
        w.from_int(factor, w.pow10_words_needed(prescale)), dtype=np.uint32
    )
    wide = words.shape[1] + factor_words.shape[0]
    return _mul_magnitudes(words, np.tile(factor_words, (rows, 1)), wide)


def _scatter_uint64(out: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
    """Write uint64 results into the first <=2 limbs of the masked rows.

    A one-word destination truncates (container wrap), exactly like the
    fixed register array of a generated kernel.
    """
    out[mask, 0] = (values & _MASK64).astype(np.uint32)
    if out.shape[1] >= 2:
        out[mask, 1] = (values >> _SHIFT64).astype(np.uint32)


def _wrap_planes(
    negative: np.ndarray, words: np.ndarray, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Truncate/pad magnitude columns into ``width`` words (container wrap)."""
    rows = words.shape[0]
    out = np.zeros((rows, width), dtype=np.uint32)
    shared = min(width, words.shape[1])
    out[:, :shared] = words[:, :shared]
    return negative & out.any(axis=1), out


def _require_nonzero_divisors(words: np.ndarray, operation: str) -> None:
    """Vectorised divisor==0 pre-check naming the first offending row."""
    zero = ~words.any(axis=1)
    if zero.any():
        row = int(np.argmax(zero))
        raise DivisionByZeroError(f"decimal {operation} by zero at row {row}")


def _div_pow10_columns(words: np.ndarray, exponent: int) -> np.ndarray:
    """Truncating columnwise divide by ``10**exponent`` (staged short divs).

    Each stage divides by a single-word power of ten; truncating division
    composes across stages (``(x // a) // b == x // (a*b)``), so any
    exponent reduces to at most ``ceil(exponent / 9)`` vectorised passes.
    """
    out = words
    remaining = exponent
    while remaining > 0:
        step = min(remaining, 9)
        out, _ = division.short_div_columns(out, 10**step)
        remaining -= step
    return out


def _increment_where(words: np.ndarray, mask: np.ndarray) -> None:
    """Add 1 (with carry propagation) to the masked rows, in place.

    Only called on freshly built quotient matrices; the rounding bump can
    never carry out of the original operand's width because the bumped
    quotient is bounded by the pre-division magnitude.
    """
    carry = mask.astype(np.uint64)
    for limb in range(words.shape[1]):
        if not carry.any():
            return
        total = words[:, limb].astype(np.uint64) + carry
        words[:, limb] = (total & _MASK64).astype(np.uint32)
        carry = total >> _SHIFT64
    if carry.any():  # pragma: no cover - see docstring
        raise PrecisionOverflowError("rounding bump overflowed the register array")


# -------------------------------------------------------------- limb planes


def _pad(words: np.ndarray, width: int) -> np.ndarray:
    if words.shape[1] >= width:
        return words
    padded = np.zeros((words.shape[0], width), dtype=np.uint32)
    padded[:, : words.shape[1]] = words
    return padded


def _add_magnitudes(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """The vector analogue of the ``add.cc``/``addc`` chain."""
    a = _pad(a, width)
    b = _pad(b, width)
    out = np.zeros((a.shape[0], width), dtype=np.uint32)
    carry = np.zeros(a.shape[0], dtype=np.uint64)
    for limb in range(width):
        total = a[:, limb].astype(np.uint64) + b[:, limb].astype(np.uint64) + carry
        out[:, limb] = (total & _MASK64).astype(np.uint32)
        carry = total >> _SHIFT64
    if carry.any():
        raise PrecisionOverflowError("vector addition overflowed the register array")
    return out

def _sub_magnitudes(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """``sub.cc``/``subc`` chain; assumes ``a >= b`` rowwise."""
    a = _pad(a, width)
    b = _pad(b, width)
    out = np.zeros((a.shape[0], width), dtype=np.uint32)
    borrow = np.zeros(a.shape[0], dtype=np.int64)
    for limb in range(width):
        total = a[:, limb].astype(np.int64) - b[:, limb].astype(np.int64) - borrow
        out[:, limb] = (total & np.int64(WORD_MASK)).astype(np.uint32)
        borrow = (total < 0).astype(np.int64)
    if borrow.any():
        raise AssertionError("subtraction underflow: operands were not ordered")
    return out


def _compare_magnitudes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rowwise magnitude compare, most significant limb first."""
    rows = a.shape[0]
    out = np.zeros(rows, dtype=np.int8)
    for limb in range(a.shape[1] - 1, -1, -1):
        unresolved = out == 0
        if not unresolved.any():
            break
        wa = a[:, limb]
        wb = b[:, limb]
        out[unresolved & (wa > wb)] = 1
        out[unresolved & (wa < wb)] = -1
    return out


#: Limb-product count (``wa * wb``) above which the schoolbook loop loses
#: to per-row Python big-int multiplies: the numpy path runs O(wa*wb)
#: array passes, while CPython's multiply is one C call per row (Karatsuba
#: above its internal cutoff).  256 keeps LEN<=8 and the narrow alignment
#: multiplies (``_mul_pow10``/prescale, small ``wb``) on the array path
#: and routes the wide LEN=16/32 products through objects -- mirroring the
#: width-specialised strategy of ``_planes_to_magnitudes``.
_MUL_OBJECT_CUTOVER = 256


def _mul_magnitudes(a: np.ndarray, b: np.ndarray, out_width: int) -> np.ndarray:
    """Schoolbook limb products with split lo/hi accumulation.

    Partial products ``a[:,i] * b[:,j]`` land in output column ``i+j``; the
    64-bit products are split into 32-bit halves so a uint64 accumulator can
    absorb up to 2**32 terms without overflow (we have at most 32).

    Wide operands (``wa * wb >= _MUL_OBJECT_CUTOVER``) cut over to big-int
    accumulation: fold both sides to Python ints, multiply row-wise, split
    the products back into limbs.
    """
    rows = a.shape[0]
    wa, wb = a.shape[1], b.shape[1]
    if rows and wa * wb >= _MUL_OBJECT_CUTOVER:
        products = [
            x * y
            for x, y in zip(_planes_to_magnitudes(a), _planes_to_magnitudes(b))
        ]
        limit = 1 << (WORD_BITS * out_width)
        if any(product >= limit for product in products):
            raise PrecisionOverflowError(
                "vector multiplication overflowed the register array"
            )
        return _magnitudes_to_planes(products, out_width)
    acc = np.zeros((rows, max(wa + wb + 1, out_width)), dtype=np.uint64)
    for i in range(wa):
        ai = a[:, i].astype(np.uint64)
        if not ai.any():
            continue
        for j in range(wb):
            product = ai * b[:, j].astype(np.uint64)
            acc[:, i + j] += product & _MASK64
            acc[:, i + j + 1] += product >> _SHIFT64
    # Carry propagation pass.
    for limb in range(acc.shape[1] - 1):
        acc[:, limb + 1] += acc[:, limb] >> _SHIFT64
        acc[:, limb] &= _MASK64
    if np.any(acc[:, out_width:]):
        raise PrecisionOverflowError("vector multiplication overflowed the register array")
    return acc[:, :out_width].astype(np.uint32)


def _mul_pow10(words: np.ndarray, exponent: int, out_width: int) -> np.ndarray:
    """Alignment multiply: ``words * 10**exponent`` into ``out_width`` limbs."""
    if exponent == 0:
        return _pad(words, out_width).copy()
    factor = 10**exponent
    factor_words = np.asarray(
        w.from_int(factor, w.pow10_words_needed(exponent)), dtype=np.uint32
    )
    broadcast = np.tile(factor_words, (words.shape[0], 1))
    return _mul_magnitudes(words, broadcast, out_width)


def _signed_add(a: DecimalVector, b: DecimalVector, negate_b: bool) -> DecimalVector:
    """Signed add/sub with alignment, the full section II-B procedure."""
    spec = inference.add_result(a.spec, b.spec)
    a_aligned = a.rescale(spec.scale)
    b_aligned = b.rescale(spec.scale)
    width = spec.words
    wa = _pad(a_aligned.words, width)
    wb = _pad(b_aligned.words, width)
    sign_a = a_aligned.negative
    sign_b = ~b_aligned.negative if negate_b else b_aligned.negative

    same = sign_a == sign_b
    out = np.zeros((a.rows, width), dtype=np.uint32)
    negative = np.zeros(a.rows, dtype=bool)

    if same.any():
        summed = _add_magnitudes(wa[same], wb[same], width)
        out[same] = summed
        negative[same] = sign_a[same]
    diff = ~same
    if diff.any():
        order = _compare_magnitudes(wa[diff], wb[diff])
        big_is_a = order >= 0
        big = np.where(big_is_a[:, None], wa[diff], wb[diff])
        small = np.where(big_is_a[:, None], wb[diff], wa[diff])
        out[diff] = _sub_magnitudes(big, small, width)
        negative[diff] = np.where(big_is_a, sign_a[diff], sign_b[diff])

    nonzero = out.any(axis=1)
    negative &= nonzero
    return DecimalVector(spec, negative, out)
