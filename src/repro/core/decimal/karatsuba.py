"""Karatsuba multiplication on word arrays.

Section II-B of the paper discusses the Karatsuba algorithm as the advanced
alternative to schoolbook multiplication: complexity ``O(N**log2(3))`` but
slower for small ``N``.  We implement it with a configurable threshold below
which the schoolbook routine is used, matching the paper's observation that
the basic algorithm wins for small operands.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.decimal import words as w

#: Word count below which schoolbook multiplication is used.  The paper's
#: operands (LEN <= 32) all fall below practical Karatsuba break-even, which
#: is why UltraPrecise keeps the elementary algorithm; the threshold here is
#: deliberately small so tests exercise the recursive path.
DEFAULT_THRESHOLD = 8


def karatsuba(a: Sequence[int], b: Sequence[int], threshold: int = DEFAULT_THRESHOLD) -> List[int]:
    """Multiply two little-endian word arrays, returning ``len(a)+len(b)`` words."""
    if threshold < 2:
        raise ValueError("threshold must be >= 2")
    out_width = len(a) + len(b)
    product = _karatsuba(list(a), list(b), threshold)
    product += w.zero(max(0, out_width - len(product)))
    return product[:out_width]


def _karatsuba(a: List[int], b: List[int], threshold: int) -> List[int]:
    n = max(len(a), len(b))
    # n <= 3 cannot shrink (the half-sums are n words again), so it is part
    # of the base case regardless of the requested threshold.
    if n <= max(threshold, 3):
        return w.mul(a, b)
    half = (n + 1) // 2
    a_lo, a_hi = a[:half], a[half:]
    b_lo, b_hi = b[:half], b[half:]

    # z0 = lo*lo, z2 = hi*hi, z1 = (a_lo+a_hi)(b_lo+b_hi) - z0 - z2
    z0 = _karatsuba(a_lo, b_lo, threshold)
    z2 = _karatsuba(a_hi, b_hi, threshold)

    sum_width = max(len(a_lo), len(a_hi), len(b_lo), len(b_hi)) + 1
    a_sum, a_carry = w.add(a_lo, a_hi, sum_width)
    b_sum, b_carry = w.add(b_lo, b_hi, sum_width)
    if a_carry or b_carry:
        raise AssertionError("half sums must fit in half+1 words")
    z1_full = _karatsuba(a_sum, b_sum, threshold)

    width = len(a) + len(b) + 1
    z1, borrow = w.sub(z1_full, z0, width)
    z1, borrow2 = w.sub(z1, z2, width)
    if borrow or borrow2:
        raise AssertionError("Karatsuba middle term must be non-negative")

    out, _ = w.add(z0, w.shift_words_left(z1, half, width), width)
    out, _ = w.add(out, w.shift_words_left(z2, 2 * half, width), width)
    return out
