"""TPI (threads-per-instance) load planning (paper section III-E1).

A group of TPI threads cooperates on one decimal instance.  When a compact
value of ``Lb`` bytes is loaded, each thread reads ``lt = ceil(Lb/(4*TPI))``
words of neighbouring data (minimising inter-thread carry communication),
and the trailing thread reads whatever remains -- Listing 3's generated
branch.  This module computes that plan and renders the equivalent code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.decimal.context import DecimalSpec
from repro.errors import TpiRestrictionError

#: TPI values the paper evaluates (Figure 13).
SUPPORTED_TPI = (1, 4, 8, 16, 32)


@dataclass(frozen=True)
class LoadPlan:
    """How a TPI group loads one compact value."""

    spec: DecimalSpec
    tpi: int
    words_per_thread: int  # lt
    full_threads: int  # threads that read lt full words
    tail_bytes: int  # bytes the trailing thread reads (0 if aligned)

    @property
    def is_aligned(self) -> bool:
        """True when no tail branch is generated (Lb divisible by lt*4)."""
        return self.tail_bytes == 0 and self.full_threads == self.tpi


def plan_load(spec: DecimalSpec, tpi: int) -> LoadPlan:
    """Compute the Listing 3 load plan for a value of ``spec`` at ``tpi``."""
    if tpi not in SUPPORTED_TPI:
        raise TpiRestrictionError(f"TPI must be one of {SUPPORTED_TPI}, got {tpi}")
    lb = spec.compact_bytes
    lt = -(-lb // (4 * tpi))
    chunk = 4 * lt
    full_threads = lb // chunk
    tail = lb - full_threads * chunk
    if full_threads >= tpi:
        full_threads = tpi
        tail = 0
    return LoadPlan(
        spec=spec,
        tpi=tpi,
        words_per_thread=lt,
        full_threads=full_threads,
        tail_bytes=tail,
    )


def check_division_restriction(result_words: int, tpi: int) -> None:
    """Enforce the CGBN Newton-Raphson restriction ``LEN/TPI <= TPI``.

    The paper notes "no data is presented when executing the 4-threading
    kernel and LEN is 32" because 32/4 > 4.
    """
    if tpi > 1 and result_words / tpi > tpi:
        raise TpiRestrictionError(
            f"multi-threaded division requires LEN/TPI <= TPI "
            f"(LEN={result_words}, TPI={tpi})"
        )


def division_supported(result_words: int, tpi: int) -> bool:
    """Whether the multi-threaded division path supports this shape."""
    return tpi == 1 or result_words / tpi <= tpi


def render_load_code(plan: LoadPlan) -> str:
    """Render the Listing-3-style generated load code for documentation."""
    lines: List[str] = [
        f"int g_tid = threadIdx.x & {plan.tpi - 1}; // TPI-1 = {plan.tpi - 1}",
        f"int tid = (blockIdx.x * blockDim.x + threadIdx.x) / {plan.tpi};",
        "if (tid >= tupleNum) return;",
        "",
        f"uint32_t v[{plan.words_per_thread}]; // lt = {plan.words_per_thread}",
    ]
    chunk = 4 * plan.words_per_thread
    if plan.is_aligned:
        lines.append(f"memcopy(v, input[0][tid] + g_tid * {chunk}, {chunk});")
        lines.append("// No following branch: the compact representation is aligned to TPI.")
    else:
        lines.append(f"if (g_tid < {plan.full_threads}) // Lb/(lt*4) = {plan.full_threads}")
        lines.append(f"    memcopy(v, input[0][tid] + g_tid * {chunk}, {chunk}); // lt*4 = {chunk}")
        if plan.tail_bytes:
            lines.append(f"else if (g_tid == {plan.full_threads})")
            lines.append(
                f"    memcopy(v, input[0][tid] + g_tid * {chunk}, {plan.tail_bytes});"
                f" // Lb % (lt*4) = {plan.tail_bytes}"
            )
    return "\n".join(lines)
