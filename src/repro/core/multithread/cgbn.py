"""CGBN-style thread-group big-number arithmetic (paper section III-E1).

The paper extends NVIDIA's Cooperative Groups Big Numbers library to signed
DECIMAL operands: a group of TPI threads holds one value's limbs split
across the group, adds/subtracts with carries crossing thread boundaries,
broadcasts operand words for multiplication, and uses the Newton-Raphson
reciprocal for division.

This module simulates one thread group functionally: limbs live in
per-thread slices, the algorithms operate slice-by-slice, and every
inter-thread exchange is counted in :class:`GroupStats` so tests can verify
the communication pattern (e.g. neighbouring-data loads minimise carry
traffic) and the timing model stays honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.decimal import words as w
from repro.core.decimal.context import WORD_BITS, WORD_MASK, DecimalSpec
from repro.core.decimal.division import newton_raphson_divmod
from repro.core.multithread.tpi import SUPPORTED_TPI, check_division_restriction
from repro.errors import DivisionByZeroError, TpiRestrictionError


@dataclass
class GroupStats:
    """Work/communication counters for one group operation."""

    shuffles: int = 0  # inter-thread word exchanges (shfl.sync)
    ballots: int = 0  # group-wide predicate votes (carry resolution)
    broadcasts: int = 0  # one-to-all word broadcasts


@dataclass
class GroupValue:
    """A signed multi-word value distributed across a TPI thread group.

    ``lanes[t]`` is the limb slice owned by thread ``t``; slices are
    contiguous ("we direct a thread to read neighboring data to minimize
    this overhead").
    """

    spec: DecimalSpec
    tpi: int
    negative: bool
    lanes: List[List[int]]

    @classmethod
    def distribute(cls, negative: bool, words_: List[int], spec: DecimalSpec, tpi: int) -> "GroupValue":
        """Split a word array across a thread group."""
        if tpi not in SUPPORTED_TPI:
            raise TpiRestrictionError(f"TPI must be one of {SUPPORTED_TPI}, got {tpi}")
        width = spec.words
        padded = list(words_) + [0] * (width - len(words_))
        per_thread = -(-width // tpi)
        lanes = [padded[t * per_thread : (t + 1) * per_thread] for t in range(tpi)]
        for lane in lanes:
            lane.extend([0] * (per_thread - len(lane)))
        return cls(spec=spec, tpi=tpi, negative=negative, lanes=lanes)

    @classmethod
    def from_unscaled(cls, unscaled: int, spec: DecimalSpec, tpi: int) -> "GroupValue":
        return cls.distribute(unscaled < 0, w.from_int(abs(unscaled), spec.words), spec, tpi)

    @property
    def words_per_thread(self) -> int:
        return len(self.lanes[0])

    def gather(self) -> List[int]:
        """Reassemble the full word array (as the store phase would)."""
        flat = [word for lane in self.lanes for word in lane]
        return flat[: self.spec.words]

    @property
    def unscaled(self) -> int:
        magnitude = w.to_int(self.gather())
        return -magnitude if self.negative and magnitude else magnitude


def add(a: GroupValue, b: GroupValue, result_spec: DecimalSpec, stats: Optional[GroupStats] = None) -> GroupValue:
    """Signed addition across the group.

    Signs are shared among group threads (one broadcast); same-sign values
    add with carries rippling across thread boundaries, mixed signs run the
    comparison + subtraction path of section II-B.
    """
    stats = stats if stats is not None else GroupStats()
    _check_compatible(a, b)
    stats.broadcasts += 2  # each thread learns both signs
    if a.negative == b.negative:
        magnitude, carry = _group_add_magnitude(a, b, stats)
        if carry:
            raise OverflowError("group addition overflowed the register slices")
        negative = a.negative and any(any(lane) for lane in magnitude)
        return _build(result_spec, a.tpi, negative, magnitude)
    order = _group_compare(a, b, stats)
    if order == 0:
        return GroupValue.from_unscaled(0, result_spec, a.tpi)
    big, small = (a, b) if order > 0 else (b, a)
    magnitude = _group_sub_magnitude(big, small, stats)
    return _build(result_spec, a.tpi, big.negative, magnitude)


def sub(a: GroupValue, b: GroupValue, result_spec: DecimalSpec, stats: Optional[GroupStats] = None) -> GroupValue:
    """Signed subtraction: flips b's sign then adds."""
    flipped = GroupValue(spec=b.spec, tpi=b.tpi, negative=not b.negative, lanes=b.lanes)
    return add(a, flipped, result_spec, stats)


def mul(a: GroupValue, b: GroupValue, result_spec: DecimalSpec, stats: Optional[GroupStats] = None) -> GroupValue:
    """Group multiplication: operand words broadcast across the group.

    Each thread accumulates the partial products that land in its output
    slice; every word of ``b`` is broadcast to all threads (section
    III-E1: "the loaded data ... are broadcast to other threads in the
    group, piecing up the complete results").
    """
    stats = stats if stats is not None else GroupStats()
    _check_compatible(a, b)
    tpi = a.tpi
    out_width = result_spec.words
    per_thread = -(-out_width // tpi)
    a_words = a.gather()
    b_words = b.gather()
    stats.broadcasts += len(b_words)  # each b word shuffles through the group
    stats.shuffles += len(b_words) * (tpi - 1)

    # Each thread computes its slice of the schoolbook accumulation; the
    # product is truncated to the (overflow-free by inference) result width.
    acc = [0] * (out_width + 1)
    for i, wa in enumerate(a_words):
        if wa == 0:
            continue
        for j, wb in enumerate(b_words):
            k = i + j
            if k < out_width:
                acc[k] += wa * wb
    # Carry resolution crosses thread slice boundaries: one ballot per pass.
    for k in range(out_width):
        acc[k + 1] += acc[k] >> WORD_BITS
        acc[k] &= WORD_MASK
    stats.ballots += tpi - 1

    lanes = [
        acc[t * per_thread : (t + 1) * per_thread] for t in range(tpi)
    ]
    for lane in lanes:
        lane.extend([0] * (per_thread - len(lane)))
    negative = (a.negative != b.negative) and any(any(lane) for lane in lanes)
    return GroupValue(spec=result_spec, tpi=tpi, negative=negative, lanes=lanes)


def div(
    a: GroupValue,
    b: GroupValue,
    result_spec: DecimalSpec,
    prescale: int,
    stats: Optional[GroupStats] = None,
) -> GroupValue:
    """Group division via the CGBN Newton-Raphson path.

    Enforces the documented restriction ``LEN/TPI <= TPI``; the dividend is
    prescaled by ``10**prescale`` per the section III-B3 rule.
    """
    stats = stats if stats is not None else GroupStats()
    _check_compatible(a, b)
    check_division_restriction(result_spec.words, a.tpi)
    divisor = abs(b.unscaled)
    if divisor == 0:
        raise DivisionByZeroError("group division by zero")
    width = max(result_spec.words, a.spec.words + w.pow10_words_needed(prescale) + 1)
    dividend_words = w.mul_pow10(w.from_int(abs(a.unscaled), a.spec.words), prescale, width)
    quotient_words, _rem, division_stats = newton_raphson_divmod(
        dividend_words, w.from_int(divisor, width)
    )
    # Every NR iteration is two group multiplications' worth of broadcasts.
    stats.broadcasts += 2 * division_stats.iterations * a.tpi
    stats.shuffles += 2 * division_stats.iterations * (a.tpi - 1)
    magnitude = w.to_int(quotient_words) % (1 << (32 * result_spec.words))
    negative = (a.negative != b.negative) and magnitude != 0
    return GroupValue.from_unscaled(-magnitude if negative else magnitude, result_spec, a.tpi)


def compare(a: GroupValue, b: GroupValue, stats: Optional[GroupStats] = None) -> int:
    """Signed three-way compare across the group."""
    stats = stats if stats is not None else GroupStats()
    stats.broadcasts += 2
    sign_a = 0 if a.unscaled == 0 else (-1 if a.negative else 1)
    sign_b = 0 if b.unscaled == 0 else (-1 if b.negative else 1)
    if sign_a != sign_b:
        return 1 if sign_a > sign_b else -1
    magnitude = _group_compare(a, b, stats)
    return magnitude * (sign_a if sign_a else 1) if sign_a >= 0 else -magnitude


# ---------------------------------------------------------------- internals


def _check_compatible(a: GroupValue, b: GroupValue) -> None:
    if a.tpi != b.tpi:
        raise TpiRestrictionError(f"mismatched TPI: {a.tpi} vs {b.tpi}")


def _build(spec: DecimalSpec, tpi: int, negative: bool, lanes: List[List[int]]) -> GroupValue:
    value = GroupValue(spec=spec, tpi=tpi, negative=negative, lanes=lanes)
    magnitude = w.to_int(value.gather())
    return GroupValue.from_unscaled(-magnitude if negative and magnitude else magnitude, spec, tpi)


def _group_add_magnitude(a: GroupValue, b: GroupValue, stats: GroupStats) -> Tuple[List[List[int]], int]:
    """Slice-wise addition; a carry crossing a slice boundary is a shuffle."""
    tpi = a.tpi
    lanes: List[List[int]] = []
    carry = 0
    b_lanes = _match_slices(b, a.words_per_thread)
    for t in range(tpi):
        lane_out = []
        if t > 0 and carry:
            stats.shuffles += 1  # carry handed to the next thread
        for wa, wb in zip(a.lanes[t], b_lanes[t]):
            total = wa + wb + carry
            lane_out.append(total & WORD_MASK)
            carry = total >> WORD_BITS
        lanes.append(lane_out)
        stats.ballots += 1  # group agrees whether a carry continues
    return lanes, carry


def _group_sub_magnitude(a: GroupValue, b: GroupValue, stats: GroupStats) -> List[List[int]]:
    tpi = a.tpi
    lanes: List[List[int]] = []
    borrow = 0
    b_lanes = _match_slices(b, a.words_per_thread)
    for t in range(tpi):
        lane_out = []
        if t > 0 and borrow:
            stats.shuffles += 1
        for wa, wb in zip(a.lanes[t], b_lanes[t]):
            total = wa - wb - borrow
            lane_out.append(total & WORD_MASK)
            borrow = 1 if total < 0 else 0
        lanes.append(lane_out)
        stats.ballots += 1
    if borrow:
        raise AssertionError("group subtraction underflow: operands not ordered")
    return lanes


def _group_compare(a: GroupValue, b: GroupValue, stats: GroupStats) -> int:
    """Magnitude compare, most significant thread first (one ballot)."""
    stats.ballots += 1
    a_words = a.gather()
    b_words = b.gather()
    width = max(len(a_words), len(b_words))
    return w.compare(
        a_words + [0] * (width - len(a_words)),
        b_words + [0] * (width - len(b_words)),
    )


def _match_slices(value: GroupValue, words_per_thread: int) -> List[List[int]]:
    """Redistribute a value to slices of the given width (zero padded)."""
    if value.words_per_thread == words_per_thread:
        return value.lanes
    flat = value.gather()
    flat += [0] * (words_per_thread * value.tpi - len(flat))
    return [
        flat[t * words_per_thread : (t + 1) * words_per_thread] for t in range(value.tpi)
    ]
