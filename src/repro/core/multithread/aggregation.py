"""Multi-pass multi-threaded aggregation (paper section III-E2).

DECIMAL values aggregate in rounds: each pass partitions the input into
thread blocks, each block reduces its slice in shared memory (inner-thread
first, then inter-thread), and the per-block results feed the next pass
until one block can finish the job.

Block sizing follows the paper exactly: with ``Tmax`` threads per block and
``S`` bytes of shared memory, a block hosts ``Ng = Tmax / TPI`` thread
groups, each group reduces ``nt = floor(S / (Ng * (4*Lw + 1)))`` values, so
a block covers ``nT = nt * Ng`` values and a pass launches ``ceil(N / nT)``
blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.errors import MultithreadError
from repro.gpusim.device import DEFAULT_DEVICE, GpuDevice


@dataclass(frozen=True)
class BlockPlan:
    """Per-pass launch geometry."""

    tpi: int
    groups_per_block: int  # Ng
    values_per_group: int  # nt
    values_per_block: int  # nT

    @classmethod
    def for_spec(
        cls, result_words: int, tpi: int, device: GpuDevice = DEFAULT_DEVICE
    ) -> "BlockPlan":
        t_max = device.max_threads_per_block
        groups = max(1, t_max // tpi)  # Ng = Tmax / TPI
        bytes_per_value = 4 * result_words + 1  # word array + sign byte
        per_group = device.shared_memory_per_block // (groups * bytes_per_value)
        if per_group < 1:
            # Wide values: shrink the group count until a value fits.
            groups = max(1, device.shared_memory_per_block // bytes_per_value // 2)
            per_group = max(1, device.shared_memory_per_block // (groups * bytes_per_value))
        return cls(
            tpi=tpi,
            groups_per_block=groups,
            values_per_group=per_group,
            values_per_block=per_group * groups,
        )


@dataclass
class PassInfo:
    """One aggregation pass."""

    input_values: int
    blocks: int
    seconds: float


@dataclass
class AggregationRun:
    """Result + simulated timing of a multi-pass aggregation."""

    value: int  # unscaled result (COUNT for 'count')
    spec: DecimalSpec
    passes: List[PassInfo] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return sum(p.seconds for p in self.passes)

    @property
    def pass_count(self) -> int:
        return len(self.passes)


_SUPPORTED = ("sum", "min", "max", "count", "avg")


def aggregate(
    values: Sequence[int],
    input_spec: DecimalSpec,
    op: str = "sum",
    tpi: int = 8,
    device: GpuDevice = DEFAULT_DEVICE,
    simulate_tuples: Optional[int] = None,
) -> AggregationRun:
    """Aggregate unscaled values, reproducing the paper's pass structure.

    ``values`` are the actual rows reduced (bit-exactly); the timing charges
    ``simulate_tuples`` rows (default ``len(values)``) so benchmarks can run
    a sample while costing the paper's relation sizes.
    """
    op = op.lower()
    if op not in _SUPPORTED:
        raise MultithreadError(f"unsupported aggregate {op!r}")
    n = len(values)
    if n == 0:
        raise MultithreadError("cannot aggregate an empty column")
    charged = simulate_tuples if simulate_tuples is not None else n

    # Result values always reflect the real rows reduced; ``charged`` only
    # widens result specs and drives the timing model.
    if op == "count":
        result_spec = inference.count_spec(max(charged, 1))
        result: int = n
    elif op in ("min", "max"):
        result_spec = inference.minmax_result(input_spec)
        result = min(values) if op == "min" else max(values)
    else:  # sum / avg
        result_spec = inference.sum_result(input_spec, max(charged, 1))
        result = _blockwise_sum(values, input_spec, result_spec, tpi, device)
        if op == "avg":
            avg_spec = inference.avg_result(input_spec, max(charged, 1))
            prescale = inference.div_prescale(inference.count_spec(max(charged, 1)))
            magnitude = abs(result) * 10**prescale // n
            result = -magnitude if result < 0 else magnitude
            result_spec = avg_spec

    run = AggregationRun(value=result, spec=result_spec)
    run.passes = _plan_passes(charged, result_spec.words, tpi, device)
    return run


def _blockwise_sum(
    values: Sequence[int],
    input_spec: DecimalSpec,
    result_spec: DecimalSpec,
    tpi: int,
    device: GpuDevice,
) -> int:
    """Reduce exactly as the passes would: block sums, then a sum of sums.

    Integer addition is associative, so the result equals ``sum(values)``;
    folding blockwise keeps the simulation faithful and lets tests assert
    the equivalence explicitly.
    """
    plan = BlockPlan.for_spec(result_spec.words, tpi, device)
    level: List[int] = list(values)
    while len(level) > 1:
        level = [
            sum(level[start : start + plan.values_per_block])
            for start in range(0, len(level), plan.values_per_block)
        ]
    return level[0]


def _plan_passes(n: int, result_words: int, tpi: int, device: GpuDevice) -> List[PassInfo]:
    """Pass geometry + simulated time for aggregating ``n`` values."""
    plan = BlockPlan.for_spec(result_words, tpi, device)
    passes: List[PassInfo] = []
    remaining = n
    bytes_per_value = 4 * result_words + 1
    while True:
        blocks = math.ceil(remaining / plan.values_per_block)
        seconds = _pass_seconds(remaining, result_words, bytes_per_value, tpi, device)
        passes.append(PassInfo(input_values=remaining, blocks=blocks, seconds=seconds))
        if blocks == 1:
            break
        remaining = blocks
    return passes


def _pass_seconds(
    values: int, result_words: int, bytes_per_value: int, tpi: int, device: GpuDevice
) -> float:
    """Roofline time of one reduction pass.

    Each value is read once (compact-ish traffic), added once (carry chain
    of ``Lw`` words split across TPI threads), with log-depth inter-thread
    reduction overhead.
    """
    traffic = values * bytes_per_value
    memory_seconds = traffic / (device.dram_bandwidth * device.dram_efficiency)
    cycles_per_value = result_words + 2 + 2 * math.log2(max(tpi, 2))
    compute_seconds = values * cycles_per_value / device.int_throughput
    return max(memory_seconds, compute_seconds) + device.kernel_launch_overhead
