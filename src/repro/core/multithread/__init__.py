"""Multi-threaded (CGBN-style) DECIMAL arithmetic and aggregation.

Section III-E of the paper: thread groups of TPI threads cooperate on one
decimal instance (``cgbn``), load compact values with the Listing-3 plan
(``tpi``), and aggregate columns in shared-memory passes (``aggregation``).
"""

from repro.core.multithread.aggregation import AggregationRun, BlockPlan, aggregate
from repro.core.multithread.cgbn import GroupStats, GroupValue
from repro.core.multithread.tpi import (
    SUPPORTED_TPI,
    LoadPlan,
    check_division_restriction,
    division_supported,
    plan_load,
    render_load_code,
)

__all__ = [
    "AggregationRun",
    "BlockPlan",
    "GroupStats",
    "GroupValue",
    "LoadPlan",
    "SUPPORTED_TPI",
    "aggregate",
    "check_division_restriction",
    "division_supported",
    "plan_load",
    "render_load_code",
]
