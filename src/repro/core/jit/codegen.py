"""Kernel code generation from optimised expression trees.

Walks a type-annotated binary expression tree and emits :class:`KernelIR`:
loads (compact -> register expansion), alignment multiplies, arithmetic
ops sized by the inferred specs, and the compact store.  Also renders a
CUDA-like source listing equivalent to the paper's Listing 1, which the
examples and docs display.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.inference import div_prescale
from repro.core.jit import ir
from repro.core.jit.expr_ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
)

#: SQL function -> RescaleOp mode.
_RESCALE_MODES = {"ROUND": "round", "TRUNC": "trunc", "CEIL": "ceil", "FLOOR": "floor"}
from repro.errors import CodegenError


#: Widest subtree (in 32-bit words) the CSE pass will keep resident.
CSE_MAX_PINNED_WORDS = 6


class _Emitter:
    """Single-pass tree walker producing IR and tracking register pressure."""

    def __init__(self, runtime_constants: bool = False, cse: bool = False) -> None:
        self.instructions: List[ir.Instruction] = []
        self.columns: Dict[str, DecimalSpec] = {}
        self.runtime_constants = runtime_constants
        self.cse = cse
        self._next_register = 0
        self._live_words = 0
        self.peak_words = 0
        #: Release schedule for the lifetime analyzer: register id -> index
        #: of the last instruction emitted before it went back to the pool.
        self.released_after: Dict[int, int] = {}
        #: Column-load CSE: each referenced column is loaded exactly once
        #: (Listing 1 declares one register variable per column).
        self._column_registers: Dict[str, int] = {}
        self._register_specs: Dict[int, DecimalSpec] = {}
        #: Full common-subexpression elimination (an extension beyond the
        #: paper): structurally identical subtrees share one register.
        self._subtree_registers: Dict[str, int] = {}
        self._pinned: set = set()
        self._reuse_counts: Dict[str, int] = {}

    def count_subtrees(self, node: Expr) -> None:
        """First pass: count structurally identical binary subtrees."""
        if isinstance(node, BinaryOp):
            key = f"{node.to_sql()}::{node.spec}"
            self._reuse_counts[key] = self._reuse_counts.get(key, 0) + 1
            if self._reuse_counts[key] > 1:
                return  # children of a shared subtree are counted once
        for child in node.children():
            self.count_subtrees(child)

    def fresh(self, spec: DecimalSpec) -> int:
        register = self._next_register
        self._next_register += 1
        self._register_specs[register] = spec
        self._live_words += spec.words
        self.peak_words = max(self.peak_words, self._live_words)
        return register

    def release(self, register: int) -> None:
        """Free a temporary register; pinned registers stay live."""
        if register in self._pinned or register in self._column_registers.values():
            return
        spec = self._register_specs.get(register)
        if spec is not None:
            self._live_words -= spec.words
            del self._register_specs[register]
            self.released_after[register] = len(self.instructions) - 1

    def emit(self, node: Expr) -> int:
        if node.spec is None:
            raise CodegenError("codegen requires a type-annotated tree")
        if self.cse and isinstance(node, BinaryOp):
            key = f"{node.to_sql()}::{node.spec}"
            if key in self._subtree_registers:
                return self._subtree_registers[key]
            register = self._emit_binary(node)
            # Only keep registers for subtrees that actually recur AND are
            # narrow: pinning wide values trades occupancy (register
            # pressure) for the saved ALU work and quickly loses -- the
            # ext_cse benchmark quantifies this trade-off.
            if (
                self._reuse_counts.get(key, 0) > 1
                and node.spec.words <= CSE_MAX_PINNED_WORDS
            ):
                self._subtree_registers[key] = register
                self._pinned.add(register)
            return register
        if isinstance(node, ColumnRef):
            if node.name in self._column_registers:
                return self._column_registers[node.name]
            register = self.fresh(node.spec)
            self.instructions.append(ir.LoadColumn(register, node.spec, node.name))
            self.columns.setdefault(node.name, node.spec)
            # Column registers stay live for the whole kernel (never freed).
            self._column_registers[node.name] = register
            return register
        if isinstance(node, Literal):
            spec = node.spec
            unscaled = abs(int(node.value * 10**spec.scale))
            register = self.fresh(spec)
            self.instructions.append(
                ir.LoadConst(
                    register, spec, node.value < 0, unscaled,
                    runtime_convert=self.runtime_constants,
                )
            )
            return register
        if isinstance(node, UnaryOp):
            operand = self.emit(node.operand)
            register = self.fresh(node.spec)
            self.instructions.append(ir.NegOp(register, node.spec, operand))
            self.release(operand)
            return register
        if isinstance(node, BinaryOp):
            return self._emit_binary(node)
        if isinstance(node, FuncCall):
            argument = self.emit(node.argument)
            register = self.fresh(node.spec)
            if node.function == "ABS":
                self.instructions.append(ir.AbsOp(register, node.spec, argument))
            elif node.function == "SIGN":
                self.instructions.append(ir.SignOp(register, node.spec, argument))
            else:
                self.instructions.append(
                    ir.RescaleOp(register, node.spec, argument, _RESCALE_MODES[node.function])
                )
            self.release(argument)
            return register
        raise CodegenError(f"cannot generate code for {type(node).__name__}")

    def _emit_binary(self, node: BinaryOp) -> int:
        left_reg = self.emit(node.left)
        right_reg = self.emit(node.right)
        left_spec, right_spec = node.left.spec, node.right.spec
        if node.op in ("+", "-"):
            left_reg = self._align(left_reg, left_spec, node.spec.scale)
            right_reg = self._align(right_reg, right_spec, node.spec.scale)
            op_class = ir.AddOp if node.op == "+" else ir.SubOp
            register = self.fresh(node.spec)
            self.instructions.append(op_class(register, node.spec, left_reg, right_reg))
        elif node.op == "*":
            register = self.fresh(node.spec)
            self.instructions.append(ir.MulOp(register, node.spec, left_reg, right_reg))
        elif node.op == "/":
            register = self.fresh(node.spec)
            self.instructions.append(
                ir.DivOp(register, node.spec, left_reg, right_reg, div_prescale(right_spec))
            )
        elif node.op == "%":
            register = self.fresh(node.spec)
            self.instructions.append(ir.ModOp(register, node.spec, left_reg, right_reg))
        else:
            raise CodegenError(f"unsupported operator {node.op!r}")
        self.release(left_reg)
        self.release(right_reg)
        return register

    def _align(self, register: int, spec: DecimalSpec, scale: int) -> int:
        """Emit an alignment multiply when the operand scale is smaller.

        Only upward alignment appears in generated code; the inference rule
        makes every addition's result scale the max of its operands'.
        """
        if spec.scale >= scale:
            return register
        exponent = scale - spec.scale
        aligned_spec = DecimalSpec(spec.precision + exponent, scale)
        aligned = self.fresh(aligned_spec)
        self.instructions.append(ir.Align(aligned, aligned_spec, register, exponent))
        self.release(register)
        return aligned


def generate_kernel(
    expr: Expr,
    name: str = "calc_expr",
    tpi: int = 1,
    runtime_constants: bool = False,
    cse: bool = False,
) -> ir.KernelIR:
    """Generate a kernel for a type-annotated binary expression tree."""
    emitter = _Emitter(runtime_constants=runtime_constants, cse=cse)
    if cse:
        emitter.count_subtrees(expr)
    result_register = emitter.emit(expr)
    emitter.instructions.append(ir.StoreResult(result_register, expr.spec, result_register))
    kernel = ir.KernelIR(
        name=name,
        expression_sql=expr.to_sql(),
        instructions=emitter.instructions,
        input_columns=emitter.columns,
        result_spec=expr.spec,
        register_words=emitter.peak_words,
        tpi=tpi,
        released_after=dict(emitter.released_after),
    )
    kernel.source = render_source(kernel)
    return kernel


def render_source(kernel: ir.KernelIR) -> str:
    """Render a CUDA-like listing of the kernel (cf. the paper's Listing 1)."""
    lines = [
        f"__global__ void {kernel.name}(ColIter *input, int tupleNum, char *output) {{",
        "    int stride = blockDim.x * gridDim.x;",
        "    int tid = blockIdx.x * blockDim.x + threadIdx.x;",
        "    for (int i = tid; i < tupleNum; i += stride) {",
    ]
    column_index = {name: i for i, name in enumerate(kernel.input_columns)}
    for instruction in kernel.instructions:
        lw = instruction.spec.words
        if isinstance(instruction, ir.LoadColumn):
            idx = column_index[instruction.column]
            lines.append(
                f"        Decimal<{lw}> r{instruction.dst}((cDecimal*)(input[{idx}][i]), "
                f"{instruction.spec.scale});  // {instruction.column} {instruction.spec}"
            )
        elif isinstance(instruction, ir.LoadConst):
            sign = "-" if instruction.negative else ""
            lines.append(
                f"        Decimal<{lw}> r{instruction.dst} = {sign}{instruction.unscaled}_dec;"
                f"  // constant, {instruction.spec}"
            )
        elif isinstance(instruction, ir.Align):
            lines.append(
                f"        Decimal<{lw}> r{instruction.dst} = r{instruction.src} << "
                f"{instruction.exponent};  // align x10^{instruction.exponent}"
            )
        elif isinstance(instruction, ir.AddOp):
            lines.append(f"        Decimal<{lw}> r{instruction.dst} = r{instruction.a} + r{instruction.b};")
        elif isinstance(instruction, ir.SubOp):
            lines.append(f"        Decimal<{lw}> r{instruction.dst} = r{instruction.a} - r{instruction.b};")
        elif isinstance(instruction, ir.NegOp):
            lines.append(f"        Decimal<{lw}> r{instruction.dst} = -r{instruction.src};")
        elif isinstance(instruction, ir.MulOp):
            lines.append(f"        Decimal<{lw}> r{instruction.dst} = r{instruction.a} * r{instruction.b};")
        elif isinstance(instruction, ir.DivOp):
            note = f"  // {instruction.fast_path} fast path" if instruction.fast_path else ""
            lines.append(
                f"        Decimal<{lw}> r{instruction.dst} = (r{instruction.a} << "
                f"{instruction.prescale}) / r{instruction.b};{note}"
            )
        elif isinstance(instruction, ir.ModOp):
            note = f"  // {instruction.fast_path} fast path" if instruction.fast_path else ""
            lines.append(
                f"        Decimal<{lw}> r{instruction.dst} = "
                f"r{instruction.a} % r{instruction.b};{note}"
            )
        elif isinstance(instruction, ir.AbsOp):
            lines.append(f"        Decimal<{lw}> r{instruction.dst} = r{instruction.src}.abs();")
        elif isinstance(instruction, ir.SignOp):
            lines.append(f"        Decimal<{lw}> r{instruction.dst} = r{instruction.src}.sign();")
        elif isinstance(instruction, ir.RescaleOp):
            lines.append(
                f"        Decimal<{lw}> r{instruction.dst} = r{instruction.src}."
                f"rescale_{instruction.mode}({instruction.spec.scale});"
            )
        elif isinstance(instruction, ir.StoreResult):
            lb = instruction.spec.compact_bytes
            lines.append(
                f"        r{instruction.src}.toCompact(output + i * (size_t){lb}, {lb});"
            )
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)
