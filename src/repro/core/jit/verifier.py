"""Kernel IR verification.

A generated kernel is trusted to run unattended over millions of tuples,
so the code generator's output is checked structurally before execution:
every register is defined before use, specs are consistent with the
instruction semantics (alignment exponents match the scale change, binary
operands are scale-aligned for add/sub), and exactly one result is stored.

``verify_kernel`` raises :class:`~repro.errors.CodegenError` with a precise
message on the first violation; the JIT pipeline runs it on every kernel it
emits (cheap: linear in the instruction count).
"""

from __future__ import annotations

from typing import Dict

from repro.core.decimal.context import DecimalSpec
from repro.core.jit import ir
from repro.errors import CodegenError


def verify_kernel(kernel: ir.KernelIR) -> None:
    """Structurally verify a kernel; raises CodegenError on violations."""
    defined: Dict[int, DecimalSpec] = {}
    stores = 0

    def require(register: int, instruction: ir.Instruction) -> DecimalSpec:
        if register not in defined:
            raise CodegenError(
                f"{type(instruction).__name__} reads undefined register r{register}"
            )
        return defined[register]

    for position, instruction in enumerate(kernel.instructions):
        if isinstance(instruction, ir.LoadColumn):
            if instruction.column not in kernel.input_columns:
                raise CodegenError(
                    f"LoadColumn references unregistered column {instruction.column!r}"
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.LoadConst):
            if instruction.unscaled < 0:
                raise CodegenError("LoadConst magnitude must be non-negative")
            if not instruction.spec.fits(instruction.unscaled):
                raise CodegenError(
                    f"constant {instruction.unscaled} does not fit {instruction.spec}"
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.Align):
            source = require(instruction.src, instruction)
            if instruction.exponent <= 0:
                raise CodegenError("Align exponent must be positive")
            if source.scale + instruction.exponent != instruction.spec.scale:
                raise CodegenError(
                    f"Align scale mismatch: {source.scale} + {instruction.exponent} "
                    f"!= {instruction.spec.scale}"
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, (ir.AddOp, ir.SubOp)):
            left = require(instruction.a, instruction)
            right = require(instruction.b, instruction)
            if left.scale != right.scale or left.scale != instruction.spec.scale:
                raise CodegenError(
                    f"{type(instruction).__name__} operands not scale-aligned: "
                    f"{left.scale}/{right.scale} -> {instruction.spec.scale}"
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.NegOp):
            require(instruction.src, instruction)
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.MulOp):
            left = require(instruction.a, instruction)
            right = require(instruction.b, instruction)
            if left.scale + right.scale != instruction.spec.scale:
                raise CodegenError(
                    f"MulOp scale mismatch: {left.scale} + {right.scale} "
                    f"!= {instruction.spec.scale}"
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.DivOp):
            dividend = require(instruction.a, instruction)
            divisor = require(instruction.b, instruction)
            if instruction.prescale != divisor.scale + 4:
                raise CodegenError(
                    f"DivOp prescale {instruction.prescale} != divisor scale "
                    f"{divisor.scale} + 4"
                )
            if instruction.spec.scale != dividend.scale + 4:
                raise CodegenError(
                    f"DivOp result scale {instruction.spec.scale} != dividend "
                    f"scale {dividend.scale} + 4"
                )
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.ModOp):
            left = require(instruction.a, instruction)
            right = require(instruction.b, instruction)
            if left.scale or right.scale or instruction.spec.scale:
                raise CodegenError("ModOp requires integer (scale-0) operands")
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.AbsOp):
            source = require(instruction.src, instruction)
            if source != instruction.spec:
                raise CodegenError("AbsOp must preserve its operand's spec")
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.SignOp):
            require(instruction.src, instruction)
            if instruction.spec != DecimalSpec(1, 0):
                raise CodegenError("SignOp result must be DECIMAL(1, 0)")
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.RescaleOp):
            require(instruction.src, instruction)
            if instruction.mode not in ("trunc", "round", "ceil", "floor"):
                raise CodegenError(f"unknown rescale mode {instruction.mode!r}")
            if instruction.mode in ("ceil", "floor") and instruction.spec.scale != 0:
                raise CodegenError("CEIL/FLOOR results must have scale 0")
            defined[instruction.dst] = instruction.spec
        elif isinstance(instruction, ir.StoreResult):
            stored = require(instruction.src, instruction)
            if stored != kernel.result_spec:
                raise CodegenError(
                    f"stored spec {stored} != kernel result spec {kernel.result_spec}"
                )
            stores += 1
        else:
            raise CodegenError(f"unknown instruction {type(instruction).__name__}")

    if stores != 1:
        raise CodegenError(f"kernel must store exactly one result, found {stores}")
