"""Kernel IR verification.

A generated kernel is trusted to run unattended over millions of tuples,
so the code generator's output is checked structurally before execution:
every register is defined before use, specs are consistent with the
instruction semantics (alignment exponents match the scale change, binary
operands are scale-aligned for add/sub), and exactly one result is stored.

The checks themselves live in :mod:`repro.analysis.structure`, which
*collects* every violation as a diagnostic instead of bailing at the first
one.  ``verify_kernel`` is the strict front door the JIT pipeline uses: in
its default strict mode it raises :class:`~repro.errors.CodegenError` with
the first violation's message (cheap: linear in the instruction count);
with ``strict=False`` it returns the full diagnostic list for callers that
want everything at once.
"""

from __future__ import annotations

from typing import List

from repro.core.jit import ir
from repro.errors import CodegenError


def verify_kernel(kernel: ir.KernelIR, strict: bool = True) -> List:
    """Structurally verify a kernel.

    Returns the list of :class:`repro.analysis.Diagnostic` findings (empty
    for a valid kernel).  With ``strict`` (the default) the first violation
    raises ``CodegenError`` instead, preserving the historical fail-fast
    contract.
    """
    from repro.analysis.structure import check_structure

    findings = check_structure(kernel)
    if strict and findings:
        raise CodegenError(findings[0].message)
    return findings
