"""Binary <-> n-ary expression tree transforms (paper section III-D1).

The alignment scheduler and the constant optimiser both work on n-ary trees:

1. subtractions are rewritten as additions of negated subtrees
   (``a - b`` -> ``a + (-b)``);
2. addition operators at neighbouring levels collapse into one
   :class:`NaryAdd` node (and ``*`` chains into :class:`NaryMul`);
3. after scheduling, the n-ary tree converts back to a left-deep binary
   tree for code generation.
"""

from __future__ import annotations

from typing import List

from repro.core.jit.expr_ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    NaryAdd,
    NaryMul,
    UnaryOp,
)
from repro.errors import ExpressionError


def to_nary(expr: Expr) -> Expr:
    """Convert a binary tree to the n-ary form used by the optimiser."""
    if isinstance(expr, (ColumnRef, Literal)):
        return expr
    if isinstance(expr, UnaryOp):
        operand = to_nary(expr.operand)
        if expr.op == "+":
            return operand  # the "+a" shortcut is free
        return _negate(operand)
    if isinstance(expr, FuncCall):
        return FuncCall(expr.function, to_nary(expr.argument), expr.scale_arg)
    if isinstance(expr, BinaryOp):
        left = to_nary(expr.left)
        right = to_nary(expr.right)
        if expr.op == "+":
            return NaryAdd(_addends(left) + _addends(right))
        if expr.op == "-":
            return NaryAdd(_addends(left) + _addends(_negate(right)))
        if expr.op == "*":
            return NaryMul(_factors(left) + _factors(right))
        return BinaryOp(expr.op, left, right)  # '/' and '%' stay binary
    if isinstance(expr, (NaryAdd, NaryMul)):
        return expr
    raise ExpressionError(f"cannot convert {type(expr).__name__} to n-ary form")


def to_binary(expr: Expr) -> Expr:
    """Convert an n-ary tree back to a left-deep binary tree (step 5)."""
    if isinstance(expr, (ColumnRef, Literal)):
        return expr
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, to_binary(expr.operand))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.function, to_binary(expr.argument), expr.scale_arg)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, to_binary(expr.left), to_binary(expr.right))
    if isinstance(expr, NaryAdd):
        return _fold("+", [to_binary(term) for term in expr.terms])
    if isinstance(expr, NaryMul):
        return _fold("*", [to_binary(factor) for factor in expr.factors])
    raise ExpressionError(f"cannot convert {type(expr).__name__} to binary form")


def _fold(op: str, nodes: List[Expr]) -> Expr:
    if not nodes:
        raise ExpressionError(f"empty n-ary {op!r} node")
    result = nodes[0]
    for node in nodes[1:]:
        # `x + (-y)` folds back to the cheaper `x - y` binary operator.
        if op == "+" and isinstance(node, UnaryOp) and node.op == "-":
            result = BinaryOp("-", result, node.operand)
        else:
            result = BinaryOp(op, result, node)
    return result


def _negate(expr: Expr) -> Expr:
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return expr.operand  # --x -> x
    if isinstance(expr, Literal):
        negated = Literal(-expr.value)
        negated.spec = expr.spec
        return negated
    if isinstance(expr, NaryAdd):
        return NaryAdd([_negate(term) for term in expr.terms])
    return UnaryOp("-", expr)


def _addends(expr: Expr) -> List[Expr]:
    if isinstance(expr, NaryAdd):
        return list(expr.terms)
    return [expr]


def _factors(expr: Expr) -> List[Expr]:
    if isinstance(expr, NaryMul):
        return list(expr.factors)
    return [expr]
