"""Constant construction and pre-calculation (paper section III-D2, Fig. 7).

Three compile-time optimisations over the n-ary tree:

* **pre-calculation** -- constant children of a sum/product are folded
  exactly (``1 + a + 2 + 11`` -> ``14 + a``; ``0.25 * (a+b) * 4`` ->
  ``a + b``), leaving at most one constant per n-ary level;
* **shortcuts** -- subtrees evaluable immediately disappear (``+a``,
  ``0 + a``, ``1 * a``, ``0 * a``);
* **constant construction** -- each surviving literal is converted to a
  DECIMAL constant at compile time and pre-aligned "to the minimum of the
  nodes having a greater or equal scale", so no per-tuple conversion or
  alignment is spent on it (Figure 7's ``2.23`` -> ``2.230`` example).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

from repro.core.decimal.context import DecimalSpec
from repro.core.jit.expr_ast import (
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    NaryAdd,
    NaryMul,
    UnaryOp,
)


def fold_constants(expr: Expr) -> Expr:
    """Fold constant subtrees bottom-up; returns the (possibly new) root."""
    if isinstance(expr, NaryAdd):
        terms = [fold_constants(term) for term in expr.terms]
        terms = _flatten_sums(terms)
        literals, others = _split(terms)
        constant = sum((lit.value for lit in literals), Fraction(0))
        if not others:
            return Literal(constant)
        new_terms = list(others)
        if constant != 0:
            new_terms.append(Literal(constant))
        if len(new_terms) == 1:
            return new_terms[0]  # the "0 + a -> a" shortcut
        return NaryAdd(new_terms)
    if isinstance(expr, NaryMul):
        factors = [fold_constants(factor) for factor in expr.factors]
        literals, others = _split(factors)
        constant = Fraction(1)
        for literal in literals:
            constant *= literal.value
        if constant == 0:
            return Literal(Fraction(0))  # 0 * a evaluates immediately
        if not others:
            return Literal(constant)
        new_factors = list(others)
        if constant != 1:
            new_factors.insert(0, Literal(constant))
        if len(new_factors) == 1:
            return new_factors[0]  # the "1 * a -> a" shortcut
        return NaryMul(new_factors)
    if isinstance(expr, UnaryOp):
        operand = fold_constants(expr.operand)
        if expr.op == "+":
            return operand
        if isinstance(operand, Literal):
            return Literal(-operand.value)
        if isinstance(operand, UnaryOp) and operand.op == "-":
            return operand.operand
        return UnaryOp(expr.op, operand)
    if isinstance(expr, FuncCall):
        argument = fold_constants(expr.argument)
        if isinstance(argument, Literal):
            folded = _fold_function(expr.function, argument.value, expr.scale_arg)
            if folded is not None:
                return Literal(folded)
        return FuncCall(expr.function, argument, expr.scale_arg)
    if isinstance(expr, BinaryOp):
        # '/' and '%' keep DECIMAL truncation semantics, so only fold them
        # when both sides are constant *and* the result is exact.
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if (
            expr.op == "/"
            and isinstance(left, Literal)
            and isinstance(right, Literal)
            and right.value != 0
        ):
            exact = left.value / right.value
            if _is_decimal_fraction(exact):
                return Literal(exact)
        return BinaryOp(expr.op, left, right)
    return expr


def _fold_function(function: str, value: Fraction, scale_arg: int):
    """Exact compile-time evaluation of a scalar function on a constant."""
    import math

    if function == "ABS":
        return abs(value)
    if function == "SIGN":
        return Fraction((value > 0) - (value < 0))
    if function == "FLOOR":
        return Fraction(math.floor(value))
    if function == "CEIL":
        return Fraction(math.ceil(value))
    if function == "TRUNC":
        base = 10**scale_arg
        scaled = value * base
        truncated = scaled.numerator // scaled.denominator
        if scaled < 0 and truncated * scaled.denominator != scaled.numerator:
            truncated += 1  # truncate toward zero
        return Fraction(truncated, base)
    if function == "ROUND":
        base = 10**scale_arg
        scaled = value * base
        sign = -1 if scaled < 0 else 1
        magnitude = abs(scaled)
        rounded = (2 * magnitude.numerator + magnitude.denominator) // (
            2 * magnitude.denominator
        )
        return Fraction(sign * rounded, base)
    return None


def align_constants(expr: Expr) -> Expr:
    """Pre-align each literal's DECIMAL spec to its future neighbours.

    Within a scheduled n-ary sum, a constant is re-declared at the minimum
    scale among sibling terms whose scale is greater than or equal to its
    own, removing the runtime alignment it would otherwise cost
    (Figure 7: ``2.23`` in DECIMAL(3,2) is stored as DECIMAL(4,3) to match
    ``d``'s scale 3).  Requires inference to have run.
    """
    if isinstance(expr, NaryAdd):
        terms = [align_constants(term) for term in expr.terms]
        scales = [term.effective_scale for term in terms]
        for index, term in enumerate(terms):
            if not isinstance(term, Literal):
                continue
            candidates = [s for j, s in enumerate(scales) if j != index and s >= scales[index]]
            if candidates:
                terms[index] = _rescale_literal(term, min(candidates))
        return _with_spec(NaryAdd(terms), expr)
    if isinstance(expr, NaryMul):
        return _with_spec(NaryMul([align_constants(factor) for factor in expr.factors]), expr)
    if isinstance(expr, UnaryOp):
        return _with_spec(UnaryOp(expr.op, align_constants(expr.operand)), expr)
    if isinstance(expr, BinaryOp):
        return _with_spec(
            BinaryOp(expr.op, align_constants(expr.left), align_constants(expr.right)), expr
        )
    if isinstance(expr, FuncCall):
        return _with_spec(
            FuncCall(expr.function, align_constants(expr.argument), expr.scale_arg), expr
        )
    return expr


def _with_spec(new: Expr, old: Expr) -> Expr:
    new.spec = old.spec
    return new


def _rescale_literal(literal: Literal, scale: int) -> Literal:
    base = literal.minimal_spec()
    extra = scale - base.scale
    if extra <= 0:
        literal.spec = base
        return literal
    rescaled = Literal(literal.value)
    rescaled.spec = DecimalSpec(base.precision + extra, scale)
    return rescaled


def _split(nodes: List[Expr]) -> Tuple[List[Literal], List[Expr]]:
    literals = [node for node in nodes if isinstance(node, Literal)]
    others = [node for node in nodes if not isinstance(node, Literal)]
    return literals, others


def _flatten_sums(terms: List[Expr]) -> List[Expr]:
    """Re-collapse sums that folding may have re-exposed."""
    flat: List[Expr] = []
    for term in terms:
        if isinstance(term, NaryAdd):
            flat.extend(term.terms)
        else:
            flat.append(term)
    return flat


def _is_decimal_fraction(value: Fraction) -> bool:
    denominator = value.denominator
    for base in (2, 5):
        while denominator % base == 0:
            denominator //= base
    return denominator == 1
