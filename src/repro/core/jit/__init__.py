"""JIT compilation engine for DECIMAL expressions (paper section III).

Public surface: :func:`~repro.core.jit.pipeline.compile_expression` runs the
full parse -> infer -> optimise -> codegen pipeline, returning a
:class:`~repro.core.jit.ir.KernelIR` that the GPU simulator executes.
"""

from repro.core.jit.expr_ast import BinaryOp, ColumnRef, Expr, Literal, NaryAdd, NaryMul, UnaryOp
from repro.core.jit.ir import KernelIR
from repro.core.jit.parser import parse_expression
from repro.core.jit.pipeline import (
    CompiledExpression,
    JitOptions,
    KernelCache,
    compile_expression,
    optimize,
)

__all__ = [
    "BinaryOp",
    "ColumnRef",
    "CompiledExpression",
    "Expr",
    "JitOptions",
    "KernelCache",
    "KernelIR",
    "Literal",
    "NaryAdd",
    "NaryMul",
    "UnaryOp",
    "compile_expression",
    "optimize",
    "parse_expression",
]
