"""Expression trees for DECIMAL arithmetic.

A SQL expression over DECIMAL columns is parsed into a binary tree whose
intermediate nodes are operators and whose leaves are column references or
literals (paper section III-D1).  The optimisation passes additionally use
n-ary addition/multiplication nodes ("the binary expression tree is
converted into an n-ary tree by collapsing the addition operators at
neighboring levels") before code generation converts back to binary form.

Every node can carry an inferred :class:`DecimalSpec` (``spec``) and exposes
``effective_scale`` -- the scale the alignment scheduler sorts by: a ``*``
node sums its operands' scales and unary negation inherits its operand's
(Figure 6 caption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.decimal import convert
from repro.core.decimal.context import DecimalSpec
from repro.errors import ExpressionError

#: Binary operators in the order the parser knows them.
BINARY_OPS = ("+", "-", "*", "/", "%")


@dataclass
class Expr:
    """Base expression node."""

    spec: Optional[DecimalSpec] = field(default=None, init=False, compare=False)

    @property
    def effective_scale(self) -> int:
        """Scale used by the alignment scheduler (requires inference)."""
        if self.spec is None:
            raise ExpressionError("effective_scale requires type inference")
        return self.spec.scale

    def children(self) -> Tuple["Expr", ...]:
        """Child nodes, leftmost first."""
        return ()

    def to_sql(self) -> str:
        """Render back to SQL-ish text (used in messages and tests)."""
        raise NotImplementedError


@dataclass
class ColumnRef(Expr):
    """A reference to a DECIMAL column by name."""

    name: str

    def to_sql(self) -> str:
        return self.name


@dataclass
class Literal(Expr):
    """A numeric literal, held exactly as a rational until conversion.

    The constant-folding pass manipulates ``value`` exactly; the final
    conversion to a DECIMAL constant happens at compile time (section
    III-D2), never per tuple.
    """

    value: Fraction

    @classmethod
    def from_text(cls, text: str) -> "Literal":
        negative, unscaled, spec = convert.parse_literal(text)
        literal = cls(Fraction(-unscaled if negative else unscaled, 10**spec.scale))
        literal.spec = spec
        return literal

    @property
    def is_zero(self) -> bool:
        return self.value == 0

    @property
    def is_one(self) -> bool:
        return self.value == 1

    def minimal_spec(self) -> DecimalSpec:
        """The minimal DECIMAL(p, s) holding this exact rational.

        Raises if the rational has a non-terminating decimal expansion
        (cannot happen for literals parsed from decimal text, nor for the
        +, -, * folding the optimiser performs).
        """
        scale = 0
        denominator = self.value.denominator
        while denominator % 10 == 0:
            denominator //= 10
            scale += 1
        while denominator % 5 == 0:
            denominator //= 5
            scale += 1
        while denominator % 2 == 0:
            denominator //= 2
            scale += 1
        if denominator != 1:
            raise ExpressionError(f"literal {self.value} is not a decimal fraction")
        unscaled = abs(int(self.value * 10**scale))
        precision = max(len(str(unscaled)), scale, 1) if unscaled else max(scale, 1)
        return DecimalSpec(precision, scale)

    def to_sql(self) -> str:
        spec = self.minimal_spec()
        unscaled = abs(int(self.value * 10**spec.scale))
        return convert.unscaled_to_string(self.value < 0, unscaled, spec.scale)


@dataclass
class UnaryOp(Expr):
    """Unary negation (subtrahends become ``(-x)`` subtrees, section III-D1)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("-", "+"):
            raise ExpressionError(f"unsupported unary operator {self.op!r}")

    @property
    def effective_scale(self) -> int:
        # Unary negation inherits its operand's scale (Figure 6).
        return self.operand.effective_scale

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"({self.op}{self.operand.to_sql()})"


@dataclass
class BinaryOp(Expr):
    """A binary arithmetic operator node."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ExpressionError(f"unsupported operator {self.op!r}")

    @property
    def effective_scale(self) -> int:
        if self.op == "*":
            return self.left.effective_scale + self.right.effective_scale
        return super().effective_scale

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


#: Scalar functions the expression language supports.  ROUND/TRUNC take an
#: optional target scale as their second argument (default 0).
SCALAR_FUNCTIONS = ("ABS", "SIGN", "ROUND", "TRUNC", "CEIL", "FLOOR", "POWER")


@dataclass
class FuncCall(Expr):
    """A scalar function over one DECIMAL argument: ``ROUND(x, 2)`` etc."""

    function: str
    argument: Expr
    scale_arg: int = 0

    def __post_init__(self) -> None:
        if self.function not in SCALAR_FUNCTIONS:
            raise ExpressionError(f"unsupported function {self.function!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.argument,)

    def to_sql(self) -> str:
        if self.function in ("ROUND", "TRUNC", "POWER"):
            return f"{self.function}({self.argument.to_sql()}, {self.scale_arg})"
        return f"{self.function}({self.argument.to_sql()})"


@dataclass
class NaryAdd(Expr):
    """An n-ary addition used during scheduling (children are added)."""

    terms: List[Expr]

    @property
    def effective_scale(self) -> int:
        return max(term.effective_scale for term in self.terms)

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.terms)

    def to_sql(self) -> str:
        return "(" + " + ".join(term.to_sql() for term in self.terms) + ")"


@dataclass
class NaryMul(Expr):
    """An n-ary multiplication used during constant folding."""

    factors: List[Expr]

    @property
    def effective_scale(self) -> int:
        return sum(factor.effective_scale for factor in self.factors)

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.factors)

    def to_sql(self) -> str:
        return "(" + " * ".join(factor.to_sql() for factor in self.factors) + ")"


def walk(expr: Expr):
    """Yield every node of the tree, depth first, parents last."""
    for child in expr.children():
        yield from walk(child)
    yield expr


def column_names(expr: Expr) -> List[str]:
    """Distinct column names referenced, in first-use order."""
    seen: List[str] = []
    for node in walk(expr):
        if isinstance(node, ColumnRef) and node.name not in seen:
            seen.append(node.name)
    return seen


def count_ops(expr: Expr, op: str) -> int:
    """Number of binary nodes with the given operator."""
    return sum(1 for node in walk(expr) if isinstance(node, BinaryOp) and node.op == op)
