"""Alignment scheduling (paper section III-D1, Figure 6).

Two DECIMAL operands with different scales must be aligned (a ``x10^k``
multiplication) before addition.  For an n-ary sum, ordering the terms by
ascending effective scale minimises how many alignments the left-deep
evaluation performs: the running sum only re-aligns when it first meets a
larger scale.

``a + b + a`` with ``b`` at a large scale costs 2 alignments unscheduled
but only 1 once ``b`` is moved to the end -- exactly the paper's Figure 10
experiment.
"""

from __future__ import annotations

from typing import List

from repro.core.jit.expr_ast import BinaryOp, Expr, FuncCall, NaryAdd, NaryMul, UnaryOp


def schedule(expr: Expr) -> Expr:
    """Reorder every n-ary addition's terms by ascending effective scale.

    The sort is stable so equal-scale terms keep their original order
    (important for reproducibility of generated code).  Children are
    scheduled first so nested sums are already in canonical form.
    """
    if isinstance(expr, NaryAdd):
        terms = [schedule(term) for term in expr.terms]
        terms.sort(key=lambda term: term.effective_scale)
        return _with_spec(NaryAdd(terms), expr)
    if isinstance(expr, NaryMul):
        return _with_spec(NaryMul([schedule(factor) for factor in expr.factors]), expr)
    if isinstance(expr, UnaryOp):
        return _with_spec(UnaryOp(expr.op, schedule(expr.operand)), expr)
    if isinstance(expr, BinaryOp):
        return _with_spec(BinaryOp(expr.op, schedule(expr.left), schedule(expr.right)), expr)
    if isinstance(expr, FuncCall):
        return _with_spec(
            FuncCall(expr.function, schedule(expr.argument), expr.scale_arg), expr
        )
    return expr


def _with_spec(new: Expr, old: Expr) -> Expr:
    new.spec = old.spec
    return new


def count_alignments(expr: Expr) -> int:
    """Alignment operations a left-deep evaluation of the tree performs.

    Within an n-ary sum the running scale starts at the first term's scale;
    each subsequent term triggers one alignment when its scale differs from
    the running scale (whichever side aligns, it is one multiplication).
    The running scale becomes the max of the two.
    """
    total = 0
    if isinstance(expr, NaryAdd):
        running = expr.terms[0].effective_scale
        for term in expr.terms[1:]:
            scale = term.effective_scale
            if scale != running:
                total += 1
                running = max(running, scale)
        total += sum(count_alignments(term) for term in expr.terms)
        return total
    if isinstance(expr, BinaryOp):
        if expr.op in ("+", "-") and expr.left.effective_scale != expr.right.effective_scale:
            total += 1
        return total + count_alignments(expr.left) + count_alignments(expr.right)
    if isinstance(expr, (NaryMul,)):
        return sum(count_alignments(factor) for factor in expr.factors)
    if isinstance(expr, UnaryOp):
        return count_alignments(expr.operand)
    if isinstance(expr, FuncCall):
        return count_alignments(expr.argument)
    return 0


def scale_order(expr: NaryAdd) -> List[int]:
    """The effective scales of an n-ary sum's terms, in order (for tests)."""
    return [term.effective_scale for term in expr.terms]
