"""Bottom-up precision/scale inference over expression trees.

Applies the section III-B3 rules (see ``repro.core.decimal.inference``) to
annotate every node of an expression with its result ``DecimalSpec``, given
the schema of the relation the expression runs over.  This is the step that
lets the code generator size every register array at compile time.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.jit.expr_ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    NaryAdd,
    NaryMul,
    UnaryOp,
)
from repro.errors import TypeInferenceError

Schema = Mapping[str, DecimalSpec]


def infer(expr: Expr, schema: Schema) -> DecimalSpec:
    """Annotate ``expr`` (in place) with inferred specs; returns the root spec."""
    if isinstance(expr, ColumnRef):
        try:
            expr.spec = schema[expr.name]
        except KeyError:
            raise TypeInferenceError(f"unknown column {expr.name!r}") from None
    elif isinstance(expr, Literal):
        # Keep an already-annotated spec: constant pre-alignment (section
        # III-D2) deliberately widens a literal beyond its minimal spec, and
        # the pipeline re-infers after POWER expansion -- resetting here
        # would undo the alignment and re-emit a runtime Align.  Parsed and
        # freshly folded literals carry either no spec or the minimal one,
        # so first-time inference is unchanged.
        if expr.spec is None:
            expr.spec = expr.minimal_spec()
    elif isinstance(expr, UnaryOp):
        expr.spec = infer(expr.operand, schema)
    elif isinstance(expr, FuncCall):
        argument = infer(expr.argument, schema)
        expr.spec = inference.function_result(expr.function, argument, expr.scale_arg)
    elif isinstance(expr, BinaryOp):
        left = infer(expr.left, schema)
        right = infer(expr.right, schema)
        expr.spec = _binary_result(expr.op, left, right)
    elif isinstance(expr, NaryAdd):
        spec = infer(expr.terms[0], schema)
        for term in expr.terms[1:]:
            spec = inference.add_result(spec, infer(term, schema))
        expr.spec = spec
    elif isinstance(expr, NaryMul):
        spec = infer(expr.factors[0], schema)
        for factor in expr.factors[1:]:
            spec = inference.mul_result(spec, infer(factor, schema))
        expr.spec = spec
    else:
        raise TypeInferenceError(f"cannot infer spec for {type(expr).__name__}")
    return expr.spec


def _binary_result(op: str, left: DecimalSpec, right: DecimalSpec) -> DecimalSpec:
    if op in ("+", "-"):
        return inference.add_result(left, right)
    if op == "*":
        return inference.mul_result(left, right)
    if op == "/":
        return inference.div_result(left, right)
    if op == "%":
        return inference.mod_result(left, right)
    raise TypeInferenceError(f"unsupported operator {op!r}")
