"""A precedence-climbing parser for DECIMAL arithmetic expressions.

Grammar (standard arithmetic):

    expr    := term (('+' | '-') term)*
    term    := unary (('*' | '/' | '%') unary)*
    unary   := ('+' | '-') unary | primary
    primary := NUMBER | IDENT | '(' expr ')'

Identifiers name DECIMAL columns; numbers become exact literals.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.core.jit.expr_ast import (
    SCALAR_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
)
from repro.errors import ParseError


class Token(NamedTuple):
    kind: str  # 'number' | 'ident' | 'op' | 'lparen' | 'rparen'
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*|\.\d+|\d+)|(?P<ident>[A-Za-z_][A-Za-z_0-9.]*)"
    r"|(?P<op>[-+*/%])|(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,))"
)


def tokenize(text: str) -> List[Token]:
    """Split expression text into tokens; raises ParseError on junk."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected character at {position}: {remainder[0]!r}")
        for kind in ("number", "ident", "op", "lparen", "rparen", "comma"):
            value = match.group(kind)
            if value is not None:
                tokens.append(Token(kind, value, match.start(kind)))
                break
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    def parse(self) -> Expr:
        expr = self._expr()
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(f"trailing input at {token.position}: {token.text!r}")
        return expr

    def _peek(self) -> Optional[Token]:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of expression: {self._text!r}")
        self._index += 1
        return token

    def _expr(self) -> Expr:
        node = self._term()
        while True:
            token = self._peek()
            if token and token.kind == "op" and token.text in "+-":
                self._advance()
                node = BinaryOp(token.text, node, self._term())
            else:
                return node

    def _term(self) -> Expr:
        node = self._unary()
        while True:
            token = self._peek()
            if token and token.kind == "op" and token.text in "*/%":
                self._advance()
                node = BinaryOp(token.text, node, self._unary())
            else:
                return node

    def _unary(self) -> Expr:
        token = self._peek()
        if token and token.kind == "op" and token.text in "+-":
            self._advance()
            return UnaryOp(token.text, self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._advance()
        if token.kind == "number":
            return Literal.from_text(token.text)
        if token.kind == "ident":
            upper = token.text.upper()
            next_token = self._peek()
            if upper in SCALAR_FUNCTIONS and next_token and next_token.kind == "lparen":
                return self._function_call(upper)
            return ColumnRef(token.text)
        if token.kind == "lparen":
            node = self._expr()
            closing = self._advance()
            if closing.kind != "rparen":
                raise ParseError(f"expected ')' at {closing.position}, got {closing.text!r}")
            return node
        raise ParseError(f"unexpected token at {token.position}: {token.text!r}")

    def _function_call(self, function: str) -> Expr:
        self._advance()  # consume '('
        argument = self._expr()
        scale_arg = 0
        token = self._peek()
        if token and token.kind == "comma":
            if function not in ("ROUND", "TRUNC", "POWER"):
                raise ParseError(f"{function} takes exactly one argument")
            self._advance()
            number = self._advance()
            if number.kind != "number" or "." in number.text:
                raise ParseError(
                    f"{function}'s second argument must be an integer scale, "
                    f"got {number.text!r}"
                )
            scale_arg = int(number.text)
        closing = self._advance()
        if closing.kind != "rparen":
            raise ParseError(f"expected ')' after {function} arguments, got {closing.text!r}")
        if function == "POWER":
            if scale_arg < 1 or scale_arg > 64:
                raise ParseError("POWER's exponent must be an integer in [1, 64]")
        return FuncCall(function, argument, scale_arg)


def parse_expression(text: str) -> Expr:
    """Parse arithmetic text like ``"c1 + c2 * 1.5"`` into an expression tree."""
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty expression")
    return _Parser(tokens, text).parse()
