"""Kernel intermediate representation emitted by the JIT code generator.

A generated GPU kernel (Listing 1 of the paper) does three things per tuple:
expand compact operands into word-aligned register arrays, evaluate the
expression with fixed-width multi-word arithmetic, and write the result back
in compact form.  The IR below captures exactly those steps; the GPU
simulator both *executes* the instructions (producing bit-exact results via
``repro.core.decimal.vectorized``) and *costs* them (mapping each to PTX
instruction counts and memory traffic).

Registers are virtual: ``dst``/``src`` are integer ids, and each register
holds a sign plus an ``Lw``-word array whose width comes from the
instruction's ``spec``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.decimal.context import DecimalSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.diagnostics import AnalysisReport


@dataclass(frozen=True)
class Instruction:
    """Base class for kernel IR instructions."""

    dst: int
    spec: DecimalSpec


@dataclass(frozen=True)
class LoadColumn(Instruction):
    """Read a compact column value and expand it to register form."""

    column: str


@dataclass(frozen=True)
class LoadConst(Instruction):
    """Materialise a DECIMAL constant.

    With constant construction enabled (section III-D2) the conversion from
    the literal text happens at compile time and this costs nothing at
    runtime; with it disabled, ``runtime_convert`` marks that every tuple
    pays the string/int -> DECIMAL conversion (the Figure 11 baseline).
    """

    negative: bool
    unscaled: int
    runtime_convert: bool = False


@dataclass(frozen=True)
class Align(Instruction):
    """Scale-alignment multiply: ``dst = src * 10**exponent``."""

    src: int
    exponent: int


@dataclass(frozen=True)
class AddOp(Instruction):
    """Signed addition of two aligned registers (add.cc/addc chain)."""

    a: int
    b: int


@dataclass(frozen=True)
class SubOp(Instruction):
    """Signed subtraction of two aligned registers."""

    a: int
    b: int


@dataclass(frozen=True)
class NegOp(Instruction):
    """Sign flip."""

    src: int


@dataclass(frozen=True)
class MulOp(Instruction):
    """Multi-word multiplication (schoolbook mad chain)."""

    a: int
    b: int


@dataclass(frozen=True)
class DivOp(Instruction):
    """Division with dividend prescale (section III-B3 / III-C2).

    ``fast_path`` is a statically proven size class from the range
    analyzer: ``"native64"`` (pre-scaled dividend and divisor fit uint64 in
    every row) or ``"short"`` (divisor fits one 32-bit word in every row).
    ``None`` means the executor dispatches per row.
    """

    a: int
    b: int
    prescale: int
    fast_path: Optional[str] = None


@dataclass(frozen=True)
class ModOp(Instruction):
    """Integer modulo.

    ``fast_path`` as on :class:`DivOp` (the modulo routes mirror ``div``'s
    size classes, without the dividend prescale).
    """

    a: int
    b: int
    fast_path: Optional[str] = None


@dataclass(frozen=True)
class AbsOp(Instruction):
    """Magnitude copy (clears the sign byte)."""

    src: int


@dataclass(frozen=True)
class SignOp(Instruction):
    """Three-way sign: -1, 0 or 1 as DECIMAL(1, 0)."""

    src: int


@dataclass(frozen=True)
class RescaleOp(Instruction):
    """Scale change with an explicit rounding mode (ROUND/TRUNC/CEIL/FLOOR).

    ``mode`` is one of ``trunc``, ``round`` (half-up), ``ceil``, ``floor``;
    the target scale is ``spec.scale``.
    """

    src: int
    mode: str


@dataclass(frozen=True)
class StoreResult(Instruction):
    """Pack a register back to the compact output column."""

    src: int


@dataclass
class KernelIR:
    """A compiled expression kernel.

    ``instructions`` evaluate one expression; ``input_columns`` maps the
    referenced column names to their specs; ``result_spec`` is the inferred
    output.  ``register_words`` is the peak number of 32-bit value words
    live at once per thread, which drives the occupancy model.
    """

    name: str
    expression_sql: str
    instructions: List[Instruction]
    input_columns: Dict[str, DecimalSpec]
    result_spec: DecimalSpec
    register_words: int
    source: str = ""
    tpi: int = 1
    #: Register pool release schedule recorded by the emitter: register id
    #: -> index of the instruction after which it was returned to the pool.
    #: Register ids are single-assignment, so one index per id suffices.
    #: ``None`` (hand-built kernels) disables the pool-based lifetime
    #: checks.
    released_after: Optional[Dict[int, int]] = None
    #: Diagnostics attached by the JIT pipeline's analyzer run (the import
    #: is type-checking-only to keep this module free of upward runtime
    #: dependencies).
    analysis: Optional["AnalysisReport"] = field(default=None, repr=False, compare=False)

    @property
    def bytes_read_per_tuple(self) -> int:
        """Compact input bytes each tuple loads from global memory."""
        return sum(
            instruction.spec.compact_bytes
            for instruction in self.instructions
            if isinstance(instruction, LoadColumn)
        )

    @property
    def bytes_written_per_tuple(self) -> int:
        """Compact output bytes each tuple stores."""
        return sum(
            instruction.spec.compact_bytes
            for instruction in self.instructions
            if isinstance(instruction, StoreResult)
        )

    def count(self, kind) -> int:
        """Number of IR instructions of a given type."""
        return sum(1 for instruction in self.instructions if isinstance(instruction, kind))

    def alignment_ops(self) -> int:
        """Runtime alignment multiplications per tuple (Figure 10's metric)."""
        return self.count(Align)
