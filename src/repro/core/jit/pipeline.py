"""The JIT compilation pipeline (paper Figure 3 + section III-D).

``compile_expression`` runs the full pass sequence the paper describes:

1. parse the expression text into a binary tree;
2. infer precisions/scales bottom-up (section III-B3);
3. convert to the n-ary form (subtractions -> negated additions, collapse
   neighbouring ``+``/``*`` levels);
4. fold constants and apply shortcuts (section III-D2);
5. pre-align surviving constants to their neighbours' scales;
6. alignment-schedule n-ary sums by ascending scale (section III-D1);
7. convert back to a binary tree, re-infer, and generate the kernel.

Optimisations can be switched off individually, which is how the Figure
10/11/12 ablation benchmarks measure each one's contribution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.decimal.context import DecimalSpec
from repro.core.jit import alignment, codegen, constant_folding, nary, type_inference
from repro.core.jit.expr_ast import Expr
from repro.core.jit.ir import KernelIR
from repro.core.jit.parser import parse_expression

Schema = Mapping[str, DecimalSpec]


@dataclass(frozen=True)
class JitOptions:
    """Which expression-level optimisations the JIT engine applies."""

    alignment_scheduling: bool = True
    constant_folding: bool = True
    constant_alignment: bool = True
    #: Convert literals to DECIMAL at compile time (section III-D2).  When
    #: False, every tuple pays the conversion -- the Figure 11 baseline.
    constant_construction: bool = True
    #: Common-subexpression elimination across the whole expression -- an
    #: extension beyond the paper (its future-work direction of richer
    #: expression scheduling).  Off by default to stay paper-faithful; the
    #: ext_cse benchmark ablates it on the Taylor-series workload.
    subexpression_elimination: bool = False
    #: Raise :class:`repro.errors.AnalysisError` when the static analyzer
    #: reports errors (possible overflow, use-after-release).  Off by
    #: default: diagnostics are attached to the kernel either way.
    strict_analysis: bool = False
    tpi: int = 1

    def cache_key_part(self) -> Tuple:
        return (
            self.alignment_scheduling,
            self.constant_folding,
            self.constant_alignment,
            self.constant_construction,
            self.subexpression_elimination,
            self.strict_analysis,
            self.tpi,
        )


@dataclass
class CompiledExpression:
    """The result of one JIT compilation."""

    kernel: KernelIR
    tree: Expr
    options: JitOptions
    alignments_before: int
    alignments_after: int


def expand_powers(expr: Expr) -> Expr:
    """Rewrite ``POWER(x, k)`` into a binary-exponentiation product tree.

    ``POWER(x, 5)`` becomes ``((x*x)*(x*x))*x`` -- with subexpression
    elimination enabled the repeated squares compile to O(log k)
    multiplications; without it the tree still evaluates correctly with
    O(k)-ish work (the ext_cse benchmark quantifies the difference).

    Like every other pass, this is value-oriented: the caller's tree is
    never modified, so one parsed tree can flow through the whole pipeline.
    """
    import copy

    from repro.core.jit.expr_ast import (
        BinaryOp,
        FuncCall,
        NaryAdd,
        NaryMul,
        UnaryOp,
    )

    if isinstance(expr, FuncCall):
        if expr.function == "POWER":
            base = expand_powers(expr.argument)

            def power(k: int) -> Expr:
                if k == 1:
                    return copy.deepcopy(base)
                half = power(k // 2)
                squared = BinaryOp("*", half, copy.deepcopy(half))
                if k % 2:
                    return BinaryOp("*", squared, copy.deepcopy(base))
                return squared

            return power(expr.scale_arg)
        return FuncCall(expr.function, expand_powers(expr.argument), expr.scale_arg)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, expand_powers(expr.left), expand_powers(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, expand_powers(expr.operand))
    if isinstance(expr, NaryAdd):
        return NaryAdd([expand_powers(term) for term in expr.terms])
    if isinstance(expr, NaryMul):
        return NaryMul([expand_powers(factor) for factor in expr.factors])
    return expr


def optimize(expr: Expr, schema: Schema, options: JitOptions) -> Expr:
    """Run the optimisation passes over a parsed tree; returns a binary tree."""
    type_inference.infer(expr, schema)
    tree = nary.to_nary(expr)
    type_inference.infer(tree, schema)
    if options.constant_folding:
        tree = constant_folding.fold_constants(tree)
        type_inference.infer(tree, schema)
    if options.alignment_scheduling:
        tree = alignment.schedule(tree)
    if options.constant_alignment:
        tree = constant_folding.align_constants(tree)
    binary = nary.to_binary(tree)
    # POWER expands last: earlier n-ary collapsing would flatten the
    # binary-exponentiation structure back into a left-deep product chain.
    binary = expand_powers(binary)
    type_inference.infer(binary, schema)
    return binary


def compile_expression(
    text: str,
    schema: Schema,
    options: Optional[JitOptions] = None,
    name: str = "calc_expr",
) -> CompiledExpression:
    """Parse, optimise and generate a kernel for an expression string.

    The expression is parsed exactly once: every pass (including
    ``expand_powers``) is value-oriented, so the same tree feeds the naive
    alignment count and the optimiser without defensive re-parsing.
    """
    if options is None:
        options = JitOptions()
    parsed = parse_expression(text)
    type_inference.infer(parsed, schema)
    naive_nary = nary.to_nary(parsed)
    type_inference.infer(naive_nary, schema)
    alignments_before = alignment.count_alignments(naive_nary)

    tree = optimize(parsed, schema, options)
    alignments_after = alignment.count_alignments(tree)
    kernel = codegen.generate_kernel(
        tree,
        name=name,
        tpi=options.tpi,
        runtime_constants=not options.constant_construction,
        cse=options.subexpression_elimination,
    )
    from repro.analysis import analyze_kernel, apply_fast_paths
    from repro.core.jit.verifier import verify_kernel

    verify_kernel(kernel)
    report = analyze_kernel(kernel, tree=tree)
    if report.fast_paths and not report.has_errors:
        # Feed the proven division facts back into the IR (and the rendered
        # listing) so the executor skips the per-row size dispatch.  The
        # rewrite returns a copy; this kernel is not yet cached or shared,
        # so swapping it in here is the only mutation-free window.
        annotated = apply_fast_paths(kernel, report.fast_paths)
        if annotated is not kernel:
            kernel = annotated
            kernel.source = codegen.render_source(kernel)
    kernel.analysis = report
    if options.strict_analysis and report.has_errors:
        from repro.analysis import Severity
        from repro.errors import AnalysisError

        raise AnalysisError(
            "static analysis failed:\n" + report.format(Severity.ERROR),
            report=report,
        )
    return CompiledExpression(
        kernel=kernel,
        tree=tree,
        options=options,
        alignments_before=alignments_before,
        alignments_after=alignments_after,
    )


class KernelCache:
    """Compilation cache keyed by (expression, schema, options).

    The paper's compile times (~320-423 ms for TPC-H Q1) are paid once per
    distinct kernel; repeated queries reuse the compiled artefact.  The
    timing model consults :attr:`hits`/:attr:`misses` to decide whether to
    charge compilation.

    The cache is shared across the serving layer's sessions, which execute
    on a thread pool, so lookup-and-compile runs under a lock: one session
    compiles, concurrent requests for the same kernel wait and hit.  A
    compilation that raises (or a query cancelled between operators)
    inserts nothing -- entries only ever appear whole.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple, CompiledExpression] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def compile(
        self,
        text: str,
        schema: Schema,
        options: Optional[JitOptions] = None,
        name: str = "calc_expr",
    ) -> Tuple[CompiledExpression, bool]:
        """Compile or fetch; returns ``(compiled, was_cached)``.

        ``name`` is part of the identity: the kernel label flows into
        EXPLAIN output and profiler reports, so a ``calc_expr_0`` artefact
        must never be returned for an ``agg_expr_1`` request.
        """
        if options is None:
            options = JitOptions()
        key = (
            text,
            name,
            tuple(sorted(schema.items(), key=lambda item: item[0])),
            options.cache_key_part(),
        )
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key], True
            compiled = compile_expression(text, schema, options, name=name)
            self.misses += 1
            self._entries[key] = compiled
            return compiled, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
