"""EXPERIMENTS.md generation: run every experiment, render paper-vs-measured.

``python -m repro.bench all`` runs the full suite and rewrites
EXPERIMENTS.md; individual experiments print their table to stdout.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.bench.harness import Experiment

#: Registry: experiment id -> (runner, description, paper reference notes).
#: Runners take no arguments (sizes are the defaults used for the published
#: EXPERIMENTS.md; the pytest benches parameterise them independently).
_REGISTRY: Dict[str, Callable[[], Experiment]] = {}

_HEADLINES: Dict[str, str] = {}


def register(experiment_id: str, headline: str):
    def wrap(runner: Callable[[], Experiment]):
        _REGISTRY[experiment_id] = runner
        _HEADLINES[experiment_id] = headline
        return runner

    return wrap


def _build_registry() -> None:
    if _REGISTRY:
        return
    from repro.bench.experiments import (
        ext_compression,
        ext_hotpath,
        ext_serving,
        ext_streaming,
        fig01_motivation,
        fig08_query1,
        fig09_query2,
        fig10_alignment,
        fig11_const_construction,
        fig12_const_precalc,
        fig13_tpi,
        fig14a_aggregation,
        fig14b_tpch_q1,
        fig14c_rsa,
        fig15_sine,
        profile_nsight,
        table1_tpch,
        table2_capabilities,
    )

    register(
        "fig01",
        "DOUBLE is fast but wrong (and inconsistently wrong); DECIMAL exact; "
        "UltraPrecise's DECIMAL penalty is 1.04x vs PG's 3.00x",
    )(lambda: fig01_motivation.run(rows=2500))
    register(
        "fig08",
        "Query 1 sweep: capability walls at LEN 2/4; RateupDB->UltraPrecise "
        "crossover between LEN 2 and 4; PostgreSQL slowest everywhere",
    )(lambda: fig08_query1.run(rows=800))
    register(
        "fig09",
        "Query 2 (two kernels): UltraPrecise fastest in all cases",
    )(lambda: fig09_query2.run(rows=700))
    register(
        "fig10",
        "Alignment scheduling: 2/4/6 alignments -> 1; savings grow with "
        "precision and expression length (paper max 34%)",
    )(lambda: fig10_alignment.run())
    register(
        "fig11",
        "Constant construction speedup 1.33x -> 1.11x across LEN",
    )(lambda: fig11_const_construction.run())
    register(
        "fig12",
        "Constant pre-calculation: up to ~60%/100%/~60% savings",
    )(lambda: fig12_const_precalc.run())
    register(
        "fig13",
        "TPI sweep: multi-threading wins at high LEN; the TPI=4/LEN=32 "
        "division cell is absent (LEN/TPI <= TPI)",
    )(lambda: fig13_tpi.run())
    register(
        "fig14a",
        "SUM aggregation: MonetDB fastest (no disk I/O); UltraPrecise beats "
        "RateupDB; PostgreSQL's gap narrows with LEN",
    )(lambda: fig14a_aggregation.run(rows=2000))
    register(
        "fig14b",
        "TPC-H Q1: 41x -> 7.7x over PostgreSQL as LEN grows; compile share "
        "falls 47% -> 7%",
    )(lambda: fig14b_tpch_q1.run(rows=1500))
    register(
        "fig14b_for",
        "FOR compression case study: transfer speedups grow with LEN",
    )(lambda: fig14b_tpch_q1.run_compression_study(rows=3000))
    register(
        "fig14c",
        "RSA: two orders of magnitude over the CPU engines; HEAVY.AI fails",
    )(lambda: fig14c_rsa.run(rows=150))
    register(
        "fig15",
        "Taylor sine: ~2 orders faster, +1.1s scalability, saturation near "
        "0.01 except H2, PostgreSQL's parallel kick-in at term 10",
    )(lambda: fig15_sine.run(rows=80, terms_range=(2, 3, 4, 5, 6, 7, 8, 9, 10, 11)))
    register(
        "table1",
        "TPC-H Q2-Q22 parity except Q18/Q20 (subquery DECIMAL delivery)",
    )(lambda: table1_tpch.run())
    register(
        "table2",
        "DECIMAL capability matrix with programmatic boundary checks",
    )(lambda: table2_capabilities.run())
    register(
        "profile",
        "Nsight profiles: memory-bound, single-digit SM util, occupancy "
        "drops with LEN",
    )(lambda: profile_nsight.run())

    def _run_ext_cse():
        import importlib.util
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
        spec = importlib.util.spec_from_file_location(
            "bench_ext_cse", bench_dir / "bench_ext_cse.py"
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules.setdefault("conftest", importlib.import_module("repro.bench.harness"))
        spec.loader.exec_module(module)
        return module.run_ablation()

    register(
        "ext_hotpath",
        "Extension: batched decimal kernels vs the row-loop reference; "
        "bit-exact with the largest wins on division at low LEN",
    )(lambda: ext_hotpath.run(rows=4000))

    register(
        "ext_compression",
        "Extension: order-preserving codecs + zone maps cut streamed PCIe "
        "bytes (3.7x at LEN=8, 14.8x at LEN=32 on Q1) and skip chunks on "
        "selective filters, bit-exact",
    )(lambda: ext_compression.run(rows=3072))

    register(
        "ext_serving",
        "Extension: concurrent sessions share one simulated device; "
        "throughput grows with sessions via overlap, p99 degrades gracefully",
    )(lambda: ext_serving.run(rows=600))

    register(
        "ext_streaming",
        "Extension: chunked streaming overlaps PCIe transfer with kernels; "
        "overlap speedup largest at transfer-bound (low) LEN",
    )(lambda: ext_streaming.run(rows=1200))

    # Extension ablations live next to the paper experiments in the report.
    register(
        "ext_cse",
        "Extension: CSE removes multiplications but pinning costs "
        "occupancy -- net ~neutral, hence off by default",
    )(_run_ext_cse)


def experiment_ids() -> List[str]:
    _build_registry()
    return list(_REGISTRY)


def run_experiment(experiment_id: str) -> Experiment:
    _build_registry()
    return _REGISTRY[experiment_id]()


def generate_experiments_md(path: str = "EXPERIMENTS.md") -> str:
    """Run everything and write the paper-vs-measured report."""
    _build_registry()
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerated by `python -m repro.bench all`.  Every experiment runs",
        "real arithmetic over a seeded row sample (results verified against",
        "big-integer oracles inside the experiment/tests) with the timing",
        "models charged at the paper's 10-million-tuple relations.",
        "",
        "Absolute times come from a calibrated simulator, so the comparison",
        "to the paper is about *shape*: who wins, by roughly what factor,",
        "where capability walls and crossovers fall.  Paper-reported values",
        "are embedded in the tables/notes wherever the text states them.",
        "",
    ]
    for experiment_id in _REGISTRY:
        started = time.time()
        experiment = run_experiment(experiment_id)
        experiment.save("bench_results")
        elapsed = time.time() - started
        lines.append(f"## {experiment.experiment_id}: {experiment.title}")
        lines.append("")
        lines.append(f"*{_HEADLINES[experiment_id]}*")
        lines.append("")
        lines.append("```")
        lines.append(experiment.format())
        lines.append("```")
        lines.append("")
        lines.append(f"(regenerated in {elapsed:.1f} s wall)")
        lines.append("")
    content = "\n".join(lines)
    Path(path).write_text(content)
    return content
