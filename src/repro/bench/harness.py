"""Benchmark harness utilities.

Every experiment module in ``repro.bench.experiments`` exposes a
``run(...)`` returning an :class:`Experiment` -- a table of rows matching
what the paper's figure/table reports, with paper reference values attached
where the text gives them, so the bench output prints measured-vs-paper
side by side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

Cell = Union[str, float, int, None]


@dataclass
class Experiment:
    """One reproduced figure/table."""

    experiment_id: str  # e.g. "fig8"
    title: str
    headers: List[str]
    rows: List[List[Cell]]
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        }

    def format(self) -> str:
        """Render as an aligned text table."""
        rendered = [[_format_cell(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header), *(len(row[i]) for row in rendered)) if rendered else len(header)
            for i, header in enumerate(self.headers)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, directory: Union[str, Path] = "bench_results") -> Path:
        """Persist as JSON for EXPERIMENTS.md regeneration."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        target = path / f"{self.experiment_id}.json"
        with open(target, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=str)
        return target

    def column(self, header: str) -> List[Cell]:
        """Extract one column by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3g}"
    return str(cell)


def emit(experiment: Experiment) -> Experiment:
    """Print and persist one experiment's table (bench-file convenience)."""
    print()
    print(experiment.format())
    experiment.save("bench_results")
    return experiment


def ratio(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """Safe ratio a/b for table cells."""
    if a is None or b is None or b == 0:
        return None
    return a / b
