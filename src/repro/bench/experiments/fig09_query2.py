"""Figure 9: Query 2 (``SELECT c1+c2+c3+c4, c5+c6+c7+c8 FROM R2``).

Two expressions -> two generated kernels.  c1-c4 stay at DECIMAL(6, 2);
c5-c8 widen with LEN.  More computation per tuple than Query 1, so
UltraPrecise is the fastest in *all* cases here.  Paper anchors: LEN=2
UltraPrecise 969 ms vs HEAVY.AI 1.09 s / RateupDB 1.02 s / MonetDB 1.27 s;
LEN=4 UltraPrecise 1.32 s vs RateupDB 1.55 s / MonetDB 1.69 s; PostgreSQL
up to 8.02x slower.
"""

from __future__ import annotations

from typing import List

from repro.baselines import create as create_baseline
from repro.bench.harness import Experiment
from repro.core.decimal.context import PAPER_LENS, PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.engine import Database
from repro.errors import CapabilityError
from repro.storage import datagen

QUERY = "SELECT c1 + c2 + c3 + c4, c5 + c6 + c7 + c8 FROM R2"
NARROW_EXPRESSION = "c1 + c2 + c3 + c4"
WIDE_EXPRESSION = "c5 + c6 + c7 + c8"

PAPER_SECONDS = {
    ("UltraPrecise", 2): 0.969,
    ("UltraPrecise", 4): 1.32,
    ("HEAVY.AI", 2): 1.09,
    ("RateupDB", 2): 1.02,
    ("RateupDB", 4): 1.55,
    ("MonetDB", 2): 1.27,
    ("MonetDB", 4): 1.69,
}

ENGINES = ("HEAVY.AI", "MonetDB", "RateupDB", "PostgreSQL")


def wide_spec(length: int) -> DecimalSpec:
    """c5-c8's spec: three additions below the LEN target."""
    return DecimalSpec(PAPER_RESULT_PRECISIONS[length] - 3, 2)


def run(
    rows: int = 1200,
    simulate_rows: int = 10_000_000,
    lengths=PAPER_LENS,
    verify: bool = True,
) -> Experiment:
    headers = ["LEN"] + [f"{name} (s)" for name in ENGINES] + [
        "UltraPrecise (s)",
        "UltraPrecise paper (s)",
    ]
    table: List[List] = []

    for length in lengths:
        relation = datagen.relation_r2(wide_spec(length), rows=rows, seed=91)
        db = Database(simulate_rows=simulate_rows)
        db.register(relation)
        result = db.execute(QUERY)
        if verify:
            narrow_oracle = [
                sum(relation.column(f"c{i}").unscaled()[r] for i in range(1, 5))
                for r in range(rows)
            ]
            wide_oracle = [
                sum(relation.column(f"c{i}").unscaled()[r] for i in range(5, 9))
                for r in range(rows)
            ]
            assert [a.unscaled for a, _ in result.rows] == narrow_oracle
            assert [b.unscaled for _, b in result.rows] == wide_oracle
        up_seconds = result.report.total_seconds

        row: List = [length]
        for name in ENGINES:
            engine = create_baseline(name)
            try:
                narrow = engine.run_projection(relation, NARROW_EXPRESSION, simulate_rows=simulate_rows)
                wide = engine.run_projection(
                    relation, WIDE_EXPRESSION, simulate_rows=simulate_rows, include_scan=False
                )
                row.append(narrow.seconds + wide.seconds)
            except CapabilityError:
                row.append(None)
        row.append(up_seconds)
        row.append(PAPER_SECONDS.get(("UltraPrecise", length)))
        table.append(row)

    return Experiment(
        experiment_id="fig09",
        title="Query 2: two expressions, two kernels (10M tuples simulated)",
        headers=headers,
        rows=table,
        notes=[
            "UltraPrecise generates two GPU kernels for this query (section IV-A)",
            "paper: UltraPrecise fastest in all cases; up to 8.02x vs PostgreSQL",
        ],
    )
