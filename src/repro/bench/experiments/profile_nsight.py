"""Section IV-A kernel profiles (the Nsight Compute case study).

The paper profiles ``a + b`` and ``a * b`` kernels: additions at LEN=8 run
at 4.14% SM utilisation with 100% warp occupancy; at LEN=32 utilisation
falls to 2.31% and occupancy to 50% (multiplication: 3.70% -> 3.23%,
occupancy to 33%).  The conclusion -- simple decimal arithmetic is
memory-bound, so the compact representation pays -- must hold here too.
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import Experiment
from repro.core.decimal.context import PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.core.jit import compile_expression
from repro.gpusim import profile_kernel

PAPER = {
    ("a+b", 8): (4.14, 100),
    ("a+b", 32): (2.31, 50),
    ("a*b", 8): (3.70, 100),
    ("a*b", 32): (3.23, 33),
}


def run(lengths=(8, 32)) -> Experiment:
    headers = [
        "kernel",
        "LEN",
        "SM util %",
        "occupancy %",
        "memory bound",
        "paper SM util %",
        "paper occupancy %",
    ]
    table: List[List] = []
    for operation, expression in (("a+b", "a + b"), ("a*b", "a * b")):
        for length in lengths:
            precision = PAPER_RESULT_PRECISIONS[length]
            if operation == "a+b":
                schema = {
                    "a": DecimalSpec(precision - 1, 2),
                    "b": DecimalSpec(precision - 1, 2),
                }
            else:
                half = precision // 2
                schema = {
                    "a": DecimalSpec(half, 2),
                    "b": DecimalSpec(precision - half, 2),
                }
            compiled = compile_expression(expression, schema)
            profile = profile_kernel(compiled.kernel)
            paper_util, paper_occ = PAPER[(operation, length)]
            table.append(
                [
                    operation,
                    length,
                    profile.sm_utilization_percent,
                    profile.warp_occupancy_percent,
                    "yes" if profile.memory_bound else "no",
                    paper_util,
                    paper_occ,
                ]
            )
    return Experiment(
        experiment_id="profile",
        title="Nsight-style kernel profiles (section IV-A)",
        headers=headers,
        rows=table,
        notes=[
            "qualitative targets: single-digit SM utilisation, memory-bound, "
            "occupancy dropping with LEN (more so for multiplication)",
        ],
    )
