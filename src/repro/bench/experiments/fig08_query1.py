"""Figure 8: Query 1 (``SELECT c1+c2+c3 FROM R1``) across databases.

Sweeps the result precision over LEN = 2/4/8/16/32 words.  HEAVY.AI only
executes LEN=2 (one 64-bit word per DECIMAL), MonetDB and RateupDB stop at
LEN=4, PostgreSQL and UltraPrecise complete everything.  Paper anchors:
MonetDB 461/800 ms, RateupDB 622/1055 ms, UltraPrecise 714/902 ms at
LEN=2/4; HEAVY.AI 800 ms at LEN=2; UltraPrecise up to 5.24x faster than
PostgreSQL.
"""

from __future__ import annotations

from typing import List

from repro.baselines import create as create_baseline
from repro.bench.harness import Experiment
from repro.core.decimal.context import PAPER_LENS, PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.engine import Database
from repro.errors import CapabilityError
from repro.storage import datagen

QUERY = "SELECT c1 + c2 + c3 FROM R1"
EXPRESSION = "c1 + c2 + c3"

#: Paper-reported times (seconds) where the text gives them.
PAPER_SECONDS = {
    ("MonetDB", 2): 0.461,
    ("MonetDB", 4): 0.800,
    ("RateupDB", 2): 0.622,
    ("RateupDB", 4): 1.055,
    ("UltraPrecise", 2): 0.714,
    ("UltraPrecise", 4): 0.902,
    ("HEAVY.AI", 2): 0.800,
}

ENGINES = ("HEAVY.AI", "MonetDB", "RateupDB", "PostgreSQL")


def column_spec(length: int) -> DecimalSpec:
    """Column spec so that c1+c2+c3's result lands exactly at ``length``.

    Two additions add two digits of precision, so columns sit two digits
    below the LEN target.
    """
    return DecimalSpec(PAPER_RESULT_PRECISIONS[length] - 2, 2)


def run(
    rows: int = 1500,
    simulate_rows: int = 10_000_000,
    lengths=PAPER_LENS,
    verify: bool = True,
) -> Experiment:
    """Run the Figure 8 sweep; returns measured seconds per engine per LEN."""
    headers = ["LEN"] + [f"{name} (s)" for name in ENGINES] + [
        "UltraPrecise (s)",
        "UltraPrecise paper (s)",
    ]
    table: List[List] = []
    notes: List[str] = []

    for length in lengths:
        spec = column_spec(length)
        relation = datagen.relation_r1(spec, rows=rows, seed=81)
        oracle = [
            a + b + c
            for a, b, c in zip(
                relation.column("c1").unscaled(),
                relation.column("c2").unscaled(),
                relation.column("c3").unscaled(),
            )
        ]

        db = Database(simulate_rows=simulate_rows)
        db.register(relation)
        result = db.execute(QUERY)
        if verify:
            got = [value.unscaled for (value,) in result.rows]
            assert got == oracle, f"UltraPrecise wrong at LEN={length}"
        up_seconds = result.report.total_seconds

        row: List = [length]
        for name in ENGINES:
            engine = create_baseline(name)
            try:
                baseline = engine.run_projection(
                    relation, EXPRESSION, simulate_rows=simulate_rows
                )
                if verify:
                    got = [value.unscaled for value in baseline.values]
                    assert got == oracle, f"{name} wrong at LEN={length}"
                row.append(baseline.seconds)
            except CapabilityError:
                row.append(None)  # fails exactly as in the paper
        row.append(up_seconds)
        row.append(PAPER_SECONDS.get(("UltraPrecise", length)))
        table.append(row)

    notes.append(
        "None entries reproduce the paper's capability failures: HEAVY.AI "
        "beyond LEN=2; MonetDB/RateupDB beyond LEN=4."
    )
    notes.append(f"correctness verified against the big-integer oracle on {rows} real rows")
    return Experiment(
        experiment_id="fig08",
        title="Query 1: SELECT c1+c2+c3 FROM R1 (10M tuples simulated)",
        headers=headers,
        rows=table,
        notes=notes,
    )
