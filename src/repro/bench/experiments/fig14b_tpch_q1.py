"""Figure 14(b): TPC-H Q1 at extended precisions, plus the FOR case study.

UltraPrecise runs the full Q1 (two JIT expressions + seven aggregations,
grouped by returnflag/linestatus); the peers run the same decimal hot path
through their cost models.  Scan time is excluded for every system, as in
the paper.  Anchors: UltraPrecise 684.67/685.00/754.67/1135.33/2610.33/
6164.33 ms (orig/2/4/8/16/32); 41.28x .. 7.70x faster than PostgreSQL;
compile share falls 47% -> 7% while absolute compile rises 320 -> 423 ms;
FOR compression accelerates PCIe-inclusive time by 1.38x-4.80x.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines import create as create_baseline
from repro.bench.harness import Experiment
from repro.engine import Database
from repro.errors import CapabilityError
from repro.storage import compression, tpch
from repro.workloads.tpch_queries import Q1_SQL

PAPER_UP_MS = {None: 684.67, 2: 685.00, 4: 754.67, 8: 1135.33, 16: 2610.33, 32: 6164.33}
PAPER_PG_SPEEDUP = {None: 41.28, 2: 39.55, 4: 38.56, 8: 28.09, 16: 14.46, 32: 7.70}

#: The Q1 decimal hot path, per tuple, for the baseline cost models.
EXPRESSIONS = [
    "l_extendedprice * (1 - l_discount)",
    "l_extendedprice * (1 - l_discount) * (1 + l_tax)",
]
SUM_COLUMNS = ["l_quantity", "l_extendedprice", "l_discount"]

ENGINES = ("HEAVY.AI", "MonetDB", "RateupDB", "PostgreSQL")


def run(
    rows: int = 2500,
    simulate_rows: int = 10_000_000,
    lengths=(None, 2, 4, 8, 16, 32),
) -> Experiment:
    headers = ["LEN"] + [f"{name} (s)" for name in ENGINES] + [
        "UltraPrecise (s)",
        "UP paper (s)",
        "compile share %",
        "PG/UP (paper)",
    ]
    table: List[List] = []
    for length in lengths:
        relation = (
            tpch.lineitem(rows=rows, seed=7)
            if length is None
            else tpch.lineitem_for_len(length, rows=rows, seed=7)
        )
        db = Database(simulate_rows=simulate_rows, aggregation_tpi=8)
        db.register(relation)
        result = db.execute(Q1_SQL, include_scan=False)
        report = result.report
        up_seconds = report.total_seconds
        compile_share = 100.0 * report.compile_seconds / up_seconds

        row: List = [length if length is not None else "orig"]
        for name in ENGINES:
            seconds = _baseline_q1_seconds(name, relation, simulate_rows)
            row.append(seconds)
        pg_seconds = row[-1]
        row.append(up_seconds)
        row.append(PAPER_UP_MS[length] / 1e3)
        row.append(compile_share)
        row.append(
            f"{(pg_seconds / up_seconds):.1f}x ({PAPER_PG_SPEEDUP[length]:.1f}x)"
            if pg_seconds
            else None
        )
        table.append(row)

    return Experiment(
        experiment_id="fig14b",
        title="TPC-H Q1 at extended precision, scan excluded (10M tuples)",
        headers=headers,
        rows=table,
        notes=[
            "paper compile: 320 ms (47%) at LEN=2 to 423 ms (7%) at LEN=32",
            "group-by/order-by columns verified against a row-at-a-time oracle in tests",
        ],
    )


def _baseline_q1_seconds(name: str, relation, simulate_rows: int) -> Optional[float]:
    """One peer's Q1 time: 2 expressions + 7 aggregates + group-by."""
    engine = create_baseline(name)
    try:
        total = 0.0
        for expression in EXPRESSIONS:
            projection = engine.run_projection(
                relation.head(64), expression, simulate_rows=simulate_rows, include_scan=False
            )
            total += projection.seconds
        for column in SUM_COLUMNS:
            aggregate = engine.run_sum(
                relation.head(64), column, simulate_rows=simulate_rows, include_scan=False
            )
            total += aggregate.seconds
        # AVGs reuse the SUM transitions; charge one more round of
        # aggregate transitions for the remaining four aggregates.
        total *= 1.45
        return total
    except CapabilityError:
        return None


def run_compression_study(
    rows: int = 4000, simulate_rows: int = 10_000_000, lengths=(4, 8, 16, 32)
) -> Experiment:
    """The FOR compression case study on Q1's widest columns.

    Paper: PCIe-inclusive execution accelerates by 1.38x/2.01x/3.36x/4.80x
    at LEN 4/8/16/32 depending on compressibility.  TPC-H quantities and
    prices have small value ranges, so their FOR deltas are narrow even
    when the declared precision is huge -- exactly the paper's setup.
    """
    from repro.gpusim import pcie_time

    headers = ["LEN", "raw bytes/val", "FOR bytes/val", "ratio", "transfer speedup"]
    table: List[List] = []
    for length in lengths:
        relation = tpch.lineitem_for_len(length, rows=rows, seed=7)
        raw_total = 0
        compressed_total = 0
        for column_name in ("l_quantity", "l_extendedprice"):
            column = relation.column(column_name)
            spec = column.column_type.spec
            packed = compression.compress(column.unscaled(), spec)
            raw_total += packed.original_bytes
            compressed_total += packed.compressed_bytes
            assert packed.decompress() == column.unscaled()
        scale = simulate_rows / rows
        raw_time = pcie_time(int(raw_total * scale))
        compressed_time = pcie_time(int(compressed_total * scale))
        table.append(
            [
                length,
                raw_total / (2 * rows),
                compressed_total / (2 * rows),
                raw_total / compressed_total,
                raw_time / compressed_time,
            ]
        )
    return Experiment(
        experiment_id="fig14b_for",
        title="FOR compression case study on Q1 (PCIe transfer effect)",
        headers=headers,
        rows=table,
        notes=["paper end-to-end speedups: 1.38x/2.01x/3.36x/4.80x at LEN 4/8/16/32"],
    )
