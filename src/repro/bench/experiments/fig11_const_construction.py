"""Figure 11: constant construction (``1 + a``).

With the optimisation, the literal ``1`` converts to DECIMAL at compile
time and is pre-aligned to ``a``'s scale 10; without it, every tuple pays
the conversion plus a runtime alignment.  Paper speedups: 1.33x / 1.25x /
1.14x / 1.14x / 1.11x at LEN 2..32.
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import Experiment
from repro.core.decimal.context import PAPER_LENS, PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.core.jit import JitOptions, compile_expression
from repro.gpusim import kernel_time

EXPRESSION = "1 + a"

PAPER_SPEEDUP = {2: 1.33, 4: 1.25, 8: 1.14, 16: 1.14, 32: 1.11}


def schema_for(length: int) -> dict:
    """a: increasing precision, constant scale 10."""
    return {"a": DecimalSpec(PAPER_RESULT_PRECISIONS[length] - 1, 10)}


def run(simulate_rows: int = 10_000_000, lengths=PAPER_LENS) -> Experiment:
    headers = ["LEN", "runtime consts (ms)", "compile-time consts (ms)", "speedup", "paper speedup"]
    table: List[List] = []
    for length in lengths:
        schema = schema_for(length)
        optimised = compile_expression(EXPRESSION, schema, JitOptions())
        baseline = compile_expression(
            EXPRESSION,
            schema,
            JitOptions(constant_construction=False, constant_alignment=False),
        )
        fast = kernel_time(optimised.kernel, simulate_rows).seconds
        slow = kernel_time(baseline.kernel, simulate_rows).seconds
        table.append([length, slow * 1e3, fast * 1e3, slow / fast, PAPER_SPEEDUP[length]])
    return Experiment(
        experiment_id="fig11",
        title="Constant construction: 1 + a (10M tuples)",
        headers=headers,
        rows=table,
        notes=[
            "baseline converts the literal to DECIMAL per tuple and aligns at runtime",
        ],
    )
