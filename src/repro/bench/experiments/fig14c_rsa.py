"""Figure 14(c): RSA encryption (Query 4).

``SELECT c1*c1 % N * c1 % N FROM R4`` encrypts messages with e=3.
HEAVY.AI fails (no DECIMAL modulo); scan time is included for everyone.
Anchors: UltraPrecise 574.67/601.00/738.33/1018.67 ms at LEN=4/8/16/32;
PostgreSQL 22.22x/47.55x/106.19x/247.59x slower; MonetDB 1520.67 ms and
RateupDB 1628.00 ms at LEN=4; H2 and CockroachDB slower than PostgreSQL.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines import create as create_baseline
from repro.baselines.heavyai import HeavyAiModel
from repro.bench.harness import Experiment
from repro.engine import Database
from repro.errors import CapabilityError
from repro.workloads import rsa

PAPER_UP_MS = {4: 574.67, 8: 601.00, 16: 738.33, 32: 1018.67}
PAPER_PG_SLOWDOWN = {4: 22.22, 8: 47.55, 16: 106.19, 32: 247.59}

ENGINES = ("MonetDB", "RateupDB", "PostgreSQL", "H2", "CockroachDB")


def run(
    rows: int = 400,
    simulate_rows: int = 10_000_000,
    lengths=(4, 8, 16, 32),
    verify: bool = True,
) -> Experiment:
    headers = (
        ["LEN", "HEAVY.AI"]
        + [f"{name} (s)" for name in ENGINES]
        + ["UltraPrecise (s)", "UP paper (s)", "PG/UP (paper)"]
    )
    table: List[List] = []
    for length in lengths:
        workload = rsa.build_workload(length, rows=rows)
        oracle = workload.oracle()

        db = Database(simulate_rows=simulate_rows)
        db.register(workload.relation)
        result = db.execute(workload.query)
        if verify:
            got = [value.unscaled for (value,) in result.rows]
            assert got == oracle, f"UltraPrecise RSA wrong at LEN={length}"
        up_seconds = result.report.total_seconds

        row: List = [length, "fails (no % on DECIMAL)"]
        pg_seconds: Optional[float] = None
        for name in ENGINES:
            engine = create_baseline(name)
            try:
                baseline = engine.run_projection(
                    workload.relation, workload.expression, simulate_rows=simulate_rows
                )
                if verify:
                    got = [value.unscaled for value in baseline.values]
                    assert got == oracle, f"{name} RSA wrong at LEN={length}"
                row.append(baseline.seconds)
                if name == "PostgreSQL":
                    pg_seconds = baseline.seconds
            except CapabilityError:
                row.append(None)
        row.append(up_seconds)
        row.append(PAPER_UP_MS[length] / 1e3)
        row.append(
            f"{pg_seconds / up_seconds:.1f}x ({PAPER_PG_SLOWDOWN[length]:.1f}x)"
            if pg_seconds
            else None
        )
        table.append(row)
    # Confirm the HEAVY.AI failure is what the model reports.
    try:
        HeavyAiModel().run_modulo_query()
        heavyai_fails = False
    except CapabilityError:
        heavyai_fails = True
    notes = [
        "encryption verified against pow(m, 3, N) on the real rows",
        f"HEAVY.AI modulo unsupported: {heavyai_fails} (as in the paper)",
        "paper: H2 and CockroachDB are even slower than PostgreSQL",
    ]
    return Experiment(
        experiment_id="fig14c",
        title="RSA (Query 4): SELECT c1*c1 % N * c1 % N FROM R4 (10M tuples)",
        headers=headers,
        rows=table,
        notes=notes,
    )
