"""Extension: data-plane hot-path vectorisation, before vs after.

The batched kernels of :mod:`repro.core.decimal.vectorized` replaced
row-at-a-time Python loops (division, modulo, rounding, the
``to_unscaled``/``from_unscaled`` oracle conversions).  Those loops are
preserved in :mod:`repro.core.decimal.reference`, so this experiment can
measure the exact before-vs-after: rows/sec of the row-loop reference vs
the vectorised kernel for ``add``, ``mul``, ``div`` and a
``to_unscaled``-bound aggregation, across register widths
``Lw in {1, 2, 8, 32}``.

Bit-exactness is asserted inline for every (kernel, Lw) cell: the
vectorised result must equal the row-loop result plane for plane.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

import numpy as np

from repro.bench.harness import Experiment
from repro.core.decimal import reference
from repro.core.decimal import vectorized as vz
from repro.core.decimal.context import DecimalSpec, precision_for_words
from repro.core.decimal.vectorized import DecimalVector

#: Magnitude cap for the divisor column: single-word-sized values keep the
#: division realistic (TPC-H divisors are quantities/counts) and let the
#: vectorised fast paths engage on most rows.
_DIVISOR_CAP = 10**6


def _big_random(rng: np.random.Generator, cap: int) -> int:
    """Uniform-ish big integer in ``[0, cap)`` (numpy tops out at int64)."""
    nbytes = (cap.bit_length() + 7) // 8 + 1
    return int.from_bytes(rng.bytes(nbytes), "little") % cap


def _operand_columns(
    length: int, rows: int, seed: int
) -> Tuple[DecimalVector, DecimalVector]:
    """Deterministic signed operand columns for one register width.

    ``a`` mixes moderate (TPC-H-scale) magnitudes with zeros and, for wide
    specs, a tail of near-max-magnitude rows so the wide limb paths and the
    big-int division fallback are exercised; ``b`` is nonzero with mostly
    single-word magnitudes plus a wide tail for ``Lw > 2``.
    """
    spec = DecimalSpec(precision_for_words(length), 2)
    rng = np.random.default_rng(seed + length)

    moderate_cap = min(spec.max_unscaled, 10**12)
    a_vals = [int(v) for v in rng.integers(0, moderate_cap, size=rows)]
    b_vals = [int(v) for v in rng.integers(1, _DIVISOR_CAP, size=rows)]

    # Signs, zero rows, and (for wide specs) a max-magnitude tail.
    sign_mask = rng.random(rows) < 0.5
    a_vals = [-v if s else v for v, s in zip(a_vals, sign_mask)]
    b_vals = [-v if s else v for v, s in zip(b_vals, ~sign_mask)]
    for row in range(0, rows, 97):
        a_vals[row] = 0
    if length > 2:
        wide_cap = spec.max_unscaled
        for row in range(0, rows, 13):
            a_vals[row] = moderate_cap + _big_random(rng, wide_cap - moderate_cap)
        for row in range(0, rows, 31):
            b_vals[row] = _DIVISOR_CAP + _big_random(rng, wide_cap // 10**4 + 2)
    return (
        DecimalVector.from_unscaled(a_vals, spec),
        DecimalVector.from_unscaled(b_vals, spec),
    )


def _best_seconds(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall clock, plus the (last) result for checking."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _vectors_equal(x: DecimalVector, y: DecimalVector) -> bool:
    return (
        x.spec == y.spec
        and np.array_equal(np.asarray(x.negative, bool), np.asarray(y.negative, bool))
        and np.array_equal(x.words, y.words)
    )


def run(
    rows: int = 20_000,
    lengths=(1, 2, 8, 32),
    repeats: int = 3,
    seed: int = 42,
) -> Experiment:
    headers = [
        "kernel",
        "LEN",
        "rows",
        "rowloop rows/s",
        "vectorized rows/s",
        "speedup",
        "bit_exact",
    ]
    table: List[List] = []
    for length in lengths:
        a, b = _operand_columns(length, rows, seed)

        def agg_reference() -> Tuple[int, List[int]]:
            unscaled = reference.to_unscaled_rowloop(a)
            return sum(unscaled), unscaled

        def agg_vectorized() -> Tuple[int, List[int]]:
            unscaled = a.to_unscaled()
            return sum(unscaled), unscaled

        kernels: List[Tuple[str, Callable[[], object], Callable[[], object]]] = [
            ("add", lambda: reference.add_rowloop(a, b), lambda: vz.add(a, b)),
            ("mul", lambda: reference.mul_rowloop(a, b), lambda: vz.mul(a, b)),
            ("div", lambda: reference.div_rowloop(a, b), lambda: vz.div(a, b)),
            ("agg", agg_reference, agg_vectorized),
        ]
        for name, slow, fast in kernels:
            slow_seconds, slow_result = _best_seconds(slow, repeats)
            fast_seconds, fast_result = _best_seconds(fast, repeats)
            if isinstance(slow_result, DecimalVector):
                bit_exact = _vectors_equal(slow_result, fast_result)
            else:
                bit_exact = slow_result == fast_result
            if not bit_exact:
                raise AssertionError(
                    f"vectorized {name} diverged from the row-loop reference "
                    f"at LEN={length}"
                )
            table.append(
                [
                    name,
                    length,
                    rows,
                    rows / slow_seconds if slow_seconds else float("inf"),
                    rows / fast_seconds if fast_seconds else float("inf"),
                    slow_seconds / fast_seconds if fast_seconds else float("inf"),
                    bit_exact,
                ]
            )
    return Experiment(
        experiment_id="ext_hotpath",
        title="Data-plane vectorisation: row-loop reference vs batched kernels",
        headers=headers,
        rows=table,
        notes=[
            f"{rows} rows per cell, best of {repeats} runs; signed operands with "
            "zero rows, and a near-max-magnitude tail for LEN > 2",
            "rowloop = the preserved pre-vectorisation inner loops "
            "(repro.core.decimal.reference); results asserted bit-exact per cell",
            "agg = to_unscaled + python sum, the conversion-bound aggregation path",
        ],
    )
