"""Extension: data-plane hot-path vectorisation, before vs after.

The batched kernels of :mod:`repro.core.decimal.vectorized` replaced
row-at-a-time Python loops (division, modulo, rounding, the
``to_unscaled``/``from_unscaled`` oracle conversions).  Those loops are
preserved in :mod:`repro.core.decimal.reference`, so this experiment can
measure the exact before-vs-after: rows/sec of the row-loop reference vs
the vectorised kernel for ``add``, ``mul``, ``div`` and a
``to_unscaled``-bound aggregation, across register widths
``Lw in {1, 2, 8, 32}``.

Bit-exactness is asserted inline for every (kernel, Lw) cell: the
vectorised result must equal the row-loop result plane for plane.

The ``div[static:*]`` cells measure the range analyzer's feedback loop
(section III-B3): when the analyzer proves every divisor fits one word
(``short``) or that pre-scaled dividend and divisor both fit uint64
(``native64``), the compiled kernel carries that size class and the
vectorised division skips its per-row dispatch (uint64 folds, threshold
masks, index partitioning) entirely.  Their baseline column is the
*dynamically dispatched* vectorised division over the same operands, and
their results are additionally asserted bit-exact against the row-loop
reference.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

import numpy as np

from repro.bench.harness import Experiment
from repro.core.decimal import reference
from repro.core.decimal import vectorized as vz
from repro.core.decimal.context import DecimalSpec, precision_for_words
from repro.core.decimal.vectorized import DecimalVector

#: Magnitude cap for the divisor column: single-word-sized values keep the
#: division realistic (TPC-H divisors are quantities/counts) and let the
#: vectorised fast paths engage on most rows.
_DIVISOR_CAP = 10**6


def _big_random(rng: np.random.Generator, cap: int) -> int:
    """Uniform-ish big integer in ``[0, cap)`` (numpy tops out at int64)."""
    nbytes = (cap.bit_length() + 7) // 8 + 1
    return int.from_bytes(rng.bytes(nbytes), "little") % cap


def _operand_columns(
    length: int, rows: int, seed: int
) -> Tuple[DecimalVector, DecimalVector]:
    """Deterministic signed operand columns for one register width.

    ``a`` mixes moderate (TPC-H-scale) magnitudes with zeros and, for wide
    specs, a tail of near-max-magnitude rows so the wide limb paths and the
    big-int division fallback are exercised; ``b`` is nonzero with mostly
    single-word magnitudes plus a wide tail for ``Lw > 2``.
    """
    spec = DecimalSpec(precision_for_words(length), 2)
    rng = np.random.default_rng(seed + length)

    moderate_cap = min(spec.max_unscaled, 10**12)
    a_vals = [int(v) for v in rng.integers(0, moderate_cap, size=rows)]
    b_vals = [int(v) for v in rng.integers(1, _DIVISOR_CAP, size=rows)]

    # Signs, zero rows, and (for wide specs) a max-magnitude tail.
    sign_mask = rng.random(rows) < 0.5
    a_vals = [-v if s else v for v, s in zip(a_vals, sign_mask)]
    b_vals = [-v if s else v for v, s in zip(b_vals, ~sign_mask)]
    for row in range(0, rows, 97):
        a_vals[row] = 0
    if length > 2:
        wide_cap = spec.max_unscaled
        for row in range(0, rows, 13):
            a_vals[row] = moderate_cap + _big_random(rng, wide_cap - moderate_cap)
        for row in range(0, rows, 31):
            b_vals[row] = _DIVISOR_CAP + _big_random(rng, wide_cap // 10**4 + 2)
    return (
        DecimalVector.from_unscaled(a_vals, spec),
        DecimalVector.from_unscaled(b_vals, spec),
    )


def _best_seconds(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall clock, plus the (last) result for checking."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _static_scenarios(rows: int, lengths, seed: int):
    """Operand columns for the statically-routed division cells.

    * ``native64`` at the narrow widths: the per-row dispatcher lands every
      row on the uint64 route too, so the measured delta is pure dispatch
      overhead (fold masks, threshold checks, index scatter).
    * ``short`` at the first wide width: every dividend is too wide for the
      uint64 route but every divisor fits one word, so ``short`` is the
      best provable class and the static route skips the partitioning the
      dynamic dispatcher needs to discover the same thing row by row.
    """
    scenarios = []
    for length in lengths:
        if length <= 2:
            a, b = _operand_columns(length, rows, seed)
            scenarios.append(("native64", length, a, b))
    wide = [length for length in lengths if length > 2]
    if wide:
        length = wide[0]
        scenarios.append(("short", length, *_short_scenario_columns(length, rows, seed)))
    return scenarios


def _short_scenario_columns(
    length: int, rows: int, seed: int
) -> Tuple[DecimalVector, DecimalVector]:
    """Wide signed dividends (beyond uint64 after prescale), one-word divisors."""
    spec = DecimalSpec(precision_for_words(length), 2)
    rng = np.random.default_rng(seed * 31 + length)
    prescale_factor = 10 ** (spec.scale + 4)
    floor = (2**64 - 1) // prescale_factor + 1  # too wide for the uint64 route
    a_vals = [floor + _big_random(rng, spec.max_unscaled - floor) for _ in range(rows)]
    b_vals = [int(v) for v in rng.integers(1, _DIVISOR_CAP, size=rows)]
    sign_mask = rng.random(rows) < 0.5
    a_vals = [-v if s else v for v, s in zip(a_vals, sign_mask)]
    b_vals = [-v if s else v for v, s in zip(b_vals, ~sign_mask)]
    for row in range(0, rows, 97):
        a_vals[row] = 0
    return (
        DecimalVector.from_unscaled(a_vals, spec),
        DecimalVector.from_unscaled(b_vals, spec),
    )


def _static_division_paths(a: DecimalVector, b: DecimalVector) -> List[str]:
    """Division fast paths whose preconditions hold on every row of ``a / b``.

    Mirrors the range analyzer's RANGE003/RANGE004 facts (single-word
    divisors; uint64 pre-scaled dividend and divisor): the bench certifies
    the precondition over the generated operands up front, exactly the
    guarantee a ``fast_path`` annotation carries into the executor.
    """
    from repro.core.decimal import inference

    factor = 10 ** inference.div_prescale(b.spec)
    max_a = max((abs(value) for value in a.to_unscaled()), default=0)
    max_b = max((abs(value) for value in b.to_unscaled()), default=0)
    uint64_max = 2**64 - 1
    paths: List[str] = []
    if factor <= uint64_max and max_a <= uint64_max // factor and max_b <= uint64_max:
        paths.append("native64")
    if max_b < 2**32:
        paths.append("short")
    return paths


def _vectors_equal(x: DecimalVector, y: DecimalVector) -> bool:
    return (
        x.spec == y.spec
        and np.array_equal(np.asarray(x.negative, bool), np.asarray(y.negative, bool))
        and np.array_equal(x.words, y.words)
    )


def run(
    rows: int = 20_000,
    lengths=(1, 2, 8, 32),
    repeats: int = 3,
    seed: int = 42,
) -> Experiment:
    headers = [
        "kernel",
        "LEN",
        "rows",
        "baseline rows/s",
        "vectorized rows/s",
        "speedup",
        "bit_exact",
    ]
    table: List[List] = []
    for length in lengths:
        a, b = _operand_columns(length, rows, seed)

        # ``column=a``/``column=b`` defaults bind the current iteration's
        # operands (a closure would see the last loop value).
        def agg_reference(column: DecimalVector = a) -> Tuple[int, List[int]]:
            unscaled = reference.to_unscaled_rowloop(column)
            return sum(unscaled), unscaled

        def agg_vectorized(column: DecimalVector = a) -> Tuple[int, List[int]]:
            unscaled = column.to_unscaled()
            return sum(unscaled), unscaled

        kernels: List[Tuple[str, Callable[[], object], Callable[[], object]]] = [
            ("add", lambda a=a, b=b: reference.add_rowloop(a, b), lambda a=a, b=b: vz.add(a, b)),
            ("mul", lambda a=a, b=b: reference.mul_rowloop(a, b), lambda a=a, b=b: vz.mul(a, b)),
            ("div", lambda a=a, b=b: reference.div_rowloop(a, b), lambda a=a, b=b: vz.div(a, b)),
            ("agg", agg_reference, agg_vectorized),
        ]
        for name, slow, fast in kernels:
            slow_seconds, slow_result = _best_seconds(slow, repeats)
            fast_seconds, fast_result = _best_seconds(fast, repeats)
            if isinstance(slow_result, DecimalVector):
                bit_exact = _vectors_equal(slow_result, fast_result)
            else:
                bit_exact = slow_result == fast_result
            if not bit_exact:
                raise AssertionError(
                    f"vectorized {name} diverged from the row-loop reference "
                    f"at LEN={length}"
                )
            table.append(
                [
                    name,
                    length,
                    rows,
                    rows / slow_seconds if slow_seconds else float("inf"),
                    rows / fast_seconds if fast_seconds else float("inf"),
                    slow_seconds / fast_seconds if fast_seconds else float("inf"),
                    bit_exact,
                ]
            )

    # Statically-routed division fast paths vs the dynamic dispatcher:
    # certify the analyzer's precondition over the operand columns, then
    # send every row down the one proven route with no per-row size-class
    # checks (what a ``fast_path``-annotated kernel does).  Each scenario
    # is shaped so the benchmarked path is the *best provable* one -- the
    # choice the analyzer would annotate.
    for path, length, a, b in _static_scenarios(rows, lengths, seed):
        proven = _static_division_paths(a, b)
        if path not in proven or (path == "short" and "native64" in proven):
            raise AssertionError(
                f"static scenario {path}/LEN={length} no longer matches "
                f"the provable size classes {proven}"
            )
        reference_result = reference.div_rowloop(a, b)
        dynamic_seconds, dynamic_result = _best_seconds(
            lambda a=a, b=b: vz.div(a, b), repeats
        )
        static_seconds, static_result = _best_seconds(
            lambda a=a, b=b, path=path: vz.div(a, b, fast_path=path), repeats
        )
        bit_exact = _vectors_equal(static_result, reference_result) and _vectors_equal(
            static_result, dynamic_result
        )
        if not bit_exact:
            raise AssertionError(
                f"static {path} division diverged from the row-loop "
                f"reference at LEN={length}"
            )
        table.append(
            [
                f"div[static:{path}]",
                length,
                rows,
                rows / dynamic_seconds if dynamic_seconds else float("inf"),
                rows / static_seconds if static_seconds else float("inf"),
                dynamic_seconds / static_seconds if static_seconds else float("inf"),
                bit_exact,
            ]
        )
    return Experiment(
        experiment_id="ext_hotpath",
        title="Data-plane vectorisation: row-loop reference vs batched kernels",
        headers=headers,
        rows=table,
        notes=[
            f"{rows} rows per cell, best of {repeats} runs; signed operands with "
            "zero rows, and a near-max-magnitude tail for LEN > 2",
            "rowloop = the preserved pre-vectorisation inner loops "
            "(repro.core.decimal.reference); results asserted bit-exact per cell",
            "agg = to_unscaled + python sum, the conversion-bound aggregation path",
            "div[static:*] = analyzer-proven size class routed with no per-row "
            "dispatch; baseline is the dynamically dispatched vectorised div, "
            "results asserted bit-exact against the row loop as well",
        ],
    )
