"""Figure 15: Taylor-series sine approximation (Query 5).

For inputs near 0.01 / 0.78 / 1.56 and polynomials of 2..11 terms, each
system's execution time is plotted against the mean absolute error vs a
high-precision oracle (GMP in the paper; exact rationals here).

Reproduced behaviours:

* UltraPrecise is ~two orders of magnitude faster and far more scalable
  (paper: +1.13 s from 2 to 11 terms vs +134/191/385 s for PostgreSQL /
  H2 / CockroachDB);
* near 0.01 the error saturates after 4-5 terms -- the s1+4 division rule
  cannot protect the tiny terms from truncation -- except in H2, whose 20
  extra division digits keep improving;
* PostgreSQL's time *drops* when the 10th term is appended (its planner
  switches to a parallel scan).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.baselines import CockroachModel, H2Model, PostgresModel
from repro.bench.harness import Experiment
from repro.engine import Database
from repro.workloads import trig

ENGINE_FACTORIES = (PostgresModel, H2Model, CockroachModel)


def run(
    rows: int = 300,
    simulate_rows: int = 10_000_000,
    columns=("c1", "c2", "c3"),
    terms_range=(2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
    include_baselines: bool = True,
) -> Experiment:
    headers = ["input", "terms", "UltraPrecise (s)", "UP MAE"]
    if include_baselines:
        for factory in ENGINE_FACTORIES:
            headers += [f"{factory.name} (s)", f"{factory.name} MAE"]
    table: List[List] = []

    workload = trig.build_workload(rows=rows)
    input_labels = {"c1": "sin(0.01+e)", "c2": "sin(0.78+e)", "c3": "sin(1.56+e)"}

    for column in columns:
        truths = workload.oracle(column)
        for terms in terms_range:
            query = workload.query(column, terms)
            expression = trig.sine_expression(column, terms)

            db = Database(simulate_rows=simulate_rows)
            db.register(workload.relation, replace=True)
            result = db.execute(query)
            values = [Fraction(*v.to_fraction_parts()) for (v,) in result.rows]
            up_mae = trig.mean_absolute_error(values, truths)
            row: List = [
                input_labels[column],
                terms,
                result.report.total_seconds,
                up_mae,
            ]
            if include_baselines:
                for factory in ENGINE_FACTORIES:
                    engine = factory()
                    baseline = engine.run_projection(
                        workload.relation, expression, simulate_rows=simulate_rows
                    )
                    mae = trig.mean_absolute_error(
                        [Fraction(*v.to_fraction_parts()) for v in baseline.values],
                        truths,
                    )
                    row += [baseline.seconds, mae]
            table.append(row)

    return Experiment(
        experiment_id="fig15",
        title="sin(x) via Taylor series: time vs MAE (10M tuples simulated)",
        headers=headers,
        rows=table,
        notes=[
            "MAE against exact rational sin() of the stored DECIMAL(9,8) inputs",
            "paper: UltraPrecise 505.67-1668.33 ms, ~2 orders faster; H2's +20 "
            "division digits avoid the small-input saturation; PostgreSQL "
            "speeds up at the 10th term (parallel scan)",
        ],
    )
