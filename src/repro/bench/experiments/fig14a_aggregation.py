"""Figure 14(a): Query 3 (``SELECT SUM(c1) FROM R3``) across databases.

c1's (precision, scale) sweeps (11,7) / (29,11) / (65,31) / (137,51) /
(281,101) so the aggregation result lands in 2/4/8/16/32 words; TPI is 8.
Paper anchors: MonetDB 17/19 ms at LEN=2/4 (in-memory, fastest);
HEAVY.AI 0.47 s (LEN=2, slowest); UltraPrecise beats RateupDB by 33%/12.5%;
PostgreSQL needs +112%/+67%/+29% at LEN=8/16/32.
"""

from __future__ import annotations

from typing import List

from repro.baselines import create as create_baseline
from repro.bench.harness import Experiment
from repro.core.decimal.context import DecimalSpec
from repro.engine import Database
from repro.errors import CapabilityError
from repro.storage import datagen

#: The paper's (p, s) per LEN for c1 -- sized so the SUM result fills LEN.
COLUMN_SPECS = {
    2: DecimalSpec(11, 7),
    4: DecimalSpec(29, 11),
    8: DecimalSpec(65, 31),
    16: DecimalSpec(137, 51),
    32: DecimalSpec(281, 101),
}

QUERY = "SELECT SUM(c1) FROM R3"
EXPRESSION = "c1"

PAPER_NOTES = [
    "paper: MonetDB 0.017/0.019 s at LEN=2/4 (no disk I/O); HEAVY.AI 0.47 s",
    "paper: UltraPrecise -33%/-12.5% vs RateupDB at LEN=2/4",
    "paper: PostgreSQL +112%/+67%/+29% vs UltraPrecise at LEN=8/16/32",
]

ENGINES = ("HEAVY.AI", "MonetDB", "RateupDB", "PostgreSQL")


def run(
    rows: int = 4000,
    simulate_rows: int = 10_000_000,
    lengths=(2, 4, 8, 16, 32),
    verify: bool = True,
) -> Experiment:
    headers = ["LEN"] + [f"{name} (s)" for name in ENGINES] + [
        "UltraPrecise (s)",
        "PG / UP",
    ]
    table: List[List] = []
    for length in lengths:
        spec = COLUMN_SPECS[length]
        relation = datagen.relation_r3(spec, rows=rows, seed=141 + length)
        oracle = sum(relation.column("c1").unscaled())

        db = Database(simulate_rows=simulate_rows, aggregation_tpi=8)
        db.register(relation)
        result = db.execute(QUERY)
        if verify:
            assert result.scalar.unscaled == oracle, f"UltraPrecise SUM wrong at LEN={length}"
        up_seconds = result.report.total_seconds

        row: List = [length]
        pg_seconds = None
        for name in ENGINES:
            engine = create_baseline(name)
            try:
                include_scan = name != "MonetDB"  # MonetDB excludes disk I/O
                baseline = engine.run_sum(
                    relation, EXPRESSION, simulate_rows=simulate_rows, include_scan=include_scan
                )
                if verify:
                    assert baseline.scalar.unscaled == oracle, f"{name} SUM wrong"
                row.append(baseline.seconds)
                if name == "PostgreSQL":
                    pg_seconds = baseline.seconds
            except CapabilityError:
                row.append(None)
        row.append(up_seconds)
        row.append(pg_seconds / up_seconds if pg_seconds else None)
        table.append(row)
    return Experiment(
        experiment_id="fig14a",
        title="Query 3: SELECT SUM(c1) FROM R3, TPI=8 (10M tuples simulated)",
        headers=headers,
        rows=table,
        notes=PAPER_NOTES + [f"SUM verified exactly on {rows} real rows"],
    )
