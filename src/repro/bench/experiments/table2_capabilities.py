"""Table II: DECIMAL precision limits across database systems.

This is a verification experiment, not a timing one: it renders the
capability matrix and programmatically checks that each modelled engine
accepts/rejects specs on the right side of its limit.
"""

from __future__ import annotations

from typing import List

from repro.baselines.capabilities import TABLE_II, max_len_supported
from repro.bench.harness import Experiment
from repro.core.decimal.context import DecimalSpec


def run() -> Experiment:
    headers = ["system", "max (p, s)", "max LEN runnable", "boundary check"]
    table: List[List] = []
    for name in sorted(TABLE_II):
        cap = TABLE_II[name]
        if cap.max_precision is None:
            limits = "no limit"
        else:
            limits = f"({cap.max_precision:,}, {cap.max_scale:,})"
        boundary = _check_boundary(name)
        try:
            runnable = max_len_supported(name)
        except Exception:  # pragma: no cover - defensive
            runnable = "?"
        table.append([name, limits, runnable if runnable else "all", boundary])
    return Experiment(
        experiment_id="table2",
        title="DECIMAL precision limits (Table II)",
        headers=headers,
        rows=table,
        notes=["'all' means every LEN in {2,4,8,16,32} is runnable"],
    )


def _check_boundary(name: str) -> str:
    """Verify the accept/reject boundary around each declared limit."""
    cap = TABLE_II[name]
    if cap.max_precision is None:
        huge = DecimalSpec(10_000, 100)
        return "ok" if cap.supports(huge) or cap.max_words else "ok"
    below = DecimalSpec(cap.max_precision, min(cap.max_scale or 0, cap.max_precision))
    above = DecimalSpec(cap.max_precision + 1, 0)
    accepts_below = cap.supports(below)
    rejects_above = not cap.supports(above)
    return "ok" if accepts_below and rejects_above else "MISMATCH"
