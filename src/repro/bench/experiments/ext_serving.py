"""Extension: concurrent serving throughput on one simulated device.

A :class:`~repro.engine.serving.SessionServer` fronts one shared
:class:`~repro.engine.Database`; N sessions each run a closed loop of
TPC-H-style queries (Q1, Q6, and two projection/filter shapes over
``lineitem``).  Every query executes bit-exactly on the real rows -- the
experiment raises if any served result diverges from the serial reference
-- while the shared :class:`~repro.gpusim.scheduler.DeviceScheduler`
interleaves the queries' kernels on the simulated SMs and reports the
*overlapped* timeline: queries/sec, p50/p99 simulated latency, and the
speedup over serializing whole queries.

The serving steady state is measured: a warm-up pass per distinct query
fills the shared kernel cache and device residency first, so the measured
queries are compile-free and residency-hot and the simulated numbers are
deterministic regardless of event-loop interleaving.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import Experiment
from repro.engine import Database
from repro.engine.serving import ServerConfig, ServingResult, SessionServer
from repro.gpusim.residency import DeviceResidency
from repro.gpusim.scheduler import ScheduleResult
from repro.storage import tpch
from repro.workloads.tpch_queries import Q1_SQL, Q6_SQL

#: The serving mix: the paper's Q1 aggregation, Q6's selective filter
#: aggregation, and two lighter projection/filter shapes -- enough variety
#: that concurrent sessions are usually inside *different* kernels.
QUERY_MIX: Tuple[str, ...] = (
    Q1_SQL,
    Q6_SQL,
    "SELECT l_extendedprice * (1 - l_discount) AS disc_price FROM lineitem",
    "SELECT l_quantity + l_tax AS qty_tax FROM lineitem WHERE l_quantity < 24",
)


def session_stream(session_index: int, queries_per_session: int) -> List[str]:
    """The ordered SQL stream session ``i`` executes (round-robin offset)."""
    return [
        QUERY_MIX[(session_index + j) % len(QUERY_MIX)]
        for j in range(queries_per_session)
    ]


def serve_workload(
    database: Database,
    session_count: int,
    queries_per_session: int,
) -> Tuple[List[ServingResult], ScheduleResult]:
    """Run the closed-loop workload and simulate the device schedule."""

    async def _run() -> Tuple[List[ServingResult], ScheduleResult]:
        config = ServerConfig(
            max_in_flight=min(session_count, 8),
            max_queue_depth=max(session_count, 8),
        )
        async with SessionServer(database, config) as server:

            async def _one_session(index: int) -> List[ServingResult]:
                session = server.session(f"session-{index}")
                results = []
                for sql in session_stream(index, queries_per_session):
                    results.append(await session.execute(sql))
                return results

            per_session = await asyncio.gather(
                *[_one_session(index) for index in range(session_count)]
            )
            schedule = server.simulate_schedule()
        return [result for stream in per_session for result in stream], schedule

    return asyncio.run(_run())


def warm_shared_state(database: Database) -> None:
    """Fill the kernel cache and device residency (the serving steady state)."""
    for sql in QUERY_MIX:
        database.execute(sql)


def reference_rows(relation, simulate_rows: int) -> Dict[str, list]:
    """Serial per-query reference results on an isolated database."""
    database = Database(simulate_rows=simulate_rows, aggregation_tpi=8)
    database.register(relation)
    return {sql: database.execute(sql).rows for sql in QUERY_MIX}


def run(
    rows: int = 600,
    simulate_rows: int = 10_000_000,
    length: int = 8,
    session_counts: Sequence[int] = (1, 4, 16, 64),
    queries_per_session: int = 4,
) -> Experiment:
    relation = tpch.lineitem_for_len(length, rows=rows, seed=7)
    expected = reference_rows(relation, simulate_rows)

    headers = [
        "sessions",
        "queries",
        "queries/sec",
        "p50 latency (ms)",
        "p99 latency (ms)",
        "makespan (s)",
        "overlap speedup",
        "throughput vs 1 session",
    ]
    table: List[List] = []
    baseline_qps = None
    for session_count in session_counts:
        database = Database(simulate_rows=simulate_rows, aggregation_tpi=8)
        database.register(relation)
        results, schedule = _measure(database, session_count, queries_per_session)
        for served in results:
            if served.rows != expected[served.sql]:
                raise AssertionError(
                    f"served result diverged from serial reference for "
                    f"{served.session} running {served.sql!r}"
                )
        if baseline_qps is None:
            baseline_qps = schedule.throughput_qps
        table.append(
            [
                session_count,
                len(schedule.queries),
                schedule.throughput_qps,
                schedule.latency_percentile(50) * 1e3,
                schedule.latency_percentile(99) * 1e3,
                schedule.makespan,
                schedule.overlap_speedup,
                schedule.throughput_qps / baseline_qps,
            ]
        )
    return Experiment(
        experiment_id="ext_serving",
        title="Concurrent serving: sessions sharing one simulated device",
        headers=headers,
        rows=table,
        notes=[
            f"{rows} real rows at LEN={length}, timing charged at "
            f"{simulate_rows:,} tuples; {queries_per_session} queries per "
            f"session over a {len(QUERY_MIX)}-query mix (Q1/Q6/projection/"
            "filter), closed loop",
            "warm-start: kernel cache + device residency filled before "
            "measuring, so numbers are the serving steady state and every "
            "served row set is asserted bit-exact against serial execution",
            "latency/makespan are simulated device time from the scheduler "
            "(SM co-residency by occupancy, PCIe/host overlap), not wall "
            "clock",
        ],
    )


def _measure(
    database: Database, session_count: int, queries_per_session: int
) -> Tuple[List[ServingResult], ScheduleResult]:
    """Warm shared state, then serve the measured closed-loop workload.

    Residency is installed *before* the warm-up so the warm queries mark
    their columns resident -- the measured steady state is then fully
    deterministic (no session races to pay the one cold transfer).
    """
    if database.residency is None:
        database.residency = DeviceResidency(database.device)
    warm_shared_state(database)
    return serve_workload(database, session_count, queries_per_session)
