"""Extension: chunked streaming execution with transfer/compute overlap.

Mirrors the Figure 14(b) harness: TPC-H Q1 across the LEN sweep, executed
once on the serial path (one monolithic H2D transfer, then the kernels)
and once with chunked streaming enabled, where each JIT kernel's input
transfer is split into chunks and overlapped with compute (section V's
GPUDB/HippogriffDB remedy for the PCIe bottleneck).

Reported per LEN: the end-to-end simulated times, the kernel+PCIe hot
path the streaming targets, the per-kernel overlap speedup
(``serial / pipelined`` across the streamed kernels), and the chunk
count.  Bit-exactness is asserted inline: both paths must produce
identical result rows.
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import Experiment
from repro.engine import Database
from repro.gpusim.streaming import StreamingConfig
from repro.storage import tpch
from repro.workloads.tpch_queries import Q1_SQL


def run(
    rows: int = 1500,
    simulate_rows: int = 10_000_000,
    lengths=(2, 4, 8, 16, 32),
    chunk_rows: int = 1_000_000,
) -> Experiment:
    headers = [
        "LEN",
        "serial (s)",
        "streamed (s)",
        "end-to-end speedup",
        "serial kernel+pcie (ms)",
        "streamed kernel+pcie (ms)",
        "kernel overlap",
        "chunks",
    ]
    table: List[List] = []
    for length in lengths:
        relation = tpch.lineitem_for_len(length, rows=rows, seed=7)

        serial_db = Database(simulate_rows=simulate_rows, aggregation_tpi=8)
        serial_db.register(relation)
        serial = serial_db.execute(Q1_SQL, include_scan=False)

        streamed_db = Database(
            simulate_rows=simulate_rows,
            aggregation_tpi=8,
            streaming=StreamingConfig(enabled=True, chunk_rows=chunk_rows),
        )
        streamed_db.register(relation)
        streamed = streamed_db.execute(Q1_SQL, include_scan=False)

        if serial.rows != streamed.rows:
            raise AssertionError(f"streamed Q1 diverged from serial at LEN={length}")

        serial_hot = serial.report.kernel_seconds + serial.report.pcie_seconds
        streamed_hot = streamed.report.kernel_seconds + streamed.report.pcie_seconds
        chunks = max(
            (entry.chunks for entry in streamed.report.streamed_kernels), default=1
        )
        table.append(
            [
                length,
                serial.report.total_seconds,
                streamed.report.total_seconds,
                serial.report.total_seconds / streamed.report.total_seconds,
                serial_hot * 1e3,
                streamed_hot * 1e3,
                streamed.report.overlap_speedup,
                chunks,
            ]
        )
    return Experiment(
        experiment_id="ext_streaming",
        title="Chunked streaming: TPC-H Q1 serial vs pipelined transfer/compute",
        headers=headers,
        rows=table,
        notes=[
            f"{rows} real rows per LEN, timing charged at {simulate_rows:,} tuples; "
            f"chunk_rows={chunk_rows:,}; scan excluded as in Figure 14(b)",
            "kernel overlap = sum(serial)/sum(pipelined) over the streamed JIT "
            "kernels; chunked results are asserted bit-exact against serial",
        ],
    )
