"""Table I: TPC-H Q2-Q22 in RateupDB vs UltraPrecise.

The experiment's point: queries whose hot paths are *not* DECIMAL run at
parity under UltraPrecise, while Q18 and Q20 regress because their
subqueries deliver DECIMAL values outside the JIT path ("delivering
results of subqueries to the outer query is not JIT-based and our
efficient representation cannot be applied").
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import Experiment
from repro.storage.tpch import TPCH_PROFILES
from repro.workloads.tpch_queries import table1_rows

#: Queries that also run *end to end* through the engine (real parsing,
#: statistics-driven join reordering, JIT decimal kernels) rather than
#: only through the Table I profile model -- see ``bench_ext_tpch_real``
#: and ``repro.workloads.tpch_queries`` (Q3_SQL/Q5_SQL/Q6_SQL/Q10_SQL).
FULLY_EXECUTED = {"Q3", "Q5", "Q6", "Q10"}


def run() -> Experiment:
    headers = [
        "query",
        "RateupDB (ms)",
        "UltraPrecise (ms)",
        "UltraPrecise paper (ms)",
        "delta %",
        "subquery DECIMAL",
        "fully executed",
    ]
    table: List[List] = []
    for name, row in table1_rows().items():
        rateup = row["RateupDB"]
        ours = row["UltraPrecise"]
        table.append(
            [
                name,
                rateup,
                ours,
                row["UltraPrecise (paper)"],
                100.0 * (ours - rateup) / rateup,
                "yes" if TPCH_PROFILES[name].subquery_decimal_delivery else "",
                "yes" if name in FULLY_EXECUTED else "",
            ]
        )
    return Experiment(
        experiment_id="table1",
        title="TPC-H Q2-Q22: RateupDB vs UltraPrecise (ms)",
        headers=headers,
        rows=table,
        notes=[
            "parity expected everywhere except Q18/Q20 (subquery DECIMAL "
            "delivery outside the JIT path); paper deltas: Q18 447->690, "
            "Q20 367->476",
            "'fully executed' queries also run end to end through the "
            "engine (ext_tpch_real), including the Q5/Q10 multi-join plans "
            "the statistics-driven join reorderer optimises",
        ],
    )
