"""Extension: storage codecs + zone maps on streamed TPC-H Q1/Q6.

The streaming model is transfer-bound at low LEN, and the paper's compact
layout pays the declared precision's worst case on every row.  This
experiment measures what the storage-codec layer buys on the wire:

* **Q1** (date filter only, full decimal payload shipped): the PCIe byte
  cut from re-encoding the four decimal columns -- the order-preserving
  ``dinf`` codec vs the compact baseline -- and the end-to-end pipelined
  speedup that follows.
* **Q6** (selective decimal predicates, relation clustered on
  ``l_quantity``): zone-map chunk skipping -- chunks whose min/max range
  cannot satisfy the pushed-down filter are never read or shipped -- on
  top of the same codec byte cut.

Every variant's result rows are asserted bit-exact against the
uncompressed (codec-free) path: codecs and zone maps change byte
accounting and filter strategy, never answers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import Experiment
from repro.engine import Database
from repro.gpusim.streaming import StreamingConfig
from repro.storage import tpch
from repro.storage.codecs import (
    CompactCodec,
    DecimalCodec,
    OrderPreservingCodec,
    choose_codec,
)
from repro.storage.relation import Relation
from repro.storage.schema import is_decimal
from repro.workloads.tpch_queries import Q1_SQL, Q6_SQL


def _clustered_on(relation: Relation, column: str) -> Relation:
    """Stable-sort the whole relation on one decimal column.

    Zone maps only prune when the data is clustered; TPC-H loads are
    naturally clustered on dates/keys, which we stand in for by sorting on
    the Q6 filter column.
    """
    order = np.argsort(
        np.array(relation.column(column).unscaled(), dtype=object), kind="stable"
    )
    return Relation(relation.name, [c.take(order) for c in relation.columns])


def _codec_map(
    relation: Relation, variant: str
) -> Dict[str, Optional[DecimalCodec]]:
    """Codec per decimal column for one variant."""
    codecs: Dict[str, Optional[DecimalCodec]] = {}
    for column in relation.columns:
        if not is_decimal(column.column_type):
            continue
        if variant == "compact":
            codecs[column.name] = CompactCodec()
        elif variant == "dinf":
            codecs[column.name] = OrderPreservingCodec()
        else:  # auto: smallest wire size the column qualifies for
            codecs[column.name] = choose_codec(
                column.column_type.spec, column.unscaled()
            )
    return codecs


def _run_query(
    relation: Relation,
    sql: str,
    simulate_rows: int,
    stream_chunk_rows: int,
):
    db = Database(
        simulate_rows=simulate_rows,
        aggregation_tpi=8,
        streaming=StreamingConfig(enabled=True, chunk_rows=stream_chunk_rows),
    )
    db.register(relation)
    return db.execute(sql, include_scan=False)


def run(
    rows: int = 3072,
    simulate_rows: int = 10_000_000,
    lengths=(2, 8, 32),
    encoding_chunk_rows: int = 256,
    stream_chunk_rows: int = 1_000_000,
) -> Experiment:
    headers = [
        "query",
        "LEN",
        "codec",
        "pcie (MB)",
        "reduction vs compact",
        "chunks skipped",
        "chunks total",
        "pipelined (s)",
        "speedup vs compact",
        "bit_exact",
    ]
    table: List[List] = []
    notes: List[str] = []
    for length in lengths:
        base = tpch.lineitem_for_len(length, rows=rows, seed=7)
        for query_name, sql, relation in (
            ("Q1", Q1_SQL, base),
            ("Q6", Q6_SQL, _clustered_on(base, "l_quantity")),
        ):
            baseline = _run_query(relation, sql, simulate_rows, stream_chunk_rows)
            variants = {}
            for variant in ("compact", "dinf", "auto"):
                codecs = _codec_map(relation, variant)
                encoded = relation.with_codecs(codecs, chunk_rows=encoding_chunk_rows)
                result = _run_query(encoded, sql, simulate_rows, stream_chunk_rows)
                variants[variant] = result
                if variant == "auto" and query_name == "Q1":
                    chosen = ", ".join(
                        f"{name}={codec.name}" for name, codec in sorted(codecs.items())
                    )
                    notes.append(f"auto codec choices at LEN={length}: {chosen}")
            compact = variants["compact"]
            for variant, result in variants.items():
                table.append(
                    [
                        query_name,
                        length,
                        variant,
                        result.report.pcie_bytes / 1e6,
                        compact.report.pcie_bytes / max(result.report.pcie_bytes, 1e-9),
                        result.report.zone_chunks_skipped,
                        result.report.zone_chunks_total,
                        result.report.total_seconds,
                        compact.report.total_seconds
                        / max(result.report.total_seconds, 1e-12),
                        result.rows == baseline.rows,
                    ]
                )
    notes.append(
        f"{rows} real rows per LEN, timing charged at {simulate_rows:,} tuples; "
        f"encoding chunk_rows={encoding_chunk_rows}, stream "
        f"chunk_rows={stream_chunk_rows:,}; scan excluded as in Figure 14(b)"
    )
    notes.append(
        "Q6 relation clustered on l_quantity; every variant's result rows are "
        "asserted bit-exact against the codec-free baseline"
    )
    return Experiment(
        experiment_id="ext_compression",
        title="Storage codecs + zone maps: PCIe bytes and chunk skipping on Q1/Q6",
        headers=headers,
        rows=table,
        notes=notes,
    )
