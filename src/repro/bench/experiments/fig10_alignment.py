"""Figure 10: alignment scheduling ablation.

Kernels for ``a+b+a``, ``a+b+a+a+a`` and ``a+b+a+a+a+a+a`` with and
without scheduling; ``b`` is DECIMAL(17/18, 11) and ``a`` has scale 1 with
increasing precision.  Scheduling moves ``b`` to the end, cutting the
alignment multiplications from 2/4/6 to 1.  Paper anchors: 34% kernel-time
saving for the long expression at LEN=32; 16.5% for ``a+b+a`` at LEN=2.
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import Experiment
from repro.core.decimal.context import PAPER_LENS, PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.core.jit import JitOptions, compile_expression
from repro.gpusim import kernel_time

EXPRESSIONS = {
    "a+b+a": "a + b + a",
    "a+b+a+a+a": "a + b + a + a + a",
    "a+b+a+a+a+a+a": "a + b + a + a + a + a + a",
}


def schema_for(length: int) -> dict:
    """b is (17, 11) at LEN=2 else (18, 11); a has scale 1, rising precision."""
    b_precision = 17 if length == 2 else 18
    adds = 6  # widest expression: headroom so results stay within LEN
    a_precision = max(PAPER_RESULT_PRECISIONS[length] - adds - 10, 2)
    return {
        "a": DecimalSpec(a_precision, 1),
        "b": DecimalSpec(b_precision, 11),
    }


def run(simulate_rows: int = 10_000_000, lengths=PAPER_LENS) -> Experiment:
    headers = ["expression", "LEN", "unscheduled (ms)", "scheduled (ms)", "saving %", "aligns before", "aligns after"]
    table: List[List] = []
    for name, expression in EXPRESSIONS.items():
        for length in lengths:
            schema = schema_for(length)
            scheduled = compile_expression(expression, schema, JitOptions())
            unscheduled = compile_expression(
                expression, schema, JitOptions(alignment_scheduling=False)
            )
            time_scheduled = kernel_time(scheduled.kernel, simulate_rows).seconds
            time_unscheduled = kernel_time(unscheduled.kernel, simulate_rows).seconds
            saving = 100.0 * (1 - time_scheduled / time_unscheduled)
            table.append(
                [
                    name,
                    length,
                    time_unscheduled * 1e3,
                    time_scheduled * 1e3,
                    saving,
                    unscheduled.kernel.alignment_ops(),
                    scheduled.kernel.alignment_ops(),
                ]
            )
    return Experiment(
        experiment_id="fig10",
        title="Alignment scheduling: kernel time with/without (10M tuples)",
        headers=headers,
        rows=table,
        notes=[
            "paper: alignments drop from 2/4/6 to 1; savings grow with "
            "precision and expression length, up to 34% (long expr, LEN=32); "
            "16.5% for a+b+a at LEN=2",
        ],
    )
