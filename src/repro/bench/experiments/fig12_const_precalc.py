"""Figure 12: constant pre-calculation ablation.

Three expressions whose constant-only parts fold at compile time:

* ``1 + a + 2 + 11``   -> ``14 + a``        (3 additions -> 1)
* ``1 + a + 2 - 3``    -> ``a``             (no kernel arithmetic at all)
* ``0.25 * (a+b) * 4`` -> ``a + b``         (2 muls + 1 add -> 1 add)

Paper savings: up to 62.55% / 100.00% / 62.50% respectively.
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import Experiment
from repro.core.decimal.context import PAPER_LENS, PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.core.jit import JitOptions, compile_expression
from repro.gpusim import kernel_time

EXPRESSIONS = {
    "1+a+2+11": "1 + a + 2 + 11",
    "1+a+2-3": "1 + a + 2 - 3",
    "0.25*(a+b)*4": "0.25 * (a + b) * 4",
}

PAPER_MAX_SAVING = {"1+a+2+11": 62.55, "1+a+2-3": 100.0, "0.25*(a+b)*4": 62.50}


def schema_for(length: int) -> dict:
    precision = max(PAPER_RESULT_PRECISIONS[length] - 4, 11)
    return {"a": DecimalSpec(precision, 10), "b": DecimalSpec(precision, 10)}


def run(simulate_rows: int = 10_000_000, lengths=PAPER_LENS) -> Experiment:
    headers = ["expression", "LEN", "unoptimised (ms)", "pre-calculated (ms)", "saving %"]
    table: List[List] = []
    notes: List[str] = [
        f"paper max savings: {PAPER_MAX_SAVING}",
    ]
    for name, expression in EXPRESSIONS.items():
        for length in lengths:
            schema = schema_for(length)
            optimised = compile_expression(expression, schema, JitOptions())
            baseline = compile_expression(
                expression,
                schema,
                JitOptions(
                    constant_folding=False,
                    constant_alignment=False,
                    constant_construction=False,
                ),
            )
            slow = kernel_time(baseline.kernel, simulate_rows).seconds
            if optimised.tree.to_sql() == "a":
                # The whole expression reduced to a bare column: no kernel
                # is generated at all (the paper's 100% saving).
                fast = 0.0
            else:
                fast = kernel_time(optimised.kernel, simulate_rows).seconds
            saving = 100.0 * (1 - fast / slow)
            table.append([name, length, slow * 1e3, fast * 1e3, saving])
    return Experiment(
        experiment_id="fig12",
        title="Constant pre-calculation (10M tuples)",
        headers=headers,
        rows=table,
        notes=notes,
    )
