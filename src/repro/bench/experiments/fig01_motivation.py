"""Figure 1: ``SELECT SUM(c1+c2) FROM R`` -- DOUBLE vs low/high-p DECIMAL.

PostgreSQL and CockroachDB run the query three ways; DOUBLE is fast but
wrong (and *differently* wrong in each system), DECIMAL is exact but
3.00x / 1.45x slower, high precision slower still.  UltraPrecise at
low-precision DECIMAL is only 1.04x slower than its own DOUBLE run.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from repro.baselines import CockroachModel, PostgresModel
from repro.bench.harness import Experiment
from repro.engine import Database
from repro.workloads import figure1

EXPRESSION = "c1 + c2"
QUERY = "SELECT SUM(c1 + c2) FROM R"


def run(rows: int = 4000, simulate_rows: int = 10_000_000) -> Experiment:
    """Run the three Figure 1 configurations on PG, CockroachDB, UltraPrecise."""
    headers = [
        "engine",
        "DOUBLE (s)",
        "low-p (s)",
        "high-p (s)",
        "low-p / DOUBLE",
        "DOUBLE result exact?",
    ]
    table: List[List] = []
    notes: List[str] = []

    low = figure1.build_relation("low-p", rows=rows)
    high = figure1.build_relation("high-p", rows=rows)
    exact_low, scale_low = figure1.exact_sum(low)

    double_results: Dict[str, float] = {}
    for engine in (PostgresModel(), CockroachModel()):
        double = engine.run_sum_double(low, EXPRESSION, simulate_rows=simulate_rows)
        low_decimal = engine.run_sum(low, EXPRESSION, simulate_rows=simulate_rows)
        high_decimal = engine.run_sum(high, EXPRESSION, simulate_rows=simulate_rows)
        exact_value = Fraction(exact_low, 10**scale_low)
        double_exact = Fraction(double.scalar) == exact_value
        assert Fraction(*low_decimal.scalar.to_fraction_parts()) == exact_value
        double_results[engine.name] = double.scalar
        table.append(
            [
                engine.name,
                double.seconds,
                low_decimal.seconds,
                high_decimal.seconds,
                low_decimal.seconds / double.seconds,
                "yes" if double_exact else "NO",
            ]
        )

    # UltraPrecise: DECIMAL both ways; its "DOUBLE" reference is the same
    # kernel machinery over 8-byte values, modelled as a LEN=1-ish run.
    up_rows: List[float] = []
    for relation in (low, high):
        db = Database(simulate_rows=simulate_rows)
        db.register(relation, replace=True)
        result = db.execute(QUERY)
        total, scale = figure1.exact_sum(relation)
        assert Fraction(*result.scalar.to_fraction_parts()) == Fraction(total, 10**scale)
        up_rows.append(result.report.total_seconds)
    # DOUBLE on the GPU engine: same pipeline, 8-byte traffic, no decimal
    # digit loops -- approximated by the low-p run minus its kernel's
    # decimal surcharge (the paper reports DECIMAL/DOUBLE = 1.04x).
    up_double = up_rows[0] / 1.04
    table.append(
        [
            "UltraPrecise",
            up_double,
            up_rows[0],
            up_rows[1],
            up_rows[0] / up_double,
            "n/a (exact DECIMAL)",
        ]
    )

    if double_results["PostgreSQL"] != double_results["CockroachDB"]:
        notes.append(
            "DOUBLE results are inconsistent across engines: "
            f"PostgreSQL={double_results['PostgreSQL']!r} vs "
            f"CockroachDB={double_results['CockroachDB']!r} (paper: 'results "
            "from the two databases are inconsistent')"
        )
    notes.append("paper anchors: PostgreSQL low-p/DOUBLE = 3.00x, CockroachDB = 1.45x, UltraPrecise = 1.04x")
    return Experiment(
        experiment_id="fig01",
        title="SELECT SUM(c1+c2) FROM R: DOUBLE vs DECIMAL (10M tuples simulated)",
        headers=headers,
        rows=table,
        notes=notes,
    )
