"""Figure 13: multi-threaded (TPI) kernels for a+b, a*b, a/b.

Sweeps TPI over {1, 4, 8, 16, 32} and LEN over {2..32}.  Anchors: at LEN=4
single- and 4-threaded additions tie (3.67 ms); at LEN=32 the
single-threaded add takes 49.67 ms vs 23.67 ms at TPI=8 (multiplication:
45.00 -> 23.33 ms).  The division entry at TPI=4 / LEN=32 is absent
because the CGBN Newton-Raphson path requires ``LEN/TPI <= TPI``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import Experiment
from repro.core.decimal.context import PAPER_LENS, PAPER_RESULT_PRECISIONS, DecimalSpec
from repro.core.jit import JitOptions, compile_expression
from repro.core.multithread import division_supported
from repro.gpusim import kernel_time

TPIS = (1, 4, 8, 16, 32)

PAPER_ANCHORS_MS = {
    ("a+b", 4, 1): 3.67,
    ("a+b", 4, 4): 3.67,
    ("a+b", 32, 1): 49.67,
    ("a+b", 32, 8): 23.67,
    ("a*b", 32, 1): 45.00,
    ("a*b", 32, 8): 23.33,
}


def schema_for(operation: str, length: int) -> Dict[str, DecimalSpec]:
    """Operand specs so the result lands at ``length`` words."""
    result_precision = PAPER_RESULT_PRECISIONS[length]
    if operation == "a+b":
        precision = result_precision - 1
        return {"a": DecimalSpec(precision, 2), "b": DecimalSpec(precision, 2)}
    if operation == "a*b":
        half = result_precision // 2
        return {
            "a": DecimalSpec(half, 2),
            "b": DecimalSpec(result_precision - half, 2),
        }
    # a/b: quotient (p1 - p2 + s2 + 5, s1 + 4) at the result precision.
    divisor = DecimalSpec(9, 2)
    dividend = DecimalSpec(result_precision + divisor.precision - divisor.scale - 5, 2)
    return {"a": dividend, "b": divisor}


def run(simulate_rows: int = 10_000_000, lengths=PAPER_LENS) -> Experiment:
    headers = ["op", "LEN"] + [f"TPI={tpi} (ms)" for tpi in TPIS] + ["paper TPI=1 (ms)"]
    table: List[List] = []
    for operation, expression in (("a+b", "a + b"), ("a*b", "a * b"), ("a/b", "a / b")):
        for length in lengths:
            schema = schema_for(operation, length)
            row: List = [operation, length]
            for tpi in TPIS:
                if operation == "a/b" and not division_supported(length, tpi):
                    row.append(None)  # the paper's missing TPI=4/LEN=32 cell
                    continue
                compiled = compile_expression(expression, schema, JitOptions(tpi=tpi))
                row.append(kernel_time(compiled.kernel, simulate_rows).seconds * 1e3)
            row.append(PAPER_ANCHORS_MS.get((operation, length, 1)))
            table.append(row)
    return Experiment(
        experiment_id="fig13",
        title="Multi-threaded arithmetic: kernel time by TPI (10M tuples)",
        headers=headers,
        rows=table,
        notes=[
            "a/b at TPI=4, LEN=32 is absent: LEN/TPI <= TPI (CGBN restriction)",
            "single-threaded division uses quotient-range binary search; "
            "TPI>1 uses the Newton-Raphson path",
        ],
    )
