"""Benchmark CLI.

    python -m repro.bench             # list experiments
    python -m repro.bench fig14c      # run one, print its table
    python -m repro.bench all         # run everything, write EXPERIMENTS.md
"""

from __future__ import annotations

import sys

from repro.bench import report


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("available experiments:")
        for experiment_id in report.experiment_ids():
            print(f"  {experiment_id}")
        print("  all   (run everything and write EXPERIMENTS.md)")
        return 0
    target = argv[0]
    if target == "all":
        report.generate_experiments_md()
        print("wrote EXPERIMENTS.md (tables also under bench_results/)")
        return 0
    if target not in report.experiment_ids():
        print(f"unknown experiment {target!r}; run with no arguments to list")
        return 2
    experiment = report.run_experiment(target)
    print(experiment.format())
    experiment.save("bench_results")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
