"""Exception hierarchy for the UltraPrecise reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class DecimalError(ReproError):
    """Base class for fixed-point decimal errors."""


class PrecisionOverflowError(DecimalError):
    """A value does not fit in its declared ``DECIMAL(p, s)`` container."""


class DivisionByZeroError(DecimalError):
    """Division or modulo by a zero-valued decimal."""


class ConversionError(DecimalError):
    """A literal could not be converted to a decimal value."""


class ExpressionError(ReproError):
    """Base class for expression parsing / compilation errors."""


class ParseError(ExpressionError):
    """The expression or SQL text could not be parsed."""


class TypeInferenceError(ExpressionError):
    """Precision/scale inference failed for an expression node."""


class CodegenError(ExpressionError):
    """Kernel code generation failed."""


class AnalysisError(ExpressionError):
    """The kernel IR static analyzer found errors in strict mode.

    Carries the offending :class:`repro.analysis.AnalysisReport` as
    ``report`` so callers can inspect every diagnostic, not just the
    rendered message.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class GpuSimError(ReproError):
    """Base class for GPU-simulator errors."""


class LaunchConfigError(GpuSimError):
    """An invalid kernel launch configuration was requested."""


class UnsupportedInstructionError(GpuSimError):
    """The kernel IR contains an instruction the executor cannot run."""


class StorageError(ReproError):
    """Base class for storage-layer errors."""


class SchemaError(StorageError):
    """A relation or column definition is invalid."""


class CatalogError(StorageError):
    """A relation was not found or already exists in the catalog."""


class EngineError(ReproError):
    """Base class for query-engine errors."""


class PlanningError(EngineError):
    """The logical plan could not be converted to a physical plan."""


class ExecutionError(EngineError):
    """Query execution failed at runtime."""


class PlanAnalysisError(PlanningError):
    """The plan-level static analyzer found errors in strict mode.

    Raised by the planner when ``OptimizerConfig.strict_plan_analysis`` is
    set and a schema-dataflow, precision-dataflow or rewrite-soundness
    check fails.  Carries the offending
    :class:`repro.analysis.AnalysisReport` as ``report`` so callers can
    inspect every diagnostic, not just the rendered message.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class ServingError(EngineError):
    """Base class for concurrent-serving-layer errors."""


class AdmissionError(ServingError):
    """The server's admission controller rejected a query.

    Raised when accepting the query would exceed the configured in-flight
    plus queue-depth budget; the query was never executed, so retrying
    after back-off is safe.
    """


class QueryTimeoutError(ServingError):
    """A served query exceeded its timeout and was cancelled cleanly."""


class QueryCancelledError(ServingError):
    """Query execution observed its cancellation flag and stopped.

    Raised between operators, never mid-kernel, so shared state (the
    kernel cache, device residency) is always left consistent.
    """


class BaselineError(ReproError):
    """Base class for baseline-database model errors."""


class CapabilityError(BaselineError):
    """The query exceeds a baseline database's DECIMAL capability.

    This is how the reproduction models e.g. HEAVY.AI refusing precisions
    above 18 or MonetDB failing once ``LEN`` exceeds 4 (paper section IV-A).
    """


class MultithreadError(ReproError):
    """Base class for CGBN-style thread-group arithmetic errors."""


class TpiRestrictionError(MultithreadError):
    """A TPI configuration violates a documented restriction.

    The paper notes the Newton-Raphson division path requires
    ``LEN / TPI <= TPI`` (section IV-C1).
    """
