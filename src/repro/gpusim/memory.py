"""Global-memory traffic and coalescing model.

The paper's profiling (section IV-A) shows simple decimal arithmetic is
memory-bound: SM utilisation of an addition kernel is ~4% while occupancy
is 100%.  Two effects drive the memory behaviour this module models:

* **traffic** -- the compact representation moves ``Lb`` bytes per value
  instead of ``4*Lw + 1``, which is the representation design's win;
* **coalescing** -- with one thread per tuple, each thread reads a long
  contiguous byte run and a warp's accesses spread over many transactions;
  a TPI thread group reads the same words side by side, restoring
  coalescing ("the memory accesses to a value array are coalesced in a
  thread group", section IV-C1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.jit import ir
from repro.gpusim.device import GpuDevice


@dataclass(frozen=True)
class MemoryProfile:
    """Per-kernel global memory behaviour."""

    bytes_per_tuple: int
    coalescing: float  # 0..1 effective-bandwidth factor from access pattern

    def total_bytes(self, tuples: int) -> int:
        return self.bytes_per_tuple * tuples


def average_access_width(kernel: ir.KernelIR) -> float:
    """Average compact width (bytes) of the kernel's column accesses."""
    widths = [
        instruction.spec.compact_bytes
        for instruction in kernel.instructions
        if isinstance(instruction, (ir.LoadColumn, ir.StoreResult))
    ]
    return sum(widths) / len(widths) if widths else 4.0


def coalescing_factor(kernel: ir.KernelIR, device: GpuDevice) -> float:
    """Effective-bandwidth factor of the kernel's access pattern.

    A thread group of TPI threads covers ``4 * TPI`` bytes per coalesced
    transaction slice; accesses wider than that serialise.  The square root
    reflects that consecutive threads still hit neighbouring DRAM rows, so
    the penalty grows sub-linearly with width.
    """
    width = average_access_width(kernel)
    span = 4.0 * kernel.tpi
    if width <= span:
        return 1.0
    return max((span / width) ** 0.5, 0.08)


def profile(kernel: ir.KernelIR, non_compact: bool = False) -> int:
    """Bytes per tuple the kernel moves; optionally in non-compact layout.

    ``non_compact=True`` models the discarded alternative representation
    (section III-B1): every value ships as word-aligned ``4*Lw + 1`` bytes.
    """
    total = 0
    for instruction in kernel.instructions:
        if isinstance(instruction, (ir.LoadColumn, ir.StoreResult)):
            if non_compact:
                total += 4 * instruction.spec.words + 1
            else:
                total += instruction.spec.compact_bytes
    return total


def memory_profile(
    kernel: ir.KernelIR, device: GpuDevice, non_compact: bool = False
) -> MemoryProfile:
    """The kernel's traffic + coalescing profile."""
    return MemoryProfile(
        bytes_per_tuple=profile(kernel, non_compact=non_compact),
        coalescing=coalescing_factor(kernel, device),
    )
