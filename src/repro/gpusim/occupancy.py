"""Occupancy model: registers per thread -> warps per SM.

Section IV-A's Nsight profile shows exactly the effect modelled here: the
LEN=8 addition kernel runs at 100% warp occupancy, but at LEN=32 "more
registers are required by a thread and the warp occupancy becomes 50%"
(33% for multiplication, which needs accumulator scratch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.jit import ir
from repro.gpusim.device import GpuDevice


@dataclass(frozen=True)
class Occupancy:
    """Occupancy of one kernel on one device."""

    registers_per_thread: int
    threads_per_sm: int
    occupancy: float  # 0..1 fraction of max resident threads

    @property
    def percent(self) -> float:
        return 100.0 * self.occupancy


def scratch_words(kernel: ir.KernelIR) -> int:
    """Extra value words of scratch the widest instruction needs.

    Multiplication keeps a double-width accumulator; division keeps the
    probe product and the shifted dividend.
    """
    extra = 0
    for instruction in kernel.instructions:
        if isinstance(instruction, ir.MulOp):
            # Schoolbook accumulates into a double-width product before
            # truncation, plus 64-bit split halves.
            extra = max(extra, 2 * instruction.spec.words)
        elif isinstance(instruction, (ir.DivOp, ir.ModOp)):
            extra = max(extra, 2 * instruction.spec.words)
    return extra


def registers_per_thread(kernel: ir.KernelIR, device: GpuDevice) -> int:
    """32-bit registers one thread of this kernel needs."""
    value_words = kernel.register_words + scratch_words(kernel)
    per_thread_words = -(-value_words // kernel.tpi)
    scaled = device.register_pressure_factor * per_thread_words
    return device.register_overhead + int(-(-scaled // 1))


def compute(kernel: ir.KernelIR, device: GpuDevice) -> Occupancy:
    """Occupancy for a kernel, limited by register file capacity."""
    registers = registers_per_thread(kernel, device)
    by_registers = device.registers_per_sm // max(registers, 1)
    threads = min(device.max_threads_per_sm, by_registers)
    # Threads are resident in whole warps.
    threads = (threads // device.warp_size) * device.warp_size
    threads = max(threads, device.warp_size)
    return Occupancy(
        registers_per_thread=registers,
        threads_per_sm=threads,
        occupancy=threads / device.max_threads_per_sm,
    )
