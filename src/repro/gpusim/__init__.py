"""SIMT GPU simulator: device model, PTX costing, executor, profiler.

This package substitutes for the RTX A6000 the paper evaluates on.  The
data plane executes kernel IR bit-exactly with vectorised decimal
arithmetic; the control plane prices each launch with a roofline model
(PTX issue cycles vs compact-representation memory traffic), plus PCIe,
JIT-compilation and disk-scan terms for query-level timing.
"""

from repro.gpusim.device import DEFAULT_DEVICE, DEFAULT_HOST, GpuDevice, HostSystem
from repro.gpusim.executor import KernelRun, execute
from repro.gpusim.occupancy import Occupancy
from repro.gpusim.profiler import (
    KernelProfile,
    StreamedKernelProfile,
    profile_kernel,
    profile_kernel_streamed,
)
from repro.gpusim.streaming import (
    StreamedRun,
    StreamingConfig,
    StreamTiming,
    execute_streamed,
    stream_timing,
)
from repro.gpusim.timing import (
    KernelTiming,
    compile_time,
    disk_scan_time,
    kernel_time,
    pcie_time,
)

__all__ = [
    "DEFAULT_DEVICE",
    "DEFAULT_HOST",
    "GpuDevice",
    "HostSystem",
    "KernelProfile",
    "KernelRun",
    "KernelTiming",
    "Occupancy",
    "StreamTiming",
    "StreamedKernelProfile",
    "StreamedRun",
    "StreamingConfig",
    "compile_time",
    "disk_scan_time",
    "execute",
    "execute_streamed",
    "kernel_time",
    "pcie_time",
    "profile_kernel",
    "profile_kernel_streamed",
    "stream_timing",
]
