"""Kernel executor: runs kernel IR over compact columns, bit-exactly.

This is the simulated device's data plane.  Each IR instruction maps to a
vectorised decimal operation from ``repro.core.decimal.vectorized`` -- the
numpy lanes stand in for SIMT threads -- and the control plane charges the
roofline timing model for the launch.  The result is both the exact output
column (verifiable against an oracle) and a :class:`KernelRun` report with
the simulated time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.decimal import vectorized as vz
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import ir
from repro.errors import ExecutionError, UnsupportedInstructionError
from repro.gpusim.device import DEFAULT_DEVICE, GpuDevice
from repro.gpusim.timing import KernelTiming, kernel_time


@dataclass
class KernelRun:
    """Result of executing one kernel over a batch of tuples."""

    result: DecimalVector
    timing: KernelTiming
    kernel: ir.KernelIR


def execute(
    kernel: ir.KernelIR,
    columns: Dict[str, np.ndarray],
    tuples: int,
    device: GpuDevice = DEFAULT_DEVICE,
    simulate_tuples: Optional[int] = None,
) -> KernelRun:
    """Execute a kernel.

    ``columns`` maps column names to compact ``(N, Lb)`` uint8 arrays.  The
    data plane runs over the actual N rows supplied; ``simulate_tuples``
    (default N) is the tuple count the *timing* model charges for, which is
    how benchmarks evaluate a sample of rows for correctness while costing
    the paper's 10-million-row relations (the model is linear in N).
    """
    registers: Dict[int, DecimalVector] = {}
    rows = tuples
    result: Optional[DecimalVector] = None

    for instruction in kernel.instructions:
        if isinstance(instruction, ir.LoadColumn):
            try:
                data = columns[instruction.column]
            except KeyError:
                raise ExecutionError(f"kernel input column {instruction.column!r} missing") from None
            if data.shape[0] != rows:
                raise ExecutionError(
                    f"column {instruction.column!r} has {data.shape[0]} rows, expected {rows}"
                )
            registers[instruction.dst] = DecimalVector.from_compact(data, instruction.spec)
        elif isinstance(instruction, ir.LoadConst):
            from repro.core.decimal import words as w

            limbs = w.from_int(instruction.unscaled, instruction.spec.words)
            registers[instruction.dst] = DecimalVector.broadcast(
                instruction.negative, limbs, instruction.spec, rows
            )
        elif isinstance(instruction, ir.Align):
            source = registers[instruction.src]
            registers[instruction.dst] = source.rescale(
                source.spec.scale + instruction.exponent
            ).with_spec(instruction.spec)
        elif isinstance(instruction, ir.AddOp):
            value = vz.add(registers[instruction.a], registers[instruction.b])
            registers[instruction.dst] = value.with_spec(instruction.spec)
        elif isinstance(instruction, ir.SubOp):
            value = vz.sub(registers[instruction.a], registers[instruction.b])
            registers[instruction.dst] = value.with_spec(instruction.spec)
        elif isinstance(instruction, ir.NegOp):
            registers[instruction.dst] = vz.neg(registers[instruction.src])
        elif isinstance(instruction, ir.MulOp):
            value = vz.mul(registers[instruction.a], registers[instruction.b])
            registers[instruction.dst] = value.with_spec(instruction.spec)
        elif isinstance(instruction, ir.DivOp):
            value = vz.div(
                registers[instruction.a],
                registers[instruction.b],
                fast_path=instruction.fast_path,
            )
            registers[instruction.dst] = _coerce_container(value, instruction.spec)
        elif isinstance(instruction, ir.ModOp):
            value = vz.mod(
                registers[instruction.a],
                registers[instruction.b],
                fast_path=instruction.fast_path,
            )
            registers[instruction.dst] = value.with_spec(instruction.spec)
        elif isinstance(instruction, ir.AbsOp):
            registers[instruction.dst] = vz.absolute(registers[instruction.src])
        elif isinstance(instruction, ir.SignOp):
            registers[instruction.dst] = vz.sign(registers[instruction.src])
        elif isinstance(instruction, ir.RescaleOp):
            registers[instruction.dst] = vz.rescale_with_mode(
                registers[instruction.src], instruction.spec, instruction.mode
            )
        elif isinstance(instruction, ir.StoreResult):
            result = registers[instruction.src]
        else:
            raise UnsupportedInstructionError(type(instruction).__name__)

    if result is None:
        raise ExecutionError("kernel has no StoreResult instruction")

    timing = kernel_time(kernel, simulate_tuples if simulate_tuples is not None else rows, device)
    return KernelRun(result=result, timing=timing, kernel=kernel)


def _coerce_container(value: DecimalVector, spec) -> DecimalVector:
    """Redeclare a division result at the kernel's register spec.

    Division results may wrap (see ``DecimalVector.from_unscaled_container``);
    the stored spec is the compile-time one regardless.
    """
    if value.spec == spec:
        return value
    return DecimalVector.from_unscaled_container(
        [u for u in value.to_unscaled()], spec
    ) if value.spec.scale == spec.scale else value.with_spec(spec)
