"""Cross-query device residency of columns.

A single query charges PCIe for every column it scans.  When many sessions
share one simulated device, a column already shipped by an earlier query is
still resident in device memory, so later queries should not pay the
transfer again -- the same reuse the PR 3 version counters enable for
register expansions, lifted to the device level.

Residency is keyed by ``(relation, column, version)``: an append builds new
:class:`~repro.storage.column.Column` objects with fresh versions, so a
stale resident copy is never reused after a write -- readers of the old
snapshot keep hitting their version, readers of the new one re-ship.

Eviction is LRU by bytes against a budget (a fraction of device DRAM,
leaving room for working sets).  All methods are thread-safe: sessions run
on a thread pool.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Tuple

from repro.gpusim.device import DEFAULT_DEVICE, GpuDevice

#: Fraction of device memory the resident column pool may occupy.
DEFAULT_MEMORY_FRACTION = 0.5

ResidencyKey = Tuple[str, str, int]


class DeviceResidency:
    """LRU set of device-resident column versions with a byte budget."""

    def __init__(
        self,
        device: GpuDevice = DEFAULT_DEVICE,
        memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    ) -> None:
        if not 0.0 < memory_fraction <= 1.0:
            raise ValueError(f"memory_fraction must be in (0, 1], got {memory_fraction}")
        self.budget_bytes = int(device.memory_bytes * memory_fraction)
        self._entries: "OrderedDict[ResidencyKey, int]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def admit(self, key: ResidencyKey, nbytes: int) -> bool:
        """Record a transfer; returns True when the column must be shipped.

        A hit (already resident) refreshes LRU order and returns False.  A
        miss inserts the column, evicting least-recently-used entries until
        the pool fits the budget, and returns True -- the caller charges
        the PCIe transfer exactly when this returns True.
        """
        nbytes = int(nbytes)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return False
            self.misses += 1
            if nbytes > self.budget_bytes:
                # Larger than the whole pool: ship it, never cache it.
                return True
            self._entries[key] = nbytes
            self._bytes += nbytes
            while self._bytes > self.budget_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted
            return True

    def resident(self, key: ResidencyKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
