"""PTX-level instruction accounting (paper section III-C).

The generated kernels accelerate multi-word arithmetic with PTX sequences:
``add.cc.u32``/``addc.cc.u32`` carry chains for addition, ``mad`` chains for
multiplication, ``bfind`` + binary-search multiplies for division, and
``div.u64``/``div.u32`` fast paths.  This module maps each kernel IR
instruction to the PTX instructions it expands into, so the timing model can
charge cycles exactly where the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.jit import ir

#: Issue cost, in cycles per instruction per thread, of each PTX class.
#: These are throughput costs on Ampere-class integer pipes.
PTX_CYCLES: Dict[str, float] = {
    "add.cc.u32": 1.0,
    "addc.cc.u32": 1.0,
    "sub.cc.u32": 1.0,
    "subc.cc.u32": 1.0,
    "mad.lo.u32": 2.0,
    "mad.hi.u32": 2.0,
    "mul.lo.u32": 2.0,
    "div.u64": 20.0,
    "div.u32": 12.0,
    "bfind.u32": 1.0,
    "setp": 1.0,  # predicates/comparisons
    "mov": 0.5,
    "ld.global": 2.0,  # issue cost; DRAM time is modelled separately
    "st.global": 2.0,
    "shfl.sync": 2.0,  # inter-thread exchange within a TPI group
    "cvt": 1.0,
}


@dataclass
class PtxCounts:
    """PTX instruction counts for one tuple's worth of kernel work."""

    counts: Dict[str, float] = field(default_factory=dict)

    def add(self, instruction: str, count: float = 1.0) -> None:
        self.counts[instruction] = self.counts.get(instruction, 0.0) + count

    def merge(self, other: "PtxCounts") -> None:
        for instruction, count in other.counts.items():
            self.add(instruction, count)

    @property
    def cycles(self) -> float:
        """Total issue cycles for these counts."""
        return sum(PTX_CYCLES[name] * count for name, count in self.counts.items())

    @property
    def total(self) -> float:
        return sum(self.counts.values())


def expand(instruction: ir.Instruction) -> PtxCounts:
    """PTX expansion of one kernel IR instruction (per tuple)."""
    counts = PtxCounts()
    spec = instruction.spec
    lw = spec.words

    if isinstance(instruction, ir.LoadColumn):
        # Load Lb compact bytes as word loads, expand to Lw words + sign.
        word_loads = -(-spec.compact_bytes // 4)
        counts.add("ld.global", word_loads)
        counts.add("mov", lw)  # expansion into the register array
        counts.add("setp", 1)  # sign-bit extraction
    elif isinstance(instruction, ir.LoadConst):
        if instruction.runtime_convert:
            # Per-tuple conversion: digit loop of mul-by-10 + add.
            digits = spec.precision
            counts.add("mad.lo.u32", digits * max(1, lw // 2))
            counts.add("add.cc.u32", digits)
            counts.add("mov", lw)
        else:
            counts.add("mov", lw)  # immediate moves only
    elif isinstance(instruction, ir.Align):
        counts.merge(align_counts_at_width(instruction.exponent, lw))
    elif isinstance(instruction, (ir.AddOp, ir.SubOp)):
        # Listing 2: one add.cc + (Lw-1) addc, plus sign handling: the signs
        # are examined and, mixed-sign, a magnitude compare picks the
        # minuend (section II-B).
        chain = "add" if isinstance(instruction, ir.AddOp) else "sub"
        counts.add(f"{chain}.cc.u32", 1)
        counts.add(f"{chain}c.cc.u32", max(lw - 1, 0))
        counts.add("setp", 2 + lw / 2)  # sign tests + expected compare depth
        counts.add("mov", 2)
    elif isinstance(instruction, ir.NegOp):
        counts.add("mov", 1)
    elif isinstance(instruction, ir.MulOp):
        counts.merge(_mul_counts(instruction))
    elif isinstance(instruction, (ir.DivOp, ir.ModOp)):
        counts.merge(_div_counts(instruction))
    elif isinstance(instruction, ir.AbsOp):
        counts.add("mov", 1)  # clear the sign byte
    elif isinstance(instruction, ir.SignOp):
        counts.add("setp", 2)  # zero test + sign test
        counts.add("mov", 1)
    elif isinstance(instruction, ir.RescaleOp):
        # Scale reduction: short division by 10^k, word by word, plus the
        # rounding decision on the remainder.
        counts.add("div.u32", lw)
        counts.add("setp", 2)
        counts.add("add.cc.u32", 1)
    elif isinstance(instruction, ir.StoreResult):
        word_stores = -(-spec.compact_bytes // 4)
        counts.add("st.global", word_stores)
        counts.add("mov", lw)
        counts.add("setp", 1)  # sign packing
    return counts


def align_counts_at_width(exponent: int, lw: int) -> PtxCounts:
    """Alignment multiply ``x10^exponent``.

    The generated code implements ``<< n`` with the generic ``Decimal<N>``
    multiplication template (Listing 1), so an alignment costs a full
    schoolbook pass over the register array -- exactly why the paper calls
    alignments expensive enough to schedule away (section III-D1).
    """
    counts = PtxCounts()
    if exponent == 0:
        return counts
    partials = max(1, lw // 2) ** 2
    counts.add("mad.lo.u32", partials)
    counts.add("mad.hi.u32", partials)
    counts.add("addc.cc.u32", 2 * partials)
    return counts


def _mul_counts(instruction: ir.MulOp) -> PtxCounts:
    """Schoolbook product: La*Lb lo/hi mads plus carry accumulation."""
    counts = PtxCounts()
    out_words = instruction.spec.words
    # Operand widths are bounded by the output width; the schoolbook loop
    # runs over the operand word arrays.
    half = max(1, out_words // 2)
    partials = half * half
    counts.add("mad.lo.u32", partials)
    counts.add("mad.hi.u32", partials)
    counts.add("addc.cc.u32", 2 * partials)
    counts.add("setp", 1)  # sign
    return counts


def _div_counts(instruction) -> PtxCounts:
    """Division per section III-C2, including both fast paths.

    * both operands <= 64 bits: one ``div.u64``;
    * divisor one word: Lw ``div.u32`` steps;
    * otherwise ``bfind`` + binary search: ~bits(quotient) iterations, each
      one multi-word multiply + compare.
    """
    counts = PtxCounts()
    out_words = instruction.spec.words
    dividend_words = out_words  # after prescale the dividend fills the container
    counts.add("bfind.u32", 2 * dividend_words)
    if dividend_words <= 2:
        counts.add("div.u64", 1)
        counts.add("mad.lo.u32", 2)  # remainder/back-multiply
        return counts
    # Binary search over the quotient range: iterations ~ quotient bits.
    iterations = 32.0 * dividend_words * 0.75  # expected range width
    mul_per_probe = max(1, dividend_words // 2) ** 2
    counts.add("mad.lo.u32", iterations * mul_per_probe)
    counts.add("mad.hi.u32", iterations * mul_per_probe)
    counts.add("setp", iterations * dividend_words / 2)
    return counts
