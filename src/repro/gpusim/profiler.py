"""Nsight-Compute-style kernel profiles (paper section IV-A).

The paper profiles ``a + b`` and ``a * b`` kernels and reports SM
utilisation vs warp occupancy -- the evidence that simple decimal
arithmetic is memory-bound and that the compact representation pays off.
This module renders the same two numbers for any simulated kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.jit import ir
from repro.gpusim.device import DEFAULT_DEVICE, GpuDevice
from repro.gpusim.timing import kernel_time


@dataclass(frozen=True)
class KernelProfile:
    """The headline Nsight numbers for one kernel."""

    kernel_name: str
    warp_occupancy_percent: float
    sm_utilization_percent: float
    memory_bound: bool
    cycles_per_tuple: float
    bytes_per_tuple: int

    def __str__(self) -> str:
        bound = "memory" if self.memory_bound else "compute"
        return (
            f"{self.kernel_name}: occupancy {self.warp_occupancy_percent:.0f}%, "
            f"SM util {self.sm_utilization_percent:.2f}%, {bound}-bound, "
            f"{self.cycles_per_tuple:.0f} cycles/tuple, {self.bytes_per_tuple} B/tuple"
        )


def profile_kernel(
    kernel: ir.KernelIR,
    tuples: int = 10_000_000,
    device: GpuDevice = DEFAULT_DEVICE,
) -> KernelProfile:
    """Profile a kernel the way Nsight Compute reports it."""
    timing = kernel_time(kernel, tuples, device)
    return KernelProfile(
        kernel_name=kernel.name,
        warp_occupancy_percent=timing.occupancy.percent,
        sm_utilization_percent=100.0 * timing.sm_utilization,
        memory_bound=timing.memory_bound,
        cycles_per_tuple=timing.cycles_per_tuple,
        bytes_per_tuple=timing.memory_profile.bytes_per_tuple,
    )
