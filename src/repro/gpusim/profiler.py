"""Nsight-Compute-style kernel profiles (paper section IV-A).

The paper profiles ``a + b`` and ``a * b`` kernels and reports SM
utilisation vs warp occupancy -- the evidence that simple decimal
arithmetic is memory-bound and that the compact representation pays off.
This module renders the same two numbers for any simulated kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.jit import ir
from repro.gpusim.device import DEFAULT_DEVICE, GpuDevice
from repro.gpusim.streaming import DEFAULT_CHUNK_ROWS, stream_timing
from repro.gpusim.timing import kernel_time


@dataclass(frozen=True)
class KernelProfile:
    """The headline Nsight numbers for one kernel."""

    kernel_name: str
    warp_occupancy_percent: float
    sm_utilization_percent: float
    memory_bound: bool
    cycles_per_tuple: float
    bytes_per_tuple: int

    def __str__(self) -> str:
        bound = "memory" if self.memory_bound else "compute"
        return (
            f"{self.kernel_name}: occupancy {self.warp_occupancy_percent:.0f}%, "
            f"SM util {self.sm_utilization_percent:.2f}%, {bound}-bound, "
            f"{self.cycles_per_tuple:.0f} cycles/tuple, {self.bytes_per_tuple} B/tuple"
        )


def profile_kernel(
    kernel: ir.KernelIR,
    tuples: int = 10_000_000,
    device: GpuDevice = DEFAULT_DEVICE,
) -> KernelProfile:
    """Profile a kernel the way Nsight Compute reports it."""
    timing = kernel_time(kernel, tuples, device)
    return KernelProfile(
        kernel_name=kernel.name,
        warp_occupancy_percent=timing.occupancy.percent,
        sm_utilization_percent=100.0 * timing.sm_utilization,
        memory_bound=timing.memory_bound,
        cycles_per_tuple=timing.cycles_per_tuple,
        bytes_per_tuple=timing.memory_profile.bytes_per_tuple,
    )


@dataclass(frozen=True)
class StreamedKernelProfile:
    """A kernel's chunked-execution profile: the Nsight 'streams' view."""

    profile: KernelProfile
    chunks: int
    transfer_ms_per_chunk: float
    kernel_ms_per_chunk: float
    serial_ms: float
    pipelined_ms: float
    overlap_speedup: float
    transfer_bound: bool

    def __str__(self) -> str:
        stage = "transfer" if self.transfer_bound else "compute"
        return (
            f"{self.profile}\n"
            f"  streamed x{self.chunks}: serial {self.serial_ms:.2f} ms -> "
            f"pipelined {self.pipelined_ms:.2f} ms "
            f"({self.overlap_speedup:.2f}x, {stage}-limited pipeline)"
        )


@dataclass(frozen=True)
class DataPlaneMeasurement:
    """Measured wall-clock of one kernel's data plane over real columns.

    Complements the simulated numbers: :class:`KernelProfile` says what the
    modelled GPU *would* take, this says what the numpy limb arithmetic in
    this process *did* take to produce the bit-exact result.
    """

    kernel_name: str
    rows: int
    seconds: float
    rows_per_second: float

    def __str__(self) -> str:
        return (
            f"{self.kernel_name}: data plane {self.seconds * 1e3:.2f} ms over "
            f"{self.rows:,} rows ({self.rows_per_second:,.0f} rows/s)"
        )


def measure_data_plane(
    kernel: ir.KernelIR,
    inputs: Dict[str, np.ndarray],
    rows: int,
    device: GpuDevice = DEFAULT_DEVICE,
    repeats: int = 1,
) -> DataPlaneMeasurement:
    """Run a kernel's data plane over real compact columns and time it.

    ``inputs`` maps the kernel's input column names to their ``(N, Lb)``
    compact byte matrices.  Best-of-``repeats`` wall clock; the simulated
    timing the executor also produces is discarded here.
    """
    from repro.gpusim import executor as gpu_executor

    best = float("inf")
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        gpu_executor.execute(kernel, inputs, rows, device=device, simulate_tuples=max(rows, 1))
        best = min(best, time.perf_counter() - started)
    return DataPlaneMeasurement(
        kernel_name=kernel.name,
        rows=rows,
        seconds=best,
        rows_per_second=rows / best if best > 0 else float("inf"),
    )


def profile_kernel_streamed(
    kernel: ir.KernelIR,
    tuples: int = 10_000_000,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    device: GpuDevice = DEFAULT_DEVICE,
    transfer_bytes: Optional[int] = None,
) -> StreamedKernelProfile:
    """Profile a kernel's chunked execution: per-chunk stages + overlap."""
    timing = stream_timing(
        kernel, tuples, chunk_rows, device, transfer_bytes=transfer_bytes
    )
    return StreamedKernelProfile(
        profile=profile_kernel(kernel, tuples, device),
        chunks=timing.chunks,
        transfer_ms_per_chunk=timing.transfer_seconds_per_chunk * 1e3,
        kernel_ms_per_chunk=timing.kernel_seconds_per_chunk * 1e3,
        serial_ms=timing.serial_seconds * 1e3,
        pipelined_ms=timing.pipelined_seconds * 1e3,
        overlap_speedup=timing.overlap_speedup,
        transfer_bound=timing.transfer_seconds_per_chunk
        >= timing.kernel_seconds_per_chunk,
    )
