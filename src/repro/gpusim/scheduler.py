"""Device scheduler: interleave kernels from concurrent queries on one GPU.

The engine's timing model charges each query as if it owned the device.
With many sessions in flight that is wrong twice over: independent kernels
can be *co-resident* on the SMs whenever their combined occupancy fits
(the same register-file arithmetic :mod:`repro.gpusim.occupancy` models for
a single kernel), and PCIe copies of one query overlap compute of another
(the copy and compute engines are distinct hardware units).

This module models a shared device as three resources:

``sm``
    The SM array.  A kernel segment demands its occupancy fraction; the
    set of running segments progresses at full rate while total demand
    stays <= 1.0 and degrades proportionally once oversubscribed
    (processor sharing -- aggregate SM throughput is conserved, never
    multiplied).
``pcie``
    The copy engine.  Transfers demand the full bus, so concurrent
    transfers share bandwidth equally but overlap freely with ``sm`` and
    ``host`` work of other queries.
``host``
    CPU-side work (disk scan, JIT compilation, operator pipeline
    overhead).  Sessions are independent OS threads, so host segments
    overlap each other and everything else.

:class:`DeviceScheduler` runs a deterministic event-driven simulation of a
*closed* serving loop: each session executes its queries in order, a
query's segments run sequentially, and a session's next query arrives the
instant its previous one finishes.  The result attributes overlapped
simulated time -- per-query latency (arrival to finish under contention),
makespan, and queries/sec -- instead of serializing whole queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Resource identifiers a :class:`Segment` may run on.
SM = "sm"
PCIE = "pcie"
HOST = "host"

_CAPACITY_SHARED = (SM, PCIE)  # capacity-1.0 processor-sharing resources

#: Numerical slack for "this segment is finished" comparisons.
_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """One sequential slice of a query's simulated work.

    ``seconds`` is the duration the single-query timing model charged --
    i.e. the time at full progress rate.  ``demand`` is the fraction of
    the resource the segment occupies while running: a kernel's SM demand
    is its occupancy (two 0.5-occupancy kernels are co-resident at full
    speed), transfers and un-attributed device passes demand 1.0, host
    segments overlap freely regardless of demand.
    """

    resource: str
    seconds: float
    demand: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.resource not in (SM, PCIE, HOST):
            raise ValueError(f"unknown resource {self.resource!r}")
        if self.seconds < 0 or math.isnan(self.seconds):
            raise ValueError(f"segment duration must be >= 0, got {self.seconds}")
        if not 0.0 < self.demand <= 1.0:
            raise ValueError(f"segment demand must be in (0, 1], got {self.demand}")


def segments_from_report(report) -> List[Segment]:
    """Decompose one query's :class:`ExecutionReport` into scheduler segments.

    The attribution mirrors how the single-query model charged the time:
    disk scan and the operator pipeline run on the host, PCIe charges go
    to the copy engine, each recorded JIT kernel launch becomes an SM
    segment demanding its occupancy, and the remaining device passes
    (filter/aggregate/sort, which the report does not attribute to a
    specific kernel) conservatively demand the whole SM array.  Compile
    time is host work: NVRTC runs on the submitting session's thread.
    """
    segments: List[Segment] = []

    def _add(resource: str, seconds: float, demand: float = 1.0, label: str = "") -> None:
        if seconds > 0:
            segments.append(Segment(resource, seconds, demand, label))

    _add(HOST, report.scan_seconds, label="scan")
    _add(HOST, report.compile_seconds, label="compile")
    _add(PCIE, report.pcie_seconds, label="pcie")
    kernel_attributed = 0.0
    for entry in report.kernel_executions:
        seconds = entry.kernel_seconds_per_chunk * max(entry.chunks, 1)
        kernel_attributed += seconds
        _add(SM, seconds, demand=entry.occupancy, label=entry.name)
    # Kernel time the per-launch records did not cover (defensive: the two
    # totals agree today) plus the unattributed device passes.
    _add(SM, max(report.kernel_seconds - kernel_attributed, 0.0), label="kernel-rest")
    _add(SM, report.filter_seconds, label="filter")
    _add(SM, report.aggregate_seconds, label="aggregate")
    _add(SM, report.sort_seconds, label="sort")
    _add(HOST, report.pipeline_seconds, label="pipeline")
    return segments


@dataclass
class ScheduledQuery:
    """Simulated placement of one query under contention."""

    session: str
    index: int  # position in the session's stream
    arrival: float
    finish: float
    busy_seconds: float  # sum of segment durations (contention-free time)

    @property
    def latency(self) -> float:
        """Arrival-to-finish simulated seconds, including queueing."""
        return self.finish - self.arrival

    @property
    def slowdown(self) -> float:
        """Latency relative to running alone on an idle device."""
        if self.busy_seconds <= 0:
            return 1.0
        return self.latency / self.busy_seconds


@dataclass
class ScheduleResult:
    """Outcome of simulating a set of session query streams."""

    queries: List[ScheduledQuery]
    makespan: float
    #: Sum of every segment's duration: what one fully serialized device
    #: (the pre-serving engine behaviour) would have taken.
    serialized_seconds: float
    #: Per-resource busy time (at most ``makespan`` each).
    busy_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.queries) / self.makespan

    @property
    def overlap_speedup(self) -> float:
        """How much faster the interleaved schedule is than serialization."""
        if self.makespan <= 0:
            return 1.0
        return self.serialized_seconds / self.makespan

    def latencies(self) -> List[float]:
        return [query.latency for query in self.queries]

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies(), q)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[int(position)]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class _Task:
    """One in-flight query inside the simulation."""

    __slots__ = ("session", "index", "segments", "position", "remaining", "arrival", "busy")

    def __init__(self, session: str, index: int, segments: List[Segment], arrival: float):
        self.session = session
        self.index = index
        self.segments = segments
        self.position = 0
        self.arrival = arrival
        self.busy = sum(segment.seconds for segment in segments)
        self.remaining = 0.0
        self._skip_empty()

    def _skip_empty(self) -> None:
        while self.position < len(self.segments) and self.segments[self.position].seconds <= 0:
            self.position += 1
        if self.position < len(self.segments):
            self.remaining = self.segments[self.position].seconds

    @property
    def done(self) -> bool:
        return self.position >= len(self.segments)

    @property
    def current(self) -> Segment:
        return self.segments[self.position]

    def advance_segment(self) -> None:
        self.position += 1
        self._skip_empty()


class DeviceScheduler:
    """Collects per-session query timelines and simulates their interleaving.

    Sessions submit each query's segments in execution order (the serving
    layer does this as queries complete); :meth:`simulate` then replays the
    closed loop on the simulated device.  Submission order across sessions
    does not matter -- only each session's internal order does -- so the
    result is deterministic regardless of how the asyncio event loop
    happened to interleave the real executions.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, List[List[Segment]]] = {}

    def submit(self, session: str, segments: Sequence[Segment]) -> None:
        """Append one query's segments to a session's stream."""
        self._streams.setdefault(session, []).append(list(segments))

    def submit_report(self, session: str, report) -> None:
        """Convenience: decompose an ExecutionReport and submit it."""
        self.submit(session, segments_from_report(report))

    @property
    def sessions(self) -> List[str]:
        return list(self._streams)

    @property
    def total_queries(self) -> int:
        return sum(len(stream) for stream in self._streams.values())

    def clear(self) -> None:
        self._streams.clear()

    def simulate(self) -> ScheduleResult:
        """Run the closed-loop discrete-event simulation."""
        pending = {session: list(stream) for session, stream in self._streams.items()}
        cursor = {session: 0 for session in pending}
        active: List[_Task] = []
        completed: List[ScheduledQuery] = []
        clock = 0.0
        busy = {SM: 0.0, PCIE: 0.0, HOST: 0.0}
        serialized = 0.0

        def _activate(session: str, arrival: float) -> None:
            """Start the session's next query, completing zero-work ones inline."""
            nonlocal serialized
            while cursor[session] < len(pending[session]):
                index = cursor[session]
                cursor[session] += 1
                task = _Task(session, index, pending[session][index], arrival)
                serialized += task.busy
                if task.done:  # a query of only zero-length segments
                    completed.append(
                        ScheduledQuery(session, index, arrival, arrival, task.busy)
                    )
                    continue
                active.append(task)
                return

        for session in pending:
            _activate(session, 0.0)

        while active:
            # Progress rate of every active task under processor sharing.
            demand = {SM: 0.0, PCIE: 0.0}
            for task in active:
                segment = task.current
                if segment.resource in _CAPACITY_SHARED:
                    demand[segment.resource] += segment.demand
            scale = {
                resource: 1.0 if total <= 1.0 else 1.0 / total
                for resource, total in demand.items()
            }
            rates = [
                scale[task.current.resource]
                if task.current.resource in _CAPACITY_SHARED
                else 1.0
                for task in active
            ]
            step = min(task.remaining / rate for task, rate in zip(active, rates))
            clock += step
            for resource, total in demand.items():
                if total > 0:
                    busy[resource] += step * min(total, 1.0)
            if any(task.current.resource == HOST for task in active):
                busy[HOST] += step

            still_active: List[_Task] = []
            finished_sessions: List[str] = []
            for task, rate in zip(active, rates):
                task.remaining -= step * rate
                if task.remaining > _EPS:
                    still_active.append(task)
                    continue
                task.advance_segment()
                if not task.done:
                    still_active.append(task)
                    continue
                completed.append(
                    ScheduledQuery(task.session, task.index, task.arrival, clock, task.busy)
                )
                finished_sessions.append(task.session)
            active = still_active
            for session in finished_sessions:
                _activate(session, clock)

        completed.sort(key=lambda query: (query.session, query.index))
        return ScheduleResult(
            queries=completed,
            makespan=clock,
            serialized_seconds=serialized,
            busy_seconds=busy,
        )
