"""GPU device model (an NVIDIA RTX A6000-like part, paper section IV).

The evaluation machine pairs two Xeon Gold 6130H CPUs with an RTX A6000
(48 GB GDDR6, PCIe 4.0) running CUDA 11.6.  The simulator only needs the
first-order resources the paper's results hinge on: SM count and clock,
per-SM thread/register/shared-memory limits, DRAM and PCIe bandwidths, and
a handful of efficiency knobs calibrated against the paper's measured
kernel times (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuDevice:
    """Static description of the simulated GPU."""

    name: str = "RTX A6000 (simulated)"
    sm_count: int = 84
    clock_hz: float = 1.41e9
    #: Integer-ALU lanes per SM that retire one 32-bit op per cycle.
    int_lanes_per_sm: int = 64
    max_threads_per_sm: int = 1536
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    shared_memory_per_block: int = 100 * 1024  # bytes (A6000: up to 100 KB)
    warp_size: int = 32

    #: GDDR6 capacity (bytes); bounds the streaming auto-chunk size.
    memory_bytes: float = 48e9
    #: GDDR6 peak bandwidth (bytes/s).
    dram_bandwidth: float = 768e9
    #: Fraction of peak DRAM bandwidth a fully-occupied, coalesced kernel
    #: sustains (calibrated).
    dram_efficiency: float = 0.55
    #: PCIe 4.0 x16 effective host<->device bandwidth (bytes/s).
    pcie_bandwidth: float = 22e9
    #: Fixed cost of one kernel launch (s).
    kernel_launch_overhead: float = 8e-6
    #: Fixed cost of one PCIe transfer (s).
    pcie_latency: float = 15e-6

    #: Extra 32-bit registers every thread uses beyond decimal value words
    #: (loop counters, pointers, the sign bytes).
    register_overhead: int = 8
    #: Fraction of a kernel's decimal value words that actually live in
    #: registers at once (the compiler reuses and spills the rest).
    register_pressure_factor: float = 0.75
    #: Occupancy below which memory latency stops being hidden; effective
    #: bandwidth scales with occupancy / this knee.
    latency_hiding_knee: float = 1.0

    @property
    def int_throughput(self) -> float:
        """32-bit integer operations retired per second, device-wide."""
        return self.sm_count * self.int_lanes_per_sm * self.clock_hz


@dataclass(frozen=True)
class HostSystem:
    """The host side of the evaluation machine (disk + DRAM)."""

    name: str = "2x Xeon Gold 6130H (simulated)"
    cores: int = 32
    clock_hz: float = 2.1e9
    dram_bandwidth: float = 100e9
    #: Effective table-scan rate from the mirrored SSDs through the storage
    #: layer.  Calibrated from Figure 8: UltraPrecise's LEN=2 Query 1 total
    #: (714 ms) minus compile/pipeline/PCIe/kernel terms leaves ~160 ms for a
    #: 0.21 GB scan.
    ssd_bandwidth: float = 1.3e9


#: The default device every benchmark uses.
DEFAULT_DEVICE = GpuDevice()

#: The default host system.
DEFAULT_HOST = HostSystem()
