"""Roofline timing model for simulated kernels and queries.

``kernel_time`` = max(compute, memory) + launch overhead, where

* compute = per-tuple PTX issue cycles (section III-C expansions) divided by
  the device's integer throughput, derated when occupancy is too low to
  hide latency;
* memory = compact bytes moved divided by effective DRAM bandwidth
  (peak x efficiency x coalescing factor).

Query-level costs add PCIe transfers (GPU databases in the paper include
them), the JIT compilation model (~320-423 ms for TPC-H Q1, section
IV-D1), and a host-side disk scan when the experiment includes I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.jit import ir
from repro.gpusim import memory, occupancy, ptx
from repro.gpusim.device import DEFAULT_DEVICE, DEFAULT_HOST, GpuDevice, HostSystem


@dataclass
class KernelTiming:
    """Timing breakdown of one kernel launch over N tuples."""

    tuples: int
    cycles_per_tuple: float
    compute_seconds: float
    memory_seconds: float
    launch_seconds: float
    occupancy: occupancy.Occupancy
    memory_profile: memory.MemoryProfile

    @property
    def seconds(self) -> float:
        """Elapsed time: memory plus compute plus launch.

        At the occupancies these kernels run at (Nsight shows ~50-100%
        occupancy but single-digit SM utilisation), loads and dependent
        arithmetic serialise rather than overlap, so the additive model
        matches the paper's measured sensitivity to instruction-count
        optimisations (Figures 10-12) better than a pure roofline max.
        """
        return self.compute_seconds + self.memory_seconds + self.launch_seconds

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds >= self.compute_seconds

    @property
    def sm_utilization(self) -> float:
        """Fraction of integer-issue slots used -- the Nsight 'SM %' figure.

        For a memory-bound kernel the ALUs idle while loads complete, so
        utilisation is the compute share of the elapsed time.
        """
        if self.seconds <= 0:
            return 0.0
        return min(1.0, self.compute_seconds / self.seconds)


#: Fixed per-tuple loop overhead: index math, bounds test, grid-stride
#: increment (the scaffolding of Listing 1's for-loop).
LOOP_OVERHEAD_CYCLES = 18.0

#: Address arithmetic per global load/store sequence.
ADDRESS_CYCLES = 6.0


#: Per-digit-per-word cost of converting a literal to DECIMAL at runtime
#: (the Figure 11 baseline): a parse/multiply-by-ten step over the full
#: ``Decimal<N>`` template array for each digit of the constant.
RUNTIME_CONST_CYCLES_PER_DIGIT_WORD = 7.0


def tuple_cycles(kernel: ir.KernelIR) -> float:
    """PTX issue cycles needed to process one tuple (all TPI threads)."""
    counts = ptx.PtxCounts()
    extra = LOOP_OVERHEAD_CYCLES
    for instruction in kernel.instructions:
        if isinstance(instruction, (ir.LoadColumn, ir.StoreResult)):
            extra += ADDRESS_CYCLES
        if isinstance(instruction, ir.LoadConst) and instruction.runtime_convert:
            # Constants occupy the kernel's template width (Listing 1), so
            # per-tuple conversion + alignment walks the full result array.
            digits = instruction.spec.precision + max(
                kernel.result_spec.scale - instruction.spec.scale, 0
            )
            extra += (
                RUNTIME_CONST_CYCLES_PER_DIGIT_WORD * digits * kernel.result_spec.words
            )
        if kernel.tpi > 1 and isinstance(instruction, (ir.DivOp, ir.ModOp)):
            counts.merge(newton_raphson_div_counts(instruction.spec.words))
        elif isinstance(instruction, ir.Align):
            # Alignments run the generic Decimal<N> multiply at the
            # kernel's template width (Listing 1 instantiates every
            # intermediate at the result's N).
            width = max(instruction.spec.words, kernel.result_spec.words)
            counts.merge(ptx.align_counts_at_width(instruction.exponent, width))
        else:
            counts.merge(ptx.expand(instruction))
    cycles = counts.cycles + extra
    if kernel.tpi > 1:
        cycles += shuffle_cycles(kernel)
    return cycles


def newton_raphson_div_counts(out_words: int) -> ptx.PtxCounts:
    """Division cost on the multi-threaded (CGBN) path, section IV-C1.

    Newton-Raphson converges in ~log2(bits) iterations of two full-width
    multiplies -- dramatically cheaper than the single-threaded binary
    search at high precision.
    """
    counts = ptx.PtxCounts()
    bits = 32 * out_words
    iterations = max(4, math.ceil(math.log2(bits)) + 2)
    mul_cost = max(1, out_words // 2) ** 2
    counts.add("mad.lo.u32", 2 * iterations * mul_cost)
    counts.add("mad.hi.u32", 2 * iterations * mul_cost)
    counts.add("addc.cc.u32", 2 * iterations * mul_cost)
    counts.add("setp", iterations)
    counts.add("bfind.u32", 2 * out_words)
    return counts


def shuffle_cycles(kernel: ir.KernelIR) -> float:
    """Inter-thread communication cost of a TPI group per tuple.

    Carries/signs cross thread boundaries on every arithmetic op
    (log2(TPI) shuffle rounds), and multiplications/divisions broadcast
    operand words across the group (section III-E1).
    """
    rounds = math.log2(kernel.tpi)
    cycles = 0.0
    for instruction in kernel.instructions:
        if isinstance(instruction, (ir.AddOp, ir.SubOp, ir.Align)):
            cycles += 2 * rounds * ptx.PTX_CYCLES["shfl.sync"]
        elif isinstance(instruction, (ir.MulOp, ir.DivOp, ir.ModOp)):
            cycles += kernel.tpi * ptx.PTX_CYCLES["shfl.sync"]
    return cycles * kernel.tpi  # cost is paid by every thread in the group


def kernel_time(
    kernel: ir.KernelIR,
    tuples: int,
    device: GpuDevice = DEFAULT_DEVICE,
    non_compact: bool = False,
) -> KernelTiming:
    """Simulated wall time of one kernel launch."""
    occ = occupancy.compute(kernel, device)
    mem = memory.memory_profile(kernel, device, non_compact=non_compact)
    cycles = tuple_cycles(kernel)

    latency_hiding = min(1.0, occ.occupancy / (0.5 * device.latency_hiding_knee))
    compute_seconds = tuples * cycles / (device.int_throughput * latency_hiding)

    effective_bandwidth = (
        device.dram_bandwidth
        * device.dram_efficiency
        * mem.coalescing
        * min(1.0, occ.occupancy / (0.5 * device.latency_hiding_knee))
    )
    memory_seconds = mem.total_bytes(tuples) / effective_bandwidth

    return KernelTiming(
        tuples=tuples,
        cycles_per_tuple=cycles,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        launch_seconds=device.kernel_launch_overhead,
        occupancy=occ,
        memory_profile=mem,
    )


def pcie_time(bytes_moved: int, device: GpuDevice = DEFAULT_DEVICE) -> float:
    """Host<->device transfer time for a payload."""
    if bytes_moved <= 0:
        return 0.0
    return device.pcie_latency + bytes_moved / device.pcie_bandwidth


#: Fraction of streaming DRAM efficiency a hash build/probe sustains: the
#: accesses are random (bucket chasing), not coalesced sequential reads.
HASH_ACCESS_EFFICIENCY = 0.25

#: Bytes touched per tuple in a join's key pass: the key plus a slot
#: pointer on the hash path, the packed key array on the nested-loop path.
JOIN_KEY_BYTES = 12.0
NESTED_LOOP_KEY_BYTES = 8.0


def dram_pass_time(
    bytes_moved: float, device: GpuDevice = DEFAULT_DEVICE, random_access: bool = False
) -> float:
    """One device-side pass over ``bytes_moved`` (no launch overhead).

    ``random_access`` derates the streaming bandwidth by
    :data:`HASH_ACCESS_EFFICIENCY` (hash-table builds/probes).
    """
    bandwidth = device.dram_bandwidth * device.dram_efficiency
    if random_access:
        bandwidth *= HASH_ACCESS_EFFICIENCY
    return bytes_moved / bandwidth


def hash_join_time(
    left_tuples: float, right_tuples: float, device: GpuDevice = DEFAULT_DEVICE
) -> float:
    """Build over the right side plus probe over the left, both at
    hash-table (random access) bandwidth, one launch per pass."""
    return (
        dram_pass_time((left_tuples + right_tuples) * JOIN_KEY_BYTES, device, random_access=True)
        + device.kernel_launch_overhead
    )


def nested_loop_join_time(
    left_tuples: float, right_tuples: float, device: GpuDevice = DEFAULT_DEVICE
) -> float:
    """Every probe tuple streams the whole build array: no build pass and a
    single launch, but O(left x right) sequential key traffic -- only wins
    when the build side is tiny (cf. "On GPU Implementation for
    Multi-Precision Integer Division": per-op asymmetries make plan choice
    a cost question, not a fixed shape)."""
    return (
        dram_pass_time(left_tuples * right_tuples * NESTED_LOOP_KEY_BYTES, device)
        + device.kernel_launch_overhead
    )


#: JIT compilation model: NVRTC base latency plus per-IR-op cost.  TPC-H Q1
#: compiles in ~320 ms at LEN=2 rising to ~423 ms at LEN=32 (section IV-D1);
#: the per-op term reflects "the longer code generated".
COMPILE_BASE_SECONDS = 0.260
COMPILE_PER_KERNEL_SECONDS = 0.025
COMPILE_PER_OP_SECONDS = 0.00025


def compile_time(kernels, include_base: bool = True) -> float:
    """Simulated JIT compilation wall time for a set of kernels.

    ``include_base`` charges the one-off NVRTC startup; callers compiling
    several kernels for one query charge it exactly once.
    """
    kernels = list(kernels)
    if not kernels:
        return 0.0
    ops = sum(len(kernel.instructions) * max(1, kernel.result_spec.words // 2) for kernel in kernels)
    return (
        (COMPILE_BASE_SECONDS if include_base else 0.0)
        + COMPILE_PER_KERNEL_SECONDS * len(kernels)
        + COMPILE_PER_OP_SECONDS * ops
    )


def disk_scan_time(bytes_scanned: int, host: HostSystem = DEFAULT_HOST) -> float:
    """Host-side table scan from SSD."""
    return bytes_scanned / host.ssd_bandwidth
