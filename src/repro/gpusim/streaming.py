"""Chunked (streamed) kernel execution with transfer/compute overlap.

The GPU-database literature the paper builds on (GPUDB, HippogriffDB --
section V) is dominated by the PCIe transfer bottleneck; the standard
remedy is to split a column batch into chunks and overlap chunk N+1's
host-to-device copy with chunk N's kernel using CUDA streams.

``execute_streamed`` models exactly that: the data plane runs chunk by
chunk (bit-exact, results concatenated), and the time model pipelines the
per-chunk transfer and kernel stages::

    total = first_transfer + max(transfer, kernel) * (chunks - 1) + last_kernel

compared with the serial ``transfer_total + kernel_total``.

:class:`StreamingConfig` is the engine-facing knob: the ``Database``
facade threads it through :class:`~repro.engine.plan.physical.QueryContext`
to the projection/aggregation operators, which route every JIT kernel
through this module instead of the monolithic executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import ir
from repro.errors import ExecutionError
from repro.gpusim.device import DEFAULT_DEVICE, GpuDevice
from repro.gpusim.executor import execute
from repro.gpusim.timing import kernel_time, pcie_time

#: Default rows per stream chunk.
DEFAULT_CHUNK_ROWS = 1_000_000

#: Auto-sizing floor: chunks smaller than this are launch-overhead bound.
MIN_AUTO_CHUNK_ROWS = 65_536

#: Auto-sizing target: enough chunks that the first transfer and last
#: kernel (the pipeline's un-overlapped ends) are a small share of total.
AUTO_PIPELINE_DEPTH = 8


@dataclass(frozen=True)
class StreamingConfig:
    """Engine configuration for chunked streaming execution.

    ``chunk_rows=None`` auto-sizes chunks per kernel: each in-flight chunk
    set (double-buffered inputs plus the result column) must fit in
    ``memory_fraction`` of the device's DRAM -- so wide LEN configurations
    stream in proportionally smaller chunks -- and the batch is split into
    at least :data:`AUTO_PIPELINE_DEPTH` chunks so the pipeline's fill and
    drain stages stay a small share of the total.
    """

    enabled: bool = False
    chunk_rows: Optional[int] = DEFAULT_CHUNK_ROWS
    #: Fraction of device memory one pipelined chunk set may occupy.
    memory_fraction: float = 0.125

    def __post_init__(self) -> None:
        # Validate at construction: ``chunk_rows=0`` used to survive until
        # a falsy-or re-defaulted it deep in the cost model (the same bug
        # class as the ``simulate_rows=0`` fix) -- fail loudly instead.
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ExecutionError(
                f"chunk_rows must be >= 1 (got {self.chunk_rows}); "
                "use chunk_rows=None for auto-sizing"
            )

    def resolve_chunk_rows(
        self, kernel: ir.KernelIR, device: GpuDevice, tuples: Optional[int] = None
    ) -> int:
        """Rows per chunk for one kernel (explicit, or auto-sized)."""
        if self.chunk_rows is not None:
            return self.chunk_rows
        # Double-buffered inputs (copy of chunk N+1 overlaps compute on N)
        # plus the result column written back.
        bytes_per_row = 2 * kernel.bytes_read_per_tuple + kernel.bytes_written_per_tuple
        budget = self.memory_fraction * device.memory_bytes
        rows = int(budget / max(bytes_per_row, 1))
        if tuples is not None:
            rows = min(rows, math.ceil(tuples / AUTO_PIPELINE_DEPTH))
        return max(MIN_AUTO_CHUNK_ROWS, rows)


@dataclass(frozen=True)
class StreamTiming:
    """The pipelined-vs-serial time model of one chunked execution."""

    chunks: int
    transfer_seconds_per_chunk: float
    kernel_seconds_per_chunk: float

    @property
    def serial_seconds(self) -> float:
        return self.chunks * (
            self.transfer_seconds_per_chunk + self.kernel_seconds_per_chunk
        )

    @property
    def pipelined_seconds(self) -> float:
        if self.chunks == 0:
            return 0.0
        transfer = self.transfer_seconds_per_chunk
        compute = self.kernel_seconds_per_chunk
        return transfer + max(transfer, compute) * (self.chunks - 1) + compute

    @property
    def overlap_speedup(self) -> float:
        if self.pipelined_seconds == 0:
            return 1.0
        return self.serial_seconds / self.pipelined_seconds


def stream_timing(
    kernel: ir.KernelIR,
    simulate_tuples: int,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    device: GpuDevice = DEFAULT_DEVICE,
    transfer_bytes: Optional[int] = None,
) -> StreamTiming:
    """Time model of a chunked execution, without running the data plane.

    ``transfer_bytes`` overrides the host-to-device payload (the engine
    passes only the bytes of columns not already resident on the device);
    the default ships every kernel input column in full.
    """
    if chunk_rows < 1:
        raise ExecutionError("chunk_rows must be positive")
    if simulate_tuples <= 0:
        return StreamTiming(0, 0.0, 0.0)
    chunks = max(1, math.ceil(simulate_tuples / chunk_rows))
    rows_per_chunk = simulate_tuples / chunks
    if transfer_bytes is None:
        bytes_per_tuple = sum(
            spec.compact_bytes for spec in kernel.input_columns.values()
        )
        transfer_bytes = int(bytes_per_tuple * simulate_tuples)
    transfer = pcie_time(int(transfer_bytes / chunks), device)
    compute = kernel_time(kernel, int(rows_per_chunk), device).seconds
    return StreamTiming(chunks, transfer, compute)


@dataclass
class StreamedRun:
    """Result + pipelined timing of a chunked kernel execution."""

    result: DecimalVector
    chunks: int
    transfer_seconds_per_chunk: float
    kernel_seconds_per_chunk: float
    serial_seconds: float
    pipelined_seconds: float

    @property
    def overlap_speedup(self) -> float:
        if self.pipelined_seconds == 0:
            return 1.0
        return self.serial_seconds / self.pipelined_seconds


def execute_streamed(
    kernel: ir.KernelIR,
    columns: Dict[str, np.ndarray],
    tuples: int,
    simulate_tuples: int,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    device: GpuDevice = DEFAULT_DEVICE,
    transfer_bytes: Optional[int] = None,
) -> StreamedRun:
    """Execute a kernel in chunks with modelled transfer/compute overlap.

    ``tuples`` real rows are processed (in ``ceil(tuples / real_chunk)``
    chunks sized proportionally to the simulated chunking); timing uses
    ``simulate_tuples`` split into ``chunk_rows`` chunks.  An empty input
    (``tuples=0``) is a valid no-op: the run carries an empty result
    vector, ``chunks=0`` and zero timings.
    """
    if chunk_rows < 1:
        raise ExecutionError("chunk_rows must be positive")
    if tuples == 0:
        return StreamedRun(
            result=_empty_vector(kernel),
            chunks=0,
            transfer_seconds_per_chunk=0.0,
            kernel_seconds_per_chunk=0.0,
            serial_seconds=0.0,
            pipelined_seconds=0.0,
        )
    timing = stream_timing(
        kernel, simulate_tuples, chunk_rows, device, transfer_bytes=transfer_bytes
    )
    chunks = max(timing.chunks, 1)

    # Real data plane: process in the same number of chunks.
    real_chunk = max(1, math.ceil(tuples / chunks))
    pieces: List[DecimalVector] = []
    for start in range(0, tuples, real_chunk):
        stop = min(start + real_chunk, tuples)
        piece = execute(
            kernel,
            {name: data[start:stop] for name, data in columns.items()},
            stop - start,
            device=device,
            simulate_tuples=stop - start,
        )
        pieces.append(piece.result)
    result = _concatenate(pieces)

    return StreamedRun(
        result=result,
        chunks=timing.chunks,
        transfer_seconds_per_chunk=timing.transfer_seconds_per_chunk,
        kernel_seconds_per_chunk=timing.kernel_seconds_per_chunk,
        serial_seconds=timing.serial_seconds,
        pipelined_seconds=timing.pipelined_seconds,
    )


def _empty_vector(kernel: ir.KernelIR) -> DecimalVector:
    spec = kernel.result_spec
    return DecimalVector(
        spec,
        np.zeros(0, dtype=bool),
        np.zeros((0, spec.words), dtype=np.uint32),
    )


def _concatenate(pieces: List[DecimalVector]) -> DecimalVector:
    if not pieces:
        raise ExecutionError("no chunks were executed")
    spec = pieces[0].spec
    negative = np.concatenate([piece.negative for piece in pieces])
    words = np.concatenate([piece.words for piece in pieces], axis=0)
    return DecimalVector(spec, negative, words)
