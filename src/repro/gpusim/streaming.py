"""Chunked (streamed) kernel execution with transfer/compute overlap.

The GPU-database literature the paper builds on (GPUDB, HippogriffDB --
section V) is dominated by the PCIe transfer bottleneck; the standard
remedy is to split a column batch into chunks and overlap chunk N+1's
host-to-device copy with chunk N's kernel using CUDA streams.

``execute_streamed`` models exactly that: the data plane runs chunk by
chunk (bit-exact, results concatenated), and the time model pipelines the
per-chunk transfer and kernel stages::

    total = first_transfer + max(transfer, kernel) * (chunks - 1) + last_kernel

compared with the serial ``transfer_total + kernel_total``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import ir
from repro.errors import ExecutionError
from repro.gpusim.device import DEFAULT_DEVICE, GpuDevice
from repro.gpusim.executor import execute
from repro.gpusim.timing import kernel_time, pcie_time

#: Default rows per stream chunk.
DEFAULT_CHUNK_ROWS = 1_000_000


@dataclass
class StreamedRun:
    """Result + pipelined timing of a chunked kernel execution."""

    result: DecimalVector
    chunks: int
    transfer_seconds_per_chunk: float
    kernel_seconds_per_chunk: float
    serial_seconds: float
    pipelined_seconds: float

    @property
    def overlap_speedup(self) -> float:
        if self.pipelined_seconds == 0:
            return 1.0
        return self.serial_seconds / self.pipelined_seconds


def execute_streamed(
    kernel: ir.KernelIR,
    columns: Dict[str, np.ndarray],
    tuples: int,
    simulate_tuples: int,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    device: GpuDevice = DEFAULT_DEVICE,
) -> StreamedRun:
    """Execute a kernel in chunks with modelled transfer/compute overlap.

    ``tuples`` real rows are processed (in ``ceil(tuples / real_chunk)``
    chunks sized proportionally to the simulated chunking); timing uses
    ``simulate_tuples`` split into ``chunk_rows`` chunks.
    """
    if chunk_rows < 1:
        raise ExecutionError("chunk_rows must be positive")
    chunks = max(1, math.ceil(simulate_tuples / chunk_rows))

    # Real data plane: process in the same number of chunks.
    real_chunk = max(1, math.ceil(tuples / chunks))
    pieces: List[DecimalVector] = []
    for start in range(0, tuples, real_chunk):
        stop = min(start + real_chunk, tuples)
        piece = execute(
            kernel,
            {name: data[start:stop] for name, data in columns.items()},
            stop - start,
            device=device,
            simulate_tuples=stop - start,
        )
        pieces.append(piece.result)
    result = _concatenate(pieces)

    # Time model: per-chunk transfer and kernel stages.
    rows_per_chunk = simulate_tuples / chunks
    bytes_per_tuple = sum(
        spec.compact_bytes for spec in kernel.input_columns.values()
    )
    transfer = pcie_time(int(bytes_per_tuple * rows_per_chunk), device)
    compute = kernel_time(kernel, int(rows_per_chunk), device).seconds
    serial = chunks * (transfer + compute)
    pipelined = transfer + max(transfer, compute) * max(chunks - 1, 0) + compute
    return StreamedRun(
        result=result,
        chunks=chunks,
        transfer_seconds_per_chunk=transfer,
        kernel_seconds_per_chunk=compute,
        serial_seconds=serial,
        pipelined_seconds=pipelined,
    )


def _concatenate(pieces: List[DecimalVector]) -> DecimalVector:
    if not pieces:
        raise ExecutionError("no chunks were executed")
    spec = pieces[0].spec
    negative = np.concatenate([piece.negative for piece in pieces])
    words = np.concatenate([piece.words for piece in pieces], axis=0)
    return DecimalVector(spec, negative, words)
