"""TPC-H data generation (the slice the paper's evaluation needs).

Figure 14(b) runs TPC-H Q1 with the DECIMAL columns widened so results fit
2/4/8/16/32 words; Table I runs Q2-Q22 to show non-DECIMAL queries are
unimpaired.  We generate a faithful ``lineitem`` (the columns Q1 touches,
with TPC-H's value distributions) and encode per-query operator profiles
for the Table I comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.decimal.context import DecimalSpec
from repro.storage.column import Column
from repro.storage.relation import Relation

#: TPC-H Q1's original decimal spec for all four columns.
ORIGINAL_SPEC = DecimalSpec(12, 2)

#: Q1's date cutoff (1998-12-01 minus 90 days = 1998-09-02), in days since
#: the 1992-01-01 epoch the generator uses.
SHIPDATE_CUTOFF = 2436

#: Extended precisions per LEN for l_quantity / l_extendedprice
#: ("we extend the precision ... and guarantee that the results can be
#: stored in the 32-bit word array with lengths of 2, 4, 8, 16, 32").
#: The SUM aggregations add ceil(log10 N)=7 digits and the expression
#: multiplies by two DECIMAL(3,2) factors, so the base precisions below
#: keep the widest aggregate inside the target LEN.
EXTENDED_PRECISION = {2: 8, 4: 25, 8: 60, 16: 135, 32: 285}


def lineitem(
    rows: int = 20_000,
    seed: int = 7,
    quantity_spec: Optional[DecimalSpec] = None,
    price_spec: Optional[DecimalSpec] = None,
) -> Relation:
    """Generate the ``lineitem`` columns TPC-H Q1 reads.

    Distributions follow the TPC-H spec: quantity uniform [1, 50], price
    derived per part, discount [0.00, 0.10], tax [0.00, 0.08], returnflag
    in {A, N, R}, linestatus in {O, F}, shipdate spread over ~7 years.
    """
    rng = np.random.default_rng(seed)
    quantity_spec = quantity_spec or ORIGINAL_SPEC
    price_spec = price_spec or ORIGINAL_SPEC

    quantity = rng.integers(1, 51, rows)
    quantity_unscaled = [int(q) * 10**quantity_spec.scale for q in quantity]

    price = rng.integers(90000, 10500000, rows)  # cents: 900.00 .. 104999.99
    price_unscaled = [int(p) * 10 ** (price_spec.scale - 2) for p in price]

    discount = rng.integers(0, 11, rows)  # 0.00 .. 0.10
    tax = rng.integers(0, 9, rows)  # 0.00 .. 0.08

    returnflag = rng.choice(np.array(["A", "N", "R"]), rows)
    linestatus = rng.choice(np.array(["O", "F"]), rows)
    shipdate = rng.integers(0, 2526, rows)  # days since 1992-01-01

    return Relation(
        "lineitem",
        [
            Column.decimal_from_unscaled("l_quantity", quantity_unscaled, quantity_spec),
            Column.decimal_from_unscaled("l_extendedprice", price_unscaled, price_spec),
            Column.decimal_from_unscaled(
                "l_discount", [int(d) for d in discount], DecimalSpec(3, 2)
            ),
            Column.decimal_from_unscaled("l_tax", [int(t) for t in tax], DecimalSpec(3, 2)),
            Column.chars("l_returnflag", [str(x) for x in returnflag], 1),
            Column.chars("l_linestatus", [str(x) for x in linestatus], 1),
            Column.dates("l_shipdate", [int(d) for d in shipdate]),
        ],
    )


def lineitem_for_len(length: int, rows: int = 20_000, seed: int = 7) -> Relation:
    """Q1's relation at an extended precision (Figure 14(b)'s LEN axis)."""
    precision = EXTENDED_PRECISION[length]
    spec = DecimalSpec(precision, 2)
    return lineitem(rows=rows, seed=seed, quantity_spec=spec, price_spec=spec)


def orders(rows: int = 5_000, seed: int = 17, lineitem_orders: int = 5_000) -> Relation:
    """The ``orders`` columns Q3-style join queries need.

    Order keys are 1..lineitem_orders so they join against a lineitem
    generated with the same key space.
    """
    rng = np.random.default_rng(seed)
    keys = np.arange(1, rows + 1)
    total = rng.integers(100000, 50000000, rows)  # cents
    orderdate = rng.integers(0, 2526, rows)
    priority = rng.choice(np.array(["1-URGENT", "3-MEDIUM", "5-LOW"]), rows)
    custkey = rng.integers(1, max(rows // 10, 2), rows)
    return Relation(
        "orders",
        [
            Column.integers("o_orderkey", [int(k) for k in keys]),
            Column.decimal_from_unscaled(
                "o_totalprice", [int(t) for t in total], DecimalSpec(12, 2)
            ),
            Column.dates("o_orderdate", [int(d) for d in orderdate]),
            Column.chars("o_orderpriority", [str(p) for p in priority], 10),
            Column.integers("o_custkey", [int(c) for c in custkey]),
        ],
    )


#: The 25 TPC-H nations (spec section 4.2.3), for Q5-style grouping.
NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]


def customer(rows: int = 500, seed: int = 19) -> Relation:
    """The ``customer`` columns Q3/Q5/Q10 need."""
    rng = np.random.default_rng(seed)
    segments = rng.choice(
        np.array(["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]), rows
    )
    nationkeys = rng.integers(0, len(NATION_NAMES), rows)
    return Relation(
        "customer",
        [
            Column.integers("c_custkey", list(range(1, rows + 1))),
            Column.chars("c_mktsegment", [str(s) for s in segments], 10),
            Column.integers("c_nationkey", [int(k) for k in nationkeys]),
        ],
    )


def nation() -> Relation:
    """The fixed 25-row ``nation`` relation (Q5's GROUP BY target)."""
    return Relation(
        "nation",
        [
            Column.integers("n_nationkey", list(range(len(NATION_NAMES)))),
            Column.chars("n_name", NATION_NAMES, 25),
        ],
    )


def lineitem_with_orderkeys(rows: int = 5_000, seed: int = 7, order_count: int = 5_000) -> Relation:
    """A lineitem including ``l_orderkey`` for join queries."""
    relation = lineitem(rows=rows, seed=seed)
    rng = np.random.default_rng(seed + 1)
    keys = rng.integers(1, order_count + 1, rows)
    relation.add(Column.integers("l_orderkey", [int(k) for k in keys]))
    return relation


@dataclass(frozen=True)
class QueryProfile:
    """Operator mix of one TPC-H query (the Table I substrate).

    ``base_ms`` is the non-DECIMAL operator cost (joins, scans, sorts) the
    two engines share -- taken from RateupDB's Table I column, since the
    point of the experiment is that UltraPrecise leaves it unchanged.
    ``decimal_expressions``/``decimal_aggregates`` pass through the JIT
    engine; ``subquery_decimal_delivery`` marks the Q18/Q20 pattern whose
    results cross a subquery boundary outside the JIT path.
    """

    name: str
    base_ms: float
    decimal_expressions: int = 0
    decimal_aggregates: int = 0
    subquery_decimal_delivery: bool = False


#: Table I: RateupDB execution times (ms) and each query's decimal usage.
TPCH_PROFILES: Dict[str, QueryProfile] = {
    profile.name: profile
    for profile in [
        QueryProfile("Q2", 160, decimal_aggregates=1, subquery_decimal_delivery=False),
        QueryProfile("Q3", 278, decimal_expressions=1, decimal_aggregates=1),
        QueryProfile("Q4", 68),
        QueryProfile("Q5", 409, decimal_expressions=1, decimal_aggregates=1),
        QueryProfile("Q6", 71, decimal_expressions=1, decimal_aggregates=1),
        QueryProfile("Q7", 562, decimal_expressions=1, decimal_aggregates=1),
        QueryProfile("Q8", 301, decimal_expressions=2, decimal_aggregates=1),
        QueryProfile("Q9", 612, decimal_expressions=2, decimal_aggregates=1),
        QueryProfile("Q10", 490, decimal_expressions=1, decimal_aggregates=1),
        QueryProfile("Q11", 120, decimal_expressions=1, decimal_aggregates=2),
        QueryProfile("Q12", 70),
        QueryProfile("Q13", 106),
        QueryProfile("Q14", 81, decimal_expressions=2, decimal_aggregates=2),
        QueryProfile("Q15", 227, decimal_expressions=1, decimal_aggregates=1),
        QueryProfile("Q16", 97),
        QueryProfile("Q17", 400, decimal_expressions=1, decimal_aggregates=2),
        QueryProfile("Q18", 447, decimal_aggregates=2, subquery_decimal_delivery=True),
        QueryProfile("Q19", 94, decimal_expressions=1, decimal_aggregates=1),
        QueryProfile("Q20", 367, decimal_aggregates=1, subquery_decimal_delivery=True),
        QueryProfile("Q21", 551),
        QueryProfile("Q22", 42, decimal_aggregates=2),
    ]
}

#: Table I's UltraPrecise row (ms), used as the reference for shape checks.
TPCH_ULTRAPRECISE_PAPER_MS: Dict[str, float] = {
    "Q2": 169, "Q3": 271, "Q4": 67, "Q5": 400, "Q6": 57, "Q7": 538,
    "Q8": 314, "Q9": 614, "Q10": 503, "Q11": 136, "Q12": 67, "Q13": 100,
    "Q14": 72, "Q15": 226, "Q16": 95, "Q17": 332, "Q18": 690, "Q19": 99,
    "Q20": 476, "Q21": 586, "Q22": 46,
}
