"""A minimal catalog: named relations registered with the engine."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CatalogError
from repro.storage.relation import Relation


class Catalog:
    """Registry of relations available to queries."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}

    def register(self, relation: Relation, replace: bool = False) -> None:
        if relation.name in self._relations and not replace:
            raise CatalogError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"relation {name!r} not found") from None

    def drop(self, name: str) -> None:
        if name not in self._relations:
            raise CatalogError(f"relation {name!r} not found")
        del self._relations[name]

    def names(self) -> List[str]:
        return sorted(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)
