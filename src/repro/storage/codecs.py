"""Pluggable storage codecs for decimal columns, with per-chunk zone maps.

The compact ``(N, Lb)`` layout of section III-B is a *fixed-width*
encoding: every row pays for the declared precision's worst case, and the
streaming model (DESIGN.md §5) is transfer-bound exactly where those bytes
cross PCIe.  This module turns bytes-on-the-wire into a per-column choice:

* :class:`CompactCodec` -- the existing layout, unchanged on the wire;
* :class:`OrderPreservingCodec` -- a decimalInfinite-style variable-length
  encoding (:mod:`repro.core.decimal.dinf`) whose byte order equals
  numeric order, so filters compare encoded bytes before expansion;
* :class:`NarrowCodec` -- a fixed 4-byte offset-binary container for
  columns the analyzer's range pass *proves* fit signed int32
  (``RANGE005``, :func:`repro.analysis.ranges.prove_narrow_container`).
  Constructing it without a proof raises; encoding re-validates every
  value so an observed-interval proof can never be silently violated by
  later appends.

Every codec (compact included) records a :class:`ZoneMap` per chunk at
encode time -- min/max unscaled value, null and zero counts -- so scans
skip chunks a pushed-down filter provably rejects and the cost model
refines selectivity estimates from real data ranges.

The compact matrix stays the in-memory source of truth on
:class:`~repro.storage.column.Column`; an :class:`EncodedColumn` is the
wire/disk representation the scan, streaming, residency and cost layers
charge.  Results always materialise from the compact bytes, so codecs can
never change answers -- only the simulated byte volume and the filter
evaluation strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decimal import dinf
from repro.core.decimal.context import DecimalSpec
from repro.errors import StorageError

#: Rows per encoded chunk (and zone map) unless the column overrides it.
DEFAULT_CHUNK_ROWS = 4096

#: Bytes per value of the narrow 32-bit container.
NARROW_WIDTH = 4

_INT32_MAX = (1 << 31) - 1
_NARROW_OFFSET = 1 << 31


@dataclass(frozen=True)
class ZoneMap:
    """Per-chunk statistics recorded at encode time.

    ``min_unscaled``/``max_unscaled`` are exact (computed from the data,
    not the spec), so both pruning verdicts are sound: a chunk whose whole
    range fails a predicate can be skipped, one whose whole range passes
    needs no per-row work.  The engine stores no NULLs, so ``null_count``
    is always 0 here -- kept in the format for fidelity with the
    decimalInfinite-style on-disk layout.
    """

    row_start: int
    rows: int
    min_unscaled: int
    max_unscaled: int
    null_count: int = 0
    zero_count: int = 0

    @property
    def row_stop(self) -> int:
        return self.row_start + self.rows

    def evaluate(self, op: str, literal: int) -> Optional[bool]:
        """Chunk-level verdict of ``column <op> literal``.

        ``True``: every row matches; ``False``: no row matches; ``None``:
        the zone cannot decide and rows must be compared individually.
        """
        lo, hi = self.min_unscaled, self.max_unscaled
        if op == "<":
            return True if hi < literal else (False if lo >= literal else None)
        if op == "<=":
            return True if hi <= literal else (False if lo > literal else None)
        if op == ">":
            return True if lo > literal else (False if hi <= literal else None)
        if op == ">=":
            return True if lo >= literal else (False if hi < literal else None)
        if op == "=":
            if literal < lo or literal > hi:
                return False
            return True if lo == hi == literal else None
        if op == "<>":
            if literal < lo or literal > hi:
                return True
            return False if lo == hi == literal else None
        return None


@dataclass
class EncodedChunk:
    """One chunk's encoded payload plus its zone map."""

    zone: ZoneMap
    #: Codec-specific byte matrix, ``(rows, width)`` uint8 (zero-padded for
    #: variable-length codecs; see :func:`repro.core.decimal.dinf.encode`).
    data: np.ndarray
    #: Per-row true encoded lengths; ``None`` for fixed-width codecs.
    lengths: Optional[np.ndarray]
    #: Bytes this chunk puts on the wire (padding excluded).
    wire_bytes: int


@dataclass
class EncodedColumn:
    """A decimal column's wire representation under one codec."""

    codec: "DecimalCodec"
    spec: DecimalSpec
    chunk_rows: int
    chunks: List[EncodedChunk] = field(default_factory=list)

    @property
    def rows(self) -> int:
        return sum(chunk.zone.rows for chunk in self.chunks)

    @property
    def wire_bytes(self) -> int:
        return sum(chunk.wire_bytes for chunk in self.chunks)

    @property
    def zones(self) -> List[ZoneMap]:
        return [chunk.zone for chunk in self.chunks]


class DecimalCodec:
    """Base codec: chunked encode with zone maps, decode, byte compare."""

    name: str = "abstract"
    #: Whether ``memcmp`` over encoded bytes equals numeric comparison.
    order_preserving: bool = False

    # -- per-chunk primitives (codec-specific) ------------------------------

    def _encode_chunk(
        self,
        values: List[int],
        compact_slice: np.ndarray,
        spec: DecimalSpec,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
        """Encode one chunk; returns ``(data, lengths, wire_bytes)``."""
        raise NotImplementedError

    def decode_chunk(self, chunk: EncodedChunk, spec: DecimalSpec) -> List[int]:
        """Signed unscaled values of one chunk (round-trip oracle)."""
        raise NotImplementedError

    def encode_literal(self, unscaled: int, spec: DecimalSpec) -> np.ndarray:
        """Encode a comparison literal; raises when unrepresentable."""
        raise StorageError(f"codec {self.name!r} cannot encode comparison literals")

    def compare_chunk(self, chunk: EncodedChunk, literal: np.ndarray) -> np.ndarray:
        """Rowwise -1/0/+1 of chunk rows vs an encoded literal."""
        raise StorageError(f"codec {self.name!r} does not compare encoded bytes")

    # -- column-level driver ------------------------------------------------

    def encode_column(
        self,
        compact: np.ndarray,
        unscaled: Sequence[int],
        spec: DecimalSpec,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> EncodedColumn:
        """Chunk a column, encode each chunk, record its zone map."""
        if chunk_rows <= 0:
            raise StorageError(f"chunk_rows must be positive, got {chunk_rows}")
        rows = len(unscaled)
        encoded = EncodedColumn(codec=self, spec=spec, chunk_rows=chunk_rows)
        for start in range(0, rows, chunk_rows):
            values = list(unscaled[start : start + chunk_rows])
            data, lengths, wire = self._encode_chunk(
                values, compact[start : start + len(values)], spec
            )
            zone = ZoneMap(
                row_start=start,
                rows=len(values),
                min_unscaled=min(values),
                max_unscaled=max(values),
                null_count=0,
                zero_count=sum(1 for v in values if v == 0),
            )
            encoded.chunks.append(EncodedChunk(zone, data, lengths, wire))
        return encoded


class CompactCodec(DecimalCodec):
    """The section III-B byte-aligned layout, chunked with zone maps.

    The wire bytes are identical to the stored bytes; what this codec adds
    over "no codec" is the zone-map index, so scans over clustered data
    still skip chunks even without re-encoding.
    """

    name = "compact"
    order_preserving = False

    def _encode_chunk(self, values, compact_slice, spec):
        data = np.ascontiguousarray(compact_slice)
        return data, None, int(data.nbytes)

    def decode_chunk(self, chunk, spec):
        from repro.core.decimal.vectorized import DecimalVector

        return DecimalVector.from_compact(chunk.data, spec).to_unscaled()


class OrderPreservingCodec(DecimalCodec):
    """decimalInfinite-style variable-length encoding (``repro.core.decimal.dinf``)."""

    name = "dinf"
    order_preserving = True

    def _encode_chunk(self, values, compact_slice, spec):
        if not dinf.supports(spec.max_unscaled):
            raise StorageError(
                f"{spec} exceeds the order-preserving codec's "
                f"{dinf.MAX_MAGNITUDE_BYTES}-byte magnitude cap"
            )
        data, lengths = dinf.encode(values)
        return data, lengths, int(lengths.sum())

    def decode_chunk(self, chunk, spec):
        assert chunk.lengths is not None
        return dinf.decode(chunk.data, chunk.lengths)

    def encode_literal(self, unscaled, spec):
        return dinf.encode_one(int(unscaled))

    def compare_chunk(self, chunk, literal):
        return dinf.compare(chunk.data, literal)


class NarrowCodec(DecimalCodec):
    """Proven-narrow 32-bit container (offset-binary, big-endian).

    Each value is stored as ``uint32(v + 2**31)`` big-endian -- 4 fixed
    bytes whose memcmp order equals numeric order.  Only constructible
    from a ``RANGE005`` :class:`~repro.analysis.ranges.NarrowContainerProof`
    for the exact column spec; encode re-checks every value against the
    container, so data that outgrows an observed-interval proof (e.g.
    after an append) raises rather than truncating.
    """

    name = "narrow32"
    order_preserving = True

    def __init__(self, proof) -> None:
        from repro.analysis.ranges import NarrowContainerProof

        if not isinstance(proof, NarrowContainerProof):
            raise StorageError(
                "the narrow 32-bit codec requires a RANGE005 narrow-container "
                "proof from the analyzer's range pass"
            )
        self.proof = proof

    def _require_spec(self, spec: DecimalSpec) -> None:
        if spec != self.proof.spec:
            raise StorageError(
                f"narrow-container proof covers {self.proof.spec}, not {spec}"
            )

    def _encode_chunk(self, values, compact_slice, spec):
        self._require_spec(spec)
        arr = np.array(values, dtype=object)
        if len(values) and (
            min(values) < -_INT32_MAX - 1 or max(values) > _INT32_MAX
        ):
            raise StorageError(
                "column data exceeds the proven 32-bit narrow container "
                f"(proof interval [{self.proof.lo}, {self.proof.hi}])"
            )
        offset = (arr + _NARROW_OFFSET).astype(np.uint32)
        data = np.ascontiguousarray(offset.astype(">u4")).view(np.uint8)
        data = data.reshape(len(values), NARROW_WIDTH)
        return data, None, int(data.nbytes)

    def decode_chunk(self, chunk, spec):
        folded = np.ascontiguousarray(chunk.data).view(">u4").ravel()
        return [int(v) - _NARROW_OFFSET for v in folded.tolist()]

    def encode_literal(self, unscaled, spec):
        self._require_spec(spec)
        if not -_NARROW_OFFSET <= int(unscaled) <= _INT32_MAX:
            raise StorageError(f"literal {unscaled} exceeds the narrow container")
        value = np.uint32(int(unscaled) + _NARROW_OFFSET)
        return np.array([value], dtype=">u4").view(np.uint8).copy()

    def compare_chunk(self, chunk, literal):
        return dinf.compare(chunk.data, literal)


def choose_codec(
    spec: DecimalSpec, unscaled: Optional[Sequence[int]] = None
) -> DecimalCodec:
    """Pick the smallest-wire codec a column qualifies for.

    The narrow container is a candidate only under a ``RANGE005`` proof --
    from the declared spec, or from the observed min/max interval when the
    column's values are supplied (the same statistics zone maps record).
    Among qualifying codecs the one with the smallest wire size wins;
    ties prefer order-preserving codecs (they unlock encoded-byte filters
    and chunk skipping on mixed chunks).
    """
    from repro.analysis.ranges import prove_narrow_container

    rows = len(unscaled) if unscaled is not None else 0
    observed = (min(unscaled), max(unscaled)) if rows else None
    proof = prove_narrow_container(spec, observed=observed)

    compact_wire = spec.compact_bytes * max(rows, 1)
    candidates: List[Tuple[int, int, DecimalCodec]] = [
        (compact_wire, 2, CompactCodec())
    ]
    if dinf.supports(spec.max_unscaled):
        if rows:
            dinf_wire = sum(
                1 + (abs(v).bit_length() + 7) // 8 for v in unscaled
            )
        else:
            dinf_wire = dinf.max_encoded_bytes(spec.max_unscaled)
        candidates.append((dinf_wire, 0, OrderPreservingCodec()))
    if proof is not None:
        candidates.append((NARROW_WIDTH * max(rows, 1), 1, NarrowCodec(proof)))
    _wire, _rank, codec = min(candidates, key=lambda entry: (entry[0], entry[1]))
    return codec
