"""Column types for the storage layer.

The reproduction needs DECIMAL (the star of the paper), DOUBLE (the fast
but inexact comparison type of Figure 1), and the handful of scalar types
TPC-H requires (integers, dates, chars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.decimal.context import DecimalSpec
from repro.errors import SchemaError


@dataclass(frozen=True)
class DecimalType:
    """A fixed-point ``DECIMAL(p, s)`` column type."""

    spec: DecimalSpec

    @classmethod
    def of(cls, precision: int, scale: int) -> "DecimalType":
        return cls(DecimalSpec(precision, scale))

    @property
    def bytes_per_value(self) -> int:
        return self.spec.compact_bytes

    def __str__(self) -> str:
        return str(self.spec)


@dataclass(frozen=True)
class DoubleType:
    """IEEE 754 binary64 -- fast, but cannot represent 0.1 exactly."""

    @property
    def bytes_per_value(self) -> int:
        return 8

    def __str__(self) -> str:
        return "DOUBLE"


@dataclass(frozen=True)
class IntType:
    """64-bit integer."""

    @property
    def bytes_per_value(self) -> int:
        return 8

    def __str__(self) -> str:
        return "BIGINT"


@dataclass(frozen=True)
class DateType:
    """Date stored as days since epoch."""

    @property
    def bytes_per_value(self) -> int:
        return 4

    def __str__(self) -> str:
        return "DATE"


@dataclass(frozen=True)
class CharType:
    """Fixed-width character data."""

    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise SchemaError(f"CHAR width must be positive, got {self.width}")

    @property
    def bytes_per_value(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"CHAR({self.width})"


ColumnType = Union[DecimalType, DoubleType, IntType, DateType, CharType]


def is_decimal(column_type: ColumnType) -> bool:
    """Whether a column type is DECIMAL."""
    return isinstance(column_type, DecimalType)
