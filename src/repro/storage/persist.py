"""Relation persistence: save/load the columnar data to a single file.

The compact decimal layout serialises as-is (it *is* the disk format the
paper describes), so a saved relation round-trips bit-exactly.  Format:
one ``.npz`` archive holding each column's array plus a JSON header with
names and types.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.decimal.context import DecimalSpec
from repro.errors import StorageError
from repro.storage.column import Column
from repro.storage.relation import Relation
from repro.storage.schema import (
    CharType,
    ColumnType,
    DateType,
    DecimalType,
    DoubleType,
    IntType,
)

_FORMAT_VERSION = 1


def _type_to_json(column_type: ColumnType) -> dict:
    if isinstance(column_type, DecimalType):
        return {
            "kind": "decimal",
            "precision": column_type.spec.precision,
            "scale": column_type.spec.scale,
        }
    if isinstance(column_type, CharType):
        return {"kind": "char", "width": column_type.width}
    if isinstance(column_type, DoubleType):
        return {"kind": "double"}
    if isinstance(column_type, DateType):
        return {"kind": "date"}
    if isinstance(column_type, IntType):
        return {"kind": "int"}
    raise StorageError(f"cannot serialise column type {column_type!r}")


def _type_from_json(data: dict) -> ColumnType:
    kind = data.get("kind")
    if kind == "decimal":
        return DecimalType(DecimalSpec(data["precision"], data["scale"]))
    if kind == "char":
        return CharType(data["width"])
    if kind == "double":
        return DoubleType()
    if kind == "date":
        return DateType()
    if kind == "int":
        return IntType()
    raise StorageError(f"unknown column kind {kind!r}")


def save_relation(relation: Relation, path: Union[str, Path]) -> Path:
    """Write a relation to ``path`` (a .npz archive); returns the path."""
    path = Path(path)
    header = {
        "version": _FORMAT_VERSION,
        "name": relation.name,
        "columns": [
            {"name": column.name, "type": _type_to_json(column.column_type)}
            for column in relation.columns
        ],
    }
    arrays = {f"col_{i}": column.data for i, column in enumerate(relation.columns)}
    arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_relation(path: Union[str, Path]) -> Relation:
    """Load a relation previously written by :func:`save_relation`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such relation file: {path}")
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["header"].tobytes()).decode())
        except KeyError:
            raise StorageError(f"{path} is not a saved relation (missing header)") from None
        if header.get("version") != _FORMAT_VERSION:
            raise StorageError(
                f"unsupported relation format version {header.get('version')!r}"
            )
        columns = []
        for index, descriptor in enumerate(header["columns"]):
            column_type = _type_from_json(descriptor["type"])
            data = archive[f"col_{index}"]
            columns.append(Column(descriptor["name"], column_type, data))
    return Relation(header["name"], columns)
