"""Columnar storage: schemas, relations, generators, FOR compression."""

from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.compression import ForColumn, compress
from repro.storage.persist import load_relation, save_relation
from repro.storage.relation import Relation
from repro.storage.schema import (
    CharType,
    ColumnType,
    DateType,
    DecimalType,
    DoubleType,
    IntType,
    is_decimal,
)

__all__ = [
    "Catalog",
    "CharType",
    "Column",
    "ColumnType",
    "DateType",
    "DecimalType",
    "DoubleType",
    "ForColumn",
    "IntType",
    "Relation",
    "compress",
    "load_relation",
    "save_relation",
    "is_decimal",
]
