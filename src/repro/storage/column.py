"""Columnar storage.

Decimal columns hold their values in the *compact* byte-aligned layout of
section III-B (an ``(N, Lb)`` uint8 matrix) -- exactly what the simulated
kernels load and expand.  Other types use plain numpy arrays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.errors import SchemaError
from repro.storage.codecs import DEFAULT_CHUNK_ROWS, DecimalCodec, EncodedColumn
from repro.storage.schema import (
    CharType,
    ColumnType,
    DateType,
    DecimalType,
    DoubleType,
    IntType,
)


#: Process-wide source of column version numbers.  Every Column construction
#: (including the fresh Columns built by ``take``/``head``) draws a new
#: version, so a cached register expansion can never outlive the compact
#: bytes it was expanded from.
_VERSIONS = itertools.count(1)


@dataclass
class Column:
    """One named column of a relation."""

    name: str
    column_type: ColumnType
    data: np.ndarray  # (N, Lb) uint8 for DECIMAL; (N,) otherwise
    #: Wire/disk codec for DECIMAL columns; ``None`` ships compact bytes
    #: as-is with no zone-map index (the pre-codec behaviour).
    codec: Optional[DecimalCodec] = None
    #: Rows per encoded chunk / zone map; ``None`` -> codec default.
    encoding_chunk_rows: Optional[int] = None
    _version: int = field(init=False, repr=False, compare=False)
    _vector_cache: "Optional[Tuple[int, DecimalVector]]" = field(
        init=False, repr=False, compare=False, default=None
    )
    _encoding_cache: "Optional[Tuple[int, EncodedColumn]]" = field(
        init=False, repr=False, compare=False, default=None
    )
    #: Version-keyed planner statistics (an ``engine.plan.stats.ColumnStats``;
    #: typed loosely so storage stays independent of the engine layer).
    _stats_cache: "Optional[Tuple[int, object]]" = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        self._version = next(_VERSIONS)
        if isinstance(self.column_type, DecimalType):
            expected = self.column_type.spec.compact_bytes
            if self.data.ndim != 2 or self.data.shape[1] != expected:
                raise SchemaError(
                    f"decimal column {self.name!r} needs shape (N, {expected}), "
                    f"got {self.data.shape}"
                )

    @property
    def version(self) -> int:
        """Cache key for derived forms; bumped whenever ``data`` may change."""
        return self._version

    def invalidate(self) -> None:
        """Bump the version after an in-place edit of ``data``.

        Anything that mutates the compact bytes directly (the storage layer
        itself never does; tests and loaders might) must call this so a
        stale register expansion is never served.
        """
        self._version = next(_VERSIONS)
        self._vector_cache = None
        self._encoding_cache = None
        self._stats_cache = None

    @property
    def rows(self) -> int:
        return self.data.shape[0]

    @property
    def bytes_stored(self) -> int:
        """Bytes this column occupies on disk / in memory."""
        return int(self.data.nbytes)

    @property
    def wire_bytes(self) -> int:
        """Bytes this column puts on the PCIe wire under its codec.

        Falls back to :attr:`bytes_stored` when no codec is attached (or
        the column is not DECIMAL), so pre-codec accounting is unchanged.
        """
        if self.codec is None or not isinstance(self.column_type, DecimalType):
            return self.bytes_stored
        return self.encoding().wire_bytes

    # ------------------------------------------------------------- decimals

    @classmethod
    def decimal_from_unscaled(
        cls, name: str, values: Iterable[int], spec: DecimalSpec
    ) -> "Column":
        """Build a DECIMAL column from signed unscaled integers."""
        vector = DecimalVector.from_unscaled(list(values), spec)
        return cls(name, DecimalType(spec), vector.to_compact())

    def decimal_vector(self) -> DecimalVector:
        """Expand to register form (what a kernel's load phase does).

        The expansion is cached against :attr:`version`, so repeated calls
        across operators and queries run ``unpack_column`` once.  Callers
        receive a *shared* vector and must honour the
        :class:`~repro.core.decimal.vectorized.DecimalVector` aliasing
        contract: never write into its planes (``.copy()`` first).
        """
        spec = self._decimal_spec()
        cached = self._vector_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        vector = DecimalVector.from_compact(self.data, spec)
        self._vector_cache = (self._version, vector)
        return vector

    def unscaled(self) -> List[int]:
        """Signed unscaled values (oracle interface)."""
        return self.decimal_vector().to_unscaled()

    def _decimal_spec(self) -> DecimalSpec:
        if not isinstance(self.column_type, DecimalType):
            raise SchemaError(f"column {self.name!r} is not DECIMAL")
        return self.column_type.spec

    # ---------------------------------------------------------------- codecs

    def with_codec(
        self, codec: Optional[DecimalCodec], chunk_rows: Optional[int] = None
    ) -> "Column":
        """A new Column over the same compact bytes with ``codec`` attached."""
        self._decimal_spec()
        return Column(
            self.name,
            self.column_type,
            self.data,
            codec=codec,
            encoding_chunk_rows=chunk_rows,
        )

    def encoding(self) -> EncodedColumn:
        """Encode under the attached codec (chunked, zone maps included).

        Version-keyed like :meth:`decimal_vector`: the encode runs once per
        (data, codec) generation, and ``Database.append`` building fresh
        Columns naturally invalidates -- snapshot isolation for zone maps.
        """
        if self.codec is None:
            raise SchemaError(f"column {self.name!r} has no storage codec")
        spec = self._decimal_spec()
        cached = self._encoding_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        chunk_rows = self.encoding_chunk_rows or DEFAULT_CHUNK_ROWS
        encoded = self.codec.encode_column(
            self.data, self.unscaled(), spec, chunk_rows=chunk_rows
        )
        self._encoding_cache = (self._version, encoded)
        return encoded

    def cached_encoding(self) -> Optional[EncodedColumn]:
        """The current-version encoding if already materialised, else None.

        Lets filter operators use encoded-byte comparisons only when the
        scan (or the cost model) has already paid for the encode.
        """
        if self.codec is None:
            return None
        cached = self._encoding_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        return None

    # ------------------------------------------------------------ statistics

    def cached_stats(self) -> Optional[object]:
        """The current-version planner statistics, or None if stale/absent.

        Collection itself lives in :mod:`repro.engine.plan.stats`; this
        hook only stores the result against :attr:`version`, mirroring the
        vector/encoding caches, so ``Database.append`` (fresh Columns) and
        :meth:`invalidate` naturally discard stale statistics.
        """
        cached = self._stats_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        return None

    def store_stats(self, stats: object) -> None:
        """Cache planner statistics for the current column version."""
        self._stats_cache = (self._version, stats)

    # --------------------------------------------------------------- others

    @classmethod
    def doubles(cls, name: str, values: Sequence[float]) -> "Column":
        return cls(name, DoubleType(), np.asarray(values, dtype=np.float64))

    @classmethod
    def integers(cls, name: str, values: Sequence[int]) -> "Column":
        return cls(name, IntType(), np.asarray(values, dtype=np.int64))

    @classmethod
    def dates(cls, name: str, values: Sequence[int]) -> "Column":
        return cls(name, DateType(), np.asarray(values, dtype=np.int32))

    @classmethod
    def chars(cls, name: str, values: Sequence[str], width: int) -> "Column":
        data = np.asarray([v[:width].ljust(width) for v in values], dtype=f"S{width}")
        return cls(name, CharType(width), data)

    def take(self, indices: np.ndarray) -> "Column":
        """Row subset (selection vectors from filters)."""
        return Column(
            self.name,
            self.column_type,
            self.data[indices],
            codec=self.codec,
            encoding_chunk_rows=self.encoding_chunk_rows,
        )

    def head(self, count: int) -> "Column":
        """First ``count`` rows (benchmark sampling)."""
        return Column(
            self.name,
            self.column_type,
            self.data[:count],
            codec=self.codec,
            encoding_chunk_rows=self.encoding_chunk_rows,
        )
