"""Synthetic data generation for the paper's relations.

The evaluation uses relations of 10 million tuples with randomly generated
DECIMAL columns (section IV, "Workloads").  Generators here are seeded and
parameterised by row count so benchmarks can run a sample while the timing
model charges the full-size relation.

Relation builders mirror the paper's experiments:

* ``relation_r1`` -- three same-spec columns for Query 1 (Figure 8);
* ``relation_r2`` -- eight columns, c1-c4 at DECIMAL(6,2), c5-c8 widening
  (Query 2, Figure 9);
* ``relation_r3`` -- one column for the aggregation Query 3 (Figure 14a);
* ``relation_r4`` -- RSA message column (Query 4, Figure 14c);
* ``relation_r5`` -- three DECIMAL(9,8) radian columns near 0.01 / pi/4 /
  pi/2 (Query 5, Figure 15).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.decimal.context import DecimalSpec
from repro.storage.column import Column
from repro.storage.relation import Relation

DEFAULT_ROWS = 10_000_000


def random_unscaled(
    spec: DecimalSpec,
    rows: int,
    rng: np.random.Generator,
    signed: bool = True,
    full_digits: bool = False,
) -> List[int]:
    """Random unscaled integers fitting ``spec``.

    ``full_digits`` draws magnitudes that use the full precision (with the
    leading digit non-zero), which keeps divisors "normalised" so the
    section III-B3 quotient rule holds.
    """
    bound = spec.max_unscaled
    if full_digits and spec.precision > 1:
        low = 10 ** (spec.precision - 1)
    else:
        low = 0
    # Sample uniformly in [low, bound] using Python ints to avoid 64-bit
    # truncation for wide precisions.
    span = bound - low + 1
    if span <= 0:
        raise ValueError("empty magnitude range")
    values: List[int] = []
    # Draw enough 64-bit words to cover the span's bit width.
    words_needed = max(1, (span.bit_length() + 62) // 63)
    raw = rng.integers(0, 1 << 63, size=(rows, words_needed), dtype=np.int64)
    for row in range(rows):
        acc = 0
        for word in raw[row]:
            acc = (acc << 63) | int(word)
        magnitude = low + acc % span
        if signed and rng.random() < 0.5:
            magnitude = -magnitude
        values.append(magnitude)
    return values


def decimal_column(
    name: str,
    spec: DecimalSpec,
    rows: int,
    seed: int,
    signed: bool = True,
    full_digits: bool = False,
) -> Column:
    """A random DECIMAL column."""
    rng = np.random.default_rng(seed)
    return Column.decimal_from_unscaled(
        name, random_unscaled(spec, rows, rng, signed=signed, full_digits=full_digits), spec
    )


def relation_r1(spec: DecimalSpec, rows: int = 20_000, seed: int = 1) -> Relation:
    """Query 1's relation: three columns with identical precision and scale."""
    return Relation(
        "R1",
        [decimal_column(f"c{i + 1}", spec, rows, seed + i) for i in range(3)],
    )


def relation_r2(wide_spec: DecimalSpec, rows: int = 20_000, seed: int = 2) -> Relation:
    """Query 2's relation: c1-c4 DECIMAL(6,2); c5-c8 at the widening spec."""
    narrow = DecimalSpec(6, 2)
    columns = [decimal_column(f"c{i + 1}", narrow, rows, seed + i) for i in range(4)]
    columns += [decimal_column(f"c{i + 5}", wide_spec, rows, seed + 10 + i) for i in range(4)]
    return Relation("R2", columns)


def relation_r3(spec: DecimalSpec, rows: int = 20_000, seed: int = 3) -> Relation:
    """Query 3's relation: a single DECIMAL column to aggregate."""
    return Relation("R3", [decimal_column("c1", spec, rows, seed)])


def relation_r4(precision: int, rows: int = 20_000, seed: int = 4) -> Relation:
    """Query 4's relation: RSA messages, scale 0, positive."""
    spec = DecimalSpec(precision, 0)
    return Relation(
        "R4", [decimal_column("c1", spec, rows, seed, signed=False, full_digits=False)]
    )


def relation_r5(rows: int = 20_000, seed: int = 5) -> Relation:
    """Query 5's relation: radians in DECIMAL(9, 8) near 0.01, pi/4, pi/2.

    The columns follow N(0.01, 0.01^2), N(0.78, 0.01^2), N(1.56, 0.01^2)
    as in section IV-D4.
    """
    spec = DecimalSpec(9, 8)
    rng = np.random.default_rng(seed)
    columns = []
    for name, mean in (("c1", 0.01), ("c2", 0.78), ("c3", 1.56)):
        radians = rng.normal(mean, 0.01, rows)
        # Clamp into the representable range of DECIMAL(9, 8): |x| < 10.
        radians = np.clip(radians, -9.99999999, 9.99999999)
        unscaled = [int(round(value * 10**8)) for value in radians]
        columns.append(Column.decimal_from_unscaled(name, unscaled, spec))
    return Relation("R5", columns)
