"""Frame-of-reference (FOR) compression for DECIMAL columns.

Section IV-D1 evaluates FOR compression [Goldstein et al.] as a case study
on TPC-H Q1: ``l_quantity`` and ``l_extendedprice`` compress into narrower
frames, shrinking PCIe transfer volume; values are decompressed inside the
kernel before computation.  The paper reports end-to-end speedups of
1.38x/2.01x/3.36x/4.80x at LEN 4/8/16/32 depending on compressibility.

We implement real FOR: per-block minimum (the frame of reference) plus
fixed-width deltas sized by the block's value range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.decimal.context import DecimalSpec
from repro.errors import StorageError

#: Values per compression block.
DEFAULT_BLOCK = 4096


@dataclass
class ForBlock:
    """One frame-of-reference block."""

    reference: int  # the block minimum
    width_bytes: int  # bytes per stored delta
    deltas: List[int]


@dataclass
class ForColumn:
    """A FOR-compressed decimal column."""

    spec: DecimalSpec
    rows: int
    blocks: List[ForBlock]
    original_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed), > 1 when it helps."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    def decompress(self) -> List[int]:
        """Recover the exact unscaled values."""
        values: List[int] = []
        for block in self.blocks:
            values.extend(block.reference + delta for delta in block.deltas)
        return values


def compress(
    unscaled: Sequence[int], spec: DecimalSpec, block_size: int = DEFAULT_BLOCK
) -> ForColumn:
    """FOR-compress a column of unscaled decimal values."""
    if block_size < 2:
        raise StorageError("block size must be at least 2")
    values = list(unscaled)
    if not values:
        raise StorageError("cannot compress an empty column")
    blocks: List[ForBlock] = []
    compressed_bytes = 0
    for start in range(0, len(values), block_size):
        chunk = values[start : start + block_size]
        reference = min(chunk)
        deltas = [value - reference for value in chunk]
        spread = max(deltas)
        width = max(1, -(-spread.bit_length() // 8)) if spread else 1
        blocks.append(ForBlock(reference=reference, width_bytes=width, deltas=deltas))
        # Per block: the reference at full width + per-value deltas.
        compressed_bytes += spec.compact_bytes + width * len(chunk)
    return ForColumn(
        spec=spec,
        rows=len(values),
        blocks=blocks,
        original_bytes=spec.compact_bytes * len(values),
        compressed_bytes=compressed_bytes,
    )


def decompression_cycles_per_value(column: ForColumn) -> float:
    """Kernel-side decompression cost: one add + widening moves per value."""
    avg_width_words = sum(
        -(-block.width_bytes // 4) * len(block.deltas) for block in column.blocks
    ) / max(column.rows, 1)
    return 2.0 + avg_width_words
