"""Relations (tables) and their metadata.

A relation is an ordered set of equal-length columns.  DECIMAL precision
and scale live in the relation metadata, not with each value ("the
precision and scale are contained in the metadata of the relation",
section III-B) -- which is what lets the JIT engine bake them into kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.decimal.context import DecimalSpec
from repro.errors import SchemaError
from repro.storage.codecs import DecimalCodec
from repro.storage.column import Column
from repro.storage.schema import is_decimal


@dataclass
class Relation:
    """A named table of columns."""

    name: str
    columns: List[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        rows = {column.rows for column in self.columns}
        if len(rows) > 1:
            raise SchemaError(f"relation {self.name!r} has ragged columns: {rows}")

    @property
    def rows(self) -> int:
        return self.columns[0].rows if self.columns else 0

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"relation {self.name!r} has no column {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def add(self, column: Column) -> None:
        if column.name in self:
            raise SchemaError(f"duplicate column {column.name!r} in {self.name!r}")
        if self.columns and column.rows != self.rows:
            raise SchemaError(
                f"column {column.name!r} has {column.rows} rows, relation has {self.rows}"
            )
        self.columns.append(column)

    def decimal_schema(self) -> Dict[str, DecimalSpec]:
        """Column name -> DecimalSpec for every DECIMAL column.

        This is the schema the JIT compilation pipeline consumes.
        """
        return {
            column.name: column.column_type.spec
            for column in self.columns
            if is_decimal(column.column_type)
        }

    @property
    def bytes_stored(self) -> int:
        """Total stored bytes (the scan/transfer cost driver)."""
        return sum(column.bytes_stored for column in self.columns)

    def bytes_for(self, names) -> int:
        """Stored bytes of a column subset (what a query actually moves)."""
        return sum(self.column(name).bytes_stored for name in names)

    def wire_bytes_for(self, names) -> int:
        """Encoded wire bytes of a column subset under the attached codecs.

        Equals :meth:`bytes_for` when no column in the subset has a codec.
        """
        return sum(self.column(name).wire_bytes for name in names)

    def with_codecs(
        self,
        codecs: Dict[str, Optional[DecimalCodec]],
        chunk_rows: Optional[int] = None,
    ) -> "Relation":
        """A new Relation with storage codecs attached to named columns.

        Columns not named in ``codecs`` keep their current codec; the
        underlying compact byte matrices are shared, not copied.
        """
        unknown = set(codecs) - set(self.column_names)
        if unknown:
            raise SchemaError(
                f"relation {self.name!r} has no columns {sorted(unknown)}"
            )
        columns = [
            column.with_codec(codecs[column.name], chunk_rows=chunk_rows)
            if column.name in codecs
            else column
            for column in self.columns
        ]
        return Relation(self.name, columns)

    def head(self, count: int) -> "Relation":
        """First ``count`` rows of every column (benchmark sampling)."""
        return Relation(self.name, [column.head(count) for column in self.columns])
