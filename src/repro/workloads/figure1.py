"""The Figure 1 motivation experiment.

``SELECT SUM(c1 + c2) FROM R`` over 10 million tuples, three ways:

* both columns DOUBLE -- fast, but the result is wrong *and* inconsistent
  between PostgreSQL and CockroachDB (different accumulation orders over
  inexact binary floats);
* low precision: DECIMAL(17, 5) + DECIMAL(14, 2) -- correct and
  consistent, 3.00x (PostgreSQL) / 1.45x (CockroachDB) slower than DOUBLE;
* high precision: DECIMAL(35, 5) + DECIMAL(32, 2) -- slower still.

UltraPrecise runs the same three configurations; its low-precision DECIMAL
is only 1.04x slower than DOUBLE.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.decimal.context import DecimalSpec
from repro.storage.datagen import decimal_column
from repro.storage.relation import Relation

#: The three Figure 1 configurations: (c1 spec, c2 spec).
CONFIGURATIONS: Dict[str, Tuple[DecimalSpec, DecimalSpec]] = {
    "low-p": (DecimalSpec(17, 5), DecimalSpec(14, 2)),
    "high-p": (DecimalSpec(35, 5), DecimalSpec(32, 2)),
}


def build_relation(config: str, rows: int = 5000, seed: int = 42) -> Relation:
    """The Figure 1 relation for one configuration."""
    c1_spec, c2_spec = CONFIGURATIONS[config]
    return Relation(
        "R",
        [
            decimal_column("c1", c1_spec, rows, seed),
            decimal_column("c2", c2_spec, rows, seed + 1),
        ],
    )


def exact_sum(relation: Relation) -> Tuple[int, int]:
    """Oracle: the exact SUM(c1 + c2) as (unscaled, scale)."""
    c1 = relation.column("c1")
    c2 = relation.column("c2")
    s1 = c1.column_type.spec.scale
    s2 = c2.column_type.spec.scale
    scale = max(s1, s2)
    total = sum(
        a * 10 ** (scale - s1) + b * 10 ** (scale - s2)
        for a, b in zip(c1.unscaled(), c2.unscaled())
    )
    return total, scale
