"""RSA encryption in SQL (paper section IV-D3, Query 4 / Figure 14(c)).

Encrypting a message ``X`` with key ``(e, N)`` computes ``X**e mod N``.
With ``e = 3`` the paper expresses this as

    SELECT c1 * c1 % N * c1 % N FROM R4;

which left-associates to ``(((c1*c1) % N) * c1) % N = c1**3 mod N``.
``N`` is the product of two primes whose size sets the key strength; the
experiment uses message precisions 17/35/71/143 with moduli of precision
18/36/72/144 so results land in 4/8/16/32 words... (the modulo result spec
is ``(p2, 0)``, and LEN here tracks the modulus width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.decimal.context import DecimalSpec
from repro.storage.datagen import relation_r4
from repro.storage.relation import Relation

#: Message precisions per the paper ("the precision of c1 is 17, 35, 71,
#: and 143"), keyed by the experiment's LEN axis.
MESSAGE_PRECISION = {4: 17, 8: 35, 16: 71, 32: 143}

#: Modulus precisions ("(18, 0), (36, 0), (72, 0), and (144, 0)").
MODULUS_PRECISION = {4: 18, 8: 36, 16: 72, 32: 144}

#: The public exponent the paper uses.
PUBLIC_EXPONENT = 3

# Deterministic primes for key generation: we need N = p*q with a given
# digit length.  Generated with a seeded Miller-Rabin search (no secrecy
# needed -- this is a throughput benchmark).


def _is_probable_prime(n: int, rounds: int = 24) -> bool:
    """Deterministic-enough Miller-Rabin for benchmark key material."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = np.random.default_rng(0xC0FFEE)
    for _ in range(rounds):
        a = 2 + int(rng.integers(0, 1 << 62)) % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _next_prime(start: int) -> int:
    candidate = start | 1
    while not _is_probable_prime(candidate):
        candidate += 2
    return candidate


def generate_modulus(precision: int, seed: int = 11) -> int:
    """A modulus ``N = p * q`` with exactly ``precision`` digits.

    ``p`` is drawn across the half-width decade; ``q`` is then targeted so
    the product lands in the right decade, which converges in a couple of
    attempts for any precision.
    """
    rng = np.random.default_rng(seed)
    half = precision // 2
    p_low, p_high = 10 ** (half - 1), 10**half - 1
    while True:
        p = _next_prime(p_low + int(rng.random() * (p_high - p_low)))
        q_low = -(-(10 ** (precision - 1)) // p)
        q_high = (10**precision - 1) // p
        if q_high <= q_low:
            continue
        q = _next_prime(q_low + int(rng.random() * (q_high - q_low)))
        modulus = p * q
        if len(str(modulus)) == precision and p != q:
            return modulus


@dataclass
class RsaWorkload:
    """One RSA configuration: relation + key + query text."""

    length: int  # the experiment's LEN axis
    relation: Relation
    modulus: int
    modulus_spec: DecimalSpec

    @property
    def query(self) -> str:
        return f"SELECT c1 * c1 % {self.modulus} * c1 % {self.modulus} FROM R4"

    @property
    def expression(self) -> str:
        return f"c1 * c1 % {self.modulus} * c1 % {self.modulus}"

    def oracle(self) -> List[int]:
        """Ground-truth encryption via Python's modular exponentiation."""
        messages = self.relation.column("c1").unscaled()
        return [pow(message, PUBLIC_EXPONENT, self.modulus) for message in messages]


def build_workload(length: int, rows: int = 5000, seed: int = 4) -> RsaWorkload:
    """Build the Query 4 workload for one LEN configuration."""
    precision = MESSAGE_PRECISION[length]
    relation = relation_r4(precision, rows=rows, seed=seed)
    modulus_precision = MODULUS_PRECISION[length]
    modulus = generate_modulus(modulus_precision, seed=seed + length)
    return RsaWorkload(
        length=length,
        relation=relation,
        modulus=modulus,
        modulus_spec=DecimalSpec(modulus_precision, 0),
    )
