"""Workload builders for the paper's synthesized experiments."""

from repro.workloads import figure1, rsa, tpch_queries, trig

__all__ = ["figure1", "rsa", "tpch_queries", "trig"]
