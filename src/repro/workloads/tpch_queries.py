"""TPC-H query workloads (section IV-D1/2, Figure 14(b), Table I).

Q1 runs fully through the UltraPrecise engine (two JIT-compiled DECIMAL
expressions + seven aggregations, grouped by returnflag/linestatus); the
remaining queries are profile-driven (see ``repro.storage.tpch``): the
Table I experiment only asserts that queries *without* DECIMAL hot paths
run at parity, and that Q18/Q20's subquery DECIMAL delivery costs extra.
"""

from __future__ import annotations

from typing import Dict

from repro.storage.tpch import (
    TPCH_PROFILES,
    TPCH_ULTRAPRECISE_PAPER_MS,
    QueryProfile,
)

#: TPC-H Q1, restricted to the SQL subset the engine parses.  The paper's
#: version also computes sum_disc_price and sum_charge; aliases follow the
#: TPC-H names.
Q1_SQL = """
SELECT
    l_returnflag,
    l_linestatus,
    SUM(l_quantity) AS sum_qty,
    SUM(l_extendedprice) AS sum_base_price,
    SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
    SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
    AVG(l_quantity) AS avg_qty,
    AVG(l_extendedprice) AS avg_price,
    AVG(l_discount) AS avg_disc,
    COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

#: TPC-H Q6: the forecasting-revenue-change query -- single table, a
#: selective filter, one DECIMAL product aggregation.  Runs fully through
#: the engine (dates as days since 1992-01-01: 1994-01-01 = 731).
Q6_SQL = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= '1994-01-01'
  AND l_shipdate < '1995-01-01'
  AND l_discount >= 0.05
  AND l_discount <= 0.07
  AND l_quantity < 24
"""

#: A Q3-style shipping-priority query: two joins, a DECIMAL expression
#: aggregated per order, ordered by revenue.  (TPC-H Q3 restricted to the
#: engine's subset: the date filters are kept, revenue is computed the
#: same way.)
Q3_SQL = """
SELECT o_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < '1995-03-15'
GROUP BY o_orderkey
ORDER BY revenue DESC
LIMIT 10
"""

#: A Q5-style local-supplier-volume query: three joins with revenue
#: grouped per nation.  Written orders-first with lineitem joined *first*
#: -- deliberately the worst valid order -- so the statistics-driven join
#: reorderer has something to do: nation depends on customer, leaving
#: [lineitem, customer, nation], [customer, lineitem, nation] and
#: [customer, nation, lineitem] as the valid orders, of which the last
#: keeps every intermediate at |orders| until the big lineitem join.
Q5_SQL = """
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM orders
JOIN lineitem ON o_orderkey = l_orderkey
JOIN customer ON o_custkey = c_custkey
JOIN nation ON c_nationkey = n_nationkey
WHERE o_orderdate >= '1994-01-01'
  AND o_orderdate < '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC
"""

#: A Q10-style returned-item-reporting query: revenue of returned items
#: per customer.  Written customer-first; once the build-side pushdown
#: sinks ``l_returnflag = 'R'`` into the lineitem join, the reorderer's
#: second pass flips to joining the (now selective) lineitem first.
Q10_SQL = """
SELECT c_custkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM orders
JOIN customer ON o_custkey = c_custkey
JOIN lineitem ON o_orderkey = l_orderkey
WHERE l_returnflag = 'R'
  AND o_orderdate >= '1993-10-01'
  AND o_orderdate < '1994-01-01'
GROUP BY c_custkey
ORDER BY revenue DESC
LIMIT 20
"""

#: The per-query JIT cost UltraPrecise adds on queries with DECIMAL
#: expressions (compile happens once; Table I queries are warm-cache in
#: RateupDB, so the delta is small).
_JIT_DELTA_MS = {"expressions": 4.0, "aggregates": 2.0}

#: Extra cost when a subquery returns DECIMAL values outside the JIT path
#: ("delivering results of subqueries to the outer query is not JIT-based
#: and our efficient representation cannot be applied") -- Q18: +243 ms,
#: Q20: +109 ms in the paper.
_SUBQUERY_DELIVERY_FACTOR = 0.42


def ultraprecise_tpch_ms(profile: QueryProfile) -> float:
    """Modelled UltraPrecise time for one Table I query."""
    time_ms = profile.base_ms
    # DECIMAL hot paths get slightly faster (compact representation) ...
    time_ms -= 1.5 * (profile.decimal_expressions + profile.decimal_aggregates)
    # ... at a small JIT bookkeeping cost per compiled kernel.
    time_ms += _JIT_DELTA_MS["expressions"] * profile.decimal_expressions * 0.5
    time_ms += _JIT_DELTA_MS["aggregates"] * profile.decimal_aggregates * 0.5
    if profile.subquery_decimal_delivery:
        time_ms += profile.base_ms * _SUBQUERY_DELIVERY_FACTOR
    return time_ms


def table1_rows() -> Dict[str, Dict[str, float]]:
    """RateupDB vs UltraPrecise rows for every Table I query."""
    rows: Dict[str, Dict[str, float]] = {}
    for name, profile in TPCH_PROFILES.items():
        rows[name] = {
            "RateupDB": profile.base_ms,
            "UltraPrecise": ultraprecise_tpch_ms(profile),
            "UltraPrecise (paper)": TPCH_ULTRAPRECISE_PAPER_MS[name],
        }
    return rows
