"""Trigonometric function approximation (section IV-D4, Query 5 / Fig. 15).

``sin(x)`` is approximated by its Taylor series

    x - x^3/3! + x^5/5! - x^7/7! + ...

expressed directly in SQL over a DECIMAL(9, 8) radian column:

    SELECT c1 - c1*c1*c1/6 + c1*c1*c1*c1*c1/120 FROM R5;

The experiment sweeps the polynomial from 2 to 11 terms over inputs near
0.01, pi/4 (0.78) and pi/2 (1.56), reporting execution time vs the mean
absolute error against a high-precision oracle (the paper uses GMP; we use
Python's arbitrary-precision ``decimal`` module, computing the ground
truth to well over a hundred fractional digits).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import factorial
from typing import List

from repro.storage.datagen import relation_r5
from repro.storage.relation import Relation

#: Column per input regime: near 0 / near pi/4 / near pi/2.
INPUT_COLUMNS = {"0.01": "c1", "0.78": "c2", "1.56": "c3"}

#: Term counts the paper sweeps.
TERM_RANGE = tuple(range(2, 12))


def sine_expression(column: str, terms: int) -> str:
    """The Query 5 polynomial with ``terms`` Taylor terms.

    Term ``k`` (0-based) is ``(-1)^k * x^(2k+1) / (2k+1)!``, written as an
    explicit product of column references so the JIT sees plain DECIMAL
    arithmetic, exactly as the paper's SQL does.
    """
    if terms < 1:
        raise ValueError("need at least one term")
    parts: List[str] = []
    for k in range(terms):
        power = 2 * k + 1
        product = "*".join([column] * power)
        if k == 0:
            parts.append(column)
            continue
        divisor = factorial(power)
        sign = "-" if k % 2 else "+"
        parts.append(f" {sign} {product}/{divisor}")
    return "".join(parts)


def sine_oracle(unscaled: int, scale: int = 8, digits: int = 120) -> Fraction:
    """Ground-truth sin(x) for ``x = unscaled / 10**scale``.

    Summation of the Taylor series in exact rational arithmetic until the
    term magnitude drops below ``10**-digits`` -- this is the GMP stand-in,
    exact to far beyond every system's output precision.
    """
    x = Fraction(unscaled, 10**scale)
    total = Fraction(0)
    term_index = 0
    threshold = Fraction(1, 10**digits)
    while True:
        power = 2 * term_index + 1
        term = x**power / factorial(power)
        if abs(term) < threshold and term_index > 0:
            break
        total += term if term_index % 2 == 0 else -term
        term_index += 1
        if term_index > 200:
            break
    return total


def truncated_series_oracle(unscaled: int, terms: int, scale: int = 8) -> Fraction:
    """Exact value of the *truncated* series (separates the two error
    sources: series truncation vs DECIMAL division underflow)."""
    x = Fraction(unscaled, 10**scale)
    total = Fraction(0)
    for k in range(terms):
        power = 2 * k + 1
        term = x**power / factorial(power)
        total += term if k % 2 == 0 else -term
    return total


def mean_absolute_error(results: List[Fraction], truths: List[Fraction]) -> float:
    """MAE between computed decimals (as exact fractions) and the oracle."""
    if len(results) != len(truths):
        raise ValueError("length mismatch")
    total = sum(abs(r - t) for r, t in zip(results, truths))
    return float(total / len(results))


@dataclass
class TrigWorkload:
    """One Figure 15 sweep: a relation plus a column/terms grid."""

    relation: Relation

    def query(self, column: str, terms: int) -> str:
        return f"SELECT {sine_expression(column, terms)} FROM R5"

    def oracle(self, column: str) -> List[Fraction]:
        return [sine_oracle(u) for u in self.relation.column(column).unscaled()]


def build_workload(rows: int = 2000, seed: int = 5) -> TrigWorkload:
    """Build the Query 5 workload."""
    return TrigWorkload(relation=relation_r5(rows=rows, seed=seed))
