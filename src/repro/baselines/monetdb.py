"""MonetDB v11.46.0 model.

A vectorised, in-memory column store: DECIMAL is limited to precision 38
(two 64-bit words internally, so it fails every experiment beyond LEN=4),
but within that range its bulk operators are very fast and disk I/O is
excluded from its numbers throughout the paper.

Calibration anchors: Query 1 in 461 ms (LEN=2) and 800 ms (LEN=4)
(section IV-A); SUM in 17/19 ms (Figure 14(a)); TPC-H Q1 1.64x/1.17x/1.52x
slower than UltraPrecise (Figure 14(b)).
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, EngineCosts


class MonetDBModel(BaselineEngine):
    """MonetDB: fast vectorised execution, precision capped at 38."""

    name = "MonetDB"
    version = "11.46.0"

    #: MonetDB is in-memory: the paper never charges it disk I/O.
    in_memory = True

    def default_costs(self) -> EngineCosts:
        return EngineCosts(
            per_tuple=5e-9,  # vectorised operator dispatch amortised
            per_op=10e-9,  # per-value cost inside a bulk operator
            add_per_digit=0.9e-9,  # int128 lane work grows with width
            mul_per_digit_sq=0.05e-9,
            div_per_digit_sq=0.12e-9,
            agg_per_tuple=2e-9,  # SIMD aggregation, nearly memory speed
            agg_per_digit=0.05e-9,
            scan_bandwidth=20e9,  # DRAM, not disk
            parallelism=1.0,
            fixed_overhead=0.010,
        )

    def query_seconds(self, profile, rows, include_scan: bool = True) -> float:
        # In-memory database: the scan term reads DRAM, never the SSD.
        return super().query_seconds(profile, rows, include_scan=include_scan)
