"""H2 v2.1.214 model.

H2 is a Java database whose DECIMAL is ``java.math.BigDecimal`` (precision
up to 100,000).  Two paper-visible characteristics:

* interpreted row-at-a-time execution on the JVM: the slowest growth when
  the trig polynomial lengthens (+191 s vs PostgreSQL's +134 s, Fig. 15);
* **division adds 20 extra digits of scale** -- which protects the
  sin(0.01) workload from the precision saturation every other system
  hits, at the cost of much more expensive division (section IV-D4).
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, EngineCosts
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.value import DecimalValue
from repro.errors import DivisionByZeroError

#: Extra fractional digits H2 gives every DECIMAL division result.
H2_DIVISION_EXTRA_DIGITS = 20


class H2Model(BaselineEngine):
    """H2: BigDecimal semantics on the JVM."""

    name = "H2"
    version = "2.1.214"

    def default_costs(self) -> EngineCosts:
        return EngineCosts(
            per_tuple=0.65e-6,  # JDBC row pipeline + JVM expression tree
            per_op=0.35e-6,  # BigDecimal allocation per operation
            add_per_digit=2.6e-9,
            mul_per_digit_sq=0.18e-9,
            div_per_digit_sq=0.35e-9,
            agg_per_tuple=0.45e-6,
            agg_per_digit=2.6e-9,
            scan_bandwidth=0.8e9,
            parallelism=1.0,
            fixed_overhead=0.080,  # JVM/parse overhead
        )

    def _divide(self, left: DecimalValue, right: DecimalValue) -> DecimalValue:
        """BigDecimal-style division carrying 20 extra fractional digits."""
        if right.is_zero:
            raise DivisionByZeroError("H2 division by zero")
        scale = left.spec.scale + H2_DIVISION_EXTRA_DIGITS
        magnitude = (
            abs(left.unscaled)
            * 10 ** (right.spec.scale + H2_DIVISION_EXTRA_DIGITS)
            // abs(right.unscaled)
        )
        integer_digits = max(
            left.spec.integer_digits + right.spec.scale, 1
        )
        spec = DecimalSpec(integer_digits + scale, scale)
        negative = (left.unscaled < 0) != (right.unscaled < 0)
        return DecimalValue.from_unscaled_container(
            -magnitude if negative else magnitude, spec
        )

    def division_result_spec(self, dividend: DecimalSpec, divisor: DecimalSpec) -> DecimalSpec:
        """The wider spec H2 divisions produce (for profiling)."""
        scale = dividend.scale + H2_DIVISION_EXTRA_DIGITS
        return DecimalSpec(max(dividend.integer_digits + divisor.scale, 1) + scale, scale)