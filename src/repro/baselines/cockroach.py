"""CockroachDB v23.1.0 model.

CockroachDB supports unlimited-precision DECIMAL via its customised apd
library, executed in an interpreted Go runtime.  The paper uses it in the
motivation experiment (Figure 1: DECIMAL 1.45x its own DOUBLE time) and in
the synthesized workloads, where it is "even slower than PostgreSQL"
(Figure 14(c), Figure 15 -- e.g. +385 s when the trig polynomial grows,
vs PostgreSQL's +134 s).

Its DOUBLE aggregation also orders operations differently from
PostgreSQL, which is why the two systems return *different* wrong answers
in Figure 1 -- modelled here with pairwise instead of sequential
accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineEngine, EngineCosts


class CockroachModel(BaselineEngine):
    """CockroachDB: arbitrary-precision apd decimals, interpreted executor."""

    name = "CockroachDB"

    #: Figure 1 calibration: apd DECIMAL runs ~1.45x its DOUBLE time.
    double_discount = 0.66
    version = "23.1.0"

    def default_costs(self) -> EngineCosts:
        return EngineCosts(
            per_tuple=0.55e-6,  # KV iteration + Go expression walk
            per_op=0.30e-6,
            add_per_digit=2.2e-9,
            mul_per_digit_sq=0.22e-9,
            div_per_digit_sq=0.45e-9,
            agg_per_tuple=0.40e-6,
            agg_per_digit=2.2e-9,
            scan_bandwidth=0.9e9,
            parallelism=1.0,
            fixed_overhead=0.040,
        )

    def _sum_double(self, values: np.ndarray) -> float:
        """Pairwise accumulation -> a *different* rounding than PostgreSQL.

        numpy's pairwise summation stands in for the distributed/apd
        accumulation order; with inexact binary doubles the result differs
        from a sequential left-to-right sum, reproducing Figure 1's
        "results from the two databases are inconsistent".
        """
        return float(np.sum(values))
