"""HEAVY.AI v6.3.0 model.

A GPU database that represents every DECIMAL in a single 64-bit word
regardless of declared precision/scale, so it only executes the LEN=2
configurations and has no DECIMAL modulo operator (Figure 14(c) fails).
Despite evaluating decimals as plain integers it is "surprisingly ... the
slowest one among GPU databases" on Query 1 (800 ms at LEN=2) -- its
fixed query setup dominates these simple kernels.

Anchors: Query 1 LEN=2 800 ms; Query 2 LEN=2 1.09 s; SUM 0.47 s;
TPC-H Q1 original 489 ms / LEN=2 642 ms.
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, EngineCosts
from repro.errors import CapabilityError


class HeavyAiModel(BaselineEngine):
    """HEAVY.AI: 64-bit-only DECIMAL on GPU."""

    name = "HEAVY.AI"
    version = "6.3.0"

    #: No DECIMAL modulo support (fails the RSA workload).
    supports_modulo = False

    def default_costs(self) -> EngineCosts:
        return EngineCosts(
            per_tuple=6e-9,  # int64 kernel work
            per_op=4e-9,
            add_per_digit=0.0,  # decimals are single machine words
            mul_per_digit_sq=0.0,
            div_per_digit_sq=0.0,
            agg_per_tuple=3e-9,
            agg_per_digit=0.0,
            scan_bandwidth=2.0e9,
            parallelism=1.0,
            fixed_overhead=0.40,  # query setup/fragment scheduling dominates
        )

    def run_modulo_query(self, *args, **kwargs):
        raise CapabilityError("HEAVY.AI does not support the modulo operator on DECIMAL")
