"""Baseline database engine models.

Each peer system from the paper's evaluation (PostgreSQL, MonetDB,
HEAVY.AI, RateupDB, CockroachDB, H2) is modelled as:

* a **capability gate** (Table II + internal word caps) that *fails*
  queries beyond its precision, exactly as the paper reports;
* an **exact evaluator** that computes the query's true result with the
  engine's own semantics (DECIMAL exactness, or binary DOUBLE with its
  characteristic rounding for the Figure 1 experiment);
* a **cost model**: per-tuple interpretation overhead plus digit-loop
  arithmetic costs, divided by the engine's parallelism, plus scan I/O.
  Coefficients are calibrated against the paper's reported data points and
  documented next to each engine.

The cost model consumes a :class:`WorkloadProfile` -- operator counts and
digit widths extracted from the same expression the real evaluator runs --
so engine comparisons vary only in coefficients, not in workload
accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.value import DecimalValue
from repro.core.jit.expr_ast import BinaryOp, ColumnRef, Expr, Literal, UnaryOp, walk
from repro.core.jit.parser import parse_expression
from repro.core.jit.type_inference import infer
from repro.baselines.capabilities import DecimalCapability, capability
from repro.errors import BaselineError
from repro.storage.relation import Relation


@dataclass
class WorkloadProfile:
    """Per-tuple operator counts and operand digit widths of one query.

    Digit-loop costs depend on each operation's *operand* widths: an
    addition walks ``max(d1, d2)`` digits, a multiplication's inner loop is
    ``d1 * d2`` digit products (base-10^4 in PostgreSQL, BigDecimal int[]
    in H2/CockroachDB).  Each list holds one entry per operator instance.
    """

    add_digits: List[int] = field(default_factory=list)
    mul_products: List[int] = field(default_factory=list)
    div_products: List[int] = field(default_factory=list)
    mod_products: List[int] = field(default_factory=list)
    #: Digits of each aggregate's accumulator (SUM/AVG transition width).
    agg_digits: List[int] = field(default_factory=list)
    #: Bytes of input row data the query reads.
    row_bytes: int = 0
    expression_nodes: int = 0

    @property
    def arithmetic_ops(self) -> int:
        return (
            len(self.add_digits)
            + len(self.mul_products)
            + len(self.div_products)
            + len(self.mod_products)
        )

    @property
    def aggregates(self) -> int:
        return len(self.agg_digits)

    @property
    def digits(self) -> int:
        """Widest operand digits (reporting convenience)."""
        candidates = self.add_digits + self.agg_digits + [1]
        products = self.mul_products + self.div_products + self.mod_products
        candidates += [int(math.isqrt(p)) for p in products]
        return max(candidates)


def profile_expression(expr_text: str, schema: Dict[str, DecimalSpec]) -> WorkloadProfile:
    """Extract a workload profile from an expression against a schema."""
    tree = parse_expression(expr_text)
    infer(tree, schema)
    profile = WorkloadProfile()
    for node in walk(tree):
        profile.expression_nodes += 1
        if isinstance(node, BinaryOp):
            d1 = node.left.spec.precision
            d2 = node.right.spec.precision
            if node.op in ("+", "-"):
                profile.add_digits.append(max(d1, d2))
            elif node.op == "*":
                profile.mul_products.append(d1 * d2)
            elif node.op == "/":
                profile.div_products.append((d1 + inference.div_prescale(node.right.spec)) * d2)
            elif node.op == "%":
                profile.mod_products.append(d1 * d2)
    columns = {node.name for node in walk(tree) if isinstance(node, ColumnRef)}
    profile.row_bytes = sum(schema[name].compact_bytes for name in columns if name in schema)
    return profile


@dataclass
class EngineCosts:
    """Cost coefficients of one engine (seconds).

    ``per_tuple`` covers the interpreted executor's fixed work per row
    (tuple deforming, expression dispatch); digit terms model the numeric
    library's inner loops (base-10^4 or BigDecimal digit arrays).
    """

    per_tuple: float
    per_op: float
    add_per_digit: float
    mul_per_digit_sq: float
    div_per_digit_sq: float
    agg_per_tuple: float
    scan_bandwidth: float  # bytes/s
    parallelism: float = 1.0
    fixed_overhead: float = 0.0  # per-query setup (parse/plan/launch)
    #: Digit-loop cost of aggregate accumulators; vectorised engines
    #: (MonetDB) pay almost nothing here, interpreted ones pay add rates.
    agg_per_digit: float = 0.0

    def arithmetic_seconds(self, profile: WorkloadProfile) -> float:
        """Per-tuple arithmetic cost of a workload profile."""
        return (
            self.per_tuple
            + self.per_op * profile.arithmetic_ops
            + self.add_per_digit * sum(profile.add_digits)
            + self.mul_per_digit_sq * sum(profile.mul_products)
            + self.div_per_digit_sq * (sum(profile.div_products) + sum(profile.mod_products))
            + sum(
                self.agg_per_tuple + self.agg_per_digit * digits
                for digits in profile.agg_digits
            )
        )


@dataclass
class BaselineResult:
    """Outcome of running one query on a baseline model."""

    engine: str
    values: List  # exact (or engine-characteristic) result values
    seconds: float
    result_spec: Optional[DecimalSpec] = None

    @property
    def scalar(self):
        if len(self.values) != 1:
            raise BaselineError("result is not scalar")
        return self.values[0]


class BaselineEngine:
    """Base class for peer-system models."""

    name = "baseline"
    version = ""

    #: How much cheaper a DOUBLE operation is than the engine's DECIMAL
    #: machinery (hardware float vs allocated digit arrays).  Calibrated
    #: from Figure 1: PostgreSQL's low-p DECIMAL runs 3.00x its DOUBLE
    #: time, CockroachDB's 1.45x.
    double_discount = 0.5

    def __init__(self) -> None:
        self.costs = self.default_costs()

    # --------------------------------------------------------- subclass API

    def default_costs(self) -> EngineCosts:
        raise NotImplementedError

    @property
    def capability(self) -> DecimalCapability:
        return capability(self.name)

    def check_specs(
        self,
        intermediates: Sequence[DecimalSpec],
        columns: Sequence[DecimalSpec] = (),
    ) -> None:
        """Gate the query's specs on the engine's internal word cap.

        The word cap is what actually fails each system in the paper's
        experiments (HEAVY.AI at one 64-bit word, MonetDB at two, RateupDB
        at five 32-bit words).  Declared Table II precision/scale limits
        are enforced by :meth:`DecimalCapability.check` and verified in the
        capability benchmark; experiment columns are declared within them.
        """
        for spec in list(columns) + list(intermediates):
            self.capability.check_intermediate(spec)

    # ------------------------------------------------------------ execution

    def run_projection(
        self,
        relation: Relation,
        expr_text: str,
        simulate_rows: Optional[int] = None,
        include_scan: bool = True,
    ) -> BaselineResult:
        """``SELECT <expr> FROM relation`` with this engine's semantics."""
        schema = relation.decimal_schema()
        tree = parse_expression(expr_text)
        result_spec = infer(tree, schema)
        self.check_specs(self._all_specs(tree), columns=self._column_specs(tree, schema))
        values = self._evaluate_rows(tree, relation)
        profile = profile_expression(expr_text, schema)
        seconds = self.query_seconds(
            profile, simulate_rows or relation.rows, include_scan=include_scan
        )
        return BaselineResult(self.name, values, seconds, result_spec)

    def run_sum(
        self,
        relation: Relation,
        expr_text: str,
        simulate_rows: Optional[int] = None,
        include_scan: bool = True,
    ) -> BaselineResult:
        """``SELECT SUM(<expr>) FROM relation``."""
        schema = relation.decimal_schema()
        tree = parse_expression(expr_text)
        inner_spec = infer(tree, schema)
        sim = simulate_rows or relation.rows
        sum_spec = inference.sum_result(inner_spec, max(sim, 1))
        self.check_specs(
            self._all_specs(tree) + [sum_spec],
            columns=self._column_specs(tree, schema),
        )
        values = self._evaluate_rows(tree, relation)
        total = self._sum(values)
        profile = profile_expression(expr_text, schema)
        profile.agg_digits.append(sum_spec.precision)
        seconds = self.query_seconds(profile, sim, include_scan=include_scan)
        return BaselineResult(self.name, [total], seconds, sum_spec)

    # --------------------------------------------------------------- timing

    def query_seconds(
        self, profile: WorkloadProfile, rows: int, include_scan: bool = True
    ) -> float:
        """End-to-end simulated time of a query over ``rows`` tuples."""
        arithmetic = self.costs.arithmetic_seconds(profile) * rows / self.costs.parallelism
        scan = (profile.row_bytes * rows / self.costs.scan_bandwidth) if include_scan else 0.0
        return self.costs.fixed_overhead + scan + arithmetic

    # ------------------------------------------------------------ internals

    def _evaluate_rows(self, tree: Expr, relation: Relation) -> List[DecimalValue]:
        """Exact row-at-a-time evaluation (the interpreted executor)."""
        columns: Dict[str, List[DecimalValue]] = {}
        for node in walk(tree):
            if isinstance(node, ColumnRef) and node.name not in columns:
                column = relation.column(node.name)
                spec = column.column_type.spec
                columns[node.name] = [
                    DecimalValue.from_unscaled(u, spec) for u in column.unscaled()
                ]
        rows = relation.rows
        return [self._evaluate_node(tree, columns, row) for row in range(rows)]

    def _evaluate_node(self, node: Expr, columns, row: int) -> DecimalValue:
        if isinstance(node, ColumnRef):
            return columns[node.name][row]
        if isinstance(node, Literal):
            spec = node.minimal_spec()
            unscaled = int(node.value * 10**spec.scale)
            return DecimalValue.from_unscaled(unscaled, spec)
        if isinstance(node, UnaryOp):
            value = self._evaluate_node(node.operand, columns, row)
            return -value if node.op == "-" else value
        if isinstance(node, BinaryOp):
            left = self._evaluate_node(node.left, columns, row)
            right = self._evaluate_node(node.right, columns, row)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                return self._divide(left, right)
            if node.op == "%":
                return left % right
        raise BaselineError(f"cannot evaluate {type(node).__name__}")

    def _divide(self, left: DecimalValue, right: DecimalValue) -> DecimalValue:
        """Division semantics hook (H2 overrides to add 20 digits)."""
        return left / right

    def _sum(self, values: List[DecimalValue]) -> DecimalValue:
        """Exact DECIMAL summation (all inputs share one spec)."""
        spec = values[0].spec
        total = sum(value.unscaled for value in values)
        sum_spec = inference.sum_result(spec, max(len(values), 1))
        return DecimalValue.from_unscaled_container(total, sum_spec)

    # -------------------------------------------------- DOUBLE-mode queries

    def run_sum_double(
        self,
        relation: Relation,
        expr_text: str,
        simulate_rows: Optional[int] = None,
        include_scan: bool = True,
    ) -> BaselineResult:
        """``SELECT SUM(<expr>) FROM R`` with DOUBLE columns (Figure 1).

        Evaluates in IEEE binary64 with this engine's accumulation order --
        fast, but the results are inexact and engine-dependent, which is
        the motivation experiment's point.
        """
        schema = relation.decimal_schema()
        tree = parse_expression(expr_text)
        infer(tree, schema)
        columns: Dict[str, np.ndarray] = {}
        for node in walk(tree):
            if isinstance(node, ColumnRef) and node.name not in columns:
                column = relation.column(node.name)
                spec = column.column_type.spec
                columns[node.name] = np.array(
                    [u / 10**spec.scale for u in column.unscaled()], dtype=np.float64
                )
        per_row = self._evaluate_double(tree, columns)
        total = self._sum_double(per_row)
        sim = simulate_rows or relation.rows
        profile = profile_expression(expr_text, schema)
        # DOUBLE rows are narrower and the ALU does the math: no digit loops.
        double_profile = WorkloadProfile(
            add_digits=[1] * len(profile.add_digits),
            mul_products=[1] * len(profile.mul_products),
            div_products=[1] * len(profile.div_products),
            agg_digits=[1],
            row_bytes=8 * len(columns),
            expression_nodes=profile.expression_nodes,
        )
        arithmetic = (
            self.costs.arithmetic_seconds(double_profile)
            * self.double_discount
            * sim
            / self.costs.parallelism
        )
        scan = (
            double_profile.row_bytes * sim / self.costs.scan_bandwidth
            if include_scan
            else 0.0
        )
        seconds = self.costs.fixed_overhead + scan + arithmetic
        return BaselineResult(self.name, [float(total)], seconds)

    def _evaluate_double(self, node: Expr, columns: Dict[str, np.ndarray]) -> np.ndarray:
        if isinstance(node, ColumnRef):
            return columns[node.name]
        if isinstance(node, Literal):
            return np.float64(float(node.value))
        if isinstance(node, UnaryOp):
            value = self._evaluate_double(node.operand, columns)
            return -value if node.op == "-" else value
        if isinstance(node, BinaryOp):
            left = self._evaluate_double(node.left, columns)
            right = self._evaluate_double(node.right, columns)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                return left / right
        raise BaselineError(f"cannot evaluate {type(node).__name__} as DOUBLE")

    def _sum_double(self, values: np.ndarray) -> float:
        """Accumulation order hook: sequential left-to-right by default."""
        total = 0.0
        for value in values.tolist():
            total += value
        return total

    def _all_specs(self, tree: Expr) -> List[DecimalSpec]:
        return [node.spec for node in walk(tree) if node.spec is not None]

    def _column_specs(self, tree: Expr, schema: Dict[str, DecimalSpec]) -> List[DecimalSpec]:
        return [
            schema[node.name]
            for node in walk(tree)
            if isinstance(node, ColumnRef) and node.name in schema
        ]
