"""PostgreSQL v14.4 model.

PostgreSQL's ``numeric`` type (src/backend/utils/adt/numeric.c, >10K lines
of C, as the paper's introduction notes) stores base-10000 digit arrays and
runs arbitrary-precision arithmetic in an interpreted, row-at-a-time
executor.  Calibration anchors from the paper:

* Figure 14(b): original TPC-H Q1 is 41.28x slower than UltraPrecise's
  684.67 ms (~28 s), falling to 7.70x at LEN=32 (~47 s);
* Figure 14(c): RSA encryption 22.2x .. 247.6x slower than UltraPrecise
  (~12.8 s at LEN=4 to ~252 s at LEN=32 -- the quadratic digit-loop term);
* Figure 15: PostgreSQL enables a parallel scan once the planner's cost
  estimate is high enough, visibly dropping the trig workload's time when
  the 10th Taylor term is appended.
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, EngineCosts, WorkloadProfile


class PostgresModel(BaselineEngine):
    """PostgreSQL with arbitrary-precision ``numeric``."""

    name = "PostgreSQL"
    version = "14.4"

    #: Expression-tree size beyond which the planner's cost estimate
    #: crosses the parallel threshold: Figure 15 shows the parallel scan
    #: kicking in exactly when the 10th Taylor term is appended (the
    #: polynomial's expression tree passes ~190 nodes there).
    #: Figure 1 calibration: numeric ops cost ~3x float8 ops.
    double_discount = 0.30

    PARALLEL_EXPRESSION_NODES = 190
    PARALLEL_WORKERS = 3.0
    #: Pure column aggregations (no per-tuple arithmetic in the target
    #: list) also run parallel -- why PostgreSQL stays within ~2x of the
    #: GPU engines on Figure 14(a)'s bare SUM.
    AGGREGATE_WORKERS = 6.0

    def default_costs(self) -> EngineCosts:
        return EngineCosts(
            per_tuple=0.15e-6,  # tuple deform + expression dispatch
            per_op=0.08e-6,  # numeric function call overhead
            add_per_digit=2.0e-9,  # base-10000 digit walk
            mul_per_digit_sq=0.078e-9,  # schoolbook digit products
            div_per_digit_sq=0.16e-9,  # div_var's long division
            agg_per_tuple=0.22e-6,  # aggregate transition function
            agg_per_digit=1.2e-9,
            scan_bandwidth=1.2e9,
            parallelism=1.0,
            fixed_overhead=0.020,
        )

    def query_seconds(
        self, profile: WorkloadProfile, rows: int, include_scan: bool = True
    ) -> float:
        """Adds the planner's parallel-plan decisions to the base model."""
        workers = 1.0
        if profile.arithmetic_ops == 0 and profile.aggregates > 0:
            workers = self.AGGREGATE_WORKERS
        elif profile.expression_nodes >= self.PARALLEL_EXPRESSION_NODES:
            workers = self.PARALLEL_WORKERS
        arithmetic = self.costs.arithmetic_seconds(profile) * rows / workers
        scan = (profile.row_bytes * rows / self.costs.scan_bandwidth) if include_scan else 0.0
        return self.costs.fixed_overhead + scan / min(workers, 2.0) + arithmetic
