"""Peer-database models: capability gates + exact semantics + cost models.

One model per system the paper compares against (section IV, Table II).
Each runs the same queries UltraPrecise runs -- producing exact (or, for
DOUBLE mode, characteristically inexact) results -- and reports simulated
times from coefficients calibrated to the paper's measurements.
"""

from repro.baselines.base import BaselineEngine, BaselineResult, EngineCosts, WorkloadProfile, profile_expression
from repro.baselines.capabilities import TABLE_II, DecimalCapability, capability, max_len_supported
from repro.baselines.cockroach import CockroachModel
from repro.baselines.h2 import H2Model
from repro.baselines.heavyai import HeavyAiModel
from repro.baselines.monetdb import MonetDBModel
from repro.baselines.postgres import PostgresModel
from repro.baselines.rateupdb import RateupDBModel
from repro.baselines.registry import create, names

__all__ = [
    "BaselineEngine",
    "BaselineResult",
    "CockroachModel",
    "DecimalCapability",
    "EngineCosts",
    "H2Model",
    "HeavyAiModel",
    "MonetDBModel",
    "PostgresModel",
    "RateupDBModel",
    "TABLE_II",
    "WorkloadProfile",
    "capability",
    "create",
    "max_len_supported",
    "names",
    "profile_expression",
]
