"""Registry of baseline engine models."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.baselines.base import BaselineEngine
from repro.baselines.cockroach import CockroachModel
from repro.baselines.h2 import H2Model
from repro.baselines.heavyai import HeavyAiModel
from repro.baselines.monetdb import MonetDBModel
from repro.baselines.postgres import PostgresModel
from repro.baselines.rateupdb import RateupDBModel
from repro.errors import BaselineError

_ENGINES: Dict[str, Type[BaselineEngine]] = {
    model.name: model
    for model in (
        PostgresModel,
        MonetDBModel,
        HeavyAiModel,
        RateupDBModel,
        CockroachModel,
        H2Model,
    )
}


def create(name: str) -> BaselineEngine:
    """Instantiate a baseline engine model by its Table II name."""
    try:
        return _ENGINES[name]()
    except KeyError:
        raise BaselineError(f"unknown baseline engine {name!r}") from None


def names() -> List[str]:
    """All modelled engines."""
    return sorted(_ENGINES)
