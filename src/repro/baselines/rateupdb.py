"""RateupDB model (the paper's host system, without UltraPrecise).

RateupDB is the CPU/GPU hybrid database UltraPrecise is implemented in;
the baseline version represents decimals in at most five 32-bit words
(max precision 36), stores them word-aligned (the *non-compact* layout of
section III-B1), and evaluates expressions with pre-compiled operators --
no JIT, so no compile latency, but also none of the representation or
scheduling optimisations.

Anchors: Query 1 622 ms (LEN=2) / 1055 ms (LEN=4) vs UltraPrecise's
714/902 ms -- faster at LEN=2 (UltraPrecise pays the JIT), slower at
LEN=4 (the compact representation wins as data widens); SUM 33%/12.5%
slower than UltraPrecise (Figure 14(a)); TPC-H Q1 1.52x-1.70x slower
(Figure 14(b)).
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, EngineCosts


class RateupDBModel(BaselineEngine):
    """RateupDB: GPU decimals, 5-word cap, non-compact representation."""

    name = "RateupDB"
    version = "academic"

    def default_costs(self) -> EngineCosts:
        return EngineCosts(
            per_tuple=4e-9,
            per_op=4e-9,
            #: Word-aligned (4*Lw+1 bytes) values move ~40% more data per
            #: digit than the compact layout, reflected in the digit rates.
            add_per_digit=0.9e-9,
            mul_per_digit_sq=0.03e-9,
            div_per_digit_sq=0.08e-9,
            agg_per_tuple=8e-9,
            agg_per_digit=0.12e-9,
            scan_bandwidth=2.5e9,
            parallelism=1.0,
            fixed_overhead=0.045,  # operator pipeline setup; no JIT though
        )
