"""DECIMAL capability limits across database systems (paper Table II).

Each entry records the maximum precision/scale a system supports, plus the
internal word width that caps which of the paper's LEN configurations it
can execute (e.g. HEAVY.AI holds every DECIMAL in one 64-bit word, so it
fails all experiments beyond LEN=2; MonetDB and RateupDB stop at LEN=4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.decimal.context import DecimalSpec
from repro.errors import CapabilityError


@dataclass(frozen=True)
class DecimalCapability:
    """One system's DECIMAL limits."""

    system: str
    max_precision: Optional[int]  # None = unlimited ("no limit")
    max_scale: Optional[int]
    #: Hard cap on the 32-bit word length of any value the engine can hold
    #: internally (None = unbounded).  This is what actually fails queries
    #: in the paper's experiments.
    max_words: Optional[int] = None
    notes: str = ""

    def check(self, spec: DecimalSpec) -> None:
        """Gate a *declared column* spec (precision + scale + word cap)."""
        if self.max_precision is not None and spec.precision > self.max_precision:
            raise CapabilityError(
                f"{self.system} supports DECIMAL precision <= {self.max_precision}, "
                f"got {spec.precision}"
            )
        if self.max_scale is not None and spec.scale > self.max_scale:
            raise CapabilityError(
                f"{self.system} supports DECIMAL scale <= {self.max_scale}, got {spec.scale}"
            )
        self.check_intermediate(spec)

    def check_intermediate(self, spec: DecimalSpec) -> None:
        """Gate an intermediate/result spec (the internal word cap only).

        Declared precision limits do not bind intermediates: Figure 8 shows
        RateupDB (declared max 36) executing the LEN=4 configuration whose
        *result* precision is 38 -- what actually fails it beyond LEN=4 is
        its five-word internal representation.
        """
        if self.max_words is not None and spec.words > self.max_words:
            raise CapabilityError(
                f"{self.system} stores DECIMAL in at most {self.max_words} words, "
                f"need {spec.words} for {spec}"
            )

    def supports(self, spec: DecimalSpec) -> bool:
        try:
            self.check(spec)
        except CapabilityError:
            return False
        return True

    def supports_intermediate(self, spec: DecimalSpec) -> bool:
        try:
            self.check_intermediate(spec)
        except CapabilityError:
            return False
        return True


#: Table II, augmented with the internal word caps section IV-A reports.
TABLE_II: Dict[str, DecimalCapability] = {
    "PostgreSQL": DecimalCapability("PostgreSQL", 147_455, 16_383),
    "YugabyteDB": DecimalCapability("YugabyteDB", 147_455, 16_383),
    "H2": DecimalCapability("H2", 100_000, 100_000),
    "PolarDB": DecimalCapability("PolarDB", 1000, 1000),
    "Greenplum": DecimalCapability("Greenplum", None, None),
    "CockroachDB": DecimalCapability("CockroachDB", None, None),
    "Vertica": DecimalCapability("Vertica", 1024, 1024),
    "SparkSQL": DecimalCapability("SparkSQL", 38, 38),
    "PrestoDB": DecimalCapability("PrestoDB", 38, 18),
    "SQL Server": DecimalCapability("SQL Server", 38, 38),
    "HEAVY.AI": DecimalCapability(
        "HEAVY.AI", 18, 18, max_words=2, notes="one 64-bit word for every DECIMAL"
    ),
    "MonetDB": DecimalCapability(
        "MonetDB", 38, 38, max_words=4, notes="two 64-bit words internally"
    ),
    "RateupDB": DecimalCapability(
        "RateupDB", 36, 36, max_words=5, notes="at most five 32-bit words internally"
    ),
    "Hive": DecimalCapability("Hive", 38, 38),
    "Oracle": DecimalCapability("Oracle", 38, 127, notes="scale may exceed precision"),
    "MySQL": DecimalCapability("MySQL", 65, 30),
    "Google Spanner": DecimalCapability("Google Spanner", 38, 9),
    "MongoDB": DecimalCapability(
        "MongoDB", None, None, notes="string exact value + double for fast arithmetic"
    ),
    "UltraPrecise": DecimalCapability(
        "UltraPrecise", None, None, notes="arbitrary precision on GPU (this paper)"
    ),
}


def capability(system: str) -> DecimalCapability:
    """Look up a system's capability row."""
    try:
        return TABLE_II[system]
    except KeyError:
        raise CapabilityError(f"unknown system {system!r}") from None


def max_len_supported(system: str) -> Optional[int]:
    """Largest paper LEN configuration a system can run (None = all).

    A LEN runs when the engine's internal representation admits the
    *result* width; declared-precision caps bind columns, not results
    (see :meth:`DecimalCapability.check_intermediate`).
    """
    from repro.core.decimal.context import PAPER_RESULT_PRECISIONS

    cap = capability(system)
    best = 0
    lengths = (2, 4, 8, 16, 32)
    for length in lengths:
        precision = PAPER_RESULT_PRECISIONS[length]
        spec = DecimalSpec(precision, 2)
        if not cap.supports_intermediate(spec):
            continue
        # Engines without an internal word cap are still bounded by their
        # declared precision: they cannot even store the result column.
        if cap.max_words is None and cap.max_precision is not None:
            if precision > cap.max_precision:
                continue
        best = length
    return None if best == lengths[-1] else (best or None)
