"""Figure 12: constant pre-calculation."""

import pytest

from conftest import emit
from repro.bench.experiments import fig12_const_precalc
from repro.core.jit import JitOptions, compile_expression


@pytest.fixture(scope="module")
def experiment():
    return emit(fig12_const_precalc.run())


def test_fig12_savings(benchmark, experiment):
    schema = fig12_const_precalc.schema_for(8)

    benchmark(lambda: compile_expression("1 + a + 2 + 11", schema, JitOptions()))

    rows = experiment.rows
    by_expr = {}
    for row in rows:
        by_expr.setdefault(row[0], []).append(row[4])
    # 1+a+2-3 reduces to `a`: no kernel at all, 100% saved at every LEN.
    assert all(saving == 100 for saving in by_expr["1+a+2-3"])
    # The other two save meaningfully (paper: up to 62.55% / 62.50%).
    assert max(by_expr["1+a+2+11"]) > 35
    assert max(by_expr["0.25*(a+b)*4"]) > 35
    assert all(saving > 0 for saving in by_expr["1+a+2+11"])
    assert all(saving > 0 for saving in by_expr["0.25*(a+b)*4"])
