"""Shared benchmark configuration.

Each ``bench_*.py`` regenerates one of the paper's tables/figures: it runs
the experiment (real arithmetic over a row sample, timing models charged at
10M tuples), prints the paper-style table, saves it as JSON under
``bench_results/``, asserts the paper's qualitative shape, and benchmarks
the underlying simulated operation with pytest-benchmark.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline; they are always written to bench_results/).
"""

import pytest


def emit(experiment):
    """Print and persist one experiment's table."""
    print()
    print(experiment.format())
    experiment.save("bench_results")
    return experiment
