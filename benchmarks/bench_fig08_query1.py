"""Figure 8: Query 1 across databases and precisions."""

import pytest

from conftest import emit
from repro.bench.experiments import fig08_query1
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import compile_expression
from repro.gpusim import execute
from repro.storage import datagen


@pytest.fixture(scope="module")
def experiment():
    return emit(fig08_query1.run(rows=800))


def test_fig08_kernel_len4(benchmark, experiment):
    """Benchmark the Query 1 kernel at LEN=4 and assert the figure's shape."""
    spec = fig08_query1.column_spec(4)
    relation = datagen.relation_r1(spec, rows=800, seed=81)
    schema = relation.decimal_schema()
    compiled = compile_expression("c1 + c2 + c3", schema)
    columns = {name: relation.column(name).data for name in schema}

    benchmark(lambda: execute(compiled.kernel, columns, relation.rows))

    lens = experiment.column("LEN")
    heavyai = experiment.column("HEAVY.AI (s)")
    monet = experiment.column("MonetDB (s)")
    rateup = experiment.column("RateupDB (s)")
    postgres = experiment.column("PostgreSQL (s)")
    ours = experiment.column("UltraPrecise (s)")

    # Capability failures exactly as in the paper.
    assert [h is None for h in heavyai] == [False, True, True, True, True]
    assert [m is None for m in monet] == [False, False, True, True, True]
    assert [r is None for r in rateup] == [False, False, True, True, True]
    # PostgreSQL completes everything but is the slowest at every LEN.
    for i in range(len(lens)):
        assert postgres[i] == max(v for v in
                                  [heavyai[i], monet[i], rateup[i], postgres[i], ours[i]]
                                  if v is not None)
    # The JIT crossover: RateupDB wins at LEN=2, UltraPrecise from LEN=4 on.
    assert rateup[0] < ours[0]
    assert ours[1] < rateup[1]
    # "up to 5.24x" speedup over PostgreSQL: ours lands in the same band.
    speedups = [postgres[i] / ours[i] for i in range(len(lens))]
    assert 2.0 < max(speedups) < 12.0
