"""Extension: storage codecs + zone maps on streamed TPC-H Q1/Q6.

Runs the compression experiment (``repro.bench.experiments.ext_compression``)
across the LEN sweep: PCIe bytes per codec, zone-map chunk-skip counts on
the clustered Q6 filter, pipelined end-to-end times, and bit-exactness of
every variant against the codec-free path.

Asserts the acceptance floors of the codec work: >= 2x PCIe-byte
reduction with the order-preserving codec on Q1 at LEN >= 8, chunk
skipping > 0 on the selective Q6 filter, and bit-exact rows everywhere.

Also runnable as a script for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_ext_compression.py --smoke
"""

import pytest

from conftest import emit
from repro.bench.experiments import ext_compression
from repro.core.decimal import dinf
from repro.storage import tpch
from repro.storage.codecs import OrderPreservingCodec


@pytest.fixture(scope="module")
def experiment():
    return emit(ext_compression.run(rows=1536))


def _cells(experiment):
    return list(
        zip(
            experiment.column("query"),
            experiment.column("LEN"),
            experiment.column("codec"),
            experiment.column("reduction vs compact"),
            experiment.column("chunks skipped"),
            experiment.column("chunks total"),
            experiment.column("bit_exact"),
        )
    )


def test_ext_compression_pcie_reduction(benchmark, experiment):
    relation = tpch.lineitem_for_len(8, rows=1536, seed=7)
    column = relation.column("l_extendedprice")
    compact, unscaled, spec = (
        column.data,
        column.unscaled(),
        column.column_type.spec,
    )
    benchmark(
        lambda: OrderPreservingCodec().encode_column(
            compact, unscaled, spec, chunk_rows=256
        )
    )

    cells = _cells(experiment)
    # Every cell bit-exact, and the dinf codec never ships *more* bytes.
    assert all(exact for *_rest, exact in cells)
    assert all(
        reduction >= 1.0
        for _q, _l, codec, reduction, *_rest in cells
        if codec == "dinf"
    )
    # The headline floor: >= 2x PCIe cut on Q1 wherever the fixed-width
    # layout pads heavily (the extended-precision LEN >= 8 points).
    assert all(
        reduction >= 2.0
        for query, length, codec, reduction, *_rest in cells
        if query == "Q1" and codec == "dinf" and length >= 8
    )


def test_ext_compression_zone_skipping(experiment):
    cells = _cells(experiment)
    # The clustered, selective Q6 filter must prune chunks under every
    # codec (zone maps are recorded at encode time for all of them) ...
    assert all(
        skipped > 0
        for query, _l, _c, _r, skipped, *_rest in cells
        if query == "Q6"
    )
    # ... and never on Q1, whose only filter is on the (codec-free) date.
    assert all(
        skipped == 0
        for query, _l, _c, _r, skipped, *_rest in cells
        if query == "Q1"
    )
    assert all(
        skipped < total for _q, _l, _c, _r, skipped, total, _e in cells if total
    )


def test_ext_compression_order_preserving_property():
    # memcmp order over encoded bytes == numeric order, across sign flips,
    # magnitude-length boundaries and zero.
    values = sorted(
        [0, 1, -1, 255, 256, -255, -256, 65535, -65536, 10**9, -(10**9), 42, -17]
    )
    encoded = [dinf.encode_one(v).tobytes() for v in values]
    assert encoded == sorted(encoded)


def _smoke(rows: int = 1024) -> int:
    """CI smoke: bit-exactness + PCIe cut on Q1, chunk skipping on Q6."""
    experiment = ext_compression.run(rows=rows, lengths=(8,))
    print(experiment.format())
    failures = []
    for query, length, codec, reduction, skipped, _total, exact in _cells(experiment):
        if not exact:
            failures.append(f"{query} LEN={length} {codec}: rows diverged")
        if query == "Q1" and codec == "dinf" and reduction < 2.0:
            failures.append(
                f"Q1 LEN={length} dinf: PCIe reduction {reduction:.2f}x < 2x"
            )
        if query == "Q6" and skipped == 0:
            failures.append(f"Q6 LEN={length} {codec}: no chunks zone-skipped")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(
        f"smoke OK: bit-exact, >=2x Q1 PCIe cut and Q6 chunk skipping "
        f"on all {rows}-row cells"
    )
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small acceptance sweep (CI)"
    )
    parser.add_argument("--rows", type=int, default=None, help="rows per cell")
    options = parser.parse_args()
    if options.smoke:
        sys.exit(_smoke(options.rows or 1024))
    emit(ext_compression.run(rows=options.rows or 3072))
