"""Figure 9: Query 2 (two expressions, two kernels)."""

import pytest

from conftest import emit
from repro.bench.experiments import fig09_query2
from repro.engine import Database
from repro.storage import datagen


@pytest.fixture(scope="module")
def experiment():
    return emit(fig09_query2.run(rows=700))


def test_fig09_two_kernel_query(benchmark, experiment):
    relation = datagen.relation_r2(fig09_query2.wide_spec(4), rows=700, seed=91)
    db = Database(simulate_rows=10_000_000)
    db.register(relation)

    def run_query():
        db.kernel_cache.clear()
        return db.execute(fig09_query2.QUERY)

    result = benchmark(run_query)
    assert result.report.kernels_compiled == 2  # two generated kernels

    lens = experiment.column("LEN")
    postgres = experiment.column("PostgreSQL (s)")
    ours = experiment.column("UltraPrecise (s)")
    monet = experiment.column("MonetDB (s)")
    rateup = experiment.column("RateupDB (s)")
    # UltraPrecise is the fastest in all cases (the paper's headline here).
    for i in range(len(lens)):
        competitors = [v for v in (postgres[i], monet[i], rateup[i]) if v is not None]
        assert ours[i] < min(competitors)
    # Up to ~8x vs PostgreSQL.
    speedups = [postgres[i] / ours[i] for i in range(len(lens))]
    assert max(speedups) > 4.0
