"""Extension: concurrent serving throughput vs session count.

Serves a closed-loop TPC-H-style mix (Q1/Q6/projection/filter) from 1, 4,
16 and 64 concurrent sessions over one shared database and simulated
device, asserting the serving layer's contract: every served result is
bit-exact against serial execution (the experiment raises on divergence),
simulated throughput grows with session count, and tail latency degrades
gracefully rather than collapsing.

Also runnable as a script for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_ext_serving.py --smoke

The smoke run asserts (a) bit-exactness vs serial and (b) >1x simulated
throughput at 16 sessions vs 1 session, and writes
``bench_results/ext_serving.json`` for the workflow artifact.
"""

import pytest

from conftest import emit
from repro.bench.experiments import ext_serving
from repro.engine import Database
from repro.storage import tpch


@pytest.fixture(scope="module")
def experiment():
    return emit(ext_serving.run(rows=500))


def _make_database(rows: int = 300) -> Database:
    database = Database(simulate_rows=2_000_000, aggregation_tpi=8)
    database.register(tpch.lineitem_for_len(8, rows=rows, seed=7))
    return database


def test_ext_serving_throughput_scales(benchmark, experiment):
    database = _make_database()
    ext_serving.warm_shared_state(database)
    benchmark(lambda: ext_serving.serve_workload(database, 4, 2))

    sessions = experiment.column("sessions")
    qps = experiment.column("queries/sec")
    vs_one = experiment.column("throughput vs 1 session")
    overlap = experiment.column("overlap speedup")

    assert sessions == [1, 4, 16, 64]
    # One session cannot overlap with itself; the schedule degenerates to
    # full serialization.
    assert overlap[0] == pytest.approx(1.0)
    # Concurrency wins: throughput at 16 sessions beats 1 session (the CI
    # smoke gate's floor), and every multi-session point beats serial.
    assert vs_one[sessions.index(16)] > 1.0
    assert all(speedup > 1.0 for s, speedup in zip(sessions, overlap) if s > 1)
    # More sessions never reduce throughput below the single-session floor.
    assert all(rate >= qps[0] * 0.99 for rate in qps)


def test_ext_serving_latency_tail(experiment):
    p50 = experiment.column("p50 latency (ms)")
    p99 = experiment.column("p99 latency (ms)")
    assert all(hi >= lo for lo, hi in zip(p50, p99))
    assert all(lo > 0 for lo in p50)
    # Contention shows up as tail growth: p99 at 64 sessions exceeds the
    # uncontended single-session tail.
    assert p99[-1] > p99[0]


def _smoke(rows: int = 240) -> int:
    """CI smoke: bit-exact vs serial + >1x throughput at 16 sessions."""
    experiment = ext_serving.run(
        rows=rows, session_counts=(1, 16), queries_per_session=3
    )
    # Bit-exactness vs serial already ran inside the experiment (it raises
    # on any divergence); gate the throughput floor here.
    print(experiment.format())
    experiment.save("bench_results")
    sessions = experiment.column("sessions")
    vs_one = experiment.column("throughput vs 1 session")
    speedup = vs_one[sessions.index(16)]
    if speedup <= 1.0:
        print(f"FAIL: 16 sessions reach only {speedup:.2f}x 1-session throughput")
        return 1
    print(
        f"smoke OK: all served results bit-exact vs serial; 16 sessions "
        f"sustain {speedup:.2f}x the 1-session simulated throughput"
    )
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI gate: bit-exactness + throughput floor"
    )
    parser.add_argument("--rows", type=int, default=None, help="real rows in lineitem")
    options = parser.parse_args()
    if options.smoke:
        sys.exit(_smoke(options.rows or 240))
    emit(ext_serving.run(rows=options.rows or 600))
