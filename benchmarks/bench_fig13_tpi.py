"""Figure 13: multi-threaded (TPI) arithmetic kernels."""

import pytest

from conftest import emit
from repro.bench.experiments import fig13_tpi
from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.core.multithread import cgbn


@pytest.fixture(scope="module")
def experiment():
    return emit(fig13_tpi.run())


def _rows_for(experiment, op):
    return {row[1]: row for row in experiment.rows if row[0] == op}


def test_fig13_addition(benchmark, experiment):
    """Group addition correctness under benchmark + the paper's shape."""
    spec = DecimalSpec(30, 2)
    result_spec = inference.add_result(spec, spec)
    a = cgbn.GroupValue.from_unscaled(10**29 - 7, spec, 8)
    b = cgbn.GroupValue.from_unscaled(-(10**28), spec, 8)

    out = benchmark(lambda: cgbn.add(a, b, result_spec))
    assert out.unscaled == (10**29 - 7) - 10**28

    adds = _rows_for(experiment, "a+b")
    # LEN=32: TPI=8 clearly beats single-threaded (paper 49.67 -> 23.67 ms).
    assert adds[32][4] < 0.6 * adds[32][2]
    # LEN=4: single and multi-threaded are comparable (paper: both 3.67 ms).
    assert adds[4][3] < 1.2 * adds[4][2]
    # Absolute anchor band for the LEN=32 single-threaded add.
    assert 35 <= adds[32][2] <= 70


def test_fig13_division_restriction(benchmark, experiment):
    from repro.core.multithread import division_supported

    benchmark(lambda: [division_supported(l, t) for l in (2, 4, 8, 16, 32) for t in (1, 4, 8)])
    divs = _rows_for(experiment, "a/b")
    # The famous missing cell: TPI=4 cannot divide LEN=32.
    assert divs[32][3] is None
    assert divs[32][4] is not None
    # Newton-Raphson at TPI=8 crushes the single-threaded binary search.
    assert divs[32][4] < divs[32][2] / 5
    # Division is the most expensive operator single-threaded.
    adds = _rows_for(experiment, "a+b")
    muls = _rows_for(experiment, "a*b")
    assert divs[32][2] > muls[32][2] > 0
    assert divs[32][2] > adds[32][2]
