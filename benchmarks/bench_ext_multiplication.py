"""Extension: the multiplication-algorithm hierarchy of section II-B.

The paper: "the Karatsuba algorithm is not as fast as the basic one for a
small N.  The Schonhage-Strassen algorithm has even lower complexity ...
but it outperforms the latter only if N is sufficiently large."  This
bench measures all four implementations (schoolbook, Karatsuba, Toom-3,
NTT) across operand widths and verifies exactly that ordering: schoolbook
wins at the paper's kernel sizes (LEN <= 32), the sub-quadratic algorithms
only pay off far beyond them -- the reason UltraPrecise's kernels keep the
elementary algorithm.
"""

import time

import pytest

from conftest import emit
from repro.bench.harness import Experiment
from repro.core.decimal import words as w
from repro.core.decimal.fastmul import ntt_multiply, toom3
from repro.core.decimal.karatsuba import karatsuba

WIDTHS = (8, 32, 128, 512)


def _operands(width):
    a = (1 << (32 * width - 3)) - 12345
    b = (1 << (32 * width - 7)) + 98765
    return w.from_int(a, width), w.from_int(b, width)


def _time(function, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - start)
    return best


def run_ablation(widths=WIDTHS) -> Experiment:
    headers = ["words", "schoolbook (ms)", "karatsuba (ms)", "toom3 (ms)", "ntt (ms)", "fastest"]
    rows = []
    for width in widths:
        a, b = _operands(width)
        timings = {
            "schoolbook": _time(w.mul, list(a), list(b)),
            "karatsuba": _time(karatsuba, a, b),
            "toom3": _time(toom3, a, b),
            "ntt": _time(ntt_multiply, a, b),
        }
        fastest = min(timings, key=timings.get)
        rows.append(
            [
                width,
                timings["schoolbook"] * 1e3,
                timings["karatsuba"] * 1e3,
                timings["toom3"] * 1e3,
                timings["ntt"] * 1e3,
                fastest,
            ]
        )
    return Experiment(
        experiment_id="ext_multiplication",
        title="Multiplication algorithms: wall time by operand width (host)",
        headers=headers,
        rows=rows,
        notes=[
            "section II-B's break-even story shows in the *growth rates*: "
            "schoolbook time grows ~quadratically with width while "
            "Karatsuba/Toom-3/NTT grow sub-quadratically",
            "caveat: absolute host times are distorted by the Python "
            "substrate (Toom-3's leaf multiplications delegate to CPython's "
            "native big-int, the schoolbook loop pays interpreter overhead "
            "per limb); on the simulated GPU the kernels charge the "
            "schoolbook PTX counts the paper's implementation uses",
        ],
    )


@pytest.fixture(scope="module")
def experiment():
    return emit(run_ablation())


def test_ext_multiplication(benchmark, experiment):
    a, b = _operands(32)
    benchmark(lambda: karatsuba(a, b))

    rows = {row[0]: row for row in experiment.rows}
    # All algorithms agree (checked here for the widest case).
    wide_a, wide_b = _operands(512)
    expected = w.to_int(wide_a) * w.to_int(wide_b)
    assert w.to_int(karatsuba(wide_a, wide_b)) == expected
    assert w.to_int(toom3(wide_a, wide_b)) == expected
    assert w.to_int(ntt_multiply(wide_a, wide_b)) == expected
    # The complexity hierarchy shows in the growth from 8 to 512 words
    # (a 64x width increase): schoolbook grows ~quadratically, the
    # sub-quadratic algorithms clearly slower than that.
    schoolbook_growth = rows[512][1] / rows[8][1]
    karatsuba_growth = rows[512][2] / rows[8][2]
    toom3_growth = rows[512][3] / rows[8][3]
    ntt_growth = rows[512][4] / rows[8][4]
    assert schoolbook_growth > 500  # ~64^2 = 4096 in the limit
    # Karatsuba's asymptotics (~64^1.585 = 730) are partly masked by its
    # pure-Python recursion overhead; allow measurement noise.
    assert karatsuba_growth < schoolbook_growth * 1.6
    assert toom3_growth < schoolbook_growth / 3
    assert ntt_growth < schoolbook_growth / 3
