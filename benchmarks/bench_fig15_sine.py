"""Figure 15: trigonometric approximation (Query 5)."""

import pytest

from conftest import emit
from repro.bench.experiments import fig15_sine
from repro.engine import Database
from repro.workloads import trig


@pytest.fixture(scope="module")
def experiment():
    return emit(
        fig15_sine.run(rows=80, columns=("c1", "c2"), terms_range=(2, 3, 5, 8, 10, 11))
    )


def _rows_for(experiment, label):
    return {row[1]: row for row in experiment.rows if row[0] == label}


def test_fig15_sine(benchmark, experiment):
    workload = trig.build_workload(rows=80)
    db = Database(simulate_rows=10_000_000)
    db.register(workload.relation)

    def three_terms():
        db.kernel_cache.clear()
        return db.execute(workload.query("c2", 3), include_scan=False)

    benchmark(three_terms)

    near_zero = _rows_for(experiment, "sin(0.01+e)")
    near_pi4 = _rows_for(experiment, "sin(0.78+e)")

    # UltraPrecise ~2 orders faster than every peer at every point.
    for rows in (near_zero, near_pi4):
        for row in rows.values():
            up_time = row[2]
            for index in (4, 6, 8):  # PG / H2 / CockroachDB times
                assert row[index] > 10 * up_time

    # Scalability: UltraPrecise grows ~1 s from 2 to 11 terms (paper 1.13 s);
    # the CPU engines grow by tens-to-hundreds of seconds.
    up_growth = near_pi4[11][2] - near_pi4[2][2]
    pg_growth = near_pi4[11][4] - near_pi4[2][4]
    assert up_growth < 3.0
    assert pg_growth > 30.0

    # Accuracy keeps improving with terms near pi/4 ...
    assert near_pi4[11][3] < near_pi4[5][3] < near_pi4[2][3]
    # ... but saturates near 0.01 (paper: "after 4 or 5 terms") ...
    assert near_zero[11][3] == pytest.approx(near_zero[8][3], rel=2)
    # ... except H2, whose +20 division digits keep helping (column 7 = H2 MAE).
    assert near_zero[11][7] < near_zero[8][7] or near_zero[11][7] < near_zero[5][7] / 1e3

    # PostgreSQL's parallel-scan kick-in: term 10 runs faster than term 8.
    assert near_pi4[10][4] < near_pi4[8][4]
