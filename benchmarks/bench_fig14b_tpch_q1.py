"""Figure 14(b): TPC-H Q1 at extended precision + the FOR case study."""

import pytest

from conftest import emit
from repro.bench.experiments import fig14b_tpch_q1
from repro.engine import Database
from repro.storage import tpch
from repro.workloads.tpch_queries import Q1_SQL


@pytest.fixture(scope="module")
def experiment():
    return emit(fig14b_tpch_q1.run(rows=1500))


@pytest.fixture(scope="module")
def compression_study():
    return emit(fig14b_tpch_q1.run_compression_study(rows=3000))


def test_fig14b_q1(benchmark, experiment):
    relation = tpch.lineitem(rows=1200, seed=7)
    db = Database(simulate_rows=10_000_000, aggregation_tpi=8)
    db.register(relation)

    def run_q1():
        db.kernel_cache.clear()
        return db.execute(Q1_SQL, include_scan=False)

    result = benchmark(run_q1)
    assert len(result.rows) == 6  # 3 returnflags x 2 linestatuses

    ours = experiment.column("UltraPrecise (s)")
    paper = experiment.column("UP paper (s)")
    shares = experiment.column("compile share %")
    # Time grows monotonically across the LEN sweep (the "orig" row uses
    # DECIMAL(12,2), marginally wider than the LEN=2 configuration).
    assert ours[1:] == sorted(ours[1:])
    for measured, reference in zip(ours, paper):
        assert 0.3 < measured / reference < 3.0
    # Compile share falls as LEN grows (paper: 47% -> 7%).
    assert shares[0] > shares[-1]
    assert shares[-1] < 25


def test_fig14b_for_compression(benchmark, compression_study):
    from repro.storage import compression
    from repro.storage.tpch import lineitem_for_len

    column = lineitem_for_len(8, rows=1500, seed=7).column("l_quantity")
    spec = column.column_type.spec
    values = column.unscaled()
    benchmark(lambda: compression.compress(values, spec))

    ratios = compression_study.column("ratio")
    speedups = compression_study.column("transfer speedup")
    # TPC-H value ranges are narrow: compression helps, more at higher LEN.
    assert all(r > 1.2 for r in ratios)
    assert speedups[-1] > speedups[0]
    # Paper band: 1.38x - 4.80x end-to-end; transfers alone exceed that.
    assert 1.3 < min(speedups)
