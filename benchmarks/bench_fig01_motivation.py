"""Figure 1: the motivation experiment (SUM(c1+c2), DOUBLE vs DECIMAL)."""

import pytest

from conftest import emit
from repro.bench.experiments import fig01_motivation
from repro.engine import Database
from repro.workloads import figure1


@pytest.fixture(scope="module")
def experiment():
    return emit(fig01_motivation.run(rows=2500))


def test_fig01_shapes(benchmark, experiment):
    """DECIMAL is exact and slower; DOUBLE answers disagree across engines."""
    relation = figure1.build_relation("low-p", rows=2000)
    db = Database(simulate_rows=10_000_000)
    db.register(relation)

    def run_low_p():
        db.kernel_cache.clear()
        return db.execute("SELECT SUM(c1 + c2) FROM R")

    benchmark(run_low_p)

    rows = {row[0]: row for row in zip(*[experiment.column(h) for h in experiment.headers])}
    for engine in ("PostgreSQL", "CockroachDB"):
        engine_row = rows[engine]
        assert engine_row[1] < engine_row[2] < engine_row[3]  # DOUBLE < low-p < high-p
        assert engine_row[5] == "NO"  # DOUBLE result inexact
    # The paper's headline: UltraPrecise low-p is ~1.04x its DOUBLE time.
    up = rows["UltraPrecise"]
    assert up[4] == pytest.approx(1.04, abs=0.05)
    # PostgreSQL's DECIMAL penalty is much larger than UltraPrecise's.
    assert rows["PostgreSQL"][4] > 2.0
    # The inconsistent-DOUBLE note must have fired.
    assert any("inconsistent" in note for note in experiment.notes)
