"""Extension: chunked streaming execution across the Figure 14(b) LEN sweep.

Runs TPC-H Q1 on the serial path and on the chunked streaming path
(:class:`repro.gpusim.streaming.StreamingConfig`), asserting bit-exact
results, pipelined-beats-serial per-kernel timings, and overlap speedups
above 1x for the transfer-bound LEN points.
"""

import pytest

from conftest import emit
from repro.bench.experiments import ext_streaming
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import compile_expression
from repro.engine import Database
from repro.gpusim.streaming import StreamingConfig, execute_streamed
from repro.storage import tpch
from repro.workloads.tpch_queries import Q1_SQL


@pytest.fixture(scope="module")
def experiment():
    return emit(ext_streaming.run(rows=1200))


def test_ext_streaming_overlap(benchmark, experiment):
    spec = DecimalSpec(30, 2)
    compiled = compile_expression("a + b * 2", {"a": spec, "b": spec})
    columns = {
        "a": DecimalVector.from_unscaled([i * 7 - 50 for i in range(200)], spec).to_compact(),
        "b": DecimalVector.from_unscaled([i * 3 + 1 for i in range(200)], spec).to_compact(),
    }
    benchmark(
        lambda: execute_streamed(
            compiled.kernel, columns, 200, simulate_tuples=10_000_000
        )
    )

    overlaps = experiment.column("kernel overlap")
    chunks = experiment.column("chunks")
    end_to_end = experiment.column("end-to-end speedup")
    hot_serial = experiment.column("serial kernel+pcie (ms)")
    hot_streamed = experiment.column("streamed kernel+pcie (ms)")

    # Every LEN point is chunked and no point gets slower end to end.
    assert all(c > 1 for c in chunks)
    assert all(s >= 1.0 for s in end_to_end)
    # The streamed kernels beat their serial equivalent at every LEN, and
    # by more than 1x where the pipeline is transfer-bound (the low-LEN
    # points, whose cheap kernels hide entirely under the PCIe copies).
    assert all(o > 1.0 for o in overlaps)
    assert overlaps[0] > 1.2
    # The kernel+PCIe hot path the streaming targets gets strictly faster.
    assert all(st < se for st, se in zip(hot_streamed, hot_serial))


def test_ext_streaming_bit_exact_end_to_end(benchmark):
    relation = tpch.lineitem_for_len(4, rows=900, seed=7)
    serial_db = Database(simulate_rows=10_000_000, aggregation_tpi=8)
    serial_db.register(relation)
    streamed_db = Database(
        simulate_rows=10_000_000,
        aggregation_tpi=8,
        streaming=StreamingConfig(enabled=True, chunk_rows=1_000_000),
    )
    streamed_db.register(relation)

    serial = serial_db.execute(Q1_SQL, include_scan=False)

    def run_streamed():
        streamed_db.kernel_cache.clear()
        return streamed_db.execute(Q1_SQL, include_scan=False)

    streamed = benchmark(run_streamed)
    assert streamed.rows == serial.rows
    for entry in streamed.report.streamed_kernels:
        assert entry.chunks > 1
        assert entry.pipelined_seconds < entry.serial_seconds
