"""Validate every ``bench_results/*.json`` artifact.

Each artifact is written by :meth:`repro.bench.harness.Experiment.save`;
CI uploads them and EXPERIMENTS.md is regenerated from them, so a stale or
hand-mangled file should fail fast rather than silently ship.  Checks per
file:

* parses as JSON and is a top-level object;
* carries the harness schema: ``id``, ``title``, ``headers``, ``rows``
  (with ``id`` matching the filename);
* every row has exactly one cell per header;
* no numeric cell is NaN or infinite;
* cells under timing/throughput headers (``(s)``, ``(ms)``, ``latency``,
  ``/sec`` ...) are never negative;
* artifacts with a registered schema (``EXPECTED_HEADERS``) carry exactly
  the registered header list -- a drive-by header rename must update the
  registry (and the consumers it documents) in the same change.

Usage::

    python benchmarks/check_bench_results.py [directory]

Exits non-zero listing every violation.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path
from typing import List

#: Header fragments that mark a column as a timing/rate: values there must
#: be finite and non-negative (a negative simulated time is always a bug).
NON_NEGATIVE_MARKERS = (
    "(s)",
    "(ms)",
    "(us)",
    "sec",
    "latency",
    "time",
    "speedup",
    "throughput",
    "rows/s",
    "chunks",
)

REQUIRED_KEYS = ("id", "title", "headers", "rows")

#: Artifacts whose header layout downstream gates depend on (CI smoke
#: checks, EXPERIMENTS.md narratives).  Validated exactly, in order.
EXPECTED_HEADERS = {
    "ext_tpch_real": [
        "query",
        "UltraPrecise (s)",
        "PostgreSQL model (s)",
        "PG / UP",
        "output rows",
        "scan MB",
        "PCIe MB",
        "join order",
    ],
    "ext_compression": [
        "query",
        "LEN",
        "codec",
        "pcie (MB)",
        "reduction vs compact",
        "chunks skipped",
        "chunks total",
        "pipelined (s)",
        "speedup vs compact",
        "bit_exact",
    ],
    "ext_plan_analysis": [
        "workload",
        "codec",
        "optimizer",
        "operators",
        "kernels",
        "errors",
        "warnings",
        "infos",
    ],
}


def check_file(path: Path) -> List[str]:
    """All violations found in one artifact (empty = clean)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable JSON: {error}"]
    if not isinstance(payload, dict):
        return ["top level is not an object"]

    problems = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing top-level {key!r} (harness schema)")
    if problems:
        return problems

    if payload["id"] != path.stem:
        problems.append(f"id {payload['id']!r} does not match filename {path.stem!r}")
    headers = payload["headers"]
    rows = payload["rows"]
    if not isinstance(headers, list) or not all(isinstance(h, str) for h in headers):
        return problems + ["headers is not a list of strings"]
    if not isinstance(rows, list):
        return problems + ["rows is not a list"]

    expected = EXPECTED_HEADERS.get(path.stem)
    if expected is not None and headers != expected:
        problems.append(
            f"headers {headers!r} do not match the registered schema {expected!r}"
        )

    guarded = [
        index
        for index, header in enumerate(headers)
        if any(marker in header.lower() for marker in NON_NEGATIVE_MARKERS)
    ]
    for row_index, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(headers):
            problems.append(f"row {row_index} does not match the {len(headers)} headers")
            continue
        for cell_index, cell in enumerate(row):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            if math.isnan(cell) or math.isinf(cell):
                problems.append(
                    f"row {row_index} {headers[cell_index]!r}: non-finite value {cell}"
                )
            elif cell_index in guarded and cell < 0:
                problems.append(
                    f"row {row_index} {headers[cell_index]!r}: negative timing {cell}"
                )
    return problems


def main(argv: List[str]) -> int:
    directory = Path(argv[1]) if len(argv) > 1 else Path("bench_results")
    artifacts = sorted(directory.glob("*.json"))
    if not artifacts:
        print(f"FAIL: no artifacts found under {directory}/")
        return 1
    failures = 0
    for path in artifacts:
        problems = check_file(path)
        for problem in problems:
            print(f"FAIL {path}: {problem}")
        failures += len(problems)
    if failures:
        print(f"{failures} problem(s) across {len(artifacts)} artifact(s)")
        return 1
    print(f"OK: {len(artifacts)} artifacts under {directory}/ are valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
