"""Figure 11: constant construction (1 + a)."""

import pytest

from conftest import emit
from repro.bench.experiments import fig11_const_construction
from repro.core.jit import JitOptions, compile_expression
from repro.gpusim import kernel_time


@pytest.fixture(scope="module")
def experiment():
    return emit(fig11_const_construction.run())


def test_fig11_speedups(benchmark, experiment):
    schema = fig11_const_construction.schema_for(8)

    def compile_both():
        fast = compile_expression("1 + a", schema, JitOptions())
        slow = compile_expression(
            "1 + a", schema, JitOptions(constant_construction=False, constant_alignment=False)
        )
        return kernel_time(fast.kernel, 10_000_000), kernel_time(slow.kernel, 10_000_000)

    benchmark(compile_both)

    speedups = experiment.column("speedup")
    paper = experiment.column("paper speedup")
    # Speedup shrinks as precision grows (fixed conversion amortised).
    assert speedups[0] > speedups[-1]
    # Each point lands near the paper's value.
    for ours, theirs in zip(speedups, paper):
        assert ours == pytest.approx(theirs, abs=0.12)
