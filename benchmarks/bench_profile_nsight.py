"""Section IV-A: Nsight-style kernel profiles."""

import pytest

from conftest import emit
from repro.bench.experiments import profile_nsight
from repro.core.decimal.context import DecimalSpec
from repro.core.jit import compile_expression
from repro.gpusim import profile_kernel


@pytest.fixture(scope="module")
def experiment():
    return emit(profile_nsight.run())


def test_profile(benchmark, experiment):
    schema = {"a": DecimalSpec(75, 2), "b": DecimalSpec(75, 2)}
    compiled = compile_expression("a + b", schema)
    benchmark(lambda: profile_kernel(compiled.kernel))

    rows = {(row[0], row[1]): row for row in experiment.rows}
    # All four kernels are memory-bound with single-digit SM utilisation.
    for row in experiment.rows:
        assert row[4] == "yes"
        assert row[2] < 10
    # Occupancy: 100% at LEN=8, dropping at LEN=32 (mul below add).
    assert rows[("a+b", 8)][3] == pytest.approx(100.0)
    assert rows[("a*b", 8)][3] == pytest.approx(100.0)
    assert rows[("a+b", 32)][3] < 70
    assert rows[("a*b", 32)][3] < rows[("a+b", 32)][3]
