"""Extension: data-plane hot-path vectorisation, before vs after.

Compares the batched decimal kernels against the preserved row-loop
reference (:mod:`repro.core.decimal.reference`) across register widths,
asserting the acceptance floors of the vectorisation work: >= 5x rows/sec
on division at LEN <= 2, >= 2x on the ``to_unscaled``-bound aggregation
path, no kernel slower than the reference, and bit-exact results in every
benchmarked cell (the experiment itself raises on any divergence).

The ``div[static:*]`` cells additionally check the range analyzer's
feedback loop: a statically proven size class must beat the dynamically
dispatched vectorised division over the same operands (the per-row
uint64 folds, threshold masks and index partitioning are pure overhead
once the class is proven) while staying bit-exact against the row loop.

Also runnable as a script for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_ext_hotpath.py --smoke
"""

import pytest

from conftest import emit
from repro.bench.experiments import ext_hotpath
from repro.core.decimal import vectorized as vz
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector


@pytest.fixture(scope="module")
def experiment():
    return emit(ext_hotpath.run(rows=20_000))


def test_ext_hotpath_speedups(benchmark, experiment):
    spec = DecimalSpec(19, 2)
    a = DecimalVector.from_unscaled([i * 977 - 60_000 for i in range(5_000)], spec)
    b = DecimalVector.from_unscaled([i * 3 + 1 for i in range(5_000)], spec)
    benchmark(lambda: vz.div(a, b))

    rows = list(
        zip(
            experiment.column("kernel"),
            experiment.column("LEN"),
            experiment.column("speedup"),
            experiment.column("bit_exact"),
        )
    )
    # Every cell is bit-exact and no kernel regressed below the reference.
    assert all(exact for _, _, _, exact in rows)
    assert all(speedup >= 1.0 for _, _, speedup, _ in rows)
    # The headline floors: division >= 5x where the uint64 fast paths
    # engage, the conversion-bound aggregation >= 2x everywhere.
    assert all(s >= 5.0 for k, length, s, _ in rows if k == "div" and length <= 2)
    assert all(s >= 2.0 for k, _, s, _ in rows if k == "agg")


def test_ext_hotpath_static_division_beats_dispatch(experiment):
    # The analyzer-proven fast paths must beat the per-row dispatcher on
    # the same operands: both uint64 cells and the wide short-divisor cell.
    static = [
        (k, length, s, exact)
        for k, length, s, exact in zip(
            experiment.column("kernel"),
            experiment.column("LEN"),
            experiment.column("speedup"),
            experiment.column("bit_exact"),
        )
        if k.startswith("div[static:")
    ]
    assert {k for k, _, _, _ in static} == {
        "div[static:native64]",
        "div[static:short]",
    }
    assert all(exact for _, _, _, exact in static)
    assert all(s > 1.0 for _, _, s, _ in static)


def test_ext_hotpath_wide_paths_still_win(experiment):
    # The wide widths (no uint64 fast path) must still beat the row loops
    # on every kernel -- the limb-column kernels are batch-level too.
    wide = [
        (k, length, s)
        for k, length, s in zip(
            experiment.column("kernel"),
            experiment.column("LEN"),
            experiment.column("speedup"),
        )
        if length > 2
    ]
    assert wide
    assert all(s > 1.0 for _, _, s in wide)


def _smoke(rows: int = 1_500) -> int:
    """CI smoke: small sweep, vectorized must never lose to the row loop."""
    experiment = ext_hotpath.run(rows=rows, repeats=2)
    print(experiment.format())
    failures = [
        (kernel, length, speedup)
        for kernel, length, speedup, exact in zip(
            experiment.column("kernel"),
            experiment.column("LEN"),
            experiment.column("speedup"),
            experiment.column("bit_exact"),
        )
        # Static cells race the already-vectorised dispatcher, so their
        # margin is thin at smoke row counts: gate on no-meaningful-loss
        # there, strict no-loss everywhere else.
        if speedup < (0.9 if kernel.startswith("div[static:") else 1.0) or not exact
    ]
    for kernel, length, speedup in failures:
        print(f"FAIL: {kernel} at LEN={length} is {speedup:.2f}x the reference")
    if failures:
        return 1
    print(f"smoke OK: vectorized >= row-loop reference on all {rows}-row cells")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small no-regression sweep (CI)"
    )
    parser.add_argument("--rows", type=int, default=None, help="rows per cell")
    options = parser.parse_args()
    if options.smoke:
        sys.exit(_smoke(options.rows or 1_500))
    emit(ext_hotpath.run(rows=options.rows or 20_000))
