"""Extension: division algorithm ablation (sections III-C2 and IV-C1).

Compares the paper's three division strategies on iteration counts and
host wall time: the single-threaded quotient-range binary search, the CGBN
Newton-Raphson reciprocal, and Goldschmidt.  The paper's observation --
binary search degrades linearly in operand bits while the iterative
methods converge in ~log(bits) steps -- is what makes the multi-threaded
division path win at high precision (Figure 13, right panel).
"""

import time

import pytest

from conftest import emit
from repro.bench.harness import Experiment
from repro.core.decimal import words as w
from repro.core.decimal.division import (
    binary_search_divmod,
    goldschmidt_divmod,
    newton_raphson_divmod,
)

WIDTHS = (2, 4, 8, 16)

ALGORITHMS = {
    "binary_search": binary_search_divmod,
    "newton_raphson": newton_raphson_divmod,
    "goldschmidt": goldschmidt_divmod,
}


def _operands(width):
    dividend = (1 << (32 * width - 2)) - 987654321
    divisor = (1 << (16 * width)) + 12345
    return w.from_int(dividend, width), w.from_int(divisor, width)


def run_ablation(widths=WIDTHS) -> Experiment:
    headers = ["words"] + [
        f"{name} {metric}" for name in ALGORITHMS for metric in ("iters", "ms")
    ]
    rows = []
    for width in widths:
        dividend, divisor = _operands(width)
        row = [width]
        for algorithm in ALGORITHMS.values():
            start = time.perf_counter()
            quotient, remainder, stats = algorithm(dividend, divisor)
            elapsed = time.perf_counter() - start
            expected = divmod(w.to_int(dividend), w.to_int(divisor))
            assert (w.to_int(quotient), w.to_int(remainder)) == expected
            row += [stats.iterations, elapsed * 1e3]
        rows.append(row)
    return Experiment(
        experiment_id="ext_division",
        title="Division algorithms: iterations and host wall time",
        headers=headers,
        rows=rows,
        notes=[
            "binary-search iterations grow linearly with operand bits; "
            "Newton-Raphson/Goldschmidt stay logarithmic -- the Figure 13 "
            "single- vs multi-threaded division gap",
        ],
    )


@pytest.fixture(scope="module")
def experiment():
    return emit(run_ablation())


def test_ext_division(benchmark, experiment):
    dividend, divisor = _operands(8)
    benchmark(lambda: newton_raphson_divmod(dividend, divisor))

    by_width = {row[0]: row for row in experiment.rows}
    # Binary search iteration growth is ~linear in bits.
    assert by_width[16][1] > 6 * by_width[2][1]
    # Newton-Raphson stays logarithmic: iterations grow by at most a few.
    assert by_width[16][3] <= by_width[2][3] + 6
    # At 16 words the iterative methods need far fewer probes.
    assert by_width[16][3] < by_width[16][1] / 10
    assert by_width[16][5] < by_width[16][1] / 10
