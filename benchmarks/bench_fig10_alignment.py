"""Figure 10: alignment scheduling ablation."""

import pytest

from conftest import emit
from repro.bench.experiments import fig10_alignment
from repro.core.jit import JitOptions, compile_expression
from repro.gpusim import kernel_time


@pytest.fixture(scope="module")
def experiment():
    return emit(fig10_alignment.run())


def test_fig10_scheduling(benchmark, experiment):
    schema = fig10_alignment.schema_for(32)

    def compile_and_time():
        compiled = compile_expression("a + b + a + a + a", schema, JitOptions())
        return kernel_time(compiled.kernel, 10_000_000)

    benchmark(compile_and_time)

    rows = experiment.rows
    # Alignments always drop to exactly 1.
    assert all(row[6] == 1 for row in rows)
    assert [row[5] for row in rows if row[0] == "a+b+a"] == [2] * 5
    assert [row[5] for row in rows if row[0] == "a+b+a+a+a+a+a"] == [6] * 5
    # Savings grow with expression length at fixed LEN=32.
    savings32 = {row[0]: row[4] for row in rows if row[1] == 32}
    assert savings32["a+b+a"] < savings32["a+b+a+a+a"] < savings32["a+b+a+a+a+a+a"]
    # The paper's headline: ~34% for the long expressions at LEN=32.
    assert savings32["a+b+a+a+a"] == pytest.approx(34.0, abs=12.0)
    # Every configuration saves something.
    assert all(row[4] > 0 for row in rows)
