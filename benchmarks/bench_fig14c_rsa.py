"""Figure 14(c): RSA encryption in SQL (Query 4)."""

import pytest

from conftest import emit
from repro.bench.experiments import fig14c_rsa
from repro.engine import Database
from repro.workloads import rsa


@pytest.fixture(scope="module")
def experiment():
    return emit(fig14c_rsa.run(rows=150))


def test_fig14c_encryption(benchmark, experiment):
    workload = rsa.build_workload(8, rows=150)
    db = Database(simulate_rows=10_000_000)
    db.register(workload.relation)

    def encrypt():
        db.kernel_cache.clear()
        return db.execute(workload.query)

    result = benchmark(encrypt)
    assert [v.unscaled for (v,) in result.rows] == workload.oracle()

    postgres = experiment.column("PostgreSQL (s)")
    h2 = experiment.column("H2 (s)")
    cockroach = experiment.column("CockroachDB (s)")
    monet = experiment.column("MonetDB (s)")
    ours = experiment.column("UltraPrecise (s)")

    # Two orders of magnitude at high precision (paper: up to 247.59x).
    slowdowns = [p / u for p, u in zip(postgres, ours)]
    assert slowdowns[-1] > 100
    assert slowdowns == sorted(slowdowns)  # grows with precision
    # H2 and CockroachDB are even slower than PostgreSQL everywhere.
    for i in range(len(ours)):
        assert h2[i] > postgres[i]
        assert cockroach[i] > postgres[i]
    # MonetDB/RateupDB only complete LEN=4.
    assert monet[0] is not None and monet[1] is None
    # HEAVY.AI fails the modulo everywhere.
    assert all(isinstance(row[1], str) for row in experiment.rows)
