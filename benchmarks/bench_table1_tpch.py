"""Table I: TPC-H Q2-Q22 parity between RateupDB and UltraPrecise."""

import pytest

from conftest import emit
from repro.bench.experiments import table1_tpch
from repro.workloads.tpch_queries import ultraprecise_tpch_ms
from repro.storage.tpch import TPCH_PROFILES


@pytest.fixture(scope="module")
def experiment():
    return emit(table1_tpch.run())


def test_table1(benchmark, experiment):
    benchmark(lambda: [ultraprecise_tpch_ms(p) for p in TPCH_PROFILES.values()])

    rows = {row[0]: row for row in experiment.rows}
    assert len(rows) == 21  # Q2..Q22
    for row in rows.values():
        delta = row[4]
        if row[5] == "yes":  # Q18 / Q20
            assert delta > 20
        else:
            assert abs(delta) < 5  # parity, "consistent and comparable"
    # Paper's two regressions specifically.
    assert rows["Q18"][5] == "yes" and rows["Q20"][5] == "yes"
    # The end-to-end queries (ext_tpch_real) are flagged, Q5/Q10 included.
    for name in table1_tpch.FULLY_EXECUTED:
        assert rows[name][6] == "yes"
    # Modelled values land near the paper's UltraPrecise column.
    for row in rows.values():
        assert row[2] == pytest.approx(row[3], rel=0.35)
