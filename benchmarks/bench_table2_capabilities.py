"""Table II: DECIMAL capability matrix verification."""

import pytest

from conftest import emit
from repro.baselines.capabilities import TABLE_II
from repro.bench.experiments import table2_capabilities
from repro.core.decimal.context import DecimalSpec


@pytest.fixture(scope="module")
def experiment():
    return emit(table2_capabilities.run())


def test_table2(benchmark, experiment):
    spec = DecimalSpec(38, 10)
    benchmark(lambda: [cap.supports(spec) for cap in TABLE_II.values()])

    rows = {row[0]: row for row in experiment.rows}
    assert all(row[3] == "ok" for row in experiment.rows)
    assert rows["HEAVY.AI"][2] == 2
    assert rows["MonetDB"][2] == 4
    assert rows["RateupDB"][2] == 4
    assert rows["PostgreSQL"][2] == "all"
    assert rows["CockroachDB"][2] == "all"
