"""Figure 14(a): multi-threaded aggregation (Query 3)."""

import pytest

from conftest import emit
from repro.bench.experiments import fig14a_aggregation
from repro.core.multithread import aggregate
from repro.storage import datagen


@pytest.fixture(scope="module")
def experiment():
    return emit(fig14a_aggregation.run(rows=2500))


def test_fig14a_sum(benchmark, experiment):
    spec = fig14a_aggregation.COLUMN_SPECS[8]
    relation = datagen.relation_r3(spec, rows=2500, seed=149)
    values = relation.column("c1").unscaled()

    run = benchmark(lambda: aggregate(values, spec, "sum", tpi=8, simulate_tuples=10_000_000))
    assert run.value == sum(values)

    lens = experiment.column("LEN")
    monet = experiment.column("MonetDB (s)")
    heavy = experiment.column("HEAVY.AI (s)")
    rateup = experiment.column("RateupDB (s)")
    ours = experiment.column("UltraPrecise (s)")
    ratio = experiment.column("PG / UP")

    # Capability walls as in the paper.
    assert heavy[1] is None and monet[2] is None and rateup[2] is None
    # MonetDB (no disk I/O) is the fastest where it runs.
    assert monet[0] == min(v for v in (monet[0], heavy[0], rateup[0], ours[0]) if v is not None)
    # UltraPrecise beats RateupDB at LEN=2 and 4 (paper: -33% / -12.5%).
    assert ours[0] < rateup[0]
    assert ours[1] < rateup[1]
    # PostgreSQL stays within a small factor, shrinking with LEN
    # (paper: +112% -> +29%).
    assert ratio[0] > ratio[-1] > 1.0
