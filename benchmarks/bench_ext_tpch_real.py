"""Extension: fully-executed TPC-H Q6 and Q3/Q5/Q10-style join queries.

Table I's comparison is profile-driven (the paper only asserts parity);
this bench runs Q6 (filter + DECIMAL product aggregation) and Q3/Q5/Q10
style join queries *end to end* through the engine -- real predicate
evaluation, cost-chosen joins with build-side predicate pushdown,
statistics-driven join reordering, JIT-compiled decimal kernels, grouped
aggregation -- with results verified against row-at-a-time oracles in
the test suite.

Every join query also runs with the plan optimizer disabled: the
optimized plan must return bit-identical rows while moving fewer
simulated scan/PCIe bytes, and the "join order" column records the
executed join sequence so the smoke check can assert the reorderer's
golden plans (Q5: customer -> nation -> lineitem; Q10: lineitem first
once the returnflag filter sinks into its build side).

Also runnable as a script for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_ext_tpch_real.py --smoke
"""

import pytest

from conftest import emit
from repro.baselines import create as create_baseline
from repro.bench.harness import Experiment
from repro.engine import Database
from repro.engine.plan.cost import OptimizerConfig
from repro.storage import tpch
from repro.workloads.tpch_queries import Q3_SQL, Q5_SQL, Q6_SQL, Q10_SQL

MB = 1e6


def _join_order(db: Database, sql: str, optimizer=None) -> str:
    """The executed join sequence of a query, from its EXPLAIN operators."""
    explain = db.explain(sql, optimizer=optimizer)
    return " -> ".join(
        line.split()[1]
        for line in explain.operators
        if line.startswith(("HashJoin", "NestedLoopJoin"))
    )


def run_experiment(rows: int = 2500, simulate_rows: int = 10_000_000) -> Experiment:
    headers = [
        "query", "UltraPrecise (s)", "PostgreSQL model (s)", "PG / UP",
        "output rows", "scan MB", "PCIe MB", "join order",
    ]
    table = []

    # Q6 -- single table.
    db = Database(simulate_rows=simulate_rows, aggregation_tpi=8)
    lineitem = tpch.lineitem(rows=rows, seed=11)
    db.register(lineitem)
    q6 = db.execute(Q6_SQL, include_scan=False)
    # PostgreSQL runs the same hot path: selective scan + one product agg.
    postgres = create_baseline("PostgreSQL")
    pg_q6 = postgres.run_sum(
        lineitem.head(256), "l_extendedprice * l_discount",
        simulate_rows=simulate_rows, include_scan=False,
    )
    table.append(
        ["Q6", q6.report.total_seconds, pg_q6.seconds,
         pg_q6.seconds / q6.report.total_seconds, len(q6.rows),
         q6.report.scan_bytes / MB, q6.report.pcie_bytes / MB, "-"]
    )

    # Q3-style -- two cost-chosen joins + grouped revenue, optimizer on/off.
    order_count = max(rows // 5, 50)
    db3 = Database(simulate_rows=simulate_rows, aggregation_tpi=8)
    db3.register(tpch.lineitem_with_orderkeys(rows=rows, seed=7, order_count=order_count))
    db3.register(tpch.orders(rows=order_count, seed=17))
    db3.register(tpch.customer(rows=max(order_count // 8, 10), seed=19))
    q3 = db3.execute(Q3_SQL, include_scan=False)
    # Fresh kernel cache so both plans charge the same JIT compile.
    db3.kernel_cache.clear()
    q3_naive = db3.execute(Q3_SQL, include_scan=False, optimizer=OptimizerConfig.off())
    if q3.rows != q3_naive.rows or q3.column_names != q3_naive.column_names:
        raise AssertionError("optimized Q3 plan diverged from the unoptimized plan")
    # PostgreSQL hot path: the revenue expression + aggregation (join costs
    # charged via its per-tuple model over the same simulated volume).
    pg_q3 = postgres.run_sum(
        db3.catalog.get("lineitem").head(256),
        "l_extendedprice * (1 - l_discount)",
        simulate_rows=simulate_rows, include_scan=False,
    )
    table.append(
        ["Q3-style", q3.report.total_seconds, pg_q3.seconds,
         pg_q3.seconds / q3.report.total_seconds, len(q3.rows),
         q3.report.scan_bytes / MB, q3.report.pcie_bytes / MB,
         _join_order(db3, Q3_SQL)]
    )
    table.append(
        ["Q3-style (no optimizer)", q3_naive.report.total_seconds, pg_q3.seconds,
         pg_q3.seconds / q3_naive.report.total_seconds, len(q3_naive.rows),
         q3_naive.report.scan_bytes / MB, q3_naive.report.pcie_bytes / MB,
         _join_order(db3, Q3_SQL, optimizer=OptimizerConfig.off())]
    )

    # Q5/Q10-style -- multi-join queries whose SQL is written in a
    # deliberately bad join order; the statistics-driven reorderer must
    # pick a cheaper sequence while staying bit-exact.
    db3.register(tpch.nation())
    for name, sql in [("Q5-style", Q5_SQL), ("Q10-style", Q10_SQL)]:
        db3.kernel_cache.clear()
        optimized = db3.execute(sql, include_scan=False)
        db3.kernel_cache.clear()
        naive = db3.execute(sql, include_scan=False, optimizer=OptimizerConfig.off())
        if optimized.rows != naive.rows or optimized.column_names != naive.column_names:
            raise AssertionError(f"optimized {name} plan diverged from the unoptimized plan")
        pg = postgres.run_sum(
            db3.catalog.get("lineitem").head(256),
            "l_extendedprice * (1 - l_discount)",
            simulate_rows=simulate_rows, include_scan=False,
        )
        table.append(
            [name, optimized.report.total_seconds, pg.seconds,
             pg.seconds / optimized.report.total_seconds, len(optimized.rows),
             optimized.report.scan_bytes / MB, optimized.report.pcie_bytes / MB,
             _join_order(db3, sql)]
        )
        table.append(
            [f"{name} (no optimizer)", naive.report.total_seconds, pg.seconds,
             pg.seconds / naive.report.total_seconds, len(naive.rows),
             naive.report.scan_bytes / MB, naive.report.pcie_bytes / MB,
             _join_order(db3, sql, optimizer=OptimizerConfig.off())]
        )

    return Experiment(
        experiment_id="ext_tpch_real",
        title="Fully-executed TPC-H Q6 + Q3/Q5/Q10-style joins (10M tuples simulated)",
        headers=headers,
        rows=table,
        notes=[
            "results verified against row-at-a-time oracles in "
            "tests/workloads/test_tpch_real_queries.py",
            "join-query rows are bit-identical with the optimizer on and off; "
            "the optimized plans ship fewer PCIe bytes (build-side pushdown "
            "+ projection pruning)",
            "Q5/Q10 SQL is written in a deliberately bad join order; the "
            "'join order' column shows the statistics-driven reorder "
            "(Q5: customer -> nation -> lineitem defers the big lineitem "
            "join; Q10: lineitem joins first once l_returnflag = 'R' sinks "
            "into its build side)",
        ],
    )


@pytest.fixture(scope="module")
def experiment():
    return emit(run_experiment())


def test_ext_tpch_real(benchmark, experiment):
    db = Database(simulate_rows=10_000_000)
    db.register(tpch.lineitem(rows=1000, seed=11))

    def run_q6():
        db.kernel_cache.clear()
        return db.execute(Q6_SQL, include_scan=False)

    benchmark(run_q6)

    rows = {row[0]: row for row in experiment.rows}
    # The GPU engine beats the PostgreSQL model on both hot paths.
    assert rows["Q6"][3] > 2.0
    assert rows["Q3-style"][3] > 2.0
    # Q3 returns its LIMITed top-10 (or fewer).
    assert rows["Q3-style"][4] <= 10
    # The optimizer strictly reduces Q3's simulated transfer volume.
    assert rows["Q3-style"][6] < rows["Q3-style (no optimizer)"][6]
    # The reorderer produced its golden multi-join sequences.
    for query, golden in GOLDEN_JOIN_ORDERS.items():
        assert rows[query][7] == golden, query


#: The join sequences the reorderer must produce (run_experiment already
#: asserts bit-exactness against the optimizer-off plans).
GOLDEN_JOIN_ORDERS = {
    "Q5-style": "customer -> nation -> lineitem",
    "Q5-style (no optimizer)": "lineitem -> customer -> nation",
    "Q10-style": "lineitem -> customer",
    "Q10-style (no optimizer)": "customer -> lineitem",
}


def _smoke(rows: int) -> int:
    experiment = emit(run_experiment(rows=rows))
    cells = {row[0]: row for row in experiment.rows}
    optimized = cells["Q3-style"]
    naive = cells["Q3-style (no optimizer)"]
    if optimized[6] >= naive[6]:
        print(
            f"FAIL: optimizer did not reduce Q3 PCIe bytes "
            f"({optimized[6]:.1f} MB vs {naive[6]:.1f} MB)"
        )
        return 1
    if cells["Q6"][3] <= 1.0 or optimized[3] <= 1.0:
        print("FAIL: engine lost to the PostgreSQL model on a hot path")
        return 1
    for query, golden in GOLDEN_JOIN_ORDERS.items():
        actual = cells[query][7]
        if actual != golden:
            print(f"FAIL: {query} join order {actual!r} != golden {golden!r}")
            return 1
    print(
        f"smoke OK: Q3/Q5/Q10 bit-exact, PCIe {naive[6]:.1f} -> {optimized[6]:.1f} MB "
        f"on Q3, Q5 reordered to [{cells['Q5-style'][7]}]"
    )
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small bit-exactness + byte-reduction check (CI)"
    )
    parser.add_argument("--rows", type=int, default=None, help="lineitem rows")
    options = parser.parse_args()
    if options.smoke:
        sys.exit(_smoke(options.rows or 500))
    emit(run_experiment(rows=options.rows or 2500))
