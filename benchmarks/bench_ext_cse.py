"""Extension ablation: common-subexpression elimination (beyond the paper).

The Taylor-series workload (Query 5) recomputes ``x*x*x...`` prefixes in
every term, so CSE looks like an obvious win.  The ablation shows the GPU
trade-off the paper's register discussion (section III-E1) predicts: the
reusable subtrees are the *narrow, cheap* ones, and keeping them resident
raises register pressure, so the measured saving is small -- and pinning
*wide* subtrees actively loses occupancy.  CSE is therefore off by default
(``JitOptions.subexpression_elimination``).
"""

import pytest

from conftest import emit
from repro.bench.harness import Experiment
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import JitOptions, compile_expression, ir
from repro.gpusim import execute, kernel_time
from repro.workloads.trig import sine_expression

SCHEMA = {"c2": DecimalSpec(9, 8)}


def run_ablation(terms_range=(3, 5, 7, 9, 11)) -> Experiment:
    headers = ["terms", "muls", "muls (CSE)", "plain (ms)", "CSE (ms)", "saving %", "occupancy delta pp"]
    rows = []
    for terms in terms_range:
        expression = sine_expression("c2", terms)
        plain = compile_expression(expression, SCHEMA)
        cse = compile_expression(
            expression, SCHEMA, JitOptions(subexpression_elimination=True)
        )
        t_plain = kernel_time(plain.kernel, 10_000_000)
        t_cse = kernel_time(cse.kernel, 10_000_000)
        rows.append(
            [
                terms,
                plain.kernel.count(ir.MulOp),
                cse.kernel.count(ir.MulOp),
                t_plain.seconds * 1e3,
                t_cse.seconds * 1e3,
                100.0 * (1 - t_cse.seconds / t_plain.seconds),
                t_cse.occupancy.percent - t_plain.occupancy.percent,
            ]
        )
    return Experiment(
        experiment_id="ext_cse",
        title="Extension: CSE on the Taylor-series kernels (10M tuples)",
        headers=headers,
        rows=rows,
        notes=[
            "CSE eliminates many multiplications but only the narrow ones can "
            "be kept resident without losing occupancy; net effect is ~neutral "
            "-- why the option defaults off",
        ],
    )


@pytest.fixture(scope="module")
def experiment():
    return emit(run_ablation())


def test_ext_cse(benchmark, experiment):
    expression = sine_expression("c2", 7)
    benchmark(
        lambda: compile_expression(
            expression, SCHEMA, JitOptions(subexpression_elimination=True)
        )
    )

    # Correctness: CSE kernels produce bit-identical results.
    values = [78539816, 1000000, -31415927, 99999999]
    columns = {"c2": DecimalVector.from_unscaled(values, SCHEMA["c2"]).to_compact()}
    for terms in (3, 7, 11):
        text = sine_expression("c2", terms)
        plain = compile_expression(text, SCHEMA)
        cse = compile_expression(text, SCHEMA, JitOptions(subexpression_elimination=True))
        assert (
            execute(plain.kernel, columns, 4).result.to_unscaled()
            == execute(cse.kernel, columns, 4).result.to_unscaled()
        )

    # CSE always removes multiplications...
    for row in experiment.rows:
        assert row[2] < row[1]
    # ...but never wins big, and can lose at high term counts (the finding).
    savings = experiment.column("saving %")
    assert max(savings) < 15.0
