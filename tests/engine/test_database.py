"""End-to-end tests for the Database facade against big-integer oracles."""


import pytest

from repro.core.decimal import inference
from repro.core.decimal.context import DecimalSpec
from repro.engine import Database
from repro.errors import CatalogError, PlanningError
from repro.storage import Column, Relation
from repro.storage.datagen import decimal_column


def make_db(rows=500, simulate=1_000_000):
    spec_a = DecimalSpec(12, 2)
    spec_b = DecimalSpec(10, 3)
    relation = Relation(
        "r",
        [
            decimal_column("a", spec_a, rows, seed=10),
            decimal_column("b", spec_b, rows, seed=11),
            Column.chars("g", ["X" if i % 3 else "Y" for i in range(rows)], 1),
            Column.integers("k", list(range(rows))),
        ],
    )
    db = Database(simulate_rows=simulate)
    db.register(relation)
    return db, relation


class TestProjection:
    def test_expression(self):
        db, relation = make_db()
        result = db.execute("SELECT a + b FROM r")
        a = relation.column("a").unscaled()
        b = relation.column("b").unscaled()
        expected = [x * 10 + y for x, y in zip(a, b)]  # align scale 2 -> 3
        assert [v.unscaled for (v,) in result.rows] == expected

    def test_multiple_expressions(self):
        db, relation = make_db()
        result = db.execute("SELECT a + a, a * 2 FROM r")
        a = relation.column("a").unscaled()
        assert [x.unscaled for x, _ in result.rows] == [2 * v for v in a]
        assert [y.unscaled for _, y in result.rows] == [2 * v for v in a]

    def test_constant_only_workload(self):
        db, relation = make_db()
        result = db.execute("SELECT a + 0 FROM r")
        assert [v.unscaled for (v,) in result.rows] == relation.column("a").unscaled()


class TestAggregation:
    def test_sum(self):
        db, relation = make_db()
        result = db.execute("SELECT SUM(a) FROM r")
        assert result.scalar.unscaled == sum(relation.column("a").unscaled())

    def test_min_max_count(self):
        db, relation = make_db()
        result = db.execute("SELECT MIN(a), MAX(a), COUNT(*) FROM r")
        a = relation.column("a").unscaled()
        row = result.rows[0]
        assert row[0].unscaled == min(a)
        assert row[1].unscaled == max(a)
        assert row[2].unscaled == len(a)

    def test_avg_matches_rules(self):
        db, relation = make_db()
        result = db.execute("SELECT AVG(a) FROM r")
        a = relation.column("a").unscaled()
        sim = 1_000_000
        prescale = inference.div_prescale(inference.count_spec(sim))
        expected = sum(a) * 10**prescale // len(a)
        assert result.scalar.unscaled == expected

    def test_sum_of_expression(self):
        db, relation = make_db()
        result = db.execute("SELECT SUM(a * 2 + b) FROM r")
        a = relation.column("a").unscaled()
        b = relation.column("b").unscaled()
        expected = sum(2 * x * 10 + y for x, y in zip(a, b))
        assert result.scalar.unscaled == expected

    def test_mixed_bare_and_aggregate_rejected_without_group(self):
        db, _ = make_db()
        with pytest.raises(PlanningError):
            db.execute("SELECT a, SUM(b) FROM r")


class TestGroupBy:
    def test_grouped_sum(self):
        db, relation = make_db()
        result = db.execute("SELECT g, SUM(a), COUNT(*) FROM r GROUP BY g ORDER BY g")
        a = relation.column("a").unscaled()
        groups = {"X": 0, "Y": 0}
        counts = {"X": 0, "Y": 0}
        for i, value in enumerate(a):
            key = "X" if i % 3 else "Y"
            groups[key] += value
            counts[key] += 1
        assert [row[0] for row in result.rows] == ["X", "Y"]
        assert [row[1].unscaled for row in result.rows] == [groups["X"], groups["Y"]]
        assert [row[2].unscaled for row in result.rows] == [counts["X"], counts["Y"]]

    def test_group_by_decimal_column(self):
        spec = DecimalSpec(4, 1)
        relation = Relation(
            "t",
            [
                Column.decimal_from_unscaled("k", [10, 20, 10, 20, 10], spec),
                Column.decimal_from_unscaled("v", [1, 2, 3, 4, 5], DecimalSpec(6, 0)),
            ],
        )
        db = Database()
        db.register(relation)
        result = db.execute("SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k")
        assert [(row[0].unscaled, row[1].unscaled) for row in result.rows] == [
            (10, 9),
            (20, 6),
        ]


class TestWhere:
    def test_decimal_predicate(self):
        db, relation = make_db()
        result = db.execute("SELECT SUM(a) FROM r WHERE a > 0")
        expected = sum(v for v in relation.column("a").unscaled() if v > 0)
        assert result.scalar.unscaled == expected

    def test_int_predicate(self):
        db, relation = make_db()
        result = db.execute("SELECT SUM(a) FROM r WHERE k < 100")
        expected = sum(relation.column("a").unscaled()[:100])
        assert result.scalar.unscaled == expected

    def test_char_predicate(self):
        db, relation = make_db()
        result = db.execute("SELECT COUNT(*) FROM r WHERE g = 'Y'")
        expected = sum(1 for i in range(relation.rows) if i % 3 == 0)
        assert result.scalar.unscaled == expected

    def test_conjunction(self):
        db, relation = make_db()
        result = db.execute("SELECT COUNT(*) FROM r WHERE k >= 10 AND k < 20")
        assert result.scalar.unscaled == 10

    def test_selectivity_scales_simulated_rows(self):
        db, _ = make_db(rows=100, simulate=10_000_000)
        full = db.execute("SELECT SUM(a) FROM r")
        half = db.execute("SELECT SUM(a) FROM r WHERE k < 50")
        assert half.report.aggregate_seconds < full.report.aggregate_seconds


class TestOrderBy:
    def test_sorted_output(self):
        db, relation = make_db(rows=50)
        result = db.execute("SELECT k, a FROM r ORDER BY k DESC")
        keys = [row[0] for row in result.rows]
        assert keys == sorted(keys, reverse=True)


class TestReports:
    def test_components_present(self):
        db, _ = make_db(simulate=10_000_000)
        report = db.execute("SELECT a + b FROM r").report
        assert report.scan_seconds > 0
        assert report.pcie_seconds > 0
        assert report.compile_seconds > 0
        assert report.kernel_seconds > 0
        assert report.pipeline_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.scan_seconds
            + report.pcie_seconds
            + report.compile_seconds
            + report.kernel_seconds
            + report.filter_seconds
            + report.aggregate_seconds
            + report.sort_seconds
            + report.pipeline_seconds
        )

    def test_kernel_cache_across_queries(self):
        db, _ = make_db()
        first = db.execute("SELECT a + b FROM r")
        second = db.execute("SELECT a + b FROM r")
        assert first.report.kernels_compiled == 1
        assert second.report.kernels_compiled == 0
        assert second.report.kernels_cached == 1
        assert second.report.compile_seconds == 0

    def test_exclusion_flags(self):
        db, _ = make_db(simulate=10_000_000)
        with_scan = db.execute("SELECT a + b FROM r", include_scan=True)
        db.kernel_cache.clear()
        without = db.execute("SELECT a + b FROM r", include_scan=False)
        assert without.report.scan_seconds == 0
        assert with_scan.report.scan_seconds > 0

    def test_unknown_table(self):
        db, _ = make_db()
        with pytest.raises(CatalogError):
            db.execute("SELECT a FROM nope")
