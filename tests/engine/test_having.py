"""Tests for HAVING and column-vs-column predicates."""

import pytest

from repro.engine import Database


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "sales",
        {"region": "CHAR(2)", "amount": "DECIMAL(10, 2)", "cost": "DECIMAL(10, 2)"},
        rows=[
            ("EU", "10.00", "4.00"),
            ("EU", "20.00", "25.00"),
            ("US", "5.00", "1.00"),
            ("US", "1.00", "0.50"),
            ("AP", "100.00", "90.00"),
        ],
    )
    return database


class TestHaving:
    def test_filters_groups(self, db):
        result = db.execute(
            "SELECT region, SUM(amount) AS total FROM sales "
            "GROUP BY region HAVING total > 10 ORDER BY region"
        )
        assert [(r, str(t)) for r, t in result.rows] == [
            ("AP", "100.00"),
            ("EU", "30.00"),
        ]

    def test_having_on_count(self, db):
        result = db.execute(
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region HAVING n >= 2 ORDER BY region"
        )
        assert [row[0] for row in result.rows] == ["EU", "US"]

    def test_having_with_conjunction(self, db):
        result = db.execute(
            "SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM sales "
            "GROUP BY region HAVING total > 10 AND n >= 2 ORDER BY region"
        )
        assert [row[0] for row in result.rows] == ["EU"]  # AP fails n, US fails total

    def test_having_eliminates_everything(self, db):
        result = db.execute(
            "SELECT region, SUM(amount) AS total FROM sales GROUP BY region HAVING total > 1000"
        )
        assert result.rows == []


class TestColumnComparisons:
    def test_decimal_columns(self, db):
        result = db.execute("SELECT SUM(amount) FROM sales WHERE amount > cost")
        # profitable rows: 10, 5, 1, 100
        assert str(result.scalar) == "116.00"

    def test_equality_between_columns(self, db):
        result = db.execute("SELECT COUNT(*) FROM sales WHERE amount = cost")
        assert result.scalar.unscaled == 0

    def test_mixed_with_literal_predicates(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM sales WHERE amount > cost AND region = 'US'"
        )
        assert result.scalar.unscaled == 2

    def test_cross_scale_decimal_comparison(self):
        database = Database()
        database.create_table(
            "t",
            {"a": "DECIMAL(6, 1)", "b": "DECIMAL(8, 3)"},
            rows=[("1.5", "1.500"), ("1.5", "1.499"), ("0.1", "0.101")],
        )
        result = database.execute("SELECT COUNT(*) FROM t WHERE a > b")
        assert result.scalar.unscaled == 1
        equal = database.execute("SELECT COUNT(*) FROM t WHERE a = b")
        assert equal.scalar.unscaled == 1


class TestHavingColumnReferences:
    """Regression: HAVING predicates must contribute to the scanned columns.

    ``_referenced_columns`` used to skip ``query.having``, so a column
    mentioned only in HAVING was dropped from the scan list.  Group keys
    masked the bug end-to-end (GROUP BY re-adds them), so pin the contract
    at both levels.
    """

    def test_having_only_column_survives_to_the_scan(self):
        from repro.engine.plan.logical import LogicalScan, build_logical_plan
        from repro.engine.sql.ast_nodes import (
            AggregateCall,
            Comparison,
            Query,
            SelectItem,
        )

        query = Query(
            select_items=[SelectItem(AggregateCall("SUM", "amount"), alias="total")],
            table="sales",
            having=[Comparison("cost", ">", 1)],
        )
        node = build_logical_plan(query, ["region", "amount", "cost"])
        while not isinstance(node, LogicalScan):
            node = node.child
        assert "cost" in node.columns

    def test_having_over_non_selected_group_key(self, db):
        result = db.execute(
            "SELECT SUM(amount) AS total FROM sales "
            "GROUP BY region HAVING region = 'EU'"
        )
        assert [str(t) for (t,) in result.rows] == ["30.00"]
