"""Tests for the create_table convenience DDL."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.engine import Database
from repro.engine.ddl import build_relation, parse_type
from repro.errors import ConversionError, SchemaError
from repro.storage.schema import CharType, DateType, DecimalType, DoubleType, IntType


class TestParseType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("DECIMAL(10, 2)", DecimalType(DecimalSpec(10, 2))),
            ("decimal(35,5)", DecimalType(DecimalSpec(35, 5))),
            ("CHAR(8)", CharType(8)),
            ("DOUBLE", DoubleType()),
            ("INT", IntType()),
            ("BIGINT", IntType()),
            ("DATE", DateType()),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_type(text) == expected

    def test_spec_object(self):
        assert parse_type(DecimalSpec(5, 1)) == DecimalType(DecimalSpec(5, 1))

    def test_rejects_junk(self):
        with pytest.raises(SchemaError):
            parse_type("VARCHAR")
        with pytest.raises(SchemaError):
            parse_type(42)


class TestBuildRelation:
    def test_literals_convert(self):
        relation = build_relation(
            "t",
            {"amount": "DECIMAL(12, 4)", "tag": "CHAR(3)", "n": "INT"},
            rows=[("1.5", "abc", 1), (-2, "de", 2), (0.25, "xyz", 3)],
        )
        assert relation.column("amount").unscaled() == [15000, -20000, 2500]
        assert relation.column("n").data.tolist() == [1, 2, 3]

    def test_empty_rows(self):
        relation = build_relation("t", {"a": "DECIMAL(4, 0)"})
        assert relation.rows == 0

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            build_relation("t", {"a": "INT", "b": "INT"}, rows=[(1,)])

    def test_overflowing_literal(self):
        with pytest.raises(ConversionError):
            build_relation("t", {"a": "DECIMAL(3, 2)"}, rows=[("99.99",)])


class TestDatabaseIntegration:
    def test_create_and_query(self):
        db = Database()
        db.create_table(
            "accounts",
            {"balance": "DECIMAL(20, 4)", "owner": "CHAR(8)"},
            rows=[("1234.5678", "alice"), (99, "bob"), ("-0.5", "carol")],
        )
        result = db.execute("SELECT SUM(balance) FROM accounts")
        assert str(result.scalar) == "1333.0678"

        grouped = db.execute(
            "SELECT owner, SUM(balance * 2) FROM accounts GROUP BY owner ORDER BY owner"
        )
        assert [row[0] for row in grouped.rows] == ["alice", "bob", "carol"]
        assert grouped.rows[2][1].unscaled == -10000  # -0.5 * 2 at scale 4

    def test_replace(self):
        db = Database()
        db.create_table("t", {"a": "INT"}, rows=[(1,)])
        db.create_table("t", {"a": "INT"}, rows=[(2,)], replace=True)
        assert db.execute("SELECT a FROM t").rows == [(2,)]
