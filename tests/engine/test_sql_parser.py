"""Tests for the SQL subset parser."""

import pytest

from repro.engine.sql.ast_nodes import AggregateCall, Comparison, OrderKey
from repro.engine.sql.parser import parse_query
from repro.errors import ParseError


class TestSelect:
    def test_simple_projection(self):
        query = parse_query("SELECT c1 + c2 FROM r")
        assert query.table == "r"
        assert len(query.select_items) == 1
        assert query.select_items[0].expression == "c1 + c2"

    def test_multiple_items(self):
        query = parse_query("SELECT c1 + c2 + c3 + c4, c5 + c6 FROM R2")
        assert [i.expression for i in query.select_items] == ["c1 + c2 + c3 + c4", "c5 + c6"]

    def test_aggregates(self):
        query = parse_query("SELECT SUM(c1), AVG(c1 + c2), COUNT(*) FROM r")
        calls = [item.expression for item in query.select_items]
        assert calls[0] == AggregateCall("SUM", "c1")
        assert calls[1] == AggregateCall("AVG", "c1 + c2")
        assert calls[2] == AggregateCall("COUNT", "*")

    def test_alias(self):
        query = parse_query("SELECT SUM(a) AS total FROM r")
        assert query.select_items[0].alias == "total"
        assert query.select_items[0].name == "total"

    def test_parenthesised_expression(self):
        query = parse_query("SELECT l_extendedprice * (1 - l_discount) FROM lineitem")
        assert query.select_items[0].expression == "l_extendedprice * ( 1 - l_discount )"

    def test_modulo_expression(self):
        query = parse_query("SELECT c1 * c1 % 97 * c1 % 97 FROM R4")
        assert "%" in query.select_items[0].expression

    def test_case_insensitive_keywords(self):
        query = parse_query("select sum(a) from r group by g order by g desc")
        assert query.group_by == ["g"]
        assert query.order_by == [OrderKey("g", ascending=False)]


class TestClauses:
    def test_where(self):
        query = parse_query("SELECT a FROM r WHERE d <= '1998-09-02' AND q > 5")
        assert query.where == [
            Comparison("d", "<=", "1998-09-02"),
            Comparison("q", ">", 5),
        ]

    def test_where_float_literal(self):
        query = parse_query("SELECT a FROM r WHERE x < 0.5")
        assert query.where[0].literal == 0.5

    def test_group_by_multiple(self):
        query = parse_query("SELECT g1, g2, SUM(a) FROM r GROUP BY g1, g2")
        assert query.group_by == ["g1", "g2"]

    def test_order_by_multiple(self):
        query = parse_query("SELECT a FROM r ORDER BY x ASC, y DESC")
        assert query.order_by == [OrderKey("x", True), OrderKey("y", False)]

    def test_tpch_q1_parses(self):
        from repro.workloads.tpch_queries import Q1_SQL

        query = parse_query(Q1_SQL)
        assert query.table == "lineitem"
        assert len(query.aggregates) == 8
        assert query.group_by == ["l_returnflag", "l_linestatus"]


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT FROM r",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM r WHERE",
            "SELECT a FROM r GROUP",
            "FROM r SELECT a",
            "SELECT a FROM r WHERE x ! 1",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)


class TestClauseOrdering:
    """Duplicate / out-of-order clauses must raise, not silently overwrite.

    The clause loop historically re-assigned on a repeated keyword, so
    ``WHERE a > 1 WHERE b > 2`` dropped the first predicate without a
    trace; the parser now enforces SQL clause order with one rank per
    clause.
    """

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM r WHERE x > 1 WHERE y > 2",
            "SELECT g, SUM(a) FROM r GROUP BY g GROUP BY g",
            "SELECT g, SUM(a) FROM r GROUP BY g HAVING g > 1 HAVING g > 2",
            "SELECT a FROM r ORDER BY a ORDER BY a DESC",
            "SELECT a FROM r LIMIT 5 LIMIT 10",
        ],
    )
    def test_duplicate_clause_rejected(self, sql):
        with pytest.raises(ParseError, match="duplicate"):
            parse_query(sql)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT g, SUM(a) FROM r GROUP BY g WHERE x > 1",
            "SELECT g, SUM(a) FROM r GROUP BY g HAVING g > 1 WHERE x > 1",
            "SELECT a FROM r ORDER BY a WHERE x > 1",
            "SELECT a FROM r LIMIT 5 ORDER BY a",
            "SELECT a FROM r WHERE x > 1 JOIN s ON a = b",
            "SELECT g, SUM(a) FROM r HAVING g > 1 GROUP BY g",
        ],
    )
    def test_out_of_order_clause_rejected(self, sql):
        with pytest.raises(ParseError, match="must come before"):
            parse_query(sql)

    def test_repeated_joins_still_allowed(self):
        query = parse_query(
            "SELECT a FROM r JOIN s ON a = b JOIN t ON c = d WHERE x > 1"
        )
        assert [join.table for join in query.joins] == ["s", "t"]
        assert len(query.where) == 1

    def test_full_clause_sequence_still_parses(self):
        query = parse_query(
            "SELECT g, SUM(a) AS total FROM r JOIN s ON a = b "
            "WHERE x > 1 GROUP BY g HAVING g > 0 ORDER BY total DESC LIMIT 3"
        )
        assert query.group_by == ["g"]
        assert query.limit == 3
