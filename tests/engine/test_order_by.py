"""Regression tests for ORDER BY correctness.

Covers the two historical sort bugs: descending keys were made by
reversing the ascending permutation (which also reversed the order of
equal keys, breaking multi-key sorts and tie stability), and ORDER BY on
a column the SELECT list dropped crashed in the sort operator.
"""

import pytest

from repro.engine import Database
from repro.engine.plan.cost import OptimizerConfig
from repro.errors import ExecutionError


def make_db(**kwargs):
    db = Database(**kwargs)
    db.create_table(
        "t",
        {"g": "CHAR(2)", "v": "INT", "b": "DECIMAL(10, 2)"},
        rows=[
            ("aa", 1, "5.00"),
            ("bb", 2, "1.00"),
            ("cc", 2, "3.00"),
            ("dd", 1, "3.00"),
            ("ee", 2, "4.00"),
        ],
    )
    return db


class TestDescendingStability:
    def test_desc_ties_keep_input_order(self):
        result = make_db().execute("SELECT g, v FROM t ORDER BY v DESC")
        assert [row[0] for row in result.rows] == ["bb", "cc", "ee", "aa", "dd"]

    def test_multi_key_desc_then_asc(self):
        # Within equal v (sorted DESC), rows must follow b ASC: the old
        # rank-reversal destroyed the secondary order of tied primaries.
        result = make_db().execute("SELECT g, v, b FROM t ORDER BY v DESC, b ASC")
        assert [row[0] for row in result.rows] == ["bb", "cc", "ee", "dd", "aa"]

    def test_multi_key_asc_then_desc(self):
        result = make_db().execute("SELECT g, v, b FROM t ORDER BY v ASC, b DESC")
        assert [row[0] for row in result.rows] == ["aa", "dd", "ee", "cc", "bb"]

    def test_desc_on_char_column(self):
        # CHAR keys sort as bytes, which cannot be negated -- the dense-rank
        # inversion has to handle them too.
        result = make_db().execute("SELECT g FROM t ORDER BY g DESC")
        assert [row[0] for row in result.rows] == ["ee", "dd", "cc", "bb", "aa"]

    def test_desc_on_decimal_column(self):
        result = make_db().execute("SELECT g, b FROM t ORDER BY b DESC")
        assert [row[0] for row in result.rows] == ["aa", "ee", "cc", "dd", "bb"]


class TestOrderByNonSelectedColumn:
    def test_sort_key_not_in_select_list(self):
        result = make_db().execute("SELECT g FROM t ORDER BY v DESC, g ASC")
        assert result.column_names == ["g"]
        assert [row[0] for row in result.rows] == ["bb", "cc", "ee", "aa", "dd"]

    def test_sort_key_dropped_from_output(self):
        result = make_db().execute("SELECT b FROM t ORDER BY v")
        assert result.column_names == ["b"]
        assert all(len(row) == 1 for row in result.rows)

    def test_retention_is_always_on(self):
        # Sort-key retention is a correctness pass: it must run even with
        # the optimizer disabled.
        result = make_db().execute(
            "SELECT g FROM t ORDER BY v", optimizer=OptimizerConfig.off()
        )
        assert [row[0] for row in result.rows] == ["aa", "dd", "bb", "cc", "ee"]

    def test_jit_projection_with_carried_key(self):
        # The carried key must survive a projection that JIT-computes its
        # other outputs.
        result = make_db().execute("SELECT b * 2 FROM t ORDER BY v DESC, g DESC")
        assert result.column_names == ["b * 2"]
        assert [str(row[0]) for row in result.rows] == [
            "8.00",  # ee: v=2
            "6.00",  # cc
            "2.00",  # bb
            "6.00",  # dd: v=1
            "10.00",  # aa
        ]

    def test_unknown_sort_column_still_fails(self):
        with pytest.raises(ExecutionError):
            make_db().execute("SELECT g FROM t ORDER BY nope")
