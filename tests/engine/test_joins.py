"""Tests for hash-join support."""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, ParseError


def make_db():
    db = Database(simulate_rows=1_000_000)
    db.create_table(
        "orders",
        {"o_orderkey": "INT", "o_total": "DECIMAL(12, 2)", "o_flag": "CHAR(1)"},
        rows=[(1, "10.00", "A"), (2, "20.00", "B"), (3, "30.00", "A")],
    )
    db.create_table(
        "items",
        {"i_orderkey": "INT", "i_qty": "DECIMAL(6, 0)", "i_price": "DECIMAL(10, 2)"},
        rows=[(1, 2, "1.50"), (1, 3, "2.00"), (2, 5, "0.10"), (9, 7, "9.99")],
    )
    return db


class TestHashJoin:
    def test_inner_join_matches(self):
        db = make_db()
        result = db.execute(
            "SELECT i_orderkey, o_total FROM items JOIN orders ON i_orderkey = o_orderkey "
            "ORDER BY i_orderkey"
        )
        keys = [row[0] for row in result.rows]
        assert keys == [1, 1, 2]  # order 9 has no match, order 3 no items

    def test_join_then_expression(self):
        db = make_db()
        result = db.execute(
            "SELECT SUM(o_total * i_qty) FROM items JOIN orders ON i_orderkey = o_orderkey"
        )
        # 10*2 + 10*3 + 20*5 = 150.00
        assert str(result.scalar) == "150.00"

    def test_join_with_filter(self):
        db = make_db()
        result = db.execute(
            "SELECT SUM(i_qty) FROM items JOIN orders ON i_orderkey = o_orderkey "
            "WHERE o_flag = 'A'"
        )
        assert result.scalar.unscaled == 5  # only order 1's items

    def test_join_group_by(self):
        db = make_db()
        result = db.execute(
            "SELECT o_flag, SUM(i_qty * i_price) FROM items JOIN orders "
            "ON i_orderkey = o_orderkey GROUP BY o_flag ORDER BY o_flag"
        )
        assert [(row[0], row[1].unscaled) for row in result.rows] == [
            ("A", 900),  # 2*1.50 + 3*2.00 = 9.00 at scale 2
            ("B", 50),  # 5*0.10
        ]

    def test_duplicate_build_keys(self):
        db = Database()
        db.create_table("l", {"k": "INT", "v": "INT"}, rows=[(1, 10)])
        db.create_table("r", {"rk": "INT", "w": "INT"}, rows=[(1, 1), (1, 2), (1, 3)])
        result = db.execute("SELECT w FROM l JOIN r ON k = rk ORDER BY w")
        assert [row[0] for row in result.rows] == [1, 2, 3]

    def test_decimal_join_keys(self):
        db = Database()
        db.create_table("a", {"ka": "DECIMAL(6, 2)", "x": "INT"}, rows=[("1.50", 7)])
        db.create_table("b", {"kb": "DECIMAL(6, 2)", "y": "INT"}, rows=[("1.50", 8), ("2.00", 9)])
        result = db.execute("SELECT x, y FROM a JOIN b ON ka = kb")
        assert result.rows == [(7, 8)]

    def test_missing_joined_table(self):
        db = make_db()
        with pytest.raises(CatalogError):
            db.execute("SELECT i_qty FROM items JOIN nope ON i_orderkey = nk")

    def test_non_equi_join_rejected(self):
        db = make_db()
        with pytest.raises(ParseError):
            db.execute("SELECT i_qty FROM items JOIN orders ON i_orderkey < o_orderkey")

    def test_join_costs_charged(self):
        db = make_db()
        result = db.execute(
            "SELECT SUM(i_qty) FROM items JOIN orders ON i_orderkey = o_orderkey"
        )
        # The joined table's scan/transfer shows up in the report.
        assert result.report.scan_seconds > 0
        assert result.report.filter_seconds > 0  # build+probe passes

    def test_explain_shows_join(self):
        db = make_db()
        text = db.explain(
            "SELECT SUM(o_total * i_qty) FROM items JOIN orders ON i_orderkey = o_orderkey"
        ).format()
        assert "HashJoin orders [i_orderkey = o_orderkey]" in text
