"""Tests for the concurrent serving layer.

Covers the ISSUE's concurrency contract: concurrent sessions return
bit-identical results to serial execution, admission control rejects past
the configured limit, a timed-out query is cancelled cleanly without
poisoning the shared kernel cache, and readers keep a consistent snapshot
while an append lands mid-query.
"""

import asyncio
import threading

import pytest

from repro.bench.experiments import ext_serving
from repro.core.decimal.context import DecimalSpec
from repro.core.jit.pipeline import KernelCache
from repro.engine import Database
from repro.engine.serving import ServerConfig, SessionServer
from repro.errors import (
    AdmissionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServingError,
)
from repro.gpusim.residency import DeviceResidency
from repro.storage import tpch

SQL = "SELECT v + 1 AS w FROM t"


def make_database(cls=Database, rows=(("1.00",), ("2.00",), ("3.00",))):
    database = cls(simulate_rows=50_000)
    database.create_table("t", {"v": "DECIMAL(10, 2)"}, rows=rows)
    return database


class GatedDatabase(Database):
    """A database whose queries block until the test opens the gate.

    The wait polls ``cancel_check`` like the engine's operator boundaries
    do, so the serving layer's timeout/cancellation path is exercised
    deterministically (no sleeps racing real query runtimes).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()

    def execute(self, sql, **kwargs):
        cancel_check = kwargs.get("cancel_check")
        while not self.gate.wait(timeout=0.005):
            if cancel_check is not None and cancel_check():
                raise QueryCancelledError(f"cancelled while gated: {sql!r}")
        return super().execute(sql, **kwargs)


class TestServerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            ServerConfig(max_queue_depth=-1)
        with pytest.raises(ValueError):
            ServerConfig(default_timeout=0.0)

    def test_admission_limit(self):
        assert ServerConfig(max_in_flight=2, max_queue_depth=3).admission_limit == 5


class TestBitExactness:
    def test_concurrent_sessions_match_serial(self):
        relation = tpch.lineitem_for_len(2, rows=120, seed=11)
        serial = ext_serving.reference_rows(relation, simulate_rows=100_000)

        database = Database(simulate_rows=100_000, aggregation_tpi=8)
        database.register(relation)
        results, schedule = ext_serving.serve_workload(
            database, session_count=4, queries_per_session=3
        )

        assert len(results) == 12
        for served in results:
            assert served.rows == serial[served.sql], served.sql
        assert len(schedule.queries) == 12
        # Each session's closed loop is preserved in the schedule.
        for query in schedule.queries:
            assert query.finish >= query.arrival

    def test_shared_kernel_cache_compiles_each_kernel_once(self):
        database = make_database()

        async def main():
            async with SessionServer(database) as server:
                await asyncio.gather(
                    *[server.session(f"s{i}").execute(SQL) for i in range(4)]
                )

        asyncio.run(main())
        # Four sessions, one distinct kernel: one miss, the rest hits.
        assert len(database.kernel_cache) == 1
        assert database.kernel_cache.misses == 1


class TestAdmissionControl:
    def test_rejects_past_limit(self):
        database = make_database(GatedDatabase)
        config = ServerConfig(max_in_flight=1, max_queue_depth=1)

        async def main():
            async with SessionServer(database, config) as server:
                tasks = [
                    asyncio.ensure_future(server.session(f"s{i}").execute(SQL))
                    for i in range(3)
                ]
                # One query holds the worker (gate closed), one queues on
                # the semaphore; the third submission must bounce.
                while server.stats.rejected == 0:
                    await asyncio.sleep(0.001)
                assert server.in_flight == config.admission_limit
                database.gate.set()
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                return outcomes, server.stats

        outcomes, stats = asyncio.run(main())
        rejected = [o for o in outcomes if isinstance(o, AdmissionError)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(rejected) == 1
        assert len(served) == 2
        assert stats.rejected == 1
        assert stats.completed == 2
        for result in served:
            assert result.queued_seconds >= 0
            assert result.wall_seconds >= result.queued_seconds

    def test_closed_server_rejects_everything(self):
        database = make_database()

        async def main():
            server = SessionServer(database)
            session = server.session("s0")
            await server.close()
            with pytest.raises(ServingError):
                server.session("late")
            with pytest.raises(ServingError):
                await session.execute(SQL)

        asyncio.run(main())


class TestTimeoutAndCancellation:
    def test_timeout_cancels_and_cache_survives(self):
        database = make_database(GatedDatabase)

        async def main():
            async with SessionServer(database) as server:
                session = server.session("s0")
                with pytest.raises(QueryTimeoutError):
                    await session.execute(SQL, timeout=0.02)
                assert server.stats.timed_out == 1
                # The worker observed the flag (QueryCancelledError path).
                assert server.stats.cancelled == 1
                assert server.in_flight == 0
                # The shared cache was not poisoned: the same query now
                # runs to completion and compiles cleanly.
                database.gate.set()
                served = await session.execute(SQL)
                return served

        served = asyncio.run(main())
        reference = make_database().execute(SQL)
        assert served.rows == reference.rows
        assert len(database.kernel_cache) == 1

    def test_default_timeout_applies(self):
        database = make_database(GatedDatabase)
        config = ServerConfig(default_timeout=0.02)

        async def main():
            async with SessionServer(database, config) as server:
                with pytest.raises(QueryTimeoutError):
                    await server.session("s0").execute(SQL)
                # timeout=None opts out of the default deadline.
                database.gate.set()
                return await server.session("s0").execute(SQL, timeout=None)

        served = asyncio.run(main())
        assert served.rows == make_database().execute(SQL).rows

    def test_engine_level_cancel_check(self):
        database = make_database()
        with pytest.raises(QueryCancelledError):
            database.execute(SQL, cancel_check=lambda: True)
        # Cancelled before the first operator: nothing half-compiled.
        assert len(database.kernel_cache) == 0
        assert database.execute(SQL).rows == make_database().execute(SQL).rows

    def test_cancel_mid_query_leaves_cache_whole(self):
        database = make_database()
        calls = {"count": 0}

        def cancel_after_first_operator():
            calls["count"] += 1
            return calls["count"] > 1

        with pytest.raises(QueryCancelledError):
            database.execute(SQL, cancel_check=cancel_after_first_operator)
        # Whatever was compiled before the cancel is a whole entry the
        # next execution reuses bit-exactly.
        size_after_cancel = len(database.kernel_cache)
        result = database.execute(SQL)
        assert result.rows == make_database().execute(SQL).rows
        assert len(database.kernel_cache) >= size_after_cancel


class TestSnapshotIsolation:
    def test_append_basics(self):
        database = make_database()
        before = database.catalog.get("t")
        merged = database.append("t", [("9.50",)])
        assert merged.rows == 4
        # The old relation object is untouched (readers may still hold it)
        # and the merged table is built from fresh column versions.
        assert before.rows == 3
        assert database.catalog.get("t") is merged
        for old, new in zip(before.columns, merged.columns):
            assert old.version != new.version

    def test_reader_snapshot_unaffected_by_concurrent_append(self):
        database = make_database()
        state = {"appended": False}

        def append_mid_query():
            # Runs at an operator boundary of the in-flight query: the
            # append lands while the reader is executing.
            if not state["appended"]:
                state["appended"] = True
                database.append("t", [("99.00",)])
            return False

        in_flight = database.execute(SQL, cancel_check=append_mid_query)
        assert state["appended"]
        assert len(in_flight.rows) == 3  # the snapshot, not the new row
        assert len(database.execute(SQL).rows) == 4  # later queries see it

    def test_server_append_visible_to_later_queries(self):
        database = make_database()

        async def main():
            async with SessionServer(database) as server:
                writer = server.session("writer")
                reader = server.session("reader")
                before = await reader.execute(SQL)
                await writer.append("t", [("7.25",)])
                after = await reader.execute(SQL)
                return before, after

        before, after = asyncio.run(main())
        assert len(before.rows) == 3
        assert len(after.rows) == 4

    def test_append_invalidates_residency_by_version(self):
        database = make_database()
        database.residency = DeviceResidency(database.device)
        first = database.execute(SQL)
        second = database.execute(SQL)
        # The first query ships the column (residency miss); the second
        # finds it resident and pays only the result transfer back.
        assert database.residency.misses == 1
        assert database.residency.hits == 1
        assert second.report.pcie_bytes < first.report.pcie_bytes
        database.append("t", [("4.00",)])
        third = database.execute(SQL)
        # Append built a fresh column version -> the transfer is re-paid.
        assert database.residency.misses == 2
        assert third.report.pcie_bytes > second.report.pcie_bytes


class TestKernelCacheThreadSafety:
    def test_concurrent_compiles_yield_one_entry(self):
        cache = KernelCache()
        spec = DecimalSpec(10, 2)
        schema = {"a": spec, "b": spec}
        workers = 8
        barrier = threading.Barrier(workers)
        failures = []

        def compile_one():
            try:
                barrier.wait()
                compiled, _ = cache.compile("a + b * 2", schema)
                assert compiled.kernel is not None
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [threading.Thread(target=compile_one) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(cache) == 1
        assert cache.misses == 1
        assert cache.hits == workers - 1
