"""Golden plan-shape tests for the rewrite rules and the cost model.

Each rule gets an EXPLAIN-level assertion on the rewritten plan shape,
plus regression tests for the cost-accounting fixes that rode along
(distinct-column filter bytes, build-side transfer reduction).
"""

import pytest

from repro.engine import Database
from repro.engine.plan.cost import CostModel, OptimizerConfig
from repro.engine.plan.physical import FilterOp, QueryContext, ScanOp
from repro.engine.sql.ast_nodes import Comparison


def make_db(simulate_rows=1_000_000):
    db = Database(simulate_rows=simulate_rows)
    db.create_table(
        "fact",
        {"f_key": "INT", "f_amount": "DECIMAL(12, 2)", "f_qty": "INT", "f_tag": "CHAR(4)"},
        rows=[(i % 10, f"{i}.25", i % 7, f"t{i % 3}") for i in range(50)],
    )
    db.create_table(
        "dim",
        {"d_key": "INT", "d_label": "CHAR(4)", "d_weight": "DECIMAL(8, 2)"},
        rows=[(i, f"d{i}", f"{i}.50") for i in range(10)],
    )
    return db


def operators(db, sql, **kwargs):
    return db.explain(sql, **kwargs).operators


class TestFilterPushdown:
    def test_left_conjunct_sinks_below_join(self):
        ops = operators(
            make_db(),
            "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key "
            "WHERE f_qty > 2",
        )
        assert ops[0].startswith("Scan fact")
        assert ops[1].startswith("Filter [f_qty > 2]")
        assert "Join" in ops[2]

    def test_right_conjunct_moves_into_build_side(self):
        ops = operators(
            make_db(),
            "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key "
            "WHERE d_label = 'd3'",
        )
        join_line = next(op for op in ops if "Join" in op)
        assert "build-filter [d_label = 'd3']" in join_line
        assert not any(op.startswith("Filter") for op in ops)

    def test_rewrite_trace_reports_pushdown(self):
        result = make_db().explain(
            "SELECT f_amount FROM fact JOIN dim ON f_key = d_key "
            "WHERE d_label = 'd3' AND f_qty > 2"
        )
        assert any("filter-pushdown" in line for line in result.rewrites)

    def test_disabled_optimizer_keeps_filter_above_join(self):
        ops = operators(
            make_db(),
            "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key "
            "WHERE f_qty > 2",
            optimizer=OptimizerConfig.off(),
        )
        assert "Join" in ops[1]
        assert ops[2].startswith("Filter")


class TestPredicateSimplify:
    def test_redundant_bound_dropped(self):
        ops = operators(
            make_db(), "SELECT f_amount FROM fact WHERE f_qty >= 5 AND f_qty >= 3"
        )
        filter_line = next(op for op in ops if op.startswith("Filter"))
        assert "f_qty >= 5" in filter_line
        assert "f_qty >= 3" not in filter_line

    def test_duplicate_conjunct_dropped(self):
        ops = operators(
            make_db(), "SELECT f_amount FROM fact WHERE f_qty > 2 AND f_qty > 2"
        )
        filter_line = next(op for op in ops if op.startswith("Filter"))
        assert filter_line.count("f_qty > 2") == 1

    def test_point_range_becomes_equality(self):
        ops = operators(
            make_db(), "SELECT f_amount FROM fact WHERE f_qty >= 5 AND f_qty <= 5"
        )
        filter_line = next(op for op in ops if op.startswith("Filter"))
        assert "f_qty = 5" in filter_line
        assert "<=" not in filter_line and ">=" not in filter_line

    def test_decimal_bounds_compare_at_column_scale(self):
        # 2.5 and 2.50 canonicalise to the same unscaled value; the wider
        # bound must win exactly as execution would compare it.
        ops = operators(
            make_db(),
            "SELECT f_qty FROM fact WHERE f_amount >= 2.5 AND f_amount >= 2.50 "
            "AND f_amount >= 1.25",
        )
        filter_line = next(op for op in ops if op.startswith("Filter"))
        assert "1.25" not in filter_line
        assert filter_line.count(">=") == 1

    def test_contradiction_proves_empty(self):
        db = make_db()
        ops = operators(db, "SELECT f_amount FROM fact WHERE f_qty > 5 AND f_qty < 3")
        assert any("Filter [FALSE]" in op for op in ops)
        result = db.execute("SELECT f_amount FROM fact WHERE f_qty > 5 AND f_qty < 3")
        assert result.rows == []

    def test_contradictory_equalities(self):
        db = make_db()
        result = db.execute(
            "SELECT f_amount FROM fact WHERE f_tag = 't1' AND f_tag = 't2'"
        )
        assert result.rows == []


class TestProjectionPruning:
    def test_join_ship_set_drops_predicate_only_column(self):
        # d_label is only needed by the build-side predicate; it must not
        # be shipped over PCIe with the join's output columns.
        result = make_db().explain(
            "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key "
            "WHERE d_label = 'd3'"
        )
        assert any(
            "projection-pruning" in line and "d_label" in line for line in result.rewrites
        )

    def test_build_key_always_survives_pruning(self):
        ops = operators(
            make_db(),
            "SELECT f_amount FROM fact JOIN dim ON f_key = d_key",
        )
        join_line = next(op for op in ops if "Join" in op)
        assert "f_key = d_key" in join_line


class TestSortKeyRetention:
    def test_carry_and_drop_appear_in_plan(self):
        ops = operators(make_db(), "SELECT f_amount FROM fact ORDER BY f_qty")
        project_line = next(op for op in ops if op.startswith("Project"))
        assert "carry [f_qty]" in project_line
        assert any(op.startswith("Drop [f_qty]") for op in ops)


class TestCostModelChoices:
    def test_tiny_build_side_takes_nested_loop(self):
        db = Database()  # simulate at the actual (tiny) row counts
        db.create_table(
            "fact", {"k": "INT", "x": "DECIMAL(10, 2)"},
            rows=[(i % 3, f"{i}.00") for i in range(60)],
        )
        db.create_table(
            "dim", {"k2": "INT", "w": "DECIMAL(8, 2)"},
            rows=[(0, "0.50"), (1, "1.50"), (2, "2.50")],
        )
        ops = operators(db, "SELECT x, w FROM fact JOIN dim ON k = k2")
        assert any(op.startswith("NestedLoopJoin") for op in ops)

    def test_large_build_side_takes_hash(self):
        ops = operators(
            make_db(), "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key"
        )
        assert any("HashJoin dim" in op for op in ops)

    def test_choice_is_traced(self):
        result = make_db().explain(
            "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key"
        )
        assert any(line.startswith("join dim: hash") for line in result.choices)

    def test_every_operator_is_costed(self):
        result = make_db().explain(
            "SELECT f_tag, SUM(f_amount) FROM fact WHERE f_qty > 1 "
            "GROUP BY f_tag ORDER BY f_tag LIMIT 3"
        )
        assert result.operators
        assert all("(cost=" in op for op in result.operators)

    def test_explain_formats_rewrites_section(self):
        text = make_db().explain(
            "SELECT f_amount FROM fact JOIN dim ON f_key = d_key WHERE d_label = 'd1'"
        ).format()
        assert "rewrites:" in text
        assert "choices:" in text


class TestFilterCostAccounting:
    def _filter_seconds(self, predicates):
        db = make_db()
        relation = db.catalog.get("fact")
        context = QueryContext(
            relation=relation, simulate_rows=1_000_000, include_scan=False
        )
        batch = ScanOp(["f_key", "f_qty", "f_amount"]).run(None, context)
        before = context.report.filter_seconds
        FilterOp(predicates).run(batch, context)
        return context.report.filter_seconds - before

    def test_repeated_column_charged_once(self):
        # Two conjuncts over one column read the same bytes as one: the
        # old per-predicate sum double-charged the column.
        one = self._filter_seconds([Comparison("f_qty", ">", 1)])
        two = self._filter_seconds(
            [Comparison("f_qty", ">", 1), Comparison("f_qty", "<", 6)]
        )
        assert two == pytest.approx(one)

    def test_distinct_columns_still_accumulate(self):
        one = self._filter_seconds([Comparison("f_qty", ">", 1)])
        two = self._filter_seconds(
            [Comparison("f_qty", ">", 1), Comparison("f_amount", ">", 5)]
        )
        assert two > one

    def test_column_rhs_counts_toward_bytes(self):
        lhs_only = self._filter_seconds([Comparison("f_qty", ">", 1)])
        with_rhs = self._filter_seconds(
            [Comparison("f_qty", ">", 1, column_rhs="f_key")]
        )
        assert with_rhs > lhs_only


class TestTransferReduction:
    def test_build_side_pushdown_reduces_pcie_bytes(self):
        db = make_db()
        sql = (
            "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key "
            "WHERE d_label = 'd3'"
        )
        on = db.execute(sql)
        off = db.execute(sql, optimizer=OptimizerConfig.off())
        assert on.rows == off.rows
        assert on.report.pcie_bytes < off.report.pcie_bytes

    def test_chunk_choice_is_cost_based(self):
        model = CostModel()
        db = make_db()
        # The chooser must at least never lose to the static default.
        from repro.core.jit.pipeline import compile_expression
        from repro.gpusim.streaming import StreamingConfig, stream_timing

        relation = db.catalog.get("fact")
        compiled = compile_expression(
            "f_amount * 2", relation.decimal_schema(), db.jit_options
        )
        streaming = StreamingConfig(enabled=True)
        chunk = model.choose_chunk_rows(compiled.kernel, 1_000_000, streaming, 0.0)
        chosen = stream_timing(compiled.kernel, 1_000_000, chunk, model.device)
        static = stream_timing(
            compiled.kernel,
            1_000_000,
            streaming.resolve_chunk_rows(compiled.kernel, model.device, 1_000_000),
            model.device,
        )
        assert chosen.pipelined_seconds <= static.pipelined_seconds
