"""Tests for EXPLAIN and LIMIT."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.engine import Database
from repro.errors import ParseError
from repro.storage import Column, Relation
from repro.storage.datagen import decimal_column


def make_db(rows=40):
    relation = Relation(
        "r",
        [
            decimal_column("a", DecimalSpec(10, 2), rows, seed=1),
            Column.integers("k", list(range(rows))),
        ],
    )
    db = Database(simulate_rows=1_000_000)
    db.register(relation)
    return db, relation


class TestLimit:
    def test_limit_truncates(self):
        db, relation = make_db()
        result = db.execute("SELECT k FROM r ORDER BY k DESC LIMIT 5")
        assert [row[0] for row in result.rows] == [39, 38, 37, 36, 35]

    def test_limit_larger_than_rows(self):
        db, _ = make_db(rows=3)
        result = db.execute("SELECT k FROM r LIMIT 100")
        assert len(result.rows) == 3

    def test_limit_zero(self):
        db, _ = make_db()
        result = db.execute("SELECT k FROM r LIMIT 0")
        assert result.rows == []

    def test_limit_parse_errors(self):
        db, _ = make_db()
        with pytest.raises(ParseError):
            db.execute("SELECT k FROM r LIMIT 1.5")
        with pytest.raises(ParseError):
            db.execute("SELECT k FROM r LIMIT x")

    def test_limit_with_aggregate(self):
        db, relation = make_db()
        result = db.execute("SELECT SUM(a) FROM r LIMIT 1")
        assert result.scalar.unscaled == sum(relation.column("a").unscaled())


class TestExplain:
    def test_operator_chain(self):
        db, _ = make_db()
        explained = db.explain("SELECT a * 2 FROM r WHERE k < 10 ORDER BY k LIMIT 3")
        text = explained.format()
        assert "Scan r" in text
        assert "Filter" in text
        assert "Project (JIT)" in text
        assert "Sort" in text

    def test_kernel_details(self):
        db, _ = make_db()
        explained = db.explain("SELECT a + a + 1.5 FROM r")
        assert len(explained.kernels) == 1
        kernel = explained.kernels[0]
        assert kernel.result_spec.startswith("DECIMAL")
        assert kernel.estimated_ms > 0
        assert "__global__" in kernel.source

    def test_bare_column_aggregate_needs_no_kernel(self):
        db, _ = make_db()
        explained = db.explain("SELECT SUM(a), COUNT(*) FROM r")
        assert explained.kernels == []
        assert "Aggregate" in explained.format()

    def test_group_aggregate_kernels(self):
        db, _ = make_db()
        explained = db.explain("SELECT k, SUM(a * 2) FROM r GROUP BY k")
        assert len(explained.kernels) == 1
        assert "GroupAggregate" in explained.format()

    def test_estimates_scale_with_rows(self):
        db, _ = make_db()
        small = db.explain("SELECT a + a FROM r", simulate_rows=1_000_000)
        large = db.explain("SELECT a + a FROM r", simulate_rows=100_000_000)
        assert large.kernels[0].estimated_ms > small.kernels[0].estimated_ms

    def test_with_source_flag(self):
        db, _ = make_db()
        explained = db.explain("SELECT a + 1 FROM r")
        assert "toCompact" in explained.format(with_source=True)
        assert "toCompact" not in explained.format(with_source=False)

    def test_explain_does_not_execute(self):
        db, _ = make_db()
        db.explain("SELECT a + 123456 FROM r")
        # The session cache is untouched by explain (it compiles privately).
        assert len(db.kernel_cache) == 0
