"""Property test: the optimizer never changes results, only plans.

Randomised (seeded) queries run twice -- optimizer fully on and fully off
-- and must produce identical rows and column names.  This covers the
rewrite rules (pushdown, merge, pruning, retention), the cost-based join
and chunk choices, and the build-side predicate evaluation, all of which
promise bit-exactness.
"""

import random

import pytest

from repro.engine import Database
from repro.engine.plan.cost import OptimizerConfig

TAGS = ["aa", "bb", "cc"]
LABELS = ["red", "blue", "gold"]


def make_db(rng: random.Random) -> Database:
    db = Database(simulate_rows=1_000_000)
    db.create_table(
        "fact",
        {
            "f_key": "INT",
            "f_qty": "INT",
            "f_amount": "DECIMAL(12, 2)",
            "f_rate": "DECIMAL(6, 4)",
            "f_tag": "CHAR(2)",
        },
        rows=[
            (
                rng.randrange(8),
                rng.randrange(10),
                f"{rng.randrange(1000)}.{rng.randrange(100):02d}",
                f"0.{rng.randrange(10000):04d}",
                rng.choice(TAGS),
            )
            for _ in range(40)
        ],
    )
    db.create_table(
        "dim",
        {"d_key": "INT", "d_label": "CHAR(4)", "d_weight": "DECIMAL(8, 2)"},
        rows=[
            (key, rng.choice(LABELS), f"{rng.randrange(50)}.{rng.randrange(100):02d}")
            for key in range(8)
        ],
    )
    return db


def random_query(rng: random.Random) -> str:
    joined = rng.random() < 0.5
    where = []
    for _ in range(rng.randrange(4)):
        choice = rng.randrange(4 if joined else 3)
        op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        if choice == 0:
            where.append(f"f_qty {op} {rng.randrange(10)}")
        elif choice == 1:
            where.append(
                f"f_amount {op} {rng.randrange(1000)}.{rng.randrange(100):02d}"
            )
        elif choice == 2:
            where.append(f"f_tag {op} '{rng.choice(TAGS)}'")
        else:
            where.append(f"d_label {op} '{rng.choice(LABELS)}'")

    aggregate = rng.random() < 0.4
    if aggregate:
        group = rng.choice(["f_tag", "f_qty"])
        expression = (
            "f_amount * d_weight" if joined and rng.random() < 0.5 else "f_amount * f_rate"
        )
        select = f"{group}, SUM({expression}) AS total"
        order = rng.choice(
            [None, f"{group}", f"{group} DESC", "total DESC", f"total DESC, {group}"]
        )
        tail = f" GROUP BY {group}"
    else:
        columns = ["f_qty", "f_amount", "f_tag"] + (["d_weight", "d_label"] if joined else [])
        select = ", ".join(rng.sample(columns, rng.randrange(1, len(columns))))
        # ORDER BY keys deliberately may be outside the SELECT list.
        keys = rng.sample(columns, rng.randrange(1, 3))
        order = ", ".join(
            f"{key}{rng.choice(['', ' ASC', ' DESC'])}" for key in keys
        )
        tail = ""

    sql = f"SELECT {select} FROM fact"
    if joined:
        sql += " JOIN dim ON f_key = d_key"
    if where:
        sql += " WHERE " + " AND ".join(where)
    sql += tail
    if order:
        sql += f" ORDER BY {order}"
    if rng.random() < 0.3:
        sql += f" LIMIT {rng.randrange(1, 15)}"
    return sql


@pytest.mark.parametrize("seed", range(40))
def test_optimized_plan_is_bit_exact(seed):
    rng = random.Random(1000 + seed)
    db = make_db(rng)
    sql = random_query(rng)
    on = db.execute(sql)
    off = db.execute(sql, optimizer=OptimizerConfig.off())
    assert on.column_names == off.column_names, sql
    assert on.rows == off.rows, sql


@pytest.mark.parametrize("seed", range(40))
def test_every_random_plan_passes_the_plan_analyzer(seed):
    """The static plan analyzer proves every generated plan sound.

    Same seeded query population as the bit-exactness property, checked
    statically: schema dataflow, precision dataflow and the per-rewrite
    soundness audit must report zero errors with the optimizer fully on
    and fully off.
    """
    rng = random.Random(1000 + seed)
    db = make_db(rng)
    sql = random_query(rng)
    for config in (OptimizerConfig(), OptimizerConfig.off()):
        report = db.explain(sql, optimizer=config).plan_diagnostics
        assert report is not None, sql
        assert not report.has_errors, f"{sql}\n{report.format()}"


def test_reports_track_bytes_both_ways():
    rng = random.Random(7)
    db = make_db(rng)
    sql = (
        "SELECT f_amount, d_weight FROM fact JOIN dim ON f_key = d_key "
        "WHERE d_label = 'red' AND f_qty > 2"
    )
    on = db.execute(sql)
    off = db.execute(sql, optimizer=OptimizerConfig.off())
    assert on.rows == off.rows
    # The optimized plan never moves more simulated bytes than the naive one.
    assert on.report.pcie_bytes <= off.report.pcie_bytes
    assert on.report.scan_bytes <= off.report.scan_bytes
