"""Join reordering: bit-exact under every permutation, golden TPC-H plans."""

import random

import pytest

from repro.engine import Database
from repro.engine.plan.cost import OptimizerConfig
from repro.storage import tpch
from repro.workloads.tpch_queries import Q5_SQL, Q10_SQL

TAGS = ["aa", "bb", "cc"]


def make_multi_join_db(rng: random.Random) -> Database:
    db = Database(simulate_rows=1_000_000)
    db.create_table(
        "fact",
        {
            "f_k1": "INT",
            "f_k2": "INT",
            "f_amount": "DECIMAL(12, 2)",
            "f_tag": "CHAR(2)",
        },
        rows=[
            (
                rng.randrange(6),
                rng.randrange(4),
                f"{rng.randrange(1000)}.{rng.randrange(100):02d}",
                rng.choice(TAGS),
            )
            for _ in range(60)
        ],
    )
    db.create_table(
        "dima",
        {"a_key": "INT", "a_weight": "DECIMAL(8, 2)", "a_code": "INT"},
        rows=[
            (key, f"{rng.randrange(50)}.{rng.randrange(100):02d}", key % 3)
            for key in range(6)
        ],
    )
    # Selective by construction: only 2 of the 4 fact key values match, so
    # joining dimb first halves the intermediate -- the reorderer's win.
    db.create_table(
        "dimb",
        {"b_key": "INT", "b_weight": "DECIMAL(8, 2)"},
        rows=[(key, f"{rng.randrange(50)}.{rng.randrange(100):02d}") for key in range(2)],
    )
    db.create_table(
        "dimc",
        {"c_code": "INT", "c_weight": "DECIMAL(8, 2)"},
        rows=[(code, f"{rng.randrange(9)}.{rng.randrange(100):02d}") for code in range(3)],
    )
    return db


#: Every valid SQL ordering of the three joins (dimc needs a_code, so it
#: must come after dima).
JOIN_CLAUSES = {
    "a": "JOIN dima ON f_k1 = a_key",
    "b": "JOIN dimb ON f_k2 = b_key",
    "c": "JOIN dimc ON a_code = c_code",
}
VALID_ORDERS = ["abc", "acb", "bac"]


def multi_join_sql(order: str, where: str = "") -> str:
    joins = " ".join(JOIN_CLAUSES[key] for key in order)
    return (
        "SELECT f_tag, SUM(f_amount * a_weight) AS total, "
        "SUM(b_weight * c_weight) AS cross_w "
        f"FROM fact {joins}{where} GROUP BY f_tag ORDER BY f_tag"
    )


@pytest.mark.parametrize("seed", range(10))
def test_every_join_permutation_is_bit_exact(seed):
    """All valid SQL join orders x optimizer on/off give identical rows."""
    rng = random.Random(4200 + seed)
    db = make_multi_join_db(rng)
    where = ""
    if rng.random() < 0.6:
        where = f" WHERE f_amount > {rng.randrange(500)}.00"
    results = []
    for order in VALID_ORDERS:
        sql = multi_join_sql(order, where)
        on = db.execute(sql)
        off = db.execute(sql, optimizer=OptimizerConfig.off())
        assert on.column_names == off.column_names, sql
        assert on.rows == off.rows, sql
        results.append(on.rows)
    for rows in results[1:]:
        assert rows == results[0]


def test_reorder_fires_and_reports_cardinalities():
    rng = random.Random(99)
    db = make_multi_join_db(rng)
    # Parse order joins dima (key-complete, keeps all 60 rows) before the
    # selective dimb; the reorderer must pull dimb to the front.
    explain = db.explain(multi_join_sql("abc"))
    rewrites = [line for line in explain.rewrites if line.startswith("join-reorder")]
    assert rewrites, explain.rewrites
    assert "est intermediate rows" in rewrites[0]
    assert _join_tables(explain)[0] == "dimb"


def test_no_reorder_without_aggregate():
    """The bit-exactness gate: plain join queries keep parse order.

    Hash joins emit left-major row order and stable sorts preserve ties,
    so reordering a non-aggregated query could permute output rows.
    """
    rng = random.Random(7)
    db = make_multi_join_db(rng)
    sql = (
        "SELECT f_tag, a_weight, b_weight FROM fact "
        "JOIN dima ON f_k1 = a_key JOIN dimb ON f_k2 = b_key "
        "ORDER BY f_tag"
    )
    explain = db.explain(sql)
    assert not any(line.startswith("join-reorder") for line in explain.rewrites)
    joins = _join_tables(explain)
    assert joins == ["dima", "dimb"]


def _join_tables(explain) -> list:
    return [
        line.split()[1]
        for line in explain.operators
        if line.startswith(("HashJoin", "NestedLoopJoin"))
    ]


def make_tpch_db(rows: int = 1500) -> Database:
    order_count = max(rows // 5, 50)
    db = Database(simulate_rows=10_000_000, aggregation_tpi=8)
    db.register(tpch.lineitem_with_orderkeys(rows=rows, seed=7, order_count=order_count))
    db.register(tpch.orders(rows=order_count, seed=17))
    db.register(tpch.customer(rows=max(order_count // 8, 10), seed=19))
    db.register(tpch.nation())
    return db


class TestTpchGoldenPlans:
    def test_q5_reorders_to_cheaper_join_order(self):
        db = make_tpch_db()
        explain = db.explain(Q5_SQL)
        # Parse order is lineitem -> customer -> nation (the worst valid
        # order); the reorderer must defer the big lineitem join to last.
        assert _join_tables(explain) == ["customer", "nation", "lineitem"]
        assert any(line.startswith("join-reorder") for line in explain.rewrites)

    def test_q5_bit_exact_vs_optimizer_off(self):
        db = make_tpch_db()
        on = db.execute(Q5_SQL, include_scan=False)
        db.kernel_cache.clear()
        off = db.execute(Q5_SQL, include_scan=False, optimizer=OptimizerConfig.off())
        assert _join_tables(db.explain(Q5_SQL, optimizer=OptimizerConfig.off())) == [
            "lineitem",
            "customer",
            "nation",
        ]
        assert on.column_names == off.column_names
        assert on.rows == off.rows
        assert len(on.rows) > 0

    def test_q10_reorders_after_pushdown(self):
        db = make_tpch_db()
        explain = db.explain(Q10_SQL)
        # Written customer-first; once l_returnflag = 'R' sinks into the
        # lineitem build side, the shrunken lineitem join goes first.
        assert _join_tables(explain) == ["lineitem", "customer"]
        assert any(line.startswith("join-reorder") for line in explain.rewrites)

    def test_q10_bit_exact_vs_optimizer_off(self):
        db = make_tpch_db()
        on = db.execute(Q10_SQL, include_scan=False)
        db.kernel_cache.clear()
        off = db.execute(Q10_SQL, include_scan=False, optimizer=OptimizerConfig.off())
        assert on.column_names == off.column_names
        assert on.rows == off.rows
        assert len(on.rows) > 0

    def test_q5_sql_permutations_agree(self):
        """Re-ordering the JOIN clauses in the SQL text never changes rows."""
        db = make_tpch_db()
        reference = db.execute(Q5_SQL, include_scan=False).rows
        permuted = (
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
            "FROM orders "
            "JOIN customer ON o_custkey = c_custkey "
            "JOIN nation ON c_nationkey = n_nationkey "
            "JOIN lineitem ON o_orderkey = l_orderkey "
            "WHERE o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01' "
            "GROUP BY n_name ORDER BY revenue DESC"
        )
        for optimizer in (None, OptimizerConfig.off()):
            db.kernel_cache.clear()
            result = db.execute(permuted, include_scan=False, optimizer=optimizer)
            assert result.rows == reference
