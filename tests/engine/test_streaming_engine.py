"""Engine-level tests for the chunked streaming execution path."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.engine import Database
from repro.gpusim.streaming import StreamingConfig
from repro.storage import Column, Relation
from repro.storage.datagen import decimal_column


def make_relation(rows=120):
    spec_a = DecimalSpec(12, 2)
    spec_b = DecimalSpec(10, 3)
    return Relation(
        "r",
        [
            decimal_column("a", spec_a, rows, seed=21),
            decimal_column("b", spec_b, rows, seed=22),
            Column.chars("g", ["X" if i % 3 else "Y" for i in range(rows)], 1),
        ],
    )


def make_pair(rows=120, simulate=10_000_000, chunk_rows=1_000_000):
    relation = make_relation(rows)
    serial = Database(simulate_rows=simulate)
    serial.register(relation)
    streamed = Database(
        simulate_rows=simulate,
        streaming=StreamingConfig(enabled=True, chunk_rows=chunk_rows),
    )
    streamed.register(relation)
    return serial, streamed


class TestBitExactness:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a + b FROM r",
            "SELECT a * b FROM r",
            "SELECT a / b FROM r",
            "SELECT a * (1 - b) FROM r",
        ],
    )
    @pytest.mark.parametrize("chunk_rows", [400_000, 1_000_000, 20_000_000])
    def test_projection_matches_serial(self, sql, chunk_rows):
        """Chunked engine results equal unchunked, including chunk_rows
        larger than the simulated batch (a single chunk)."""
        serial, streamed = make_pair(chunk_rows=chunk_rows)
        assert streamed.execute(sql).rows == serial.execute(sql).rows

    def test_group_aggregation_matches_serial(self):
        serial, streamed = make_pair()
        sql = "SELECT g, SUM(a * b), COUNT(*) FROM r GROUP BY g ORDER BY g"
        assert streamed.execute(sql).rows == serial.execute(sql).rows

    def test_empty_batch_after_filter(self):
        """A kernel over zero rows is a valid no-op on the streamed path."""
        _, streamed = make_pair()
        result = streamed.execute("SELECT a * b FROM r WHERE a > 0 AND a < 0")
        assert result.rows == []


class TestReport:
    def test_per_kernel_stream_stats(self):
        serial, streamed = make_pair()
        sql = "SELECT a * (1 - b) FROM r"
        serial_report = serial.execute(sql, include_scan=False).report
        streamed_report = streamed.execute(sql, include_scan=False).report

        entries = streamed_report.streamed_kernels
        assert entries, "streamed run must record per-kernel executions"
        for entry in entries:
            assert entry.chunks > 1
            assert entry.pipelined_seconds < entry.serial_seconds
            assert entry.overlap_speedup > 1.0
        assert streamed_report.overlap_speedup > 1.0
        # The pipelined total undercuts the serial engine's total.
        assert streamed_report.total_seconds < serial_report.total_seconds

    def test_serial_path_records_unstreamed_entries(self):
        serial, _ = make_pair()
        report = serial.execute("SELECT a + b FROM r").report
        assert report.kernel_executions
        for entry in report.kernel_executions:
            assert not entry.streamed
            assert entry.chunks == 1
            assert entry.pipelined_seconds == entry.serial_seconds
        assert report.streamed_kernels == []
        assert report.overlap_speedup == 1.0

    def test_transfer_not_double_charged(self):
        """Kernel-consumed columns must not also be flushed serially: the
        streamed PCIe total stays at or below the serial PCIe total."""
        serial, streamed = make_pair()
        sql = "SELECT a * b FROM r"
        serial_pcie = serial.execute(sql, include_scan=False).report.pcie_seconds
        streamed_pcie = streamed.execute(sql, include_scan=False).report.pcie_seconds
        assert streamed_pcie <= serial_pcie

    def test_transfer_flushed_when_no_kernel_consumes_it(self):
        """Columns only touched by filters/keys still reach the device."""
        _, streamed = make_pair()
        report = streamed.execute(
            "SELECT COUNT(*) FROM r WHERE a > 0", include_scan=False
        ).report
        assert report.pcie_seconds > 0.0

    def test_per_query_streaming_override(self):
        serial, _ = make_pair()
        report = serial.execute(
            "SELECT a + b FROM r",
            streaming=StreamingConfig(enabled=True, chunk_rows=1_000_000),
        ).report
        assert report.streamed_kernels


class TestSimulateRowsResolution:
    def test_explicit_zero_is_honoured(self):
        """Regression: simulate_rows=0 used to fall through a falsy-or
        chain to the database default."""
        db = Database(simulate_rows=5_000_000)
        db.register(make_relation())
        report = db.execute("SELECT a + b FROM r", simulate_rows=0).report
        assert report.simulated_rows == 0
        assert report.scan_seconds == 0.0
        assert report.pcie_seconds == 0.0

    def test_database_zero_is_honoured(self):
        db = Database(simulate_rows=0)
        db.register(make_relation())
        assert db.execute("SELECT a + b FROM r").report.simulated_rows == 0

    def test_fallback_chain(self):
        relation = make_relation(rows=77)
        db = Database()  # no default -> charge actual rows
        db.register(relation)
        assert db.execute("SELECT a FROM r").report.simulated_rows == 77
        db2 = Database(simulate_rows=1_000)
        db2.register(relation)
        assert db2.execute("SELECT a FROM r").report.simulated_rows == 1_000
        assert (
            db2.execute("SELECT a FROM r", simulate_rows=42).report.simulated_rows
            == 42
        )


class TestExplainStreaming:
    def test_explain_surfaces_chunking(self):
        _, streamed = make_pair()
        result = streamed.explain("SELECT a * (1 - b) FROM r")
        kernels = [k for k in result.kernels if k.pipelined_ms is not None]
        assert kernels
        for kernel in kernels:
            assert kernel.chunks > 1
            assert kernel.pipelined_ms < kernel.serial_ms
            assert kernel.overlap_speedup > 1.0
        assert "streamed:" in result.format()

    def test_explain_serial_has_no_stream_lines(self):
        serial, _ = make_pair()
        result = serial.explain("SELECT a * (1 - b) FROM r")
        assert all(k.pipelined_ms is None for k in result.kernels)
        assert "streamed:" not in result.format()
