"""Zone maps + storage codecs through the engine stack.

Scan-time chunk pruning (byte accounting), encoded-byte filter evaluation
(bit-exact against the expanded path), planner predicate attachment, cost
model zone-refined selectivity, and append snapshot isolation.
"""

import numpy as np
import pytest

from repro.core.decimal.context import DecimalSpec
from repro.engine import Database
from repro.engine.plan.cost import TableStats, predicate_selectivity
from repro.engine.plan.physical import (
    FilterOp,
    QueryContext,
    ScanOp,
    _evaluate_predicate,
    _evaluate_predicate_encoded,
)
from repro.engine.plan.planner import plan_query
from repro.engine.sql.ast_nodes import Comparison
from repro.engine.sql.parser import parse_query
from repro.storage.codecs import CompactCodec, OrderPreservingCodec
from repro.storage.column import Column
from repro.storage.relation import Relation

SPEC = DecimalSpec(12, 2)
OPS = ["=", "<>", "<", "<=", ">", ">="]


def make_relation(codec=OrderPreservingCodec(), chunk_rows=4, rows=16):
    # v ascending => clustered, so range predicates prune whole chunks.
    values = [i * 100 for i in range(rows)]  # 0.00, 1.00, ... as unscaled
    extra = [(rows - i) * 7 for i in range(rows)]
    columns = [
        Column.decimal_from_unscaled("v", values, SPEC),
        Column.decimal_from_unscaled("w", extra, SPEC),
    ]
    relation = Relation("t", columns)
    if codec is not None:
        relation = relation.with_codecs(
            {"v": codec, "w": codec}, chunk_rows=chunk_rows
        )
    return relation


def scan_context(relation):
    return QueryContext(relation=relation, simulate_rows=1_000_000)


class TestScanZonePruning:
    def test_skipped_chunks_cut_scan_and_pcie_bytes(self):
        relation = make_relation()
        pruned = scan_context(relation)
        # v < 4.00 keeps only the first chunk (rows 0-3) of four.
        ScanOp(["v", "w"], predicates=[Comparison("v", "<", 4)]).run(None, pruned)
        full = scan_context(relation)
        ScanOp(["v", "w"]).run(None, full)
        assert pruned.report.zone_chunks_total == 8  # 2 columns x 4 chunks
        assert pruned.report.zone_chunks_skipped == 6  # 3 chunks pruned, each column
        assert full.report.zone_chunks_skipped == 0
        assert pruned.report.scan_bytes < full.report.scan_bytes
        assert pruned.report.pcie_bytes < full.report.pcie_bytes

    def test_pruning_never_changes_the_batch(self):
        relation = make_relation()
        pruned = ScanOp(["v"], predicates=[Comparison("v", "<", 4)]).run(
            None, scan_context(relation)
        )
        assert pruned.rows == relation.rows
        assert pruned.column("v").unscaled() == relation.column("v").unscaled()

    def test_compact_codec_still_prunes(self):
        # Zone maps are recorded at encode time for every codec, so even
        # the uncompressed layout skips chunks.
        relation = make_relation(codec=CompactCodec())
        context = scan_context(relation)
        ScanOp(["v"], predicates=[Comparison("v", "<", 4)]).run(None, context)
        assert context.report.zone_chunks_skipped == 3

    def test_no_codec_means_no_pruning(self):
        relation = make_relation(codec=None)
        context = scan_context(relation)
        ScanOp(["v"], predicates=[Comparison("v", "<", 4)]).run(None, context)
        assert context.report.zone_chunks_total == 0
        assert context.report.zone_chunks_skipped == 0


class TestEncodedFilter:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("literal", [-1, 0, 3, 3.5, 15, 99])
    def test_encoded_mask_matches_expanded_path(self, op, literal):
        relation = make_relation()
        column = relation.column("v")
        column.encoding()  # scan would have materialised it
        predicate = Comparison("v", op, literal)
        encoded = _evaluate_predicate_encoded(column, predicate)
        assert encoded is not None
        expected = _evaluate_predicate(column, predicate)
        assert encoded.tolist() == list(expected)

    def test_filter_op_results_bit_exact_with_codec(self):
        relation = make_relation()
        plain = make_relation(codec=None)
        for op in OPS:
            predicate = Comparison("v", op, 7)
            coded_batch = ScanOp(["v", "w"], predicates=[predicate]).run(
                None, scan_context(relation)
            )
            coded = FilterOp([predicate]).run(coded_batch, scan_context(relation))
            plain_batch = ScanOp(["v", "w"]).run(None, scan_context(plain))
            expected = FilterOp([predicate]).run(plain_batch, scan_context(plain))
            assert coded.column("v").unscaled() == expected.column("v").unscaled()
            assert coded.column("w").unscaled() == expected.column("w").unscaled()

    def test_unmaterialised_encoding_falls_back(self):
        # The filter never pays for an encode the scan didn't do.
        column = make_relation().column("v")
        assert column.cached_encoding() is None
        assert _evaluate_predicate_encoded(column, Comparison("v", "<", 4)) is None

    def test_compact_codec_falls_back_to_expanded(self):
        column = make_relation(codec=CompactCodec()).column("v")
        column.encoding()
        assert _evaluate_predicate_encoded(column, Comparison("v", "<", 4)) is None


class TestPlannerAttachment:
    def _database(self):
        db = Database(simulate_rows=1_000_000)
        db.catalog.register(make_relation())
        return db

    def test_scan_filter_prefix_attaches_literal_predicates(self):
        query = parse_query("SELECT SUM(v) AS s FROM t WHERE v < 4 AND w > 1")
        plan = plan_query(query, ["v", "w"])
        scan = plan[0]
        assert isinstance(scan, ScanOp)
        assert {p.column for p in scan.predicates} == {"v", "w"}
        assert all(p.column_rhs is None for p in scan.predicates)

    def test_no_filter_means_no_predicates(self):
        plan = plan_query(parse_query("SELECT SUM(v) AS s FROM t"), ["v", "w"])
        assert isinstance(plan[0], ScanOp)
        assert plan[0].predicates == []

    def test_query_results_bit_exact_vs_codec_free(self):
        coded = self._database()
        plain = Database(simulate_rows=1_000_000)
        plain.catalog.register(make_relation(codec=None))
        sql = "SELECT SUM(v) AS s, SUM(w) AS t2 FROM t WHERE v >= 2 AND v < 9.5"
        coded_result = coded.execute(sql)
        plain_result = plain.execute(sql)
        assert coded_result.rows == plain_result.rows
        assert coded_result.report.zone_chunks_skipped > 0


class TestCostModelZones:
    def test_table_stats_use_wire_bytes_and_zones(self):
        relation = make_relation()
        stats = TableStats.from_relation(relation)
        assert set(stats.zones) == {"v", "w"}
        wire = relation.column("v").wire_bytes / relation.rows
        assert stats.column_bytes["v"] == pytest.approx(wire)
        assert wire < relation.column("v").bytes_stored / relation.rows

    def test_zone_fraction_refines_the_default(self):
        stats = TableStats.from_relation(make_relation())
        # v < 1.00 matches 1/16 rows; the System R default says 1/3.
        refined = predicate_selectivity([Comparison("v", "<", 1)], stats)
        assert refined < 1 / 3
        # An always-true predicate now estimates ~everything: the histogram
        # replaced the System-R default, and the zone fraction (also ~1
        # here, every chunk's verdict is True) only caps it from above.
        assert predicate_selectivity([Comparison("v", "<", 10**6)], stats) == (
            pytest.approx(1.0)
        )

    def test_without_table_the_default_survives(self):
        assert predicate_selectivity([Comparison("v", "<", 1)]) == pytest.approx(1 / 3)


class TestAppendSnapshotIsolation:
    def _database(self):
        db = Database(simulate_rows=1_000_000)
        db.catalog.register(make_relation())
        return db

    def test_append_builds_fresh_zone_maps(self):
        db = self._database()
        before = db.catalog.get("t")
        before_encoding = before.column("v").encoding()
        merged = db.append("t", [["990.00", "1.00"]])
        after = merged.column("v")
        # Codec and chunking carry over; the encoding is rebuilt fresh.
        assert after.codec is before.column("v").codec
        assert after.encoding_chunk_rows == before.column("v").encoding_chunk_rows
        assert after.version != before.column("v").version
        assert after.cached_encoding() is None
        assert after.encoding().zones[-1].max_unscaled == 99000
        # The snapshot a reader captured still serves its original zones.
        assert before.column("v").cached_encoding() is before_encoding
        assert before_encoding.zones[-1].max_unscaled == 1500

    def test_appended_data_is_seen_by_zone_pruned_queries(self):
        db = self._database()
        sql = "SELECT SUM(v) AS s FROM t WHERE v > 14"
        before = db.execute(sql)  # only 15.00 matches
        db.append("t", [["9990.00", "1.00"]])
        after = db.execute(sql)  # the appended row re-encodes and matches
        assert before.rows != after.rows
