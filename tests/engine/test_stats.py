"""Column statistics: NDV, equi-depth histograms, cache invalidation."""

import pytest

from repro.core.decimal.context import DecimalSpec
from repro.engine import Database
from repro.engine.plan.cost import TableStats
from repro.engine.plan.stats import (
    build_histogram,
    collect_column_stats,
    column_stats,
    sketch_ndv,
)
from repro.engine.sql.ast_nodes import Comparison
from repro.storage.column import Column


SPEC = DecimalSpec(12, 2)


def decimal_column(unscaled):
    return Column.decimal_from_unscaled("v", unscaled, SPEC)


class TestHistogram:
    def test_point_estimate_matches_exact_count_uniform(self):
        values = [v % 10 for v in range(1000)]  # 100 rows per value
        histogram = build_histogram(values)
        for target in range(10):
            estimate = histogram.fraction("=", target) * 1000
            # Bucket-boundary smearing costs a few percent; the estimate
            # must stay far from the System-R 10% default's 100-row miss.
            assert estimate == pytest.approx(100, rel=0.15)

    def test_range_estimates_match_exact_counts(self):
        values = list(range(1000))
        histogram = build_histogram(values)
        for op, target, exact in [
            ("<", 250, 250),
            ("<=", 499, 500),
            (">", 749, 250),
            (">=", 900, 100),
        ]:
            estimate = histogram.fraction(op, target) * 1000
            assert estimate == pytest.approx(exact, rel=0.05), (op, target)

    def test_skew_beats_uniform_assumption(self):
        # 90% of rows hold one value: the histogram's equal-row estimate
        # for the heavy value must be far above the System-R 10% default.
        values = [7] * 900 + list(range(100, 200))
        histogram = build_histogram(values)
        assert histogram.fraction("=", 7) > 0.5
        assert histogram.fraction("=", 150) < 0.05

    def test_out_of_range_targets(self):
        histogram = build_histogram(list(range(100)))
        assert histogram.fraction("<", -5) == 0.0
        assert histogram.fraction(">", 1000) == 0.0
        assert histogram.fraction(">=", -5) == 1.0

    def test_empty_column_has_no_histogram(self):
        assert build_histogram([]) is None


class TestNdv:
    def test_exact_below_cap(self):
        stats = collect_column_stats(decimal_column([1, 1, 2, 3, 3, 3]))
        assert stats.ndv == 3
        assert stats.exact_ndv

    def test_sketch_above_cap(self):
        values = list(range(5000))
        stats_column = decimal_column(values)
        stats = collect_column_stats(stats_column, exact_cap=100)
        assert not stats.exact_ndv
        # KMV with k=256 is typically within ~10%; allow 25% slack.
        assert stats.ndv == pytest.approx(5000, rel=0.25)

    def test_sketch_exact_when_fewer_distinct_than_k(self):
        assert sketch_ndv([1, 2, 3, 1, 2, 3]) == 3

    def test_sketch_is_deterministic(self):
        values = list(range(3000))
        assert sketch_ndv(values) == sketch_ndv(values)


class TestCaching:
    def test_stats_cached_per_version(self):
        column = decimal_column([1, 2, 3])
        first = column_stats(column)
        assert column_stats(column) is first

    def test_invalidate_discards_stats(self):
        column = decimal_column([1, 2, 3])
        first = column_stats(column)
        column.invalidate()
        assert column.cached_stats() is None
        assert column_stats(column) is not first

    def test_append_refreshes_ndv_without_touching_snapshots(self):
        db = Database()
        db.create_table("t", {"v": "DECIMAL(12, 2)"}, rows=[("1.00",), ("2.00",)])
        before_column = db.catalog.get("t").column("v")
        before = TableStats.from_relation(db.catalog.get("t"))
        assert before.ndv("v") == 2
        db.append("t", [("3.00",), ("4.00",)])
        after = TableStats.from_relation(db.catalog.get("t"))
        # Fresh Columns carry fresh versions: new readers see the new NDV...
        assert after.ndv("v") == 4
        # ...while the old snapshot's cached statistics are untouched.
        assert before_column.cached_stats() is not None
        assert before_column.cached_stats().ndv == 2


class TestSelectivityIntegration:
    def test_histogram_drives_equality_selectivity(self):
        from repro.engine.plan.cost import predicate_selectivity

        # 90% of the column is 5.00: the estimate must track the skew.
        column = decimal_column([500] * 900 + [100 + i for i in range(100)])
        table = TableStats(
            rows=1000,
            column_bytes={"v": 6.0},
            column_types={"v": column.column_type},
            columns={"v": column},
        )
        heavy = predicate_selectivity([Comparison("v", "=", "5.00")], table)
        assert heavy > 0.5
        light = predicate_selectivity([Comparison("v", "=", "1.50")], table)
        assert light < 0.05

    def test_without_stats_falls_back_to_defaults(self):
        from repro.engine.plan.cost import DEFAULT_SELECTIVITY, predicate_selectivity

        assert predicate_selectivity([Comparison("v", "=", "5.00")]) == (
            DEFAULT_SELECTIVITY["="]
        )
