"""Measured data-plane wall time in reports, EXPLAIN and the profiler."""

from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import compile_expression
from repro.engine import Database
from repro.gpusim.profiler import measure_data_plane
from repro.gpusim.streaming import StreamingConfig
from repro.storage.column import Column
from repro.storage.relation import Relation


def make_db(**kwargs):
    db = Database(**kwargs)
    spec = DecimalSpec(15, 2)
    db.register(
        Relation(
            "t",
            [
                Column.decimal_from_unscaled("a", [123456, -99, 0, 500], spec),
                Column.decimal_from_unscaled("b", [7, 3, 11, -2], spec),
            ],
        )
    )
    return db


class TestReportDataPlaneSeconds:
    def test_kernel_query_records_wall_time(self):
        result = make_db().execute("SELECT a * b + a AS v FROM t")
        report = result.report
        assert report.data_plane_seconds > 0.0
        assert report.kernel_executions
        for entry in report.kernel_executions:
            assert entry.data_plane_seconds > 0.0
        # Measured wall time stays out of the simulated total.
        assert report.data_plane_seconds != report.total_seconds

    def test_aggregation_conversion_is_timed(self):
        result = make_db().execute("SELECT SUM(a) FROM t")
        assert result.report.data_plane_seconds > 0.0

    def test_streamed_kernels_record_wall_time(self):
        db = make_db(streaming=StreamingConfig(enabled=True, chunk_rows=2))
        result = db.execute("SELECT a * b AS v FROM t")
        streamed = result.report.streamed_kernels
        assert streamed
        for entry in streamed:
            assert entry.data_plane_seconds > 0.0


class TestExplainMeasured:
    def test_measure_data_plane_populates_kernel_plans(self):
        explained = make_db().explain("SELECT a * b + a FROM t", measure_data_plane=True)
        assert explained.kernels
        for kernel in explained.kernels:
            assert kernel.data_plane_ms is not None and kernel.data_plane_ms > 0.0
            assert kernel.data_plane_rows_per_s > 0.0
        assert "data plane (measured)" in explained.format()

    def test_default_explain_skips_measurement(self):
        explained = make_db().explain("SELECT a * b FROM t")
        for kernel in explained.kernels:
            assert kernel.data_plane_ms is None
        assert "data plane (measured)" not in explained.format()


class TestProfilerMeasurement:
    def test_measure_data_plane_runs_the_kernel(self):
        spec = DecimalSpec(15, 2)
        compiled = compile_expression("a + b", {"a": spec, "b": spec})
        columns = {
            "a": DecimalVector.from_unscaled([10, -20, 30], spec).to_compact(),
            "b": DecimalVector.from_unscaled([1, 2, 3], spec).to_compact(),
        }
        measured = measure_data_plane(compiled.kernel, columns, 3, repeats=2)
        assert measured.rows == 3
        assert measured.seconds > 0.0
        assert measured.rows_per_second > 0.0
        assert "rows/s" in str(measured)
