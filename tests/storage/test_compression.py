"""Tests for frame-of-reference compression (the Figure 14(b) case study)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decimal.context import DecimalSpec
from repro.errors import StorageError
from repro.storage import compression


class TestForCompression:
    @given(
        st.lists(st.integers(min_value=-(10**12), max_value=10**12), min_size=1, max_size=500)
    )
    @settings(max_examples=50, deadline=None)
    def test_lossless(self, values):
        spec = DecimalSpec(20, 2)
        packed = compression.compress(values, spec, block_size=64)
        assert packed.decompress() == values

    def test_narrow_range_compresses_well(self):
        """TPC-H quantities: values 1..50 at huge declared precision."""
        spec = DecimalSpec(135, 2)  # the LEN=16 extended precision
        values = [q * 100 for q in range(1, 51)] * 20
        packed = compression.compress(values, spec)
        assert packed.ratio > 10

    def test_wide_range_compresses_poorly(self):
        spec = DecimalSpec(20, 0)
        values = [(-1) ** i * 10**19 + i for i in range(200)]
        packed = compression.compress(values, spec)
        assert packed.ratio < 2

    def test_block_structure(self):
        spec = DecimalSpec(10, 0)
        packed = compression.compress(list(range(100)), spec, block_size=32)
        assert len(packed.blocks) == 4  # 32+32+32+4
        assert packed.blocks[0].reference == 0
        assert packed.blocks[3].reference == 96

    def test_delta_widths_minimal(self):
        spec = DecimalSpec(10, 0)
        packed = compression.compress([1000, 1001, 1002, 1003], spec, block_size=4)
        assert packed.blocks[0].width_bytes == 1

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            compression.compress([], DecimalSpec(5, 0))

    def test_bad_block_size(self):
        with pytest.raises(StorageError):
            compression.compress([1], DecimalSpec(5, 0), block_size=1)

    def test_decompression_cost_reported(self):
        spec = DecimalSpec(10, 0)
        packed = compression.compress(list(range(50)), spec)
        assert compression.decompression_cycles_per_value(packed) > 0
