"""The register-expansion cache on Column (versioned decimal_vector)."""

import numpy as np

from repro.core.decimal.context import DecimalSpec
from repro.storage.column import Column


def make_column(values=(100, -250, 0, 99)):
    return Column.decimal_from_unscaled("c", list(values), DecimalSpec(12, 2))


class TestDecimalVectorCache:
    def test_repeated_calls_return_the_cached_expansion(self):
        column = make_column()
        first = column.decimal_vector()
        second = column.decimal_vector()
        assert second is first  # no second unpack_column run

    def test_cached_vector_is_correct(self):
        column = make_column()
        assert column.decimal_vector().to_unscaled() == [100, -250, 0, 99]
        assert column.unscaled() == [100, -250, 0, 99]

    def test_take_produces_fresh_version_and_cache(self):
        column = make_column()
        original = column.decimal_vector()
        subset = column.take(np.array([2, 0]))
        assert subset.version != column.version
        taken = subset.decimal_vector()
        assert taken is not original
        assert taken.to_unscaled() == [0, 100]
        # The parent's cache is untouched.
        assert column.decimal_vector() is original

    def test_head_produces_fresh_version_and_cache(self):
        column = make_column()
        original = column.decimal_vector()
        head = column.head(2)
        assert head.version != column.version
        assert head.decimal_vector() is not original
        assert head.decimal_vector().to_unscaled() == [100, -250]

    def test_invalidate_discards_the_cache(self):
        column = make_column()
        stale = column.decimal_vector()
        before = column.version
        column.data = make_column([7, 7, 7, 7]).data
        column.invalidate()
        assert column.version != before
        fresh = column.decimal_vector()
        assert fresh is not stale
        assert fresh.to_unscaled() == [7, 7, 7, 7]

    def test_every_construction_gets_a_distinct_version(self):
        versions = {make_column().version for _ in range(5)}
        assert len(versions) == 5
