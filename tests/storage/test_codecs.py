"""Storage codecs: round-trips, order preservation, zone maps, gating."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ranges import prove_narrow_container
from repro.core.decimal import dinf
from repro.core.decimal.context import DecimalSpec
from repro.errors import StorageError
from repro.storage.codecs import (
    CompactCodec,
    NarrowCodec,
    OrderPreservingCodec,
    ZoneMap,
    choose_codec,
)
from repro.storage.column import Column
from repro.storage.schema import DecimalType

#: Values crossing every interesting boundary: sign flips, zero, the
#: 1/2/8-byte magnitude-length edges, and wide (>uint64) magnitudes.
BOUNDARY_VALUES = st.sampled_from(
    [
        0,
        1,
        -1,
        127,
        128,
        255,
        256,
        -255,
        -256,
        65535,
        65536,
        -65535,
        -65536,
        2**63 - 1,
        2**63,
        -(2**63),
        10**25,
        -(10**25),
    ]
)
SIGNED_INTS = st.integers(min_value=-(10**30), max_value=10**30)


class TestDinfEncoding:
    @given(st.lists(SIGNED_INTS | BOUNDARY_VALUES, min_size=1, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_bit_exact(self, values):
        data, lengths = dinf.encode(values)
        assert dinf.decode(data, lengths) == values

    @given(
        SIGNED_INTS | BOUNDARY_VALUES,
        SIGNED_INTS | BOUNDARY_VALUES,
    )
    @settings(max_examples=300, deadline=None)
    def test_memcmp_order_equals_numeric_order(self, a, b):
        ea, eb = dinf.encode_one(a).tobytes(), dinf.encode_one(b).tobytes()
        if a < b:
            assert ea < eb
        elif a > b:
            assert ea > eb
        else:
            assert ea == eb

    @given(
        st.lists(SIGNED_INTS | BOUNDARY_VALUES, min_size=1, max_size=100),
        SIGNED_INTS | BOUNDARY_VALUES,
    )
    @settings(max_examples=200, deadline=None)
    def test_padded_compare_matches_python(self, values, literal):
        data, _lengths = dinf.encode(values)
        order = dinf.compare(data, dinf.encode_one(literal))
        expected = [(v > literal) - (v < literal) for v in values]
        assert order.tolist() == expected

    def test_zero_is_the_single_pivot_byte(self):
        assert dinf.encode_one(0).tolist() == [dinf.ZERO_PREFIX]

    def test_magnitude_cap_raises(self):
        with pytest.raises(ValueError):
            dinf.encode([1 << (8 * dinf.MAX_MAGNITUDE_BYTES)])

    def test_paper_sweep_precisions_supported(self):
        # The LEN sweep's widest spec (precision 285) must be encodable.
        assert dinf.supports(DecimalSpec(285, 2).max_unscaled)


SPEC = DecimalSpec(12, 2)


def _column(values, codec=None, chunk_rows=None):
    column = Column.decimal_from_unscaled("c", list(values), SPEC)
    if codec is not None:
        column = column.with_codec(codec, chunk_rows=chunk_rows)
    return column


class TestCodecColumns:
    @pytest.mark.parametrize(
        "codec", [CompactCodec(), OrderPreservingCodec()], ids=["compact", "dinf"]
    )
    def test_chunked_round_trip(self, codec):
        values = [0, -12345, 10**10, 42, -1, 999, -(10**9)]
        column = _column(values, codec, chunk_rows=3)
        encoding = column.encoding()
        decoded = []
        for chunk in encoding.chunks:
            decoded.extend(codec.decode_chunk(chunk, SPEC))
        assert decoded == values
        assert [z.rows for z in encoding.zones] == [3, 3, 1]

    def test_zone_maps_record_exact_stats(self):
        column = _column([5, 0, -3, 7, 0, 0], OrderPreservingCodec(), chunk_rows=3)
        zones = column.encoding().zones
        assert (zones[0].min_unscaled, zones[0].max_unscaled) == (-3, 5)
        assert (zones[1].min_unscaled, zones[1].max_unscaled) == (0, 7)
        assert zones[0].zero_count == 1 and zones[1].zero_count == 2
        assert all(z.null_count == 0 for z in zones)

    def test_dinf_wire_bytes_beat_compact_padding(self):
        column = _column(range(100))
        encoded = column.with_codec(OrderPreservingCodec())
        assert encoded.wire_bytes < column.bytes_stored
        assert column.wire_bytes == column.bytes_stored  # no codec -> stored

    def test_encoding_is_cached_per_version(self):
        column = _column([1, 2, 3], OrderPreservingCodec())
        assert column.cached_encoding() is None  # not materialised yet
        first = column.encoding()
        assert column.encoding() is first
        assert column.cached_encoding() is first
        column.invalidate()
        assert column.cached_encoding() is None
        assert column.encoding() is not first

    def test_take_drops_the_encoding_cache(self):
        column = _column([1, 2, 3, 4], OrderPreservingCodec(), chunk_rows=2)
        column.encoding()
        subset = column.take(np.array([3, 0]))
        assert subset.codec is column.codec
        assert subset.cached_encoding() is None
        assert subset.encoding().zones[0].min_unscaled == 1


class TestZoneMapVerdicts:
    ZONE = ZoneMap(row_start=0, rows=4, min_unscaled=10, max_unscaled=20)

    @pytest.mark.parametrize(
        "op,literal,verdict",
        [
            ("<", 10, False),
            ("<", 21, True),
            ("<", 15, None),
            ("<=", 9, False),
            ("<=", 20, True),
            (">", 20, False),
            (">", 9, True),
            (">=", 21, False),
            (">=", 10, True),
            ("=", 25, False),
            ("=", 15, None),
            ("<>", 25, True),
            ("<>", 15, None),
        ],
    )
    def test_truth_table(self, op, literal, verdict):
        assert self.ZONE.evaluate(op, literal) is verdict

    def test_constant_chunk_decides_equality(self):
        zone = ZoneMap(row_start=0, rows=4, min_unscaled=7, max_unscaled=7)
        assert zone.evaluate("=", 7) is True
        assert zone.evaluate("<>", 7) is False


class TestNarrowCodec:
    NARROW_SPEC = DecimalSpec(8, 2)  # max_unscaled 99,999,999 < 2**31

    def test_requires_a_range_proof(self):
        with pytest.raises(StorageError):
            NarrowCodec(None)

    def test_spec_proof_round_trips(self):
        proof = prove_narrow_container(self.NARROW_SPEC)
        assert proof is not None and proof.source == "spec"
        codec = NarrowCodec(proof)
        values = [0, -1, 99_999_999, -99_999_999, 42]
        column = Column.decimal_from_unscaled("c", values, self.NARROW_SPEC)
        encoding = codec.encode_column(column.data, values, self.NARROW_SPEC, 2)
        decoded = []
        for chunk in encoding.chunks:
            decoded.extend(codec.decode_chunk(chunk, self.NARROW_SPEC))
        assert decoded == values
        assert encoding.wire_bytes == 4 * len(values)

    def test_memcmp_order_is_preserved(self):
        proof = prove_narrow_container(self.NARROW_SPEC)
        codec = NarrowCodec(proof)
        values = sorted([-99_999_999, -256, -1, 0, 1, 255, 99_999_999])
        encoded = [
            codec.encode_literal(v, self.NARROW_SPEC).tobytes() for v in values
        ]
        assert encoded == sorted(encoded)

    def test_wide_spec_has_no_spec_proof_without_observation(self):
        wide = DecimalSpec(20, 2)
        assert prove_narrow_container(wide) is None
        proof = prove_narrow_container(wide, observed=(-1000, 1000))
        assert proof is not None and proof.source == "observed"

    def test_encode_revalidates_against_the_container(self):
        # An observed-interval proof does not survive data that outgrows
        # it (e.g. after an append): encode raises, never truncates.
        wide = DecimalSpec(20, 2)
        codec = NarrowCodec(prove_narrow_container(wide, observed=(0, 100)))
        values = [0, 2**31]  # second value exceeds int32
        column = Column.decimal_from_unscaled("c", values, wide)
        with pytest.raises(StorageError):
            codec.encode_column(column.data, values, wide, 16)

    def test_spec_mismatch_raises(self):
        codec = NarrowCodec(prove_narrow_container(self.NARROW_SPEC))
        with pytest.raises(StorageError):
            codec.encode_literal(1, DecimalSpec(20, 2))


class TestChooseCodec:
    def test_small_values_prefer_dinf(self):
        codec = choose_codec(SPEC, [0, 100, -5000])
        assert codec.name == "dinf"

    def test_narrow_wins_on_wide_int32_values(self):
        # Values needing 4 magnitude bytes: dinf = 5 B/row, narrow = 4.
        values = [2**30, -(2**30), 2**29]
        codec = choose_codec(DecimalSpec(12, 2), values)
        assert codec.name == "narrow32"

    def test_narrow_never_selected_without_a_proof(self):
        # Same byte profile but one value outside int32: the proof fails
        # and the selection must fall back to an unguarded codec.
        values = [2**30, -(2**30), 2**32]
        codec = choose_codec(DecimalSpec(12, 2), values)
        assert codec.name != "narrow32"

    def test_huge_spec_without_values_falls_back_to_compact_or_dinf(self):
        codec = choose_codec(DecimalSpec(285, 2))
        assert codec.name in ("dinf", "compact")
