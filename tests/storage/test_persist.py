"""Tests for relation save/load round-trips."""

import numpy as np
import pytest

from repro.core.decimal.context import DecimalSpec
from repro.errors import StorageError
from repro.storage import Column, Relation
from repro.storage.datagen import decimal_column
from repro.storage.persist import load_relation, save_relation


def build_relation(rows=50):
    return Relation(
        "mixed",
        [
            decimal_column("d", DecimalSpec(38, 11), rows, seed=3),
            Column.doubles("f", [i * 1.5 for i in range(rows)]),
            Column.integers("i", list(range(rows))),
            Column.dates("t", [i % 2526 for i in range(rows)]),
            Column.chars("s", [f"v{i}" for i in range(rows)], 4),
        ],
    )


class TestRoundTrip:
    def test_bit_exact(self, tmp_path):
        relation = build_relation()
        target = save_relation(relation, tmp_path / "rel.npz")
        loaded = load_relation(target)
        assert loaded.name == relation.name
        assert loaded.column_names == relation.column_names
        assert loaded.column("d").unscaled() == relation.column("d").unscaled()
        assert np.array_equal(loaded.column("f").data, relation.column("f").data)
        assert loaded.column("s").column_type == relation.column("s").column_type
        assert np.array_equal(loaded.column("s").data, relation.column("s").data)

    def test_wide_decimal(self, tmp_path):
        relation = Relation(
            "wide", [decimal_column("x", DecimalSpec(307, 101), 20, seed=9)]
        )
        loaded = load_relation(save_relation(relation, tmp_path / "wide.npz"))
        assert loaded.column("x").unscaled() == relation.column("x").unscaled()
        assert loaded.column("x").column_type.spec == DecimalSpec(307, 101)

    def test_queryable_after_load(self, tmp_path):
        from repro.engine import Database

        relation = build_relation()
        loaded = load_relation(save_relation(relation, tmp_path / "q.npz"))
        db = Database()
        db.register(loaded)
        result = db.execute("SELECT SUM(d) FROM mixed")
        assert result.scalar.unscaled == sum(relation.column("d").unscaled())

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_relation(tmp_path / "nope.npz")

    def test_not_a_relation(self, tmp_path):
        target = tmp_path / "junk.npz"
        np.savez(target, a=np.zeros(3))
        with pytest.raises(StorageError):
            load_relation(target)
