"""Tests for columns, relations, catalog and data generation."""

import numpy as np
import pytest

from repro.core.decimal.context import DecimalSpec
from repro.errors import CatalogError, SchemaError
from repro.storage import Catalog, Column, DecimalType, Relation
from repro.storage import datagen
from repro.storage.schema import CharType, DateType, DoubleType, IntType


class TestColumn:
    def test_decimal_roundtrip(self):
        spec = DecimalSpec(10, 2)
        values = [123, -456, 0, 10**10 - 1]
        column = Column.decimal_from_unscaled("c", values, spec)
        assert column.unscaled() == values
        assert column.data.shape == (4, spec.compact_bytes)

    def test_bytes_stored_is_compact(self):
        spec = DecimalSpec(38, 5)
        column = Column.decimal_from_unscaled("c", [1] * 100, spec)
        assert column.bytes_stored == 100 * spec.compact_bytes

    def test_take_and_head(self):
        spec = DecimalSpec(6, 0)
        column = Column.decimal_from_unscaled("c", [10, 20, 30, 40], spec)
        assert column.take(np.array([2, 0])).unscaled() == [30, 10]
        assert column.head(2).unscaled() == [10, 20]

    def test_shape_validated(self):
        with pytest.raises(SchemaError):
            Column("c", DecimalType(DecimalSpec(10, 2)), np.zeros((3, 1), np.uint8))

    def test_non_decimal_kinds(self):
        assert Column.doubles("d", [1.5, 2.5]).column_type == DoubleType()
        assert Column.integers("i", [1, 2]).column_type == IntType()
        assert Column.dates("t", [100]).column_type == DateType()
        chars = Column.chars("s", ["AB", "C"], 2)
        assert chars.column_type == CharType(2)
        assert chars.data[1] == b"C "

    def test_unscaled_requires_decimal(self):
        with pytest.raises(SchemaError):
            Column.doubles("d", [1.0]).unscaled()


class TestRelation:
    def build(self):
        spec = DecimalSpec(8, 2)
        return Relation(
            "r",
            [
                Column.decimal_from_unscaled("a", [1, 2], spec),
                Column.decimal_from_unscaled("b", [3, 4], DecimalSpec(12, 5)),
                Column.integers("k", [7, 8]),
            ],
        )

    def test_decimal_schema(self):
        relation = self.build()
        schema = relation.decimal_schema()
        assert set(schema) == {"a", "b"}
        assert schema["b"] == DecimalSpec(12, 5)

    def test_ragged_rejected(self):
        spec = DecimalSpec(4, 0)
        with pytest.raises(SchemaError):
            Relation(
                "bad",
                [
                    Column.decimal_from_unscaled("a", [1], spec),
                    Column.decimal_from_unscaled("b", [1, 2], spec),
                ],
            )

    def test_duplicate_column_rejected(self):
        relation = self.build()
        with pytest.raises(SchemaError):
            relation.add(Column.integers("k", [0, 0]))

    def test_missing_column(self):
        with pytest.raises(SchemaError):
            self.build().column("nope")

    def test_bytes_for_subset(self):
        relation = self.build()
        assert relation.bytes_for(["a"]) == relation.column("a").bytes_stored

    def test_head(self):
        head = self.build().head(1)
        assert head.rows == 1 and head.column_names == ["a", "b", "k"]


class TestCatalog:
    def test_register_get_drop(self):
        catalog = Catalog()
        relation = Relation("r", [])
        catalog.register(relation)
        assert catalog.get("r") is relation
        assert "r" in catalog
        catalog.drop("r")
        assert "r" not in catalog

    def test_duplicate_needs_replace(self):
        catalog = Catalog()
        catalog.register(Relation("r", []))
        with pytest.raises(CatalogError):
            catalog.register(Relation("r", []))
        catalog.register(Relation("r", []), replace=True)

    def test_missing(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")


class TestDatagen:
    def test_deterministic(self):
        spec = DecimalSpec(20, 2)
        a = datagen.decimal_column("c", spec, 50, seed=3)
        b = datagen.decimal_column("c", spec, 50, seed=3)
        assert a.unscaled() == b.unscaled()

    def test_values_fit_spec(self):
        spec = DecimalSpec(35, 5)
        column = datagen.decimal_column("c", spec, 200, seed=9)
        assert all(abs(v) <= spec.max_unscaled for v in column.unscaled())

    def test_full_digits(self):
        spec = DecimalSpec(12, 0)
        column = datagen.decimal_column("c", spec, 100, seed=1, signed=False, full_digits=True)
        for value in column.unscaled():
            assert 10**11 <= value <= 10**12 - 1

    def test_r1_shape(self):
        relation = datagen.relation_r1(DecimalSpec(16, 2), rows=10)
        assert relation.column_names == ["c1", "c2", "c3"]
        assert relation.rows == 10

    def test_r2_shape(self):
        relation = datagen.relation_r2(DecimalSpec(36, 2), rows=5)
        assert len(relation.columns) == 8
        assert relation.column("c1").column_type.spec == DecimalSpec(6, 2)
        assert relation.column("c5").column_type.spec == DecimalSpec(36, 2)

    def test_r5_radians(self):
        relation = datagen.relation_r5(rows=200, seed=5)
        spec = relation.column("c1").column_type.spec
        assert spec == DecimalSpec(9, 8)
        # c2 clusters near 0.78, c3 near 1.56.
        mean_c2 = sum(relation.column("c2").unscaled()) / 200 / 1e8
        mean_c3 = sum(relation.column("c3").unscaled()) / 200 / 1e8
        assert 0.7 < mean_c2 < 0.86
        assert 1.48 < mean_c3 < 1.64


class TestTpch:
    def test_lineitem_schema(self):
        from repro.storage import tpch

        relation = tpch.lineitem(rows=100)
        assert "l_quantity" in relation
        assert relation.column("l_discount").column_type.spec == DecimalSpec(3, 2)
        quantities = relation.column("l_quantity").unscaled()
        assert all(100 <= q <= 5000 for q in quantities)  # 1..50 at scale 2
        discounts = relation.column("l_discount").unscaled()
        assert all(0 <= d <= 10 for d in discounts)

    def test_lineitem_for_len(self):
        from repro.storage import tpch

        relation = tpch.lineitem_for_len(8, rows=10)
        spec = relation.column("l_extendedprice").column_type.spec
        assert spec.precision == tpch.EXTENDED_PRECISION[8]

    def test_profiles_cover_q2_to_q22(self):
        from repro.storage import tpch

        assert sorted(tpch.TPCH_PROFILES) == sorted(f"Q{i}" for i in range(2, 23))
        assert tpch.TPCH_PROFILES["Q18"].subquery_decimal_delivery
        assert tpch.TPCH_PROFILES["Q20"].subquery_decimal_delivery
