"""Tests for the benchmark harness, report generator, and CLI."""

import json

import pytest

from repro.bench import report
from repro.bench.harness import Experiment, ratio


class TestExperiment:
    def build(self):
        return Experiment(
            experiment_id="demo",
            title="A demo table",
            headers=["name", "value (s)", "missing"],
            rows=[["alpha", 1.2345, None], ["beta", 0.000321, 7]],
            notes=["a note"],
        )

    def test_format_contains_everything(self):
        text = self.build().format()
        assert "demo" in text
        assert "alpha" in text
        assert "1.23" in text
        assert "note: a note" in text
        assert "-" in text  # the None cell

    def test_column_extraction(self):
        experiment = self.build()
        assert experiment.column("name") == ["alpha", "beta"]
        assert experiment.column("missing") == [None, 7]
        with pytest.raises(ValueError):
            experiment.column("nope")

    def test_save_roundtrip(self, tmp_path):
        experiment = self.build()
        target = experiment.save(tmp_path)
        with open(target) as handle:
            data = json.load(handle)
        assert data["id"] == "demo"
        assert data["rows"][0][0] == "alpha"

    def test_ratio_helper(self):
        assert ratio(4.0, 2.0) == 2.0
        assert ratio(None, 2.0) is None
        assert ratio(1.0, 0.0) is None


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = report.experiment_ids()
        expected = {
            "fig01", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
            "fig14a", "fig14b", "fig14b_for", "fig14c", "fig15",
            "table1", "table2", "profile",
        }
        assert expected <= set(ids)

    def test_run_single_experiment(self):
        experiment = report.run_experiment("table2")
        assert experiment.experiment_id == "table2"
        assert experiment.rows


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "all" in out

    def test_unknown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["nope"]) == 2

    def test_run_one(self, capsys, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Q18" in out
        assert (tmp_path / "bench_results" / "table1.json").exists()
