"""Smoke tests: every experiment runs at tiny sizes and keeps its shape.

The full-size assertions live in benchmarks/; these tests guarantee the
experiment modules stay runnable from the plain test suite.
"""


from repro.bench.experiments import (
    ext_hotpath,
    ext_serving,
    fig01_motivation,
    fig08_query1,
    fig09_query2,
    fig10_alignment,
    fig11_const_construction,
    fig12_const_precalc,
    fig13_tpi,
    fig14a_aggregation,
    fig14b_tpch_q1,
    fig14c_rsa,
    fig15_sine,
    profile_nsight,
    table1_tpch,
    table2_capabilities,
)


class TestSmoke:
    def test_fig01(self):
        experiment = fig01_motivation.run(rows=400)
        assert len(experiment.rows) == 3

    def test_fig08(self):
        experiment = fig08_query1.run(rows=100, lengths=(2, 8))
        assert experiment.column("LEN") == [2, 8]
        # capability wall visible even in the smoke run
        assert experiment.rows[1][1] is None

    def test_fig09(self):
        experiment = fig09_query2.run(rows=80, lengths=(2,))
        assert len(experiment.rows) == 1

    def test_fig10(self):
        experiment = fig10_alignment.run(lengths=(2,))
        assert all(row[6] == 1 for row in experiment.rows)

    def test_fig11(self):
        experiment = fig11_const_construction.run(lengths=(2, 32))
        assert all(row[3] > 1.0 for row in experiment.rows)

    def test_fig12(self):
        experiment = fig12_const_precalc.run(lengths=(4,))
        savings = {row[0]: row[4] for row in experiment.rows}
        assert savings["1+a+2-3"] == 100

    def test_fig13(self):
        experiment = fig13_tpi.run(lengths=(4, 32))
        divs = [row for row in experiment.rows if row[0] == "a/b" and row[1] == 32]
        assert divs[0][3] is None  # TPI=4 restriction

    def test_fig14a(self):
        experiment = fig14a_aggregation.run(rows=200, lengths=(2, 8))
        assert experiment.rows[0][1] is not None  # HEAVY.AI runs LEN=2
        assert experiment.rows[1][1] is None

    def test_fig14b(self):
        experiment = fig14b_tpch_q1.run(rows=300, lengths=(None, 4))
        assert experiment.rows[0][0] == "orig"

    def test_fig14b_for(self):
        experiment = fig14b_tpch_q1.run_compression_study(rows=500, lengths=(8,))
        assert experiment.rows[0][3] > 1.0  # compresses

    def test_fig14c(self):
        experiment = fig14c_rsa.run(rows=30, lengths=(4,))
        assert "fails" in experiment.rows[0][1]

    def test_fig15(self):
        experiment = fig15_sine.run(
            rows=20, columns=("c2",), terms_range=(2, 4), include_baselines=False
        )
        maes = [row[3] for row in experiment.rows]
        assert maes[1] < maes[0]  # more terms -> lower error

    def test_profile(self):
        experiment = profile_nsight.run(lengths=(8,))
        assert all(row[4] == "yes" for row in experiment.rows)

    def test_table1(self):
        assert len(table1_tpch.run().rows) == 21

    def test_table2(self):
        experiment = table2_capabilities.run()
        assert all(row[3] == "ok" for row in experiment.rows)

    def test_ext_hotpath(self):
        experiment = ext_hotpath.run(rows=600, lengths=(1, 8), repeats=1)
        # 4 kernels x 2 widths, plus the statically-routed division cells
        # (native64 at LEN 1, short at LEN 8).
        assert len(experiment.rows) == 10
        assert {row[0] for row in experiment.rows} >= {
            "div[static:native64]",
            "div[static:short]",
        }
        # Bit-exactness is asserted inside run(); the smoke run only needs
        # the vectorised path to not lose to the row loop.  The static
        # division cells race the already-vectorised dynamic dispatcher, so
        # their margin is thin at 600 rows: allow timer noise there.
        for row in experiment.rows:
            floor = 0.9 if row[0].startswith("div[static:") else 1.0
            assert row[5] >= floor, row
        assert all(row[6] for row in experiment.rows)

    def test_ext_serving(self):
        experiment = ext_serving.run(
            rows=100, session_counts=(1, 2), queries_per_session=2
        )
        # Bit-exactness vs serial is asserted inside run(); here only the
        # shape and sanity of the simulated schedule.
        assert experiment.column("sessions") == [1, 2]
        assert all(qps > 0 for qps in experiment.column("queries/sec"))
        assert all(
            speedup >= 1.0 for speedup in experiment.column("overlap speedup")
        )
