"""Failure-injection and robustness tests across layers.

A library trusted with exact arithmetic must fail loudly, not wrongly:
corrupted storage, overflowing inputs, and malformed plans all need to
surface as typed errors rather than silent bad numbers.
"""

import numpy as np
import pytest

from repro.core.decimal import compact
from repro.core.decimal.context import DecimalSpec
from repro.core.decimal.vectorized import DecimalVector
from repro.core.jit import compile_expression
from repro.engine import Database
from repro.errors import (
    CapabilityError,
    CatalogError,
    ConversionError,
    DivisionByZeroError,
    ExecutionError,
    ParseError,
    PrecisionOverflowError,
    ReproError,
    SchemaError,
)
from repro.gpusim import execute
from repro.storage import Column, Relation


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        import inspect

        import repro.errors as errors_module

        for name, obj in inspect.getmembers(errors_module, inspect.isclass):
            if issubclass(obj, Exception):
                assert issubclass(obj, ReproError) or obj is ReproError, name

    def test_errors_catchable_at_base(self):
        with pytest.raises(ReproError):
            DecimalSpec(0, 0)
        with pytest.raises(ReproError):
            Database().execute("SELECT a FROM nowhere")


class TestCorruptedStorage:
    def test_magnitude_overlapping_sign_bit(self):
        """Compact bytes whose magnitude spills into the sign bit."""
        spec = DecimalSpec(10, 2)
        data = np.zeros((1, spec.compact_bytes), dtype=np.uint8)
        data[0, :] = 0xFF  # all bits set: magnitude over the container
        # Unpacking tolerates it (sign bit reads as negative)...
        negative, words = compact.unpack_column(data, spec)
        assert negative[0]
        # ...but repacking an overlapping magnitude is rejected.
        bad_words = np.full((1, spec.words), 0xFFFFFFFF, dtype=np.uint32)
        with pytest.raises(ConversionError):
            compact.pack_column(np.array([False]), bad_words, spec)

    def test_truncated_compact_column(self):
        spec = DecimalSpec(18, 2)
        with pytest.raises(ConversionError):
            DecimalVector.from_compact(np.zeros((5, 3), dtype=np.uint8), spec)

    def test_wrong_shape_column_rejected_at_construction(self):
        from repro.storage.schema import DecimalType

        with pytest.raises(SchemaError):
            Column("c", DecimalType(DecimalSpec(18, 2)), np.zeros((4,), dtype=np.uint8))


class TestArithmeticFailures:
    def test_zero_divisor_in_kernel(self):
        spec = DecimalSpec(8, 2)
        compiled = compile_expression("a / b", {"a": spec, "b": spec})
        columns = {
            "a": DecimalVector.from_unscaled([100, 200], spec).to_compact(),
            "b": DecimalVector.from_unscaled([5, 0], spec).to_compact(),
        }
        with pytest.raises(DivisionByZeroError):
            execute(compiled.kernel, columns, 2)

    def test_overflowing_input_data(self):
        spec = DecimalSpec(4, 2)
        with pytest.raises(PrecisionOverflowError):
            DecimalVector.from_unscaled([10_000], spec)

    def test_sum_container_guarantee(self):
        """SUM's widened spec absorbs the worst case; no silent wrap."""
        db = Database(simulate_rows=1000)
        spec = DecimalSpec(4, 0)
        values = [9999] * 500
        db.register(Relation("t", [Column.decimal_from_unscaled("v", values, spec)]))
        result = db.execute("SELECT SUM(v) FROM t")
        assert result.scalar.unscaled == 9999 * 500


class TestEngineRobustness:
    def test_empty_table_aggregation(self):
        db = Database()
        db.create_table("empty", {"v": "DECIMAL(6, 2)"})
        # Aggregating zero rows is a hard error in the reducer (the paper's
        # operators always see partitioned data), surfaced cleanly.
        from repro.errors import MultithreadError

        with pytest.raises((MultithreadError, ExecutionError)):
            db.execute("SELECT SUM(v) FROM empty")

    def test_filter_to_empty_then_group(self):
        db = Database()
        db.create_table(
            "t", {"g": "CHAR(1)", "v": "DECIMAL(6, 2)"}, rows=[("A", "1.00")]
        )
        result = db.execute("SELECT g, SUM(v) FROM t WHERE v > 100 GROUP BY g")
        assert result.rows == []

    def test_malformed_sql_cannot_mutate_state(self):
        db = Database()
        db.create_table("t", {"v": "INT"}, rows=[(1,)])
        for bad in ["SELECT", "SELECT v FROM", "SELECT v FROM t WHERE", "FROM t"]:
            with pytest.raises(ParseError):
                db.execute(bad)
        assert db.execute("SELECT v FROM t").rows == [(1,)]

    def test_baseline_capability_error_is_clean(self):
        from repro.baselines import create
        from repro.storage.datagen import relation_r1

        wide = relation_r1(DecimalSpec(74, 2), rows=5, seed=1)
        engine = create("HEAVY.AI")
        with pytest.raises(CapabilityError) as excinfo:
            engine.run_projection(wide, "c1 + c2 + c3")
        assert "words" in str(excinfo.value)

    def test_drop_then_query(self):
        db = Database()
        db.create_table("t", {"v": "INT"}, rows=[(1,)])
        db.drop("t")
        with pytest.raises(CatalogError):
            db.execute("SELECT v FROM t")
