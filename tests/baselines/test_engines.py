"""Tests for baseline engine models: exactness, semantics, cost shapes."""

from fractions import Fraction

import pytest

from repro.baselines import (
    H2Model,
    HeavyAiModel,
    PostgresModel,
    RateupDBModel,
    create,
    names,
    profile_expression,
)
from repro.core.decimal.context import DecimalSpec
from repro.errors import BaselineError, CapabilityError
from repro.storage.datagen import decimal_column, relation_r1
from repro.storage.relation import Relation

SIM = 10_000_000


@pytest.fixture(scope="module")
def small_relation():
    return relation_r1(DecimalSpec(16, 2), rows=300, seed=21)


class TestRegistry:
    def test_six_engines(self):
        assert names() == [
            "CockroachDB", "H2", "HEAVY.AI", "MonetDB", "PostgreSQL", "RateupDB"
        ]

    def test_create(self):
        assert isinstance(create("PostgreSQL"), PostgresModel)

    def test_unknown(self):
        with pytest.raises(BaselineError):
            create("FooDB")


class TestExactness:
    @pytest.mark.parametrize("name", ["PostgreSQL", "MonetDB", "CockroachDB", "H2"])
    def test_projection_exact(self, name, small_relation):
        engine = create(name)
        result = engine.run_projection(small_relation, "c1 + c2 * 2 - c3", simulate_rows=SIM)
        c1 = small_relation.column("c1").unscaled()
        c2 = small_relation.column("c2").unscaled()
        c3 = small_relation.column("c3").unscaled()
        expected = [a + 2 * b - c for a, b, c in zip(c1, c2, c3)]
        assert [v.unscaled for v in result.values] == expected

    def test_sum_exact(self, small_relation):
        engine = create("PostgreSQL")
        result = engine.run_sum(small_relation, "c1", simulate_rows=SIM)
        assert result.scalar.unscaled == sum(small_relation.column("c1").unscaled())

    def test_capability_failures(self):
        wide = relation_r1(DecimalSpec(74, 2), rows=10, seed=3)  # LEN=8 columns
        for name in ("HEAVY.AI", "MonetDB", "RateupDB"):
            with pytest.raises(CapabilityError):
                create(name).run_projection(wide, "c1 + c2 + c3")

    def test_heavyai_no_modulo(self):
        with pytest.raises(CapabilityError):
            HeavyAiModel().run_modulo_query()


class TestDoubleMode:
    def test_double_is_inexact_but_fast(self, small_relation):
        engine = create("PostgreSQL")
        double = engine.run_sum_double(small_relation, "c1 + c2", simulate_rows=SIM)
        exact = engine.run_sum(small_relation, "c1 + c2", simulate_rows=SIM)
        assert double.seconds < exact.seconds
        exact_fraction = Fraction(*exact.scalar.to_fraction_parts())
        assert Fraction(double.scalar) != exact_fraction  # Figure 1's point

    def test_engines_disagree_on_double(self):
        """Figure 1: PG and CockroachDB return different wrong answers."""
        relation = relation_r1(DecimalSpec(17, 5), rows=4000, seed=42)
        pg = create("PostgreSQL").run_sum_double(relation, "c1 + c2")
        crdb = create("CockroachDB").run_sum_double(relation, "c1 + c2")
        assert pg.scalar != crdb.scalar


class TestH2Division:
    def test_twenty_extra_digits(self):
        """H2 divisions carry 20 extra fractional digits (section IV-D4)."""
        spec = DecimalSpec(9, 8)
        relation = Relation("t", [decimal_column("x", spec, 10, seed=5, signed=False)])
        h2 = H2Model()
        pg = PostgresModel()
        h2_result = h2.run_projection(relation, "x / 7")
        pg_result = pg.run_projection(relation, "x / 7")
        # H2: scale = s1 + 20; the standard rule gives s1 + 4.
        assert h2_result.values[0].spec.scale == pg_result.values[0].spec.scale + 20 - 4
        # H2's quotient is strictly more precise:
        x = relation.column("x").unscaled()[0]
        exact = Fraction(x, 7 * 10**8)
        h2_err = abs(Fraction(*h2_result.values[0].to_fraction_parts()) - exact)
        pg_err = abs(Fraction(*pg_result.values[0].to_fraction_parts()) - exact)
        assert h2_err <= pg_err


class TestCostShapes:
    def test_postgres_quadratic_in_digits(self):
        """RSA scaling: cost grows superlinearly with precision."""
        engine = PostgresModel()
        times = []
        for precision in (17, 35, 71, 143):
            schema = {"c1": DecimalSpec(precision, 0)}
            profile = profile_expression(f"c1 * c1 % {10**(precision+1) - 3}", schema)
            times.append(engine.query_seconds(profile, SIM, include_scan=False))
        growth1 = times[1] / times[0]
        growth2 = times[3] / times[2]
        assert growth2 > growth1  # accelerating growth

    def test_monetdb_is_fast_and_in_memory(self, small_relation):
        monet = create("MonetDB").run_sum(small_relation, "c1", simulate_rows=SIM)
        pg = create("PostgreSQL").run_sum(small_relation, "c1", simulate_rows=SIM)
        assert monet.seconds < pg.seconds

    def test_heavyai_fixed_overhead_dominates(self):
        heavy = create("HEAVY.AI")
        # Narrow column so the SUM result stays within HEAVY.AI's 64 bits.
        narrow = relation_r1(DecimalSpec(9, 2), rows=50, seed=2)
        result = heavy.run_sum(narrow, "c1", simulate_rows=SIM)
        assert result.seconds >= heavy.costs.fixed_overhead

    def test_postgres_parallel_aggregate(self, small_relation):
        """Pure aggregation runs parallel; expressions don't."""
        engine = PostgresModel()
        agg_profile = profile_expression("c1", small_relation.decimal_schema())
        agg_profile.agg_digits.append(20)
        agg_per_tuple = engine.query_seconds(agg_profile, SIM, include_scan=False) / SIM
        serial_equivalent = engine.costs.arithmetic_seconds(agg_profile)
        assert agg_per_tuple < serial_equivalent  # workers > 1

    def test_postgres_parallel_kickin_on_giant_expressions(self):
        """The Figure 15 effect: the 10-term polynomial goes parallel."""
        from repro.workloads.trig import sine_expression

        engine = PostgresModel()
        schema = {"c2": DecimalSpec(9, 8)}
        time_9 = engine.query_seconds(
            profile_expression(sine_expression("c2", 9), schema), SIM, include_scan=False
        )
        time_10 = engine.query_seconds(
            profile_expression(sine_expression("c2", 10), schema), SIM, include_scan=False
        )
        assert time_10 < time_9  # more work, less time: parallel scan kicked in

    def test_rateupdb_grows_faster_than_ultraprecise_would(self, small_relation):
        """Non-compact representation: steeper digit slope than UltraPrecise."""
        engine = RateupDBModel()
        narrow = relation_r1(DecimalSpec(16, 2), rows=10, seed=1)
        wide = relation_r1(DecimalSpec(36, 2), rows=10, seed=1)
        t_narrow = engine.run_projection(narrow, "c1 + c2 + c3", simulate_rows=SIM).seconds
        t_wide = engine.run_projection(wide, "c1 + c2 + c3", simulate_rows=SIM).seconds
        assert t_wide > t_narrow * 1.3
